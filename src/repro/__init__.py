"""repro — full reproduction of "Tuning Crowdsourced Human Computation"
(Cao, Liu, Chen, Jagadish; ICDE 2017).

Subpackages:

* :mod:`repro.stats` — probability substrate (exponential / Erlang /
  hypoexponential latencies, order statistics);
* :mod:`repro.market` — crowd-market simulator (the AMT substitute);
* :mod:`repro.inference` — HPU running-parameter inference;
* :mod:`repro.core` — the H-Tuning problem and algorithms EA/RA/HA;
* :mod:`repro.perf` — batched, cache-aware evaluation engine (batch
  Monte-Carlo samplers, phase-kernel caches, array-based DP sweeps;
  see ``docs/performance.md``);
* :mod:`repro.crowddb` — crowd-powered DB operators + tuned engine;
* :mod:`repro.workloads` — the paper's workloads and stress families;
* :mod:`repro.experiments` — per-figure experiment harness;
* :mod:`repro.api` — the declarative request/response facade:
  serializable :class:`~repro.api.ExperimentSpec` /
  :class:`~repro.api.RunConfig` values, the experiment registry, and
  the :class:`~repro.api.Session` facade every run path goes through
  (see ``docs/api.md``);
* :mod:`repro.resilience` — deterministic fault injection
  (:class:`~repro.resilience.FaultPlan`), retry/timeout policies,
  structured :class:`~repro.resilience.ErrorDocument` failure capture,
  and checkpointed :class:`~repro.resilience.BatchReport` batches
  (see ``docs/robustness.md``);
* :mod:`repro.store` — crash-safe persistent result store:
  content-addressed :class:`~repro.store.ResultStore` with atomic
  writes, checksum + validity-envelope verification, and quarantine,
  behind ``Session.run(store=...)`` and the ``repro results`` CLI
  (see ``docs/robustness.md``, "Result store failure modes").

Quickstart::

    from repro import HTuningProblem, TaskSpec, Tuner
    from repro.market import LinearPricing

    pricing = LinearPricing(slope=1.0, intercept=1.0)
    tasks = [TaskSpec(i, repetitions=5, pricing=pricing,
                      processing_rate=2.0) for i in range(100)]
    allocation = Tuner().tune(HTuningProblem(tasks, budget=2500))
"""

from .api import ExperimentSpec, RunConfig, RunResult, Session
from .core import (
    Allocation,
    HTuningProblem,
    Scenario,
    TaskGroup,
    TaskSpec,
    Tuner,
    even_allocation,
    heterogeneous_algorithm,
    repetition_algorithm,
)
from .errors import (
    BudgetError,
    CheckpointError,
    FaultInjectedError,
    InfeasibleAllocationError,
    InferenceError,
    ModelError,
    PlanError,
    RegistryError,
    ReproError,
    RunNotFoundError,
    RunTimeoutError,
    SimulationError,
    StoreCorruptError,
    StoreError,
    StoreStaleError,
    StoreWriteError,
    error_code,
)
from .resilience import (
    BatchReport,
    ErrorDocument,
    FaultPlan,
    FaultRule,
    RetryPolicy,
    TimeoutPolicy,
)
from .store import ResultStore

__version__ = "1.0.0"

__all__ = [
    "Allocation",
    "BatchReport",
    "BudgetError",
    "CheckpointError",
    "ErrorDocument",
    "ExperimentSpec",
    "FaultInjectedError",
    "FaultPlan",
    "FaultRule",
    "HTuningProblem",
    "InfeasibleAllocationError",
    "InferenceError",
    "ModelError",
    "PlanError",
    "RegistryError",
    "ReproError",
    "RunNotFoundError",
    "ResultStore",
    "RetryPolicy",
    "RunConfig",
    "RunResult",
    "RunTimeoutError",
    "Scenario",
    "Session",
    "SimulationError",
    "StoreCorruptError",
    "StoreError",
    "StoreStaleError",
    "StoreWriteError",
    "TaskGroup",
    "TaskSpec",
    "TimeoutPolicy",
    "Tuner",
    "__version__",
    "error_code",
    "even_allocation",
    "heterogeneous_algorithm",
    "repetition_algorithm",
]
