"""Quality-aware repetition planning.

HPU characteristic (ii): answers are error-prone.  The paper takes the
repetition counts as *given* by the query planner; this extension
closes the loop by deriving them from a target answer quality, so a
requester can specify "each vote must be correct with probability
>= 0.99" and get back the cheapest odd repetition count that a
majority vote needs under the workers' accuracy — which then feeds the
H-Tuning problem as usual.

Math: with ``r`` iid Bernoulli(accuracy) votes and majority
aggregation, the verdict is correct with probability
``P = Σ_{k > r/2} C(r,k) a^k (1−a)^{r−k}`` (ties cannot happen for odd
``r``); this is increasing in both ``a`` and (for ``a > 1/2``) odd
``r``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..errors import ModelError, PlanError
from ..market.task import TaskType

__all__ = [
    "majority_correct_probability",
    "repetitions_for_quality",
    "QualityPlan",
    "plan_repetitions",
]


def majority_correct_probability(repetitions: int, accuracy: float) -> float:
    """``P(majority of r votes is correct)`` for iid workers.

    Even ``r`` counts a tie as failure (conservative: a tie forces a
    tie-break that is right only half the time under symmetric priors —
    we charge the full tie mass to the error side).
    """
    if repetitions < 1 or int(repetitions) != repetitions:
        raise ModelError(
            f"repetitions must be a positive integer, got {repetitions}"
        )
    if not 0.0 < accuracy <= 1.0:
        raise ModelError(f"accuracy must be in (0,1], got {accuracy}")
    r = int(repetitions)
    needed = r // 2 + 1
    total = 0.0
    for k in range(needed, r + 1):
        total += math.comb(r, k) * accuracy**k * (1 - accuracy) ** (r - k)
    return total


def repetitions_for_quality(
    accuracy: float, target: float, max_repetitions: int = 99
) -> int:
    """Smallest odd ``r`` with majority-correctness >= *target*.

    Raises when the crowd cannot reach the target within
    *max_repetitions* (e.g. accuracy 0.5 — an uninformative crowd never
    gets better with more votes).
    """
    if not 0.0 < target < 1.0:
        raise ModelError(f"target must be in (0,1), got {target}")
    if not 0.0 < accuracy <= 1.0:
        raise ModelError(f"accuracy must be in (0,1], got {accuracy}")
    if accuracy <= 0.5 and target > accuracy:
        raise PlanError(
            f"a crowd with accuracy {accuracy} <= 0.5 cannot reach "
            f"majority quality {target} at any repetition count"
        )
    r = 1
    while r <= max_repetitions:
        if majority_correct_probability(r, accuracy) >= target:
            return r
        r += 2
    raise PlanError(
        f"accuracy {accuracy} cannot reach quality {target} within "
        f"{max_repetitions} repetitions"
    )


@dataclass(frozen=True)
class QualityPlan:
    """Repetition counts per task type for a quality target."""

    target: float
    repetitions: dict[str, int]

    def for_type(self, type_name: str) -> int:
        if type_name not in self.repetitions:
            raise PlanError(f"no plan entry for type {type_name!r}")
        return self.repetitions[type_name]

    @property
    def total_votes_per_task(self) -> dict[str, int]:
        return dict(self.repetitions)


def plan_repetitions(
    task_types: Sequence[TaskType], target: float
) -> QualityPlan:
    """Derive per-type repetition counts meeting *target* quality.

    Harder types (lower accuracy) get more repetitions — this is
    exactly the repetition heterogeneity Scenario II/III tunes, now
    derived from first principles instead of assumed.
    """
    if not task_types:
        raise ModelError("need at least one task type")
    names = [t.name for t in task_types]
    if len(set(names)) != len(names):
        raise ModelError("task type names must be unique")
    repetitions = {
        t.name: repetitions_for_quality(t.accuracy, target)
        for t in task_types
    }
    return QualityPlan(target=target, repetitions=repetitions)
