"""Reference optimizers for validating the paper's algorithms.

Two exact solvers, both restricted to *group-uniform* allocations
(the space the paper's algorithms search):

* :func:`exact_group_dp` — exact dynamic program over (group, budget)
  for any separable group objective ``Σ_i cost(g_i, p_i)``; optimal
  regardless of convexity.  Used in tests to certify that Algorithm 2's
  greedy-marginal DP attains the optimum under convex costs, and by
  the ablation bench to quantify the (zero) gap.
* :func:`exhaustive_group_search` — brute force over all price vectors
  for tiny instances; optimal for *any* objective including the
  non-separable closeness of Algorithm 3.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Mapping

from ..errors import InfeasibleAllocationError, ModelError
from .problem import Allocation, HTuningProblem, TaskGroup

__all__ = [
    "exact_group_dp",
    "exhaustive_group_search",
    "exhaustive_latency_search",
]


def exact_group_dp(
    problem: HTuningProblem,
    group_cost_fn: Callable[[TaskGroup, int], float],
) -> dict[tuple, int]:
    """Exact minimizer of ``Σ_i group_cost_fn(g_i, p_i)`` within budget.

    Classic knapsack-style DP: process groups one at a time; state is
    the budget spent so far.  ``O(n · B · B/u_min)`` time — intended
    for validation, not production sweeps.
    """
    groups = problem.groups()
    budget = problem.budget
    start_cost = sum(g.unit_cost for g in groups)
    if budget < start_cost:
        raise InfeasibleAllocationError(budget, start_cost)

    INF = math.inf
    # Represent states sparsely: after processing i groups, best cost
    # for each spend level.
    table = {0: 0.0}
    back: list[dict[int, int]] = []
    for g in groups:
        u = g.unit_cost
        max_price = budget // u
        new_table: dict[int, float] = {}
        choice: dict[int, int] = {}
        for spent, cost in table.items():
            for price in range(1, max_price + 1):
                ns = spent + price * u
                if ns > budget:
                    break
                nc = cost + group_cost_fn(g, price)
                if nc < new_table.get(ns, INF) - 1e-15:
                    new_table[ns] = nc
                    choice[ns] = price
        if not new_table:
            raise InfeasibleAllocationError(budget, start_cost)
        table = new_table
        back.append(choice)

    # Best terminal state.
    end_spent = min(table, key=lambda s: (table[s], s))
    # Walk back to recover prices.
    prices: dict[tuple, int] = {}
    spent = end_spent
    for g, choice in zip(reversed(groups), reversed(back)):
        price = choice[spent]
        prices[g.key] = price
        spent -= price * g.unit_cost
    if spent != 0:
        raise ModelError("DP backtrack failed to reach the zero state")
    return prices


def _iter_feasible_price_vectors(problem: HTuningProblem, max_states: int):
    """Yield every within-budget group-uniform price vector, in product
    order.  One shared enumerator: the per-group price bound, the
    *max_states* blowup guard and the budget filter live here for both
    exhaustive searches."""
    groups = problem.groups()
    budget = problem.budget
    start_cost = sum(g.unit_cost for g in groups)
    if budget < start_cost:
        raise InfeasibleAllocationError(budget, start_cost)

    ranges = []
    states = 1
    for g in groups:
        max_price = (budget - (start_cost - g.unit_cost)) // g.unit_cost
        ranges.append(range(1, max_price + 1))
        states *= len(ranges[-1])
        if states > max_states:
            raise ModelError(
                f"exhaustive search would enumerate > {max_states} states; "
                "shrink the instance or use exact_group_dp"
            )
    unit_costs = [g.unit_cost for g in groups]
    for combo in itertools.product(*ranges):
        if sum(p * u for p, u in zip(combo, unit_costs)) <= budget:
            yield combo


def exhaustive_group_search(
    problem: HTuningProblem,
    objective_fn: Callable[[HTuningProblem, Mapping[tuple, int]], float],
    max_states: int = 2_000_000,
) -> tuple[dict[tuple, int], float]:
    """Brute-force the best group-uniform price vector.

    ``objective_fn(problem, group_prices)`` may be arbitrary (e.g. the
    closeness of Algorithm 3 or the exact numeric job latency).
    Guards against combinatorial blowup via *max_states*.

    Returns ``(prices, objective_value)``.
    """
    groups = problem.groups()
    best_prices: dict[tuple, int] | None = None
    best_value = math.inf
    for combo in _iter_feasible_price_vectors(problem, max_states):
        prices = {g.key: p for g, p in zip(groups, combo)}
        value = objective_fn(problem, prices)
        if value < best_value - 1e-15:
            best_value = value
            best_prices = prices
    if best_prices is None:
        raise InfeasibleAllocationError(
            problem.budget, sum(g.unit_cost for g in groups)
        )
    return best_prices, best_value


def exhaustive_latency_search(
    problem: HTuningProblem,
    include_processing: bool = True,
    max_states: int = 100_000,
) -> tuple[dict[tuple, int], float]:
    """Brute-force the group-uniform allocation with the lowest exact
    expected job latency.

    Unlike :func:`exhaustive_group_search` with a latency objective —
    which integrates every candidate on its own grid, one at a time —
    this routes the whole candidate set through
    :func:`repro.perf.batch.evaluate_allocations`: all survival
    functions are integrated on **one shared grid**, so the
    process-level cdf cache collapses every repeated (rates, grid)
    profile across the sweep.  Same argmin (the candidates are
    compared on a common grid; only the integration error differs
    from per-candidate grids), constant-factor faster the more
    profiles repeat.

    Returns ``(prices, expected_latency)`` with the latency evaluated
    on the shared grid.
    """
    from ..perf.batch import evaluate_allocations

    groups = problem.groups()
    combos = list(_iter_feasible_price_vectors(problem, max_states))
    allocations = [
        Allocation.from_group_prices(
            problem, {g.key: p for g, p in zip(groups, combo)}
        )
        for combo in combos
    ]
    values = evaluate_allocations(
        problem,
        allocations,
        scoring="numeric",
        include_processing=include_processing,
    )
    best = 0
    for i in range(1, len(values)):
        if values[i] < values[best] - 1e-15:
            best = i
    return (
        {g.key: p for g, p in zip(groups, combos[best])},
        float(values[best]),
    )
