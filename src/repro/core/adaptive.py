"""Adaptive (online) re-tuning under market drift.

The paper's §3.3 proposes inferring the HPU running parameters "in
real time" so the tuner always works with fresh rates; this module
operationalizes that idea for multi-round jobs:

1. allocate the current round's budget with the current market belief;
2. run the round; observe the realized on-hold latencies;
3. update the belief — an exponentially-weighted rate estimate per
   price point, refit through the Linearity Hypothesis;
4. repeat with the remaining budget.

:class:`AdaptiveTuner` wraps the whole loop; it is the comparison
point for the *static* tuner under the non-stationary markets of
:mod:`repro.market.dynamics` (extension bench E2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..errors import ModelError
from ..inference.linearity import fit_linearity
from ..market.pricing import LinearPricing, PricingModel
from ..market.simulator import AtomicTaskOrder, JobResult
from ..market.task import TaskType
from ..stats.rng import RandomState, ensure_rng
from .problem import Allocation, HTuningProblem, TaskSpec
from .tuner import Tuner

__all__ = ["MarketBelief", "AdaptiveTuner", "RoundOutcome"]


class MarketBelief:
    """Running estimate of the λ_o(c) curve from observed acceptances.

    Per observed price, maintains an exponentially-weighted mean of the
    acceptance *rate* implied by each on-hold measurement (1/latency is
    biased for single observations, so we average durations and invert
    — the MLE for exponential data).  ``decay`` < 1 forgets old rounds,
    tracking drift.
    """

    def __init__(self, prior: PricingModel, decay: float = 0.6) -> None:
        if not 0.0 < decay <= 1.0:
            raise ModelError(f"decay must be in (0,1], got {decay}")
        self.prior = prior
        self.decay = float(decay)
        # price -> (weighted duration sum, weight)
        self._duration_sums: dict[int, float] = {}
        self._weights: dict[int, float] = {}

    def decay_all(self) -> None:
        """Age *every* price bucket by one round.

        Must decay all buckets, not just re-observed ones: a stale
        bucket at a price the tuner no longer offers would otherwise
        keep full weight forever and poison the linearity fit after a
        market regime shift.
        """
        for price in self._weights:
            self._weights[price] *= self.decay
            self._duration_sums[price] *= self.decay

    def observe(self, price: int, onhold_latencies: Sequence[float]) -> None:
        """Fold one round's measurements at *price* into the belief."""
        latencies = [float(x) for x in onhold_latencies]
        if any(x < 0 for x in latencies):
            raise ModelError("on-hold latencies must be >= 0")
        if not latencies:
            return
        price = int(price)
        self._duration_sums[price] = (
            self._duration_sums.get(price, 0.0) + sum(latencies)
        )
        self._weights[price] = self._weights.get(price, 0.0) + len(latencies)

    def observed_prices(self) -> list[int]:
        return sorted(self._weights)

    def rate_at(self, price: int) -> Optional[float]:
        """Current rate estimate at *price*, or None if unobserved."""
        w = self._weights.get(int(price), 0.0)
        if w <= 0:
            return None
        mean_duration = self._duration_sums[int(price)] / w
        if mean_duration <= 0:
            return None
        return 1.0 / mean_duration

    def current_model(self) -> PricingModel:
        """Best current λ_o(c) estimate.

        * no observations → the prior;
        * one observed price → the prior rescaled proportionally
          through the observed (price, rate) point — tuned allocations
          are often price-uniform (EA), so this single-point update is
          what lets the belief move at all, and the shifted prices it
          induces produce the second point on the next round;
        * two or more distinct prices → Linearity-Hypothesis fit.
        """
        from ..market.pricing import CallablePricing

        prices = [p for p in self.observed_prices() if self.rate_at(p)]
        if not prices:
            return self.prior
        if len(set(prices)) == 1:
            anchor = prices[0]
            observed = self.rate_at(anchor)
            prior_at_anchor = self.prior(anchor)
            if observed is None or prior_at_anchor <= 0:
                return self.prior
            factor = observed / prior_at_anchor
            prior = self.prior
            return CallablePricing(
                lambda c, _f=factor, _p=prior: _f * _p(c),
                name=f"scaled-prior(x{factor:.3g})",
            )
        rates = [self.rate_at(p) for p in prices]
        weights = [self._weights[p] for p in prices]
        try:
            fit = fit_linearity(
                [float(p) for p in prices], rates, weights=weights
            )
            return fit.to_pricing_model()
        except Exception:
            return self.prior


@dataclass
class RoundOutcome:
    """One adaptive round's record."""

    round_index: int
    allocation: Allocation
    job: JobResult
    model_used: PricingModel
    spent: int

    @property
    def latency(self) -> float:
        return self.job.latency


class AdaptiveTuner:
    """Round-by-round tuner that re-estimates the market as it spends.

    Parameters
    ----------
    task_type:
        The (single) task type of the rounds.
    prior:
        Initial belief about λ_o(c).
    total_budget:
        Budget across all rounds (units).
    decay:
        Belief forgetting factor (1.0 = never forget).
    """

    def __init__(
        self,
        task_type: TaskType,
        prior: PricingModel,
        total_budget: int,
        decay: float = 0.6,
        seed: RandomState = None,
    ) -> None:
        if int(total_budget) != total_budget or total_budget < 1:
            raise ModelError(
                f"total_budget must be a positive integer, got {total_budget}"
            )
        self.task_type = task_type
        self.belief = MarketBelief(prior, decay=decay)
        self.total_budget = int(total_budget)
        self.remaining_budget = int(total_budget)
        self._rng = ensure_rng(seed)
        self.history: list[RoundOutcome] = []

    def plan_round(
        self, n_tasks: int, repetitions: int, rounds_left: int
    ) -> tuple[HTuningProblem, Allocation]:
        """Allocate this round's share of the remaining budget."""
        if n_tasks < 1 or repetitions < 1 or rounds_left < 1:
            raise ModelError("n_tasks, repetitions, rounds_left must be >= 1")
        round_budget = self.remaining_budget // rounds_left
        floor = n_tasks * repetitions
        round_budget = max(round_budget, floor)
        if round_budget > self.remaining_budget:
            raise ModelError(
                f"remaining budget {self.remaining_budget} cannot fund a "
                f"round needing at least {floor}"
            )
        model = self.belief.current_model()
        tasks = [
            TaskSpec(
                task_id=i,
                repetitions=repetitions,
                pricing=model,
                processing_rate=self.task_type.processing_rate,
                type_name=self.task_type.name,
            )
            for i in range(n_tasks)
        ]
        problem = HTuningProblem(tasks, round_budget)
        allocation = Tuner(seed=self._rng).tune(problem)
        return problem, allocation

    def run_round(
        self,
        simulator,
        n_tasks: int,
        repetitions: int,
        rounds_left: int,
    ) -> RoundOutcome:
        """Plan, execute on *simulator*, observe, and update the belief.

        *simulator* must expose ``run_job(orders, recorder=None)``
        (either market engine qualifies).
        """
        from ..market.trace import TraceRecorder

        problem, allocation = self.plan_round(n_tasks, repetitions, rounds_left)
        model = self.belief.current_model()
        orders = [
            AtomicTaskOrder(
                task_type=self.task_type,
                prices=tuple(allocation[t.task_id]),
                atomic_task_id=t.task_id,
            )
            for t in problem.tasks
        ]
        recorder = TraceRecorder()
        job = simulator.run_job(orders, recorder=recorder)
        # Age the belief by one round, then fold in the fresh evidence.
        self.belief.decay_all()
        # Observe per-price on-hold latencies.
        by_price: dict[int, list[float]] = {}
        for record in recorder.records:
            by_price.setdefault(record.price, []).append(record.onhold_latency)
        for price, latencies in by_price.items():
            self.belief.observe(price, latencies)
        self.remaining_budget -= job.total_paid
        outcome = RoundOutcome(
            round_index=len(self.history),
            allocation=allocation,
            job=job,
            model_used=model,
            spent=job.total_paid,
        )
        self.history.append(outcome)
        return outcome

    @property
    def total_latency(self) -> float:
        """Sum of round latencies (rounds run sequentially)."""
        return sum(o.latency for o in self.history)

    @property
    def total_spent(self) -> int:
        return sum(o.spent for o in self.history)
