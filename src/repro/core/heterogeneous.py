"""Algorithm 3 — Heterogeneous Algorithm (HA) for Scenario III (§4.4).

HA runs the same budget-indexed DP as Algorithm 2, but the quantity it
drives down is the **closeness to the utopia point**
``CL(P) = |O1(P) − O1*| + |O2(P) − O2*|`` instead of the raw phase-1
surrogate.  Since feasible points dominate the utopia point
coordinate-wise, minimizing CL is equivalent to minimizing
``O1(P) + O2(P)``: the group phase-1 surrogate plus the
most-difficult-group total latency.  The O2 term is the penalty that
stops the optimizer from starving a group whose phase-2 latency
already dominates the job (the paper's "most difficult task"
discussion).

As in Algorithm 2, the state at budget level ``x`` carries the price
vector achieving ``CL(x)``; candidates at ``x`` are "spend nothing
new" (state ``x−1``) or "complete one increment of group i" (state
``x−u_i`` with ``p_i`` bumped).
"""

from __future__ import annotations

from typing import Sequence

from ..errors import InfeasibleAllocationError
from .latency import group_onhold_latency, group_processing_latency
from .objectives import ObjectivePoint, utopia_point, utopia_point_sweep
from .problem import Allocation, HTuningProblem

__all__ = [
    "heterogeneous_algorithm",
    "heterogeneous_algorithm_sweep",
    "HAResult",
]


class HAResult:
    """Rich result of Algorithm 3: allocation + objective diagnostics."""

    def __init__(
        self,
        allocation: Allocation,
        group_prices: dict[tuple, int],
        utopia: ObjectivePoint,
        achieved: ObjectivePoint,
    ) -> None:
        self.allocation = allocation
        self.group_prices = group_prices
        self.utopia = utopia
        self.achieved = achieved

    @property
    def closeness(self) -> float:
        return self.achieved.l1_distance(self.utopia)

    def __repr__(self) -> str:
        return (
            f"HAResult(closeness={self.closeness:.4f}, "
            f"achieved=({self.achieved.o1:.4f}, {self.achieved.o2:.4f}), "
            f"utopia=({self.utopia.o1:.4f}, {self.utopia.o2:.4f}))"
        )


def heterogeneous_algorithm(
    problem: HTuningProblem,
    return_details: bool = False,
):
    """Run Algorithm 3 (HA) on *problem*.

    Works on any instance (Scenario III is its target; on Scenario I/II
    instances the O2 penalty is uniform across groups and HA degrades
    gracefully toward RA's behaviour).

    Parameters
    ----------
    problem:
        The H-Tuning instance.
    return_details:
        When true, return an :class:`HAResult` carrying the utopia
        point and achieved objective point; otherwise just the
        :class:`~repro.core.problem.Allocation`.

    Raises
    ------
    InfeasibleAllocationError
        If the budget cannot give every repetition one unit.
    """
    groups = problem.groups()
    unit_costs = tuple(g.unit_cost for g in groups)
    start_cost = sum(unit_costs)
    if problem.budget < start_cost:
        raise InfeasibleAllocationError(problem.budget, start_cost)

    from ..perf.dp import heterogeneous_price_scan

    utopia = utopia_point(problem)
    n = len(groups)
    residual = problem.budget - start_cost

    # Phase-2 expectations are price-independent: cache them once.
    phase2 = tuple(group_processing_latency(g) for g in groups)

    # The scan precomputes dense phase-1 tables over every reachable
    # price and reads table entries instead of growing per-group
    # ladders; it hands the tables back for the diagnostics below.
    final, phase1_tables = heterogeneous_price_scan(
        groups,
        residual,
        unit_costs,
        group_onhold_latency,
        phase2,
        utopia.o1,
        utopia.o2,
    )
    group_prices = {g.key: final[i] for i, g in enumerate(groups)}
    allocation = Allocation.from_group_prices(problem, group_prices)
    problem.validate_allocation(allocation)
    if not return_details:
        return allocation
    p1 = [float(phase1_tables[i][final[i] - 1]) for i in range(n)]
    achieved = ObjectivePoint(
        o1=sum(p1),
        o2=max(p1[i] + phase2[i] for i in range(n)),
    )
    return HAResult(allocation, group_prices, utopia, achieved)


def heterogeneous_algorithm_sweep(
    family,
    budgets: Sequence[int],
) -> dict[int, Allocation]:
    """Run Algorithm 3 (HA) for every budget of a sweep in one pass.

    *family* is a :class:`~repro.workloads.families.ProblemFamily`.
    Every ingredient is shared across the sweep: the utopia points
    (one multi-budget DP + one recorded greedy walk,
    :func:`~repro.core.objectives.utopia_point_sweep`), the
    price-independent phase-2 expectations, the dense phase-1 tables
    (built once at the largest budget), and — via
    :func:`~repro.perf.dp.heterogeneous_closeness_sweep` — the
    closeness scan itself: one shared trajectory evaluates each
    candidate's raw objective once per budget level, and only the
    cheap per-budget closeness comparison (against budget-specific
    utopia coordinates) replays per budget.  A budget whose last-ulp
    tie breaks differently forks into a private seed-exact
    continuation, so each returned allocation is **bit-identical** to
    ``heterogeneous_algorithm(family.problem_at(b))``.
    """
    from ..perf.dp import group_cost_table, heterogeneous_closeness_sweep

    budgets = [int(b) for b in budgets]
    groups = family.groups
    unit_costs = tuple(g.unit_cost for g in groups)
    start_cost = sum(unit_costs)
    for b in budgets:
        if b < start_cost:
            raise InfeasibleAllocationError(b, start_cost)

    utopias = utopia_point_sweep(family, budgets)
    phase2 = tuple(group_processing_latency(g) for g in groups)
    max_residual = max(budgets) - start_cost
    tables = [
        group_cost_table(g, 2 + max_residual // u, group_onhold_latency)
        for g, u in zip(groups, unit_costs)
    ]

    finals = heterogeneous_closeness_sweep(
        groups,
        [b - start_cost for b in budgets],
        unit_costs,
        group_onhold_latency,
        phase2,
        [(utopias[b].o1, utopias[b].o2) for b in budgets],
        phase1_tables=tables,
    )
    out: dict[int, Allocation] = {}
    for b, final in zip(budgets, finals):
        problem = family.problem_at(b)
        group_prices = {g.key: final[i] for i, g in enumerate(groups)}
        allocation = Allocation.from_group_prices(problem, group_prices)
        problem.validate_allocation(allocation)
        out[b] = allocation
    return out
