"""Algorithm 3 — Heterogeneous Algorithm (HA) for Scenario III (§4.4).

HA runs the same budget-indexed DP as Algorithm 2, but the quantity it
drives down is the **closeness to the utopia point**
``CL(P) = |O1(P) − O1*| + |O2(P) − O2*|`` instead of the raw phase-1
surrogate.  Since feasible points dominate the utopia point
coordinate-wise, minimizing CL is equivalent to minimizing
``O1(P) + O2(P)``: the group phase-1 surrogate plus the
most-difficult-group total latency.  The O2 term is the penalty that
stops the optimizer from starving a group whose phase-2 latency
already dominates the job (the paper's "most difficult task"
discussion).

As in Algorithm 2, the state at budget level ``x`` carries the price
vector achieving ``CL(x)``; candidates at ``x`` are "spend nothing
new" (state ``x−1``) or "complete one increment of group i" (state
``x−u_i`` with ``p_i`` bumped).
"""

from __future__ import annotations

from typing import Optional

from ..errors import InfeasibleAllocationError, ModelError
from .latency import group_onhold_latency, group_processing_latency
from .objectives import ObjectivePoint, utopia_point
from .problem import Allocation, HTuningProblem

__all__ = ["heterogeneous_algorithm", "HAResult"]


class HAResult:
    """Rich result of Algorithm 3: allocation + objective diagnostics."""

    def __init__(
        self,
        allocation: Allocation,
        group_prices: dict[tuple, int],
        utopia: ObjectivePoint,
        achieved: ObjectivePoint,
    ) -> None:
        self.allocation = allocation
        self.group_prices = group_prices
        self.utopia = utopia
        self.achieved = achieved

    @property
    def closeness(self) -> float:
        return self.achieved.l1_distance(self.utopia)

    def __repr__(self) -> str:
        return (
            f"HAResult(closeness={self.closeness:.4f}, "
            f"achieved=({self.achieved.o1:.4f}, {self.achieved.o2:.4f}), "
            f"utopia=({self.utopia.o1:.4f}, {self.utopia.o2:.4f}))"
        )


def heterogeneous_algorithm(
    problem: HTuningProblem,
    return_details: bool = False,
):
    """Run Algorithm 3 (HA) on *problem*.

    Works on any instance (Scenario III is its target; on Scenario I/II
    instances the O2 penalty is uniform across groups and HA degrades
    gracefully toward RA's behaviour).

    Parameters
    ----------
    problem:
        The H-Tuning instance.
    return_details:
        When true, return an :class:`HAResult` carrying the utopia
        point and achieved objective point; otherwise just the
        :class:`~repro.core.problem.Allocation`.

    Raises
    ------
    InfeasibleAllocationError
        If the budget cannot give every repetition one unit.
    """
    groups = problem.groups()
    unit_costs = tuple(g.unit_cost for g in groups)
    start_cost = sum(unit_costs)
    if problem.budget < start_cost:
        raise InfeasibleAllocationError(problem.budget, start_cost)

    utopia = utopia_point(problem)
    n = len(groups)

    # Phase-2 expectations are price-independent: cache them once.
    phase2 = tuple(group_processing_latency(g) for g in groups)

    # Memoized phase-1 ladders: ladder[i][p-1] = E[L1(g_i)] at price p.
    ladders: list[list[float]] = [[group_onhold_latency(g, 1)] for g in groups]

    def phase1(i: int, price: int) -> float:
        ladder = ladders[i]
        while len(ladder) < price:
            ladder.append(group_onhold_latency(groups[i], len(ladder) + 1))
        return ladder[price - 1]

    def cl_of(prices: tuple[int, ...]) -> float:
        p1 = [phase1(i, prices[i]) for i in range(n)]
        o1 = sum(p1)
        o2 = max(p1[i] + phase2[i] for i in range(n))
        return abs(o1 - utopia.o1) + abs(o2 - utopia.o2)

    residual = problem.budget - start_cost
    base_prices = tuple([1] * n)
    values: list[float] = [cl_of(base_prices)]
    prices_at: list[tuple[int, ...]] = [base_prices]

    for x in range(1, residual + 1):
        best_value = values[x - 1]
        best_prices = prices_at[x - 1]
        for i in range(n):
            u = unit_costs[i]
            if u > x:
                continue
            prev = prices_at[x - u]
            lst = list(prev)
            lst[i] = prev[i] + 1
            candidate_prices = tuple(lst)
            candidate = cl_of(candidate_prices)
            if candidate < best_value - 1e-15:
                best_value = candidate
                best_prices = candidate_prices
        values.append(best_value)
        prices_at.append(best_prices)

    final = prices_at[residual]
    group_prices = {g.key: final[i] for i, g in enumerate(groups)}
    allocation = Allocation.from_group_prices(problem, group_prices)
    problem.validate_allocation(allocation)
    if not return_details:
        return allocation
    p1 = [phase1(i, final[i]) for i in range(n)]
    achieved = ObjectivePoint(
        o1=sum(p1),
        o2=max(p1[i] + phase2[i] for i in range(n)),
    )
    return HAResult(allocation, group_prices, utopia, achieved)
