"""Expected-latency engine for H-Tuning instances.

Three evaluation routes, trading exactness for generality:

1. **Group surrogate** (:func:`group_onhold_latency`,
   :func:`surrogate_onhold_objective`) — the paper's approximation:
   the job's phase-1 latency is bounded by the sum over groups of the
   within-group expected maximum, each ``E[max of n Erl(k, λ_o(p))]``.
   This is the objective Algorithms 2 and 3 minimize.
2. **Numeric job latency** (:func:`expected_job_latency`) — exact
   ``E[max over tasks]`` including both phases, by building each
   task's full-latency cdf (numeric convolution of its repetition
   phases) and integrating ``1 − Π cdf`` on a shared grid.  Used to
   score allocations from *any* strategy, uniform-price or not.
3. **Monte Carlo** (:func:`simulate_job_latency`) — sampling from the
   aggregate model; the experiment harness uses it to produce the
   Fig. 2 curves with realistic noise.

Erlang scaling fact used throughout: ``Erl(k, λ) = Erl(k, 1)/λ``, so
``E[max of n iid Erl(k, λ)] = M(n, k)/λ`` with a λ-independent constant
``M(n, k)``.  This makes group latencies exactly inverse-proportional
to the on-hold rate and is why convexity of the DP objective holds for
increasing λ_o(c).
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Mapping

import numpy as np

from ..errors import ModelError
from ..stats.order_statistics import expected_max_erlang_iid
from ..stats.rng import RandomState, ensure_rng
from .problem import Allocation, HTuningProblem, TaskGroup

__all__ = [
    "erlang_max_constant",
    "group_onhold_latency",
    "group_processing_latency",
    "surrogate_onhold_objective",
    "expected_job_latency",
    "simulate_job_latency",
    "sample_job_latencies",
]


@lru_cache(maxsize=65536)
def erlang_max_constant(n: int, k: int) -> float:
    """``M(n, k) = E[max of n iid Erlang(k, 1)]``.

    Group latencies are ``M(n, k) / λ`` by the Erlang scaling property;
    caching M makes DP sweeps over thousands of prices cheap.
    """
    return expected_max_erlang_iid(n, k, 1.0)


def group_onhold_latency(group: TaskGroup, price: int) -> float:
    """Expected phase-1 latency of *group* at uniform repetition *price*.

    ``E[L1(g)] = M(n, k) / λ_o(price)`` — the expectation of the max of
    n iid Erlang(k, λ_o) variables (§4.3.1).
    """
    if int(price) != price or price < 1:
        raise ModelError(f"price must be a positive integer, got {price}")
    rate = group.onhold_rate(int(price))
    return erlang_max_constant(group.size, group.repetitions) / rate


def group_processing_latency(group: TaskGroup) -> float:
    """Expected phase-2 latency of *group* (price-independent).

    ``E[L2(g)] = M(n, k) / λ_p`` — max across members of the Erlang
    processing chain.
    """
    return erlang_max_constant(group.size, group.repetitions) / group.processing_rate


def surrogate_onhold_objective(
    problem: HTuningProblem, group_prices: dict[tuple, int]
) -> float:
    """The paper's Scenario II objective: ``Σ_i E[L1(g_i)]``.

    Upper-bounds the true phase-1 job latency (max <= sum of maxima)
    and decreases whenever any group's latency decreases.
    """
    total = 0.0
    for group in problem.groups():
        total += group_onhold_latency(group, group_prices[group.key])
    return total


# ---------------------------------------------------------------------------
# exact numeric job latency
# ---------------------------------------------------------------------------


def _task_latency_cdf_on_grid(
    onhold_rates: tuple[float, ...],
    processing_rate: float,
    grid: np.ndarray,
    include_processing: bool,
) -> np.ndarray:
    """cdf of one task's total latency on *grid*.

    The task's latency is the sum of ``Exp(rate)`` phases: one on-hold
    phase per repetition (rates may differ when the allocation is not
    uniform) plus, optionally, one ``Exp(λ_p)`` per repetition.  The
    phase-type cdf is evaluated exactly by uniformization, through the
    process-level kernel cache so repeated profiles (sweeps, Pareto
    fronts, exhaustive searches) are computed once.
    """
    from ..perf.cache import cached_hypoexponential_cdf

    rates = list(onhold_rates)
    if include_processing:
        rates.extend([processing_rate] * len(onhold_rates))
    return cached_hypoexponential_cdf(rates, grid)


def expected_job_latency(
    problem: HTuningProblem,
    allocation: Allocation,
    include_processing: bool = True,
    grid_points: int = 2048,
    repetition_mode: str = "sequential",
) -> float:
    """Exact (numeric) expected job latency ``E[max_i L(t_i)]``.

    Works for arbitrary allocations.  Distinct (rates, λ_p) profiles
    share one cdf computation, so homogeneous problems cost a single
    convolution regardless of task count.

    ``repetition_mode``: ``"sequential"`` (the paper's model — a task's
    latency is the *sum* of its repetition chains) or ``"parallel"``
    (multi-assignment HITs — the *max* of independent single-repetition
    chains).
    """
    if repetition_mode not in ("sequential", "parallel"):
        raise ModelError(
            f"repetition_mode must be 'sequential' or 'parallel', got "
            f"{repetition_mode!r}"
        )
    problem.validate_allocation(allocation)
    profiles = _rate_profiles(problem, allocation)
    upper = _grid_upper(profiles, problem.num_tasks, include_processing)
    grid = np.linspace(0.0, upper, grid_points)
    return _expected_max_on_grid(
        profiles, grid, include_processing, repetition_mode
    )


def _rate_profiles(
    problem: HTuningProblem, allocation: Allocation
) -> dict[tuple, int]:
    """Distinct (onhold-rates, processing-rate) profiles with counts."""
    profiles: dict[tuple, int] = {}
    for task in problem.tasks:
        onhold = tuple(
            task.onhold_rate(p) for p in allocation[task.task_id]
        )
        key = (onhold, task.processing_rate)
        profiles[key] = profiles.get(key, 0) + 1
    return profiles


def _grid_upper(
    profiles: Mapping[tuple, int], n_tasks: int, include_processing: bool
) -> float:
    """Grid width for the slowest profile (the sequential mean is an
    upper bound for the parallel one)."""
    worst_mean = 0.0
    for (onhold, proc), _count in profiles.items():
        mean = sum(1.0 / r for r in onhold)
        if include_processing:
            mean += len(onhold) / proc
        worst_mean = max(worst_mean, mean)
    return worst_mean * (6.0 + 1.5 * math.log1p(n_tasks)) + 1e-9


def _expected_max_on_grid(
    profiles: Mapping[tuple, int],
    grid: np.ndarray,
    include_processing: bool,
    repetition_mode: str,
) -> float:
    """``E[max over tasks]`` by integrating ``1 − Π cdf`` on *grid*.

    Shared by :func:`expected_job_latency` and the multi-allocation
    scorer :func:`repro.perf.batch.evaluate_allocations`, so the
    integration semantics (grid heuristic, log-product clamping) live
    in exactly one place.
    """
    log_prod = np.zeros_like(grid)
    for (onhold, proc), count in profiles.items():
        if repetition_mode == "sequential":
            cdf = _task_latency_cdf_on_grid(
                onhold, proc, grid, include_processing
            )
        else:
            # Task cdf = product over repetitions of the single-rep
            # chain cdfs (max of independent chains).
            cdf = np.ones_like(grid)
            for rate in onhold:
                single = _task_latency_cdf_on_grid(
                    (rate,), proc, grid, include_processing
                )
                cdf = cdf * single
        with np.errstate(divide="ignore"):
            log_cdf = np.log(np.where(cdf > 0.0, cdf, 1.0))
            log_cdf = np.where(cdf > 0.0, log_cdf, -np.inf)
        log_prod = log_prod + count * log_cdf
    survival = 1.0 - np.exp(log_prod)
    return float(np.trapezoid(survival, grid))


# ---------------------------------------------------------------------------
# Monte Carlo
# ---------------------------------------------------------------------------


def _sample_job_latencies_scalar(
    problem: HTuningProblem,
    allocation: Allocation,
    n_samples: int,
    rng: RandomState = None,
    include_processing: bool = True,
) -> np.ndarray:
    """The seed sampler: stream task by task (each task contributes the
    sum of its phase draws, the job latency is the max across tasks).
    This is the body of the ``"scalar"`` engine in
    :mod:`repro.perf.engine` and the stream-layout reference every
    batch engine must reproduce bit-for-bit."""
    if n_samples < 1:
        raise ModelError(f"n_samples must be >= 1, got {n_samples}")
    problem.validate_allocation(allocation)
    gen = ensure_rng(rng)
    job = np.zeros(n_samples)
    for task in problem.tasks:
        total = np.zeros(n_samples)
        for price in allocation[task.task_id]:
            rate_o = task.onhold_rate(price)
            total += gen.exponential(1.0 / rate_o, size=n_samples)
            if include_processing:
                total += gen.exponential(1.0 / task.processing_rate, size=n_samples)
        np.maximum(job, total, out=job)
    return job


def sample_job_latencies(
    problem: HTuningProblem,
    allocation: Allocation,
    n_samples: int,
    rng: RandomState = None,
    include_processing: bool = True,
    engine=None,
) -> np.ndarray:
    """Draw *n_samples* iid realizations of the job latency.

    ``engine`` is an :class:`repro.perf.engine.EvaluationEngine`
    instance or a registered name (``"scalar"``, ``"batch"``,
    ``"chunked-batch"``, ...); ``None`` uses the default engine.  All
    registered engines consume the RNG stream identically, so results
    are bit-identical seed-for-seed — they differ only in speed and
    memory shape (see :mod:`repro.perf.engine`).
    """
    from ..perf.engine import resolve_engine

    return resolve_engine(engine).sample(
        problem, allocation, n_samples, rng, include_processing
    )


def simulate_job_latency(
    problem: HTuningProblem,
    allocation: Allocation,
    n_samples: int = 1000,
    rng: RandomState = None,
    include_processing: bool = True,
    engine=None,
) -> float:
    """Monte-Carlo estimate of the expected job latency."""
    draws = sample_job_latencies(
        problem, allocation, n_samples, rng, include_processing, engine=engine
    )
    return float(draws.mean())
