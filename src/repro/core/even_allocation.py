"""Algorithm 1 — Even Allocation (EA) for Scenario I (paper §4.2).

Theorem 1: for identical tasks with identical repetition counts,
splitting the budget evenly across every repetition of every task
minimizes the expected phase-1 latency (and hence the overall latency,
since payments cannot change phase 2).

The remainder handling follows the paper's Algorithm 1 exactly:

* ``δ = ⌊B / (m·N)⌋`` units go to every repetition;
* ``γ = ⌊(B mod m·N) / N⌋`` extra units go to γ randomly chosen
  repetitions of **each** task;
* ``σ = (B mod m·N) mod N`` final units go to one not-yet-raised
  repetition of σ randomly chosen tasks.

The randomness only decides *which* repetitions receive the remainder
— every valid choice has the same expected latency by symmetry — so a
seed makes it reproducible.
"""

from __future__ import annotations

from ..errors import InfeasibleAllocationError, ModelError
from ..stats.rng import RandomState, ensure_rng
from .problem import Allocation, HTuningProblem, Scenario

__all__ = ["even_allocation"]


def even_allocation(
    problem: HTuningProblem,
    rng: RandomState = None,
    strict_scenario: bool = True,
) -> Allocation:
    """Run Algorithm 1 (EA) on *problem*.

    Parameters
    ----------
    problem:
        The H-Tuning instance.  Must be Scenario I (identical type and
        repetitions) unless ``strict_scenario=False``, in which case
        the budget is still spread evenly over all repetitions —
        useful as a baseline for Scenarios II/III.
    rng:
        Seeds the remainder placement.
    strict_scenario:
        Raise when the instance is not Scenario I.

    Returns
    -------
    Allocation
        Spends exactly ``B - (B mod 1)`` = all of ``B`` when
        ``B >= m·N``, never less than 1 unit per repetition.

    Raises
    ------
    InfeasibleAllocationError
        If ``B < m·N`` (Algorithm 1, line 2: "budget is not enough").
    ModelError
        If ``strict_scenario`` and the instance is not Scenario I.
    """
    if strict_scenario and problem.scenario() is not Scenario.HOMOGENEITY:
        raise ModelError(
            f"EA expects Scenario I (homogeneity); instance is "
            f"{problem.scenario().value}. Pass strict_scenario=False to use EA "
            "as a baseline anyway."
        )
    gen = ensure_rng(rng)
    n_tasks = problem.num_tasks
    total_reps = problem.total_repetitions
    budget = problem.budget
    if budget < total_reps:
        raise InfeasibleAllocationError(budget, total_reps)

    delta = budget // total_reps
    remainder = budget % total_reps
    gamma = remainder // n_tasks
    sigma = remainder % n_tasks

    prices: dict[int, list[int]] = {
        t.task_id: [delta] * t.repetitions for t in problem.tasks
    }

    # γ extra units to γ random repetitions of each task.
    raised: dict[int, set[int]] = {t.task_id: set() for t in problem.tasks}
    if gamma > 0:
        for task in problem.tasks:
            if gamma > task.repetitions:
                # Cannot happen in Scenario I (gamma < total_reps / N = m),
                # but guard for the relaxed baseline use.
                chosen = range(task.repetitions)
            else:
                chosen = gen.choice(task.repetitions, size=gamma, replace=False)
            for idx in chosen:
                prices[task.task_id][int(idx)] += 1
                raised[task.task_id].add(int(idx))

    # σ final units: one not-yet-raised repetition of σ random tasks.
    if sigma > 0:
        task_ids = [t.task_id for t in problem.tasks]
        chosen_tasks = gen.choice(len(task_ids), size=sigma, replace=False)
        reps_by_id = {t.task_id: t.repetitions for t in problem.tasks}
        for idx in chosen_tasks:
            task_id = task_ids[int(idx)]
            candidates = [
                r for r in range(reps_by_id[task_id]) if r not in raised[task_id]
            ]
            if not candidates:  # relaxed-use guard; Scenario I always has one
                candidates = list(range(reps_by_id[task_id]))
            rep = int(gen.choice(len(candidates)))
            prices[task_id][candidates[rep]] += 1

    # In the relaxed (baseline) use on non-uniform repetition counts the
    # γ/σ placement can leave a few units unspent; spread them round-robin.
    leftover = budget - sum(sum(p) for p in prices.values())
    if leftover > 0:
        flat = [
            (t.task_id, r) for t in problem.tasks for r in range(t.repetitions)
        ]
        for i in range(leftover):
            task_id, rep = flat[i % len(flat)]
            prices[task_id][rep] += 1

    allocation = Allocation(prices)
    problem.validate_allocation(allocation)
    assert allocation.total_cost == budget, (
        f"EA must spend the whole budget: spent {allocation.total_cost} of {budget}"
    )
    return allocation
