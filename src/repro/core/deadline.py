"""Deadline-constrained pricing — the related-work [29] problem.

Gao & Parameswaran ("Finish Them!", VLDB 2014) study the dual of the
H-Tuning problem: **minimize total cost subject to finishing by a
deadline (with target probability)**, under a single-phase acceptance
model.  The paper positions H-Tuning against that work (§2), so a
faithful reproduction needs the comparator:

* :func:`min_cost_for_deadline` — cheapest group-uniform allocation
  whose job latency meets the deadline with probability >= target,
  found by binary search on a uniform price plus marginal refinement
  (the completion probability is monotone in every price, making the
  search exact on the group-uniform lattice up to one unit).
* :func:`completion_probability` — ``P(job latency <= deadline)``
  evaluated exactly from the per-group phase-type cdfs.
* :func:`latency_quantile` — inverse: the deadline achievable at a
  given confidence under a given allocation.

Together with :mod:`repro.core.repetition` this exposes the paper's
framing: [29] fixes the deadline and spends; H-Tuning fixes the spend
and races.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import BudgetError, ModelError
from ..stats.phase_type import hypoexponential_cdf
from .problem import Allocation, HTuningProblem, TaskGroup

__all__ = [
    "completion_probability",
    "latency_quantile",
    "DeadlineResult",
    "min_cost_for_deadline",
]


def _group_cdf_at(group: TaskGroup, price: int, deadline: float,
                  include_processing: bool = True) -> float:
    """``P(every task of the group finishes by deadline)``.

    One member task is a chain of k on-hold + k processing phases;
    members are independent, so the group cdf is the member cdf to the
    n-th power.
    """
    rates = [group.onhold_rate(price)] * group.repetitions
    if include_processing:
        rates += [group.processing_rate] * group.repetitions
    member = float(hypoexponential_cdf(rates, deadline))
    if member <= 0.0:
        return 0.0
    return member**group.size


def completion_probability(
    problem: HTuningProblem,
    group_prices: dict[tuple, int],
    deadline: float,
    include_processing: bool = True,
) -> float:
    """Exact ``P(job latency <= deadline)`` at group-uniform prices."""
    if deadline < 0:
        raise ModelError(f"deadline must be >= 0, got {deadline}")
    prob = 1.0
    for group in problem.groups():
        prob *= _group_cdf_at(
            group, group_prices[group.key], deadline, include_processing
        )
        if prob == 0.0:
            return 0.0
    return prob


def latency_quantile(
    problem: HTuningProblem,
    group_prices: dict[tuple, int],
    confidence: float,
    include_processing: bool = True,
) -> float:
    """Smallest deadline met with probability >= *confidence*."""
    if not 0.0 < confidence < 1.0:
        raise ModelError(f"confidence must be in (0,1), got {confidence}")
    # Bracket: start from the sum of group means, double until the
    # completion probability clears the target.
    from .latency import group_onhold_latency, group_processing_latency

    hi = sum(
        group_onhold_latency(g, group_prices[g.key])
        + (group_processing_latency(g) if include_processing else 0.0)
        for g in problem.groups()
    )
    hi = max(hi, 1e-9)
    while (
        completion_probability(problem, group_prices, hi, include_processing)
        < confidence
    ):
        hi *= 2.0
        if hi > 1e12:
            raise ModelError("quantile search diverged; rates too small?")
    lo = 0.0
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if (
            completion_probability(problem, group_prices, mid, include_processing)
            >= confidence
        ):
            hi = mid
        else:
            lo = mid
    return hi


@dataclass(frozen=True)
class DeadlineResult:
    """Outcome of the min-cost-for-deadline optimization."""

    allocation: Allocation
    group_prices: dict[tuple, int]
    cost: int
    achieved_probability: float
    deadline: float
    confidence: float

    @property
    def feasible(self) -> bool:
        return self.achieved_probability >= self.confidence


def min_cost_for_deadline(
    problem_tasks,
    deadline: float,
    confidence: float = 0.9,
    max_price: int = 1_000,
    include_processing: bool = True,
) -> DeadlineResult:
    """Cheapest group-uniform allocation meeting *deadline* at *confidence*.

    Parameters
    ----------
    problem_tasks:
        The task list (an :class:`HTuningProblem` is built internally
        with an effectively unlimited budget — this is the dual
        problem, cost is the output).
    deadline / confidence:
        Target ``P(latency <= deadline) >= confidence``.
    max_price:
        Safety cap on the per-repetition price search.

    Algorithm: start every group at price 1; while the completion
    probability misses the target, raise the price of the group whose
    +1 increment buys the largest probability gain per budget unit.
    Completion probability is the product of per-group terms, each
    increasing and component-wise independent in its own price, so the
    greedy ascent terminates at a price vector from which no single
    decrement stays feasible — a minimal feasible point; tests compare
    it against exhaustive search on small instances.
    """
    if deadline <= 0:
        raise ModelError(f"deadline must be positive, got {deadline}")
    if not 0.0 < confidence < 1.0:
        raise ModelError(f"confidence must be in (0,1), got {confidence}")
    tasks = list(problem_tasks)
    if not tasks:
        raise ModelError("need at least one task")
    total_reps = sum(t.repetitions for t in tasks)
    # Budget bound: every repetition at max_price.
    problem = HTuningProblem(tasks, budget=total_reps * max_price)
    groups = problem.groups()

    prices = {g.key: 1 for g in groups}

    if include_processing:
        # Feasibility ceiling: with infinitely fast acceptance the job
        # still needs its processing phases.  If even that misses the
        # target, no price vector is feasible — report immediately
        # instead of climbing the price ladder chasing vanishing gains.
        ceiling = 1.0
        for g in groups:
            member = float(
                hypoexponential_cdf(
                    [g.processing_rate] * g.repetitions, deadline
                )
            )
            ceiling *= member**g.size if member > 0 else 0.0
        if ceiling < confidence:
            achieved = completion_probability(
                problem, prices, deadline, include_processing
            )
            allocation = Allocation.from_group_prices(problem, prices)
            return DeadlineResult(
                allocation=allocation,
                group_prices=prices,
                cost=allocation.total_cost,
                achieved_probability=achieved,
                deadline=deadline,
                confidence=confidence,
            )
    log_terms = {
        g.key: _safe_log(_group_cdf_at(g, 1, deadline, include_processing))
        for g in groups
    }
    target_log = math.log(confidence)

    def total_log() -> float:
        return sum(log_terms.values())

    while total_log() < target_log:
        best_gain = -math.inf
        best_group: Optional[TaskGroup] = None
        best_new = 0.0
        for g in groups:
            p = prices[g.key]
            if p >= max_price:
                continue
            new_term = _safe_log(
                _group_cdf_at(g, p + 1, deadline, include_processing)
            )
            gain = (new_term - log_terms[g.key]) / g.unit_cost
            if gain > best_gain:
                best_gain = gain
                best_group = g
                best_new = new_term
        if best_group is None or best_gain <= 1e-15:
            # No increment helps measurably: further spend chases a
            # vanishing tail (acceptance already effectively instant).
            break
        prices[best_group.key] += 1
        log_terms[best_group.key] = best_new

    # Trim: drop any unit whose removal keeps feasibility (makes the
    # greedy point minimal).
    improved = True
    while improved:
        improved = False
        for g in groups:
            p = prices[g.key]
            if p <= 1:
                continue
            trial = dict(prices)
            trial[g.key] = p - 1
            if (
                completion_probability(
                    problem, trial, deadline, include_processing
                )
                >= confidence
            ):
                prices[g.key] = p - 1
                log_terms[g.key] = _safe_log(
                    _group_cdf_at(g, p - 1, deadline, include_processing)
                )
                improved = True

    achieved = completion_probability(
        problem, prices, deadline, include_processing
    )
    allocation = Allocation.from_group_prices(problem, prices)
    cost = allocation.total_cost
    return DeadlineResult(
        allocation=allocation,
        group_prices=prices,
        cost=cost,
        achieved_probability=achieved,
        deadline=deadline,
        confidence=confidence,
    )


def _safe_log(x: float) -> float:
    if x <= 0.0:
        return -1e30
    return math.log(x)
