"""Deadline-constrained pricing — the related-work [29] problem.

Gao & Parameswaran ("Finish Them!", VLDB 2014) study the dual of the
H-Tuning problem: **minimize total cost subject to finishing by a
deadline (with target probability)**, under a single-phase acceptance
model.  The paper positions H-Tuning against that work (§2), so a
faithful reproduction needs the comparator:

* :func:`min_cost_for_deadline` — cheapest group-uniform allocation
  whose job latency meets the deadline with probability >= target,
  found by binary search on a uniform price plus marginal refinement
  (the completion probability is monotone in every price, making the
  search exact on the group-uniform lattice up to one unit).
* :func:`completion_probability` — ``P(job latency <= deadline)``
  evaluated exactly from the per-group phase-type cdfs.
* :func:`latency_quantile` — inverse: the deadline achievable at a
  given confidence under a given allocation;
  :func:`latency_quantile_batch` evaluates a whole confidence vector
  in one array bisection.

Together with :mod:`repro.core.repetition` this exposes the paper's
framing: [29] fixes the deadline and spends; H-Tuning fixes the spend
and races.

All hot paths route through the batched kernels of
:mod:`repro.perf.deadline`: per-(group, price) completion terms are
memoized over the process-level shared weight ladders, the greedy
candidate scan is one array op per step, and quantile bisection is
array-shaped.  Results are **bit-identical** to the seed scalar
comparator, which is preserved as
:func:`repro.perf.reference.reference_min_cost_for_deadline` and
certified equal in ``tests/perf/test_deadline_kernel.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ModelError
from .problem import Allocation, HTuningProblem

__all__ = [
    "completion_probability",
    "latency_quantile",
    "latency_quantile_batch",
    "DeadlineResult",
    "min_cost_for_deadline",
    "min_cost_for_deadline_sweep",
]


def _group_cdf_at(group, price: int, deadline: float,
                  include_processing: bool = True) -> float:
    """``P(every task of the group finishes by deadline)``.

    One member task is a chain of k on-hold + k processing phases;
    members are independent, so the group cdf is the member cdf to the
    n-th power.  Evaluated through the process-level shared ladders
    (bit-identical to a fresh scalar kernel).
    """
    from ..perf.cache import shared_ladder_sf

    rates = [group.onhold_rate(price)] * group.repetitions
    if include_processing:
        rates += [group.processing_rate] * group.repetitions
    member = 1.0 - float(shared_ladder_sf(rates, np.array([deadline]))[0])
    if member <= 0.0:
        return 0.0
    return member**group.size


def completion_probability(
    problem: HTuningProblem,
    group_prices: dict[tuple, int],
    deadline: float,
    include_processing: bool = True,
) -> float:
    """Exact ``P(job latency <= deadline)`` at group-uniform prices."""
    if deadline < 0:
        raise ModelError(f"deadline must be >= 0, got {deadline}")
    prob = 1.0
    for group in problem.groups():
        prob *= _group_cdf_at(
            group, group_prices[group.key], deadline, include_processing
        )
        if prob == 0.0:
            return 0.0
    return prob


def latency_quantile(
    problem: HTuningProblem,
    group_prices: dict[tuple, int],
    confidence: float,
    include_processing: bool = True,
) -> float:
    """Smallest deadline met with probability >= *confidence*.

    Routed through the array bisection of
    :func:`repro.perf.deadline.deadline_quantile_bisection` with a
    length-1 confidence vector, which follows the exact float path of
    the seed scalar bisection — same bracket doubling, same midpoint
    sequence, bit-identical result — while sharing the per-group
    weight ladders across every probe.
    """
    if not 0.0 < confidence < 1.0:
        raise ModelError(f"confidence must be in (0,1), got {confidence}")
    return float(
        latency_quantile_batch(
            problem, group_prices, [confidence], include_processing
        )[0]
    )


def latency_quantile_batch(
    problem: HTuningProblem,
    group_prices: dict[tuple, int],
    confidences: Sequence[float],
    include_processing: bool = True,
    window_mode: str = "per-point",
) -> np.ndarray:
    """Latency quantiles for a whole confidence vector at once.

    One array bisection: each iteration evaluates every group's sf on
    the full midpoint vector (one midpoint per confidence), so the
    kernel cost per iteration is one array call per group regardless
    of how many confidences are requested.  With the default
    per-point windows, every entry is **bitwise** equal to evaluating
    its confidence alone through :func:`latency_quantile`; see
    :func:`repro.perf.deadline.deadline_quantile_bisection` for the
    ``window_mode`` contract.
    """
    from ..perf.deadline import deadline_quantile_bisection

    return deadline_quantile_bisection(
        problem.groups(), group_prices, confidences, include_processing,
        window_mode=window_mode,
    )


@dataclass(frozen=True)
class DeadlineResult:
    """Outcome of the min-cost-for-deadline optimization."""

    allocation: Allocation
    group_prices: dict[tuple, int]
    cost: int
    achieved_probability: float
    deadline: float
    confidence: float

    @property
    def feasible(self) -> bool:
        return self.achieved_probability >= self.confidence


def min_cost_for_deadline(
    problem_tasks,
    deadline: float,
    confidence: float = 0.9,
    max_price: int = 1_000,
    include_processing: bool = True,
) -> DeadlineResult:
    """Cheapest group-uniform allocation meeting *deadline* at *confidence*.

    Parameters
    ----------
    problem_tasks:
        The task list (an :class:`HTuningProblem` is built internally
        with an effectively unlimited budget — this is the dual
        problem, cost is the output).
    deadline / confidence:
        Target ``P(latency <= deadline) >= confidence``.
    max_price:
        Safety cap on the per-repetition price search.

    Algorithm: start every group at price 1; while the completion
    probability misses the target, raise the price of the group whose
    +1 increment buys the largest probability gain per budget unit.
    Completion probability is the product of per-group terms, each
    increasing and component-wise independent in its own price, so the
    greedy ascent terminates at a price vector from which no single
    decrement stays feasible — a minimal feasible point; tests compare
    it against exhaustive search on small instances.

    The ascent runs on a :class:`repro.perf.deadline.DeadlineKernel`:
    every ``(group, price)`` completion term is computed once (through
    the shared weight ladders) and the candidate scan scores all
    groups' increments in one array op.  The greedy trajectory, the
    trim, and every returned number are bit-identical to the seed
    scalar comparator
    (:func:`repro.perf.reference.reference_min_cost_for_deadline`).
    """
    from ..perf.deadline import DeadlineKernel
    from ..resilience.faults import site_check

    site_check("comparator.min_cost", comparator="batched")
    if deadline <= 0:
        raise ModelError(f"deadline must be positive, got {deadline}")
    if not 0.0 < confidence < 1.0:
        raise ModelError(f"confidence must be in (0,1), got {confidence}")
    problem, groups = _deadline_problem(problem_tasks, max_price)
    kernel = DeadlineKernel(
        groups, deadline, include_processing, price_cap=max_price
    )
    return _min_cost_with_kernel(
        problem, groups, kernel, confidence, max_price
    )


def min_cost_for_deadline_sweep(
    problem_tasks,
    deadlines: Sequence[float],
    confidence: float = 0.9,
    max_price: int = 1_000,
    include_processing: bool = True,
) -> dict[float, DeadlineResult]:
    """:func:`min_cost_for_deadline` over a whole deadline grid.

    Each deadline's result is **bit-identical** to the single-deadline
    call; what is shared across the grid is everything that does not
    depend on the deadline — the problem/group construction, the
    per-(group, price) rate-profile table, and (via the process-level
    cache) the uniformization weight ladders, which dominate a cold
    comparator run.  Deadlines are processed largest-first so the
    ladders are sized once at their widest need instead of being
    rebuilt as the grid tightens; the returned dict is keyed by the
    requested deadlines in their given order.
    """
    from ..perf.deadline import DeadlineKernel, processing_ceilings
    from ..resilience.faults import site_check

    site_check("comparator.min_cost", comparator="batched")
    if not 0.0 < confidence < 1.0:
        raise ModelError(f"confidence must be in (0,1), got {confidence}")
    deadlines = [float(d) for d in deadlines]
    if not deadlines:
        raise ModelError("need at least one deadline")
    grid = sorted(set(deadlines), reverse=True)
    if grid[-1] <= 0:
        raise ModelError(f"deadline must be positive, got {grid[-1]}")
    problem, groups = _deadline_problem(problem_tasks, max_price)
    profile_table: dict = {}
    ceilings = (
        processing_ceilings(groups, grid) if include_processing else {}
    )
    results: dict[float, DeadlineResult] = {}
    for deadline in grid:
        kernel = DeadlineKernel(
            groups,
            deadline,
            include_processing,
            price_cap=max_price,
            profile_table=profile_table,
            ceiling=ceilings.get(deadline),
        )
        results[deadline] = _min_cost_with_kernel(
            problem, groups, kernel, confidence, max_price
        )
    return {d: results[d] for d in deadlines}


def _deadline_problem(problem_tasks, max_price: int):
    """The dual problem's host instance: budget = every rep at max_price."""
    tasks = list(problem_tasks)
    if not tasks:
        raise ModelError("need at least one task")
    total_reps = sum(t.repetitions for t in tasks)
    problem = HTuningProblem(tasks, budget=total_reps * max_price)
    return problem, problem.groups()


def _min_cost_with_kernel(
    problem: HTuningProblem,
    groups,
    kernel,
    confidence: float,
    max_price: int,
) -> DeadlineResult:
    """The greedy ascent + trim, driven by one :class:`DeadlineKernel`."""
    deadline = kernel.deadline
    include_processing = kernel.include_processing
    prices = np.ones(len(groups), dtype=np.int64)

    def result_at(price_vec: np.ndarray) -> DeadlineResult:
        group_prices = {
            g.key: int(price_vec[i]) for i, g in enumerate(groups)
        }
        achieved = kernel.completion_probability(price_vec)
        allocation = Allocation.from_group_prices(problem, group_prices)
        return DeadlineResult(
            allocation=allocation,
            group_prices=group_prices,
            cost=allocation.total_cost,
            achieved_probability=achieved,
            deadline=deadline,
            confidence=confidence,
        )

    if include_processing:
        # Feasibility ceiling: with infinitely fast acceptance the job
        # still needs its processing phases.  If even that misses the
        # target, no price vector is feasible — report immediately
        # instead of climbing the price ladder chasing vanishing gains.
        if kernel.processing_ceiling() < confidence:
            return result_at(prices)

    kernel.prewarm(prices)
    cur_terms = kernel.log_terms(prices)
    target_log = math.log(confidence)

    # `sum` over a python list matches the seed's left-to-right dict
    # accumulation (numpy's pairwise reduction would not).
    while sum(cur_terms.tolist()) < target_log:
        best, best_gain, best_new = kernel.best_increment(
            prices, cur_terms, max_price
        )
        if best < 0 or best_gain <= 1e-15:
            # No increment helps measurably: further spend chases a
            # vanishing tail (acceptance already effectively instant).
            break
        prices[best] += 1
        cur_terms[best] = best_new

    # Trim: drop any unit whose removal keeps feasibility (makes the
    # greedy point minimal).  Every probe is a memo lookup.
    improved = True
    while improved:
        improved = False
        for gi in range(len(groups)):
            p = int(prices[gi])
            if p <= 1:
                continue
            if (
                kernel.completion_probability(prices, override=(gi, p - 1))
                >= confidence
            ):
                prices[gi] = p - 1
                cur_terms[gi] = kernel.log_term(gi, p - 1)
                improved = True

    return result_at(prices)


#: Sweep capability marker the frontier harness looks up: a comparator
#: with a ``deadline_sweep`` attribute can tune a whole grid with
#: shared tables (see :func:`repro.experiments.pareto.deadline_cost_frontier`).
min_cost_for_deadline.deadline_sweep = min_cost_for_deadline_sweep
