"""Baseline allocation strategies the paper compares against (§5.1.1).

* :func:`biased_allocation` — Scenario I comparison: a random half of
  the tasks ("the prior group") takes a fraction α ∈ (½, 1) of the
  budget, the other half gets 1−α; within a task the budget is spread
  evenly over repetitions.  α = 0.67 is the paper's ``bias_1`` and
  α = 0.75 its ``bias_2`` (α = ½ degenerates to EA).
* :func:`task_even_allocation` — Scenario II/III baseline ``te``:
  every *task* receives the same total payment, split evenly across
  its repetitions (so high-repetition tasks pay less per repetition).
* :func:`rep_even_allocation` — baseline ``re``: every *repetition*
  of every task receives the same payment (so high-repetition tasks
  absorb more total budget).
* :func:`uniform_price_heuristic` — the AMT experiment's heuristic
  (Fig. 5(c)): each *type* receives the same payment per repetition.

All baselines return integer allocations that never exceed the budget
and give each repetition at least one unit.
"""

from __future__ import annotations

import math

from ..errors import InfeasibleAllocationError, ModelError
from ..stats.rng import RandomState, ensure_rng
from .problem import Allocation, HTuningProblem

__all__ = [
    "biased_allocation",
    "task_even_allocation",
    "rep_even_allocation",
    "uniform_price_heuristic",
]


def _split_evenly(total: int, parts: int) -> list[int]:
    """Split *total* units into *parts* integers differing by <= 1."""
    if parts < 1:
        raise ModelError(f"parts must be >= 1, got {parts}")
    base = total // parts
    extra = total % parts
    return [base + 1 if i < extra else base for i in range(parts)]


def _check_feasible(problem: HTuningProblem) -> None:
    if problem.budget < problem.total_repetitions:
        raise InfeasibleAllocationError(
            problem.budget, problem.total_repetitions
        )


def biased_allocation(
    problem: HTuningProblem,
    alpha: float,
    rng: RandomState = None,
) -> Allocation:
    """The paper's ``bias_α`` baseline for Scenario I.

    A random half of the tasks shares ``α·B``; the rest shares
    ``(1−α)·B``.  If the disfavored half cannot afford one unit per
    repetition, its shortfall is clawed back from the favored half so
    the allocation stays feasible (this can only make the baseline
    *better*, keeping the comparison conservative).
    """
    if not 0.5 <= alpha < 1.0:
        raise ModelError(f"alpha must be in [0.5, 1), got {alpha}")
    _check_feasible(problem)
    gen = ensure_rng(rng)
    tasks = list(problem.tasks)
    order = gen.permutation(len(tasks))
    half = len(tasks) // 2
    prior = [tasks[int(i)] for i in order[:half]]
    rest = [tasks[int(i)] for i in order[half:]]
    if not prior:  # single-task problems: everything to that task
        prior, rest = rest, []

    budget = problem.budget
    if rest:
        prior_budget = int(math.floor(alpha * budget))
        rest_budget = budget - prior_budget
    else:
        prior_budget = budget
        rest_budget = 0

    def allocate_side(side, side_budget):
        reps_total = sum(t.repetitions for t in side)
        if reps_total == 0:
            return {}, side_budget
        if side_budget < reps_total:
            return None, side_budget  # infeasible; caller rebalances
        per_rep = _split_evenly(side_budget, reps_total)
        out = {}
        cursor = 0
        for t in side:
            out[t.task_id] = per_rep[cursor : cursor + t.repetitions]
            cursor += t.repetitions
        return out, 0

    rest_alloc, _ = allocate_side(rest, rest_budget)
    if rest_alloc is None:
        # Claw back: give `rest` its minimum, the prior half the rest.
        rest_min = sum(t.repetitions for t in rest)
        rest_alloc = {t.task_id: [1] * t.repetitions for t in rest}
        prior_budget = budget - rest_min
    prior_alloc, _ = allocate_side(prior, prior_budget)
    if prior_alloc is None:
        # Symmetric claw-back: the prior half cannot afford its minimum
        # (tiny budgets); give it the minimum and re-split the rest.
        prior_min = sum(t.repetitions for t in prior)
        prior_alloc = {t.task_id: [1] * t.repetitions for t in prior}
        rest_alloc, _ = allocate_side(rest, budget - prior_min)
        if rest_alloc is None:
            rest_alloc = {t.task_id: [1] * t.repetitions for t in rest}

    prices = {**prior_alloc, **rest_alloc}
    allocation = Allocation(prices)
    problem.validate_allocation(allocation)
    return allocation


def task_even_allocation(problem: HTuningProblem) -> Allocation:
    """Baseline ``te``: identical total payment per task.

    Each task receives ``⌊B/N⌋`` units (leftovers to the first
    ``B mod N`` tasks), split evenly over its repetitions.  A task
    whose share cannot cover its repetitions triggers a rebalance that
    tops it up to one unit per repetition.
    """
    _check_feasible(problem)
    n = problem.num_tasks
    shares = _split_evenly(problem.budget, n)
    tasks = list(problem.tasks)
    # First pass: make every task feasible.
    deficits = 0
    for i, t in enumerate(tasks):
        if shares[i] < t.repetitions:
            deficits += t.repetitions - shares[i]
            shares[i] = t.repetitions
    # Claw the deficit back from the richest tasks.
    while deficits > 0:
        rich = max(
            range(n), key=lambda i: shares[i] - tasks[i].repetitions
        )
        surplus = shares[rich] - tasks[rich].repetitions
        if surplus <= 0:
            raise InfeasibleAllocationError(
                problem.budget, problem.total_repetitions
            )
        take = min(surplus, deficits)
        shares[rich] -= take
        deficits -= take
    prices = {
        t.task_id: _split_evenly(shares[i], t.repetitions)
        for i, t in enumerate(tasks)
    }
    allocation = Allocation(prices)
    problem.validate_allocation(allocation)
    return allocation


def rep_even_allocation(problem: HTuningProblem) -> Allocation:
    """Baseline ``re``: identical payment per repetition everywhere.

    Every repetition gets ``⌊B/Σreps⌋`` units; the remainder goes one
    unit at a time to repetitions in task order.  (For Scenario I this
    coincides with EA up to remainder placement.)
    """
    _check_feasible(problem)
    total_reps = problem.total_repetitions
    per_rep = _split_evenly(problem.budget, total_reps)
    prices: dict[int, list[int]] = {}
    cursor = 0
    for t in problem.tasks:
        prices[t.task_id] = per_rep[cursor : cursor + t.repetitions]
        cursor += t.repetitions
    allocation = Allocation(prices)
    problem.validate_allocation(allocation)
    return allocation


def uniform_price_heuristic(problem: HTuningProblem) -> Allocation:
    """Fig. 5(c)'s heuristic: every *type* gets the same per-repetition
    price, the largest integer price affordable for all repetitions."""
    _check_feasible(problem)
    total_reps = problem.total_repetitions
    price = problem.budget // total_reps
    prices = {t.task_id: [price] * t.repetitions for t in problem.tasks}
    allocation = Allocation(prices)
    problem.validate_allocation(allocation)
    return allocation
