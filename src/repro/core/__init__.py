"""The paper's primary contribution: H-Tuning problem + algorithms (§4).

* :mod:`~repro.core.problem` — problem model (tasks, groups, budget,
  allocations, scenario detection);
* :mod:`~repro.core.latency` — expected-latency engine (group
  surrogate, exact numeric job latency, Monte Carlo);
* :mod:`~repro.core.even_allocation` — Algorithm 1 (EA, Scenario I);
* :mod:`~repro.core.repetition` — Algorithm 2 (RA, Scenario II);
* :mod:`~repro.core.heterogeneous` — Algorithm 3 (HA, Scenario III);
* :mod:`~repro.core.objectives` — O1/O2, utopia point, closeness;
* :mod:`~repro.core.baselines` — bias-α / task-even / rep-even /
  uniform heuristics used as comparisons in §5;
* :mod:`~repro.core.exhaustive` — exact reference optimizers;
* :mod:`~repro.core.tuner` — scenario-aware facade.
"""

from .adaptive import AdaptiveTuner, MarketBelief, RoundOutcome
from .deadline import (
    DeadlineResult,
    completion_probability,
    latency_quantile,
    latency_quantile_batch,
    min_cost_for_deadline,
    min_cost_for_deadline_sweep,
)
from .quality import (
    QualityPlan,
    majority_correct_probability,
    plan_repetitions,
    repetitions_for_quality,
)
from .baselines import (
    biased_allocation,
    rep_even_allocation,
    task_even_allocation,
    uniform_price_heuristic,
)
from .even_allocation import even_allocation
from .exhaustive import (
    exact_group_dp,
    exhaustive_group_search,
    exhaustive_latency_search,
)
from .heterogeneous import (
    HAResult,
    heterogeneous_algorithm,
    heterogeneous_algorithm_sweep,
)
from .latency import (
    erlang_max_constant,
    expected_job_latency,
    group_onhold_latency,
    group_processing_latency,
    sample_job_latencies,
    simulate_job_latency,
    surrogate_onhold_objective,
)
from .objectives import (
    ObjectivePoint,
    closeness,
    objective_o1,
    objective_o2,
    utopia_point,
    utopia_point_sweep,
)
from .problem import Allocation, HTuningProblem, Scenario, TaskGroup, TaskSpec
from .repetition import (
    budget_indexed_dp,
    greedy_marginal_allocation,
    repetition_algorithm,
    repetition_algorithm_sweep,
)
from .tuner import STRATEGIES, SWEEP_STRATEGIES, Tuner, tune_budget_sweep

__all__ = [
    "AdaptiveTuner",
    "Allocation",
    "DeadlineResult",
    "MarketBelief",
    "QualityPlan",
    "RoundOutcome",
    "completion_probability",
    "latency_quantile",
    "latency_quantile_batch",
    "majority_correct_probability",
    "min_cost_for_deadline",
    "min_cost_for_deadline_sweep",
    "plan_repetitions",
    "repetitions_for_quality",
    "HAResult",
    "HTuningProblem",
    "ObjectivePoint",
    "STRATEGIES",
    "SWEEP_STRATEGIES",
    "Scenario",
    "TaskGroup",
    "TaskSpec",
    "Tuner",
    "tune_budget_sweep",
    "biased_allocation",
    "budget_indexed_dp",
    "closeness",
    "erlang_max_constant",
    "even_allocation",
    "exact_group_dp",
    "exhaustive_group_search",
    "exhaustive_latency_search",
    "expected_job_latency",
    "greedy_marginal_allocation",
    "group_onhold_latency",
    "group_processing_latency",
    "heterogeneous_algorithm",
    "heterogeneous_algorithm_sweep",
    "objective_o1",
    "objective_o2",
    "rep_even_allocation",
    "repetition_algorithm",
    "repetition_algorithm_sweep",
    "sample_job_latencies",
    "simulate_job_latency",
    "surrogate_onhold_objective",
    "task_even_allocation",
    "uniform_price_heuristic",
    "utopia_point",
    "utopia_point_sweep",
]
