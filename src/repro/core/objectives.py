"""Scenario III objectives: O1, O2, utopia point and closeness (§4.4).

Heterogeneous task sets break the Scenario II reasoning because phase-2
latencies differ across groups; a "most difficult task" can dominate
the job latency however the budget moves phase 1.  The paper therefore
minimizes two objectives simultaneously:

* ``O1 = Σ_i E[L1(g_i)]`` — the phase-1 group-sum surrogate (same as
  Scenario II);
* ``O2 = max_i (E[L1(g_i)] + E[L2(g_i)])`` — the expected latency of
  the most difficult group, both phases included (Definition of O2).

The compromise solution minimizes the **closeness**
``CL = ‖OP − UP‖₁`` (Definition 6, "first order distance"), where the
**utopia point** ``UP = (O1*, O2*)`` collects each objective's
independent optimum under the budget (Definition 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..errors import InfeasibleAllocationError, ModelError
from .latency import group_onhold_latency, group_processing_latency
from .problem import HTuningProblem, TaskGroup
from .repetition import budget_indexed_dp

__all__ = [
    "objective_o1",
    "objective_o2",
    "ObjectivePoint",
    "utopia_point",
    "utopia_point_sweep",
    "closeness",
]


def objective_o1(problem: HTuningProblem, group_prices: Mapping[tuple, int]) -> float:
    """``O1 = Σ_i E[L1(g_i)]`` at the given group prices."""
    return sum(
        group_onhold_latency(g, group_prices[g.key]) for g in problem.groups()
    )


def objective_o2(problem: HTuningProblem, group_prices: Mapping[tuple, int]) -> float:
    """``O2 = max_i (E[L1(g_i)] + E[L2(g_i)])`` at the given prices."""
    return max(
        group_onhold_latency(g, group_prices[g.key]) + group_processing_latency(g)
        for g in problem.groups()
    )


@dataclass(frozen=True)
class ObjectivePoint:
    """A point in (O1, O2) objective space (Definition 5)."""

    o1: float
    o2: float

    def l1_distance(self, other: "ObjectivePoint") -> float:
        return abs(self.o1 - other.o1) + abs(self.o2 - other.o2)


def _minimize_o2_prices(problem: HTuningProblem) -> dict[tuple, int]:
    """Minimize the max-group total latency within budget.

    Greedy minimax: every affordable unit of budget goes to the group
    currently attaining the maximum (raising any other group's price
    cannot lower the max).  Each step strictly lowers the argmax
    group's latency, so the procedure reaches the minimax optimum for
    decreasing per-group latencies.
    """
    groups = problem.groups()
    start_cost = sum(g.unit_cost for g in groups)
    if problem.budget < start_cost:
        raise InfeasibleAllocationError(problem.budget, start_cost)
    prices = {g.key: 1 for g in groups}
    totals = {
        g.key: group_onhold_latency(g, 1) + group_processing_latency(g)
        for g in groups
    }
    residual = problem.budget - start_cost
    while True:
        # Group attaining the current max, among those still affordable.
        affordable = [g for g in groups if g.unit_cost <= residual]
        if not affordable:
            break
        worst = max(groups, key=lambda g: totals[g.key])
        if worst.unit_cost > residual:
            # Cannot improve the bottleneck group; any other spend
            # leaves O2 unchanged, so stop.
            break
        prices[worst.key] += 1
        totals[worst.key] = (
            group_onhold_latency(worst, prices[worst.key])
            + group_processing_latency(worst)
        )
        residual -= worst.unit_cost
    return prices


def _minimize_o2_prices_sweep(
    groups, budgets: list[int]
) -> dict[int, dict[tuple, int]]:
    """:func:`_minimize_o2_prices` for every budget of a sweep, one walk.

    The greedy's bump sequence depends only on its own history (each
    step raises whichever group currently attains the max), never on
    the remaining budget — the residual only decides where the walk
    *stops*.  So one walk to ``max(budgets)`` records the bump
    sequence, and every budget's prices are the prefix it can afford:
    identical, bump for bump, to running the per-budget greedy.
    """
    start_cost = sum(g.unit_cost for g in groups)
    for b in budgets:
        if b < start_cost:
            raise InfeasibleAllocationError(b, start_cost)
    totals = {
        g.key: group_onhold_latency(g, 1) + group_processing_latency(g)
        for g in groups
    }
    prices = {g.key: 1 for g in groups}
    residual = max(budgets) - start_cost
    bumps: list[tuple[tuple, int]] = []  # (group key, unit cost)
    while True:
        affordable = [g for g in groups if g.unit_cost <= residual]
        if not affordable:
            break
        worst = max(groups, key=lambda g: totals[g.key])
        if worst.unit_cost > residual:
            break
        prices[worst.key] += 1
        totals[worst.key] = (
            group_onhold_latency(worst, prices[worst.key])
            + group_processing_latency(worst)
        )
        bumps.append((worst.key, worst.unit_cost))
        residual -= worst.unit_cost
    out: dict[int, dict[tuple, int]] = {}
    for b in budgets:
        p = {g.key: 1 for g in groups}
        r = b - start_cost
        for key, cost in bumps:
            # The per-budget greedy stops at the first bump it cannot
            # afford (the bump target is the current max either way).
            if cost > r:
                break
            p[key] += 1
            r -= cost
        out[b] = p
    return out


def utopia_point(problem: HTuningProblem) -> ObjectivePoint:
    """``UP = (O1*, O2*)`` — each objective optimized independently.

    O1* reuses Algorithm 2's DP (the O1 objective *is* the Scenario II
    objective); O2* uses the greedy minimax allocation.
    """
    o1_prices = budget_indexed_dp(
        problem.groups(), problem.budget, group_onhold_latency
    )
    o2_prices = _minimize_o2_prices(problem)
    return ObjectivePoint(
        o1=objective_o1(problem, o1_prices),
        o2=objective_o2(problem, o2_prices),
    )


def utopia_point_sweep(family, budgets) -> dict[int, ObjectivePoint]:
    """:func:`utopia_point` for every budget of a sweep, in one pass.

    O1* comes from a single multi-budget DP
    (:func:`repro.perf.dp.budget_indexed_dp_sweep`); O2* from a single
    recorded greedy walk (:func:`_minimize_o2_prices_sweep`).  Each
    entry is bit-identical to ``utopia_point(family.problem_at(b))``.
    """
    from ..perf.dp import budget_indexed_dp_sweep

    budgets = [int(b) for b in budgets]
    groups = family.groups
    o1_by_budget = budget_indexed_dp_sweep(
        groups, budgets, group_onhold_latency
    )
    o2_by_budget = _minimize_o2_prices_sweep(groups, budgets)
    out: dict[int, ObjectivePoint] = {}
    for b in budgets:
        problem = family.problem_at(b)
        out[b] = ObjectivePoint(
            o1=objective_o1(problem, o1_by_budget[b]),
            o2=objective_o2(problem, o2_by_budget[b]),
        )
    return out


def closeness(
    problem: HTuningProblem,
    group_prices: Mapping[tuple, int],
    utopia: ObjectivePoint,
) -> float:
    """``CL = ‖OP − UP‖₁`` (Definition 6).

    Both objectives are bounded below by their utopia coordinates, so
    the absolute values never flip sign for feasible allocations; we
    keep the |·| form anyway to match the definition verbatim.
    """
    point = ObjectivePoint(
        o1=objective_o1(problem, group_prices),
        o2=objective_o2(problem, group_prices),
    )
    return point.l1_distance(utopia)
