"""High-level tuning facade.

:class:`Tuner` picks the paper's algorithm matching the instance's
scenario (EA for I, RA for II, HA for III — §4), or runs a named
strategy on demand.  This is the one-call entry point the examples and
the crowd-DB engine use:

>>> from repro import Tuner, HTuningProblem
>>> allocation = Tuner().tune(problem)          # doctest: +SKIP
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..errors import ModelError
from ..stats.rng import RandomState
from .baselines import (
    biased_allocation,
    rep_even_allocation,
    task_even_allocation,
    uniform_price_heuristic,
)
from .even_allocation import even_allocation
from .heterogeneous import heterogeneous_algorithm, heterogeneous_algorithm_sweep
from .problem import Allocation, HTuningProblem, Scenario
from .repetition import repetition_algorithm, repetition_algorithm_sweep

__all__ = ["Tuner", "STRATEGIES", "SWEEP_STRATEGIES", "tune_budget_sweep"]


def _strategy_ea(problem: HTuningProblem, rng: RandomState) -> Allocation:
    return even_allocation(problem, rng=rng, strict_scenario=False)


def _strategy_ra(problem: HTuningProblem, rng: RandomState) -> Allocation:
    return repetition_algorithm(problem, strict_scenario=False)


def _strategy_ha(problem: HTuningProblem, rng: RandomState) -> Allocation:
    return heterogeneous_algorithm(problem)


def _strategy_te(problem: HTuningProblem, rng: RandomState) -> Allocation:
    return task_even_allocation(problem)


def _strategy_re(problem: HTuningProblem, rng: RandomState) -> Allocation:
    return rep_even_allocation(problem)


def _strategy_uniform(problem: HTuningProblem, rng: RandomState) -> Allocation:
    return uniform_price_heuristic(problem)


def _make_bias(alpha: float):
    def strategy(problem: HTuningProblem, rng: RandomState) -> Allocation:
        return biased_allocation(problem, alpha=alpha, rng=rng)

    return strategy


#: Registry of named strategies usable in experiments and benchmarks.
STRATEGIES: dict[str, Callable[[HTuningProblem, RandomState], Allocation]] = {
    "ea": _strategy_ea,
    "ra": _strategy_ra,
    "ha": _strategy_ha,
    "te": _strategy_te,
    "re": _strategy_re,
    "uniform": _strategy_uniform,
    "bias_1": _make_bias(0.67),
    "bias_2": _make_bias(0.75),
}

#: Strategies with a one-pass multi-budget implementation.  These are
#: exactly the rng-free DP strategies: their per-budget allocation is a
#: pure function of the (shared) groups and the budget, so a
#: :class:`~repro.workloads.families.ProblemFamily` sweep can tune all
#: budgets in one DP pass with bit-identical results.  Strategies with
#: random tie-breaking (``ea``, ``bias_*``) must keep their per-cell
#: RNG and stay on the per-budget path.
SWEEP_STRATEGIES: dict[str, Callable] = {
    "ra": repetition_algorithm_sweep,
    "ha": heterogeneous_algorithm_sweep,
}


def tune_budget_sweep(
    family, budgets: Sequence[int], strategy: str
) -> Optional[dict[int, Allocation]]:
    """One-pass ``budget -> Allocation`` map for a family sweep.

    Returns ``None`` when *strategy* has no one-pass implementation
    (callers then fall back to per-budget tuning); raises for names
    not in :data:`STRATEGIES` at all.
    """
    if strategy not in STRATEGIES:
        raise ModelError(
            f"unknown strategy {strategy!r}; expected one of "
            f"{sorted(STRATEGIES)}"
        )
    sweep = SWEEP_STRATEGIES.get(strategy)
    if sweep is None:
        return None
    return sweep(family, budgets)


class Tuner:
    """Scenario-aware budget tuner (the paper's end-to-end system).

    Parameters
    ----------
    strategy:
        ``"auto"`` (default — EA/RA/HA by detected scenario) or any
        key of :data:`STRATEGIES`.
    seed:
        Seeds strategies with random tie-breaking (EA remainders,
        bias baselines).
    """

    def __init__(self, strategy: str = "auto", seed: RandomState = None) -> None:
        if strategy != "auto" and strategy not in STRATEGIES:
            raise ModelError(
                f"unknown strategy {strategy!r}; expected 'auto' or one of "
                f"{sorted(STRATEGIES)}"
            )
        self.strategy = strategy
        self.seed = seed

    def resolve_strategy(self, problem: HTuningProblem) -> str:
        """Name of the concrete strategy that will run on *problem*."""
        if self.strategy != "auto":
            return self.strategy
        scenario = problem.scenario()
        if scenario is Scenario.HOMOGENEITY:
            return "ea"
        if scenario is Scenario.REPETITION:
            return "ra"
        return "ha"

    def tune(self, problem: HTuningProblem) -> Allocation:
        """Produce the budget allocation for *problem*."""
        name = self.resolve_strategy(problem)
        allocation = STRATEGIES[name](problem, self.seed)
        problem.validate_allocation(allocation)
        return allocation
