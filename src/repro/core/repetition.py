"""Algorithm 2 — Repetition Algorithm (RA) for Scenario II (paper §4.3).

Tasks share one difficulty type but need different repetition counts.
Tasks are grouped by repetitions; the objective is the group-sum
surrogate  ``min Σ_i E[L1(g_i)]``  s.t. ``Σ_i b_i <= B``  where
``E[L1(g_i)] = M(n_i, k_i) / λ_o(p_i)`` is the expected within-group
maximum at uniform per-repetition price ``p_i``.

The paper's dynamic program (Algorithm 2), implemented verbatim:

* every group starts at ``p_i = 1`` (cost ``u_i = n_i · k_i`` each);
* the remaining budget ``B' = B − Σ u_i`` is processed one unit at a
  time; the state at budget level ``x`` carries the objective value
  ``E0(x)`` *and* the price vector ``p(x)`` that achieved it;
* ``E0(x) = min( E0(x−1),
                 min_i { E0(x−u_i) − [E_i(p_i(x−u_i)) − E_i(p_i(x−u_i)+1)] | u_i <= x } )``

The per-state price vectors make this a genuine DP (unlike a pure
greedy, states reached through different group-increment orders
compete), and under the convex decreasing group latencies of the
linear pricing hypothesis it attains the separable optimum — tests
certify this against :func:`repro.core.exhaustive.exact_group_dp`.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..errors import InfeasibleAllocationError, ModelError
from .latency import group_onhold_latency
from .problem import Allocation, HTuningProblem, Scenario, TaskGroup

__all__ = [
    "repetition_algorithm",
    "repetition_algorithm_sweep",
    "budget_indexed_dp",
    "greedy_marginal_allocation",
]


def _check_scenario(problem: HTuningProblem, strict: bool) -> None:
    if strict and problem.scenario() is Scenario.HETEROGENEOUS:
        raise ModelError(
            "RA expects Scenario I/II (single difficulty type); instance is "
            "III-heterogeneous. Use heterogeneous_algorithm, or pass "
            "strict_scenario=False to optimize the phase-1 surrogate anyway."
        )


def budget_indexed_dp(
    groups: tuple[TaskGroup, ...],
    budget: int,
    group_cost_fn: Callable[[TaskGroup, int], float],
) -> dict[tuple, int]:
    """Algorithm 2's budget-indexed DP, generic in the group objective.

    ``group_cost_fn(group, price)`` must be decreasing in *price*.
    Returns the per-group uniform repetition price vector of the best
    terminal state.

    Implementation notes: the state at budget ``x`` is
    ``(E0(x), prices(x))``; price vectors are tuples shared
    structurally between states, so memory stays ``O(B'·n)``.  The
    sweep itself runs on :mod:`repro.perf.dp`'s precomputed cost
    tables — bit-identical price vectors to the seed scan (certified
    against :func:`repro.perf.reference.reference_budget_indexed_dp`),
    several times faster, and with a one-pass multi-budget variant in
    :func:`repro.perf.dp.budget_indexed_dp_sweep`.
    """
    from ..perf.dp import budget_indexed_dp_fast

    return budget_indexed_dp_fast(groups, budget, group_cost_fn)


def greedy_marginal_allocation(
    groups: tuple[TaskGroup, ...],
    budget: int,
    group_cost_fn: Callable[[TaskGroup, int], float],
) -> dict[tuple, int]:
    """Single-path greedy variant (best marginal gain per increment).

    Faster than the full DP (``O(ΣΔp · n)`` instead of ``O(B'·n)``)
    and optimal when all unit costs are equal; kept as the fast path
    for Scenario I-like instances and as an ablation reference.
    """
    if not groups:
        raise ModelError("need at least one group")
    unit_costs = [g.unit_cost for g in groups]
    start_cost = sum(unit_costs)
    if budget < start_cost:
        raise InfeasibleAllocationError(budget, start_cost)

    prices = {g.key: 1 for g in groups}
    residual = budget - start_cost
    current = {g.key: group_cost_fn(g, 1) for g in groups}
    spent = 0
    while spent < residual:
        best_gain = 0.0
        best_group: Optional[TaskGroup] = None
        best_next = 0.0
        remaining = residual - spent
        for g, u in zip(groups, unit_costs):
            if u > remaining:
                continue
            nxt = group_cost_fn(g, prices[g.key] + 1)
            gain = (current[g.key] - nxt) / u
            if best_group is None or gain > best_gain + 1e-15:
                best_gain = gain
                best_group = g
                best_next = nxt
        if best_group is None or best_gain <= 0.0:
            break
        prices[best_group.key] += 1
        current[best_group.key] = best_next
        spent += best_group.unit_cost
    return prices


def repetition_algorithm(
    problem: HTuningProblem,
    strict_scenario: bool = True,
) -> Allocation:
    """Run Algorithm 2 (RA) on *problem*.

    Returns an allocation with a uniform per-repetition price inside
    each repetition group, minimizing ``Σ_i E[L1(g_i)]`` within budget.

    Raises
    ------
    InfeasibleAllocationError
        If the budget cannot give every repetition one unit.
    ModelError
        If ``strict_scenario`` and the instance is Scenario III.
    """
    _check_scenario(problem, strict_scenario)
    groups = problem.groups()
    prices = budget_indexed_dp(groups, problem.budget, group_onhold_latency)
    allocation = Allocation.from_group_prices(problem, prices)
    problem.validate_allocation(allocation)
    return allocation


def repetition_algorithm_sweep(
    family,
    budgets: Sequence[int],
) -> dict[int, Allocation]:
    """Run Algorithm 2 (RA) for every budget of a sweep in one DP pass.

    *family* is a :class:`~repro.workloads.families.ProblemFamily` (any
    object exposing ``groups`` and ``problem_at(budget)`` works).  The
    DP state at budget level ``x`` never depends on the terminal
    budget, so one pass to ``max(budgets)`` serves every budget
    (:func:`repro.perf.dp.budget_indexed_dp_sweep`); each returned
    allocation is **bit-identical** to
    ``repetition_algorithm(family.problem_at(b), strict_scenario=False)``.
    """
    from ..perf.dp import budget_indexed_dp_sweep

    budgets = [int(b) for b in budgets]
    prices_by_budget = budget_indexed_dp_sweep(
        family.groups, budgets, group_onhold_latency
    )
    out: dict[int, Allocation] = {}
    for budget in budgets:
        problem = family.problem_at(budget)
        allocation = Allocation.from_group_prices(
            problem, prices_by_budget[budget]
        )
        problem.validate_allocation(allocation)
        out[budget] = allocation
    return out
