"""The H-Tuning problem model (paper §4.1).

Definitions implemented here:

* :class:`TaskSpec` — an atomic task: its difficulty type (on-hold
  pricing curve + processing rate) and required repetition count.
* :class:`TaskGroup` — tasks of identical type *and* repetitions
  (the grouping both Algorithm 2 and Algorithm 3 operate on).
* :class:`HTuningProblem` — a task set plus a discrete budget ``B``
  (Definition 3); detects which of the paper's three scenarios the
  instance falls into.
* :class:`Allocation` — per-repetition integer unit payments, the
  decision variable of every tuning strategy.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from ..errors import BudgetError, InfeasibleAllocationError, ModelError
from ..market.pricing import PricingModel

__all__ = ["Scenario", "TaskSpec", "TaskGroup", "HTuningProblem", "Allocation"]


class Scenario(enum.Enum):
    """The paper's three problem settings (§4.2–§4.4)."""

    HOMOGENEITY = "I-homogeneity"
    REPETITION = "II-repetition"
    HETEROGENEOUS = "III-heterogeneous"


@dataclass(frozen=True)
class TaskSpec:
    """One atomic task of the H-Tuning instance.

    Parameters
    ----------
    task_id:
        Unique identifier within the problem.
    repetitions:
        How many sequential answers this task must collect (>= 1).
    pricing:
        The task's λ_o(c) response curve.  Tasks of the same difficulty
        share the same curve object (identity matters for grouping).
    processing_rate:
        λ_p, the price-independent processing clock rate.
    type_name:
        Difficulty label; tasks with equal labels are the same type.
    """

    task_id: int
    repetitions: int
    pricing: PricingModel
    processing_rate: float
    type_name: str = "default"

    def __post_init__(self) -> None:
        if int(self.repetitions) != self.repetitions or self.repetitions < 1:
            raise ModelError(
                f"repetitions must be a positive integer, got {self.repetitions}"
            )
        if not math.isfinite(self.processing_rate) or self.processing_rate <= 0:
            raise ModelError(
                f"processing_rate must be positive, got {self.processing_rate}"
            )
        if not isinstance(self.pricing, PricingModel):
            raise ModelError(f"pricing must be a PricingModel, got {self.pricing!r}")

    def onhold_rate(self, price: int) -> float:
        """λ_o at integer unit *price*."""
        return self.pricing(price)

    @property
    def group_key(self) -> tuple:
        """Tasks sharing this key belong to the same group."""
        return (self.type_name, self.repetitions, self.processing_rate)


@dataclass(frozen=True)
class TaskGroup:
    """Tasks of identical (type, repetitions) — the DP's unit.

    ``unit_cost`` is the budget needed to raise every repetition of
    every member task by one payment unit; this is the ``u_i`` of
    Algorithms 2 and 3.
    """

    key: tuple
    tasks: tuple[TaskSpec, ...]

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ModelError("a task group cannot be empty")
        first = self.tasks[0]
        for t in self.tasks:
            if t.group_key != first.group_key:
                raise ModelError(
                    f"group members disagree on key: {t.group_key} vs "
                    f"{first.group_key}"
                )

    @property
    def size(self) -> int:
        """n — number of member tasks."""
        return len(self.tasks)

    @property
    def repetitions(self) -> int:
        """k — repetitions per member task."""
        return self.tasks[0].repetitions

    @property
    def type_name(self) -> str:
        return self.tasks[0].type_name

    @property
    def processing_rate(self) -> float:
        return self.tasks[0].processing_rate

    @property
    def pricing(self) -> PricingModel:
        return self.tasks[0].pricing

    @property
    def unit_cost(self) -> int:
        """u_i = n·k — budget units to add +1 to every repetition."""
        return self.size * self.repetitions

    def onhold_rate(self, price: int) -> float:
        return self.tasks[0].onhold_rate(price)


class Allocation:
    """Per-repetition unit payments for every task in a problem.

    Internally a mapping ``task_id -> tuple of integer prices`` (one
    price per repetition).  Immutable once constructed; algorithms
    build allocations through the ``from_*`` constructors.
    """

    def __init__(self, prices: Mapping[int, Sequence[int]]) -> None:
        if not prices:
            raise ModelError("an allocation cannot be empty")
        normalized: dict[int, tuple[int, ...]] = {}
        for task_id, reps in prices.items():
            reps = tuple(int(p) for p in reps)
            if not reps:
                raise ModelError(f"task {task_id} has no repetition prices")
            if any(p < 1 for p in reps):
                raise ModelError(
                    f"task {task_id} has a price below the 1-unit minimum: {reps}"
                )
            normalized[int(task_id)] = reps
        self._prices = normalized

    def __getitem__(self, task_id: int) -> tuple[int, ...]:
        return self._prices[task_id]

    def __contains__(self, task_id: int) -> bool:
        return task_id in self._prices

    def __iter__(self):
        return iter(self._prices)

    def __len__(self) -> int:
        return len(self._prices)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Allocation):
            return NotImplemented
        return self._prices == other._prices

    def __repr__(self) -> str:
        items = ", ".join(f"{k}: {v}" for k, v in sorted(self._prices.items()))
        return f"Allocation({{{items}}})"

    def items(self):
        return self._prices.items()

    @property
    def total_cost(self) -> int:
        """Σ of all unit payments across tasks and repetitions."""
        return sum(sum(reps) for reps in self._prices.values())

    def task_cost(self, task_id: int) -> int:
        return sum(self._prices[task_id])

    def uniform_group_price(self, group: TaskGroup) -> Optional[int]:
        """The single per-repetition price of *group*, if uniform.

        Returns ``None`` when member repetitions have differing prices
        (the optimal algorithms always produce uniform group prices;
        baselines may not).
        """
        prices = {
            p for task in group.tasks for p in self._prices[task.task_id]
        }
        if len(prices) == 1:
            return next(iter(prices))
        return None

    @classmethod
    def _trusted(cls, prices: dict[int, tuple[int, ...]]) -> "Allocation":
        """Internal constructor for already-normalized price dicts.

        Callers guarantee every value is a non-empty tuple of ints
        >= 1 keyed by int task id — the group-uniform builders below
        validate once per group instead of once per repetition, which
        is what keeps budget sweeps (one allocation per budget) cheap.
        """
        if not prices:
            raise ModelError("an allocation cannot be empty")
        self = object.__new__(cls)
        self._prices = prices
        return self

    @staticmethod
    def _unit_price(price, label: str) -> int:
        """Normalize one uniform price exactly like ``__init__`` does
        per repetition (silent int truncation, >= 1 floor)."""
        value = int(price)
        if value < 1:
            raise ModelError(
                f"{label} has a price below the 1-unit minimum: {price}"
            )
        return value

    @classmethod
    def uniform(cls, problem: "HTuningProblem", price: int) -> "Allocation":
        """Every repetition of every task gets *price* units."""
        value = cls._unit_price(price, "uniform allocation")
        return cls._trusted(
            {t.task_id: (value,) * t.repetitions for t in problem.tasks}
        )

    @classmethod
    def from_group_prices(
        cls, problem: "HTuningProblem", group_prices: Mapping[tuple, int]
    ) -> "Allocation":
        """Build from per-group uniform repetition prices."""
        prices: dict[int, tuple[int, ...]] = {}
        for group in problem.groups():
            price = cls._unit_price(
                group_prices[group.key], f"group {group.key}"
            )
            for task in group.tasks:
                prices[task.task_id] = (price,) * task.repetitions
        return cls._trusted(prices)


class HTuningProblem:
    """Definition 3: a task set ``T`` and a discrete budget ``B``.

    The instance validates feasibility eagerly: the paper's minimum is
    one payment unit per repetition (Algorithm 1, line 2), so any
    budget below the total repetition count raises
    :class:`~repro.errors.InfeasibleAllocationError`.
    """

    def __init__(
        self,
        tasks: Iterable[TaskSpec],
        budget: int,
        groups: Optional[tuple[TaskGroup, ...]] = None,
    ) -> None:
        self.tasks: tuple[TaskSpec, ...] = tuple(tasks)
        if not self.tasks:
            raise ModelError("an H-Tuning problem needs at least one task")
        ids = [t.task_id for t in self.tasks]
        if len(set(ids)) != len(ids):
            raise ModelError("task_ids must be unique")
        if int(budget) != budget:
            raise BudgetError(f"budget must be an integer, got {budget}")
        self.budget = int(budget)
        minimum = self.min_feasible_budget
        if self.budget < minimum:
            raise InfeasibleAllocationError(self.budget, minimum)
        if groups is not None:
            # The groups must partition *these* task objects (identity,
            # not equality: a partition of a different-but-similar task
            # set would silently tune against the wrong pricing/rates).
            own = {id(t) for t in self.tasks}
            member_ids = [id(t) for g in groups for t in g.tasks]
            if len(member_ids) != len(self.tasks) or set(member_ids) != own:
                raise ModelError(
                    "precomputed groups do not partition this problem's "
                    "task set"
                )
        # `groups` lets a ProblemFamily share one grouping across every
        # budget of a sweep instead of re-partitioning per problem; the
        # tuple and its TaskGroups are immutable, so sharing is safe.
        self._groups: Optional[tuple[TaskGroup, ...]] = groups

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    @property
    def total_repetitions(self) -> int:
        return sum(t.repetitions for t in self.tasks)

    @property
    def min_feasible_budget(self) -> int:
        """One unit per repetition — the smallest legal spend."""
        return self.total_repetitions

    def groups(self) -> tuple[TaskGroup, ...]:
        """Partition tasks into (type, repetitions) groups.

        Order is deterministic: by first appearance in the task list.
        """
        if self._groups is None:
            by_key: dict[tuple, list[TaskSpec]] = {}
            order: list[tuple] = []
            for task in self.tasks:
                key = task.group_key
                if key not in by_key:
                    by_key[key] = []
                    order.append(key)
                by_key[key].append(task)
            self._groups = tuple(
                TaskGroup(key=key, tasks=tuple(by_key[key])) for key in order
            )
        return self._groups

    def scenario(self) -> Scenario:
        """Classify the instance into the paper's Scenario I/II/III."""
        types = {(t.type_name, t.processing_rate) for t in self.tasks}
        reps = {t.repetitions for t in self.tasks}
        if len(types) == 1 and len(reps) == 1:
            return Scenario.HOMOGENEITY
        if len(types) == 1:
            return Scenario.REPETITION
        return Scenario.HETEROGENEOUS

    def validate_allocation(self, allocation: Allocation) -> None:
        """Check *allocation* covers exactly this task set within budget."""
        alloc_ids = set(allocation)
        problem_ids = {t.task_id for t in self.tasks}
        if alloc_ids != problem_ids:
            raise ModelError(
                f"allocation task ids {sorted(alloc_ids)} do not match problem "
                f"task ids {sorted(problem_ids)}"
            )
        for task in self.tasks:
            if len(allocation[task.task_id]) != task.repetitions:
                raise ModelError(
                    f"task {task.task_id} needs {task.repetitions} repetition "
                    f"prices, allocation has {len(allocation[task.task_id])}"
                )
        if allocation.total_cost > self.budget:
            raise BudgetError(
                f"allocation spends {allocation.total_cost} > budget {self.budget}"
            )
