"""Declarative experiment specs + the experiment registry.

An :class:`ExperimentSpec` is the *what* of a run: a frozen dataclass
of experiment parameters (workload sizes, budgets, confidences — never
engines, seeds, or replication counts, which belong to
:class:`~repro.api.config.RunConfig`).  Specs serialize losslessly::

    {"experiment": "fig2", "params": {"scenario": "homo", ...}}

and the registry makes every experiment addressable by name:
``register_experiment`` / :func:`available_experiments` /
:func:`get_experiment` mirror the engine, comparator, and family
registries, so ``ExperimentSpec.from_dict(payload)`` can rebuild any
registered spec from a dict that crossed a wire, a queue, or a JSON
file.  ``from_dict(to_dict(spec))`` is the identity for every
registered experiment (property-tested in
``tests/api/test_spec_roundtrip.py``).
"""

from __future__ import annotations

import dataclasses
import json
import typing
from typing import Any, ClassVar, Mapping, Optional, Type, Union

import numpy as np

from ..errors import ModelError

__all__ = [
    "ExperimentSpec",
    "register_experiment",
    "get_experiment",
    "available_experiments",
    "make_spec",
    "spec_from_dict",
]


# ---------------------------------------------------------------------------
# JSON-side conversion helpers
# ---------------------------------------------------------------------------


def _jsonable(value):
    """Normalize a param value into plain JSON types (tuples → lists)."""
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise ModelError(
        f"spec parameter value {value!r} is not JSON-serializable"
    )


def _coerce(value, hint):
    """Coerce a JSON-decoded *value* back into the field type *hint*.

    The inverse of :func:`_jsonable` at the type level: lists become
    tuples where the field is tuple-typed, numbers are normalized to
    the annotated scalar type, and ``Optional``/``Union`` members are
    tried in order.  Coercion is strict enough that a malformed
    payload fails loudly instead of half-building a spec.
    """
    if hint is None or hint is Any:
        return value
    origin = typing.get_origin(hint)
    args = typing.get_args(hint)
    if origin is Union:
        if value is None and type(None) in args:
            return None
        for member in args:
            if member is type(None):
                continue
            try:
                return _coerce(value, member)
            except (ModelError, TypeError, ValueError):
                continue
        raise ModelError(f"cannot coerce {value!r} into {hint}")
    if origin is tuple:
        if not isinstance(value, (list, tuple)):
            raise ModelError(f"expected a sequence for {hint}, got {value!r}")
        if args and len(args) == 2 and args[1] is Ellipsis:
            return tuple(_coerce(v, args[0]) for v in value)
        if args:
            if len(value) != len(args):
                raise ModelError(
                    f"expected {len(args)} entries for {hint}, got "
                    f"{len(value)}"
                )
            return tuple(_coerce(v, a) for v, a in zip(value, args))
        return tuple(value)
    if origin is list:
        if not isinstance(value, (list, tuple)):
            raise ModelError(f"expected a sequence for {hint}, got {value!r}")
        return [_coerce(v, args[0]) if args else v for v in value]
    if hint is bool:
        if isinstance(value, bool):
            return value
        raise ModelError(f"expected a bool, got {value!r}")
    if hint is int:
        if isinstance(value, bool) or not isinstance(
            value, (int, np.integer)
        ):
            raise ModelError(f"expected an int, got {value!r}")
        return int(value)
    if hint is float:
        if isinstance(value, bool) or not isinstance(
            value, (int, float, np.integer, np.floating)
        ):
            raise ModelError(f"expected a number, got {value!r}")
        return float(value)
    if hint is str:
        if not isinstance(value, str):
            raise ModelError(f"expected a string, got {value!r}")
        return value
    return value


# ---------------------------------------------------------------------------
# the spec base class
# ---------------------------------------------------------------------------


class ExperimentSpec:
    """Base class for declarative experiment specifications.

    Concrete specs are frozen dataclasses whose fields are the
    experiment's *parameters* (execution strategy lives in
    :class:`~repro.api.config.RunConfig`).  Subclasses set the
    class-level ``name`` (the registry address) and implement
    :meth:`run`, which receives the owning
    :class:`~repro.api.session.Session` and returns the experiment's
    payload — the exact object the legacy ``*_experiment`` function
    returned, byte for byte.
    """

    #: Registry address; subclasses must set it.
    name: ClassVar[str] = ""

    #: Whether :meth:`run` consumes the config's recorder policy
    #: (``RunConfig.recorder``) — e.g. via
    #: ``session.resolved.make_recorders``.  The built-in figure
    #: experiments all *require* their own trace recorders to compute
    #: their outputs, so they leave this ``False`` and
    #: :meth:`Session.run` rejects a non-default recorder policy
    #: rather than silently recording an unapplied one into the run's
    #: fingerprint.  Custom replication-study specs that honor the
    #: policy set it ``True``.
    uses_recorder: ClassVar[bool] = False

    # -- parameters ----------------------------------------------------

    def params(self) -> dict:
        """The spec's parameters as an ordered field dict."""
        return {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(self)  # type: ignore[arg-type]
        }

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict:
        """``{"experiment": name, "params": {...}}`` with JSON types."""
        return {
            "experiment": self.name,
            "params": {k: _jsonable(v) for k, v in self.params().items()},
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ExperimentSpec":
        """Rebuild a spec from its :meth:`to_dict` form.

        Called on :class:`ExperimentSpec` itself, dispatches through
        the experiment registry by ``payload["experiment"]``; called
        on a concrete subclass, validates the name and coerces the
        params back into the field types (lists → tuples, etc.), so
        ``from_dict(to_dict(spec)) == spec``.
        """
        if not isinstance(payload, Mapping):
            raise ModelError(
                f"spec payload must be a mapping, got {payload!r}"
            )
        name = payload.get("experiment")
        params = payload.get("params", {})
        unknown_keys = sorted(set(payload) - {"experiment", "params"})
        if unknown_keys:
            raise ModelError(
                f"unknown spec document keys {unknown_keys}; expected "
                "'experiment' and 'params'"
            )
        if cls is ExperimentSpec:
            if name is None:
                raise ModelError("spec document needs an 'experiment' name")
            return get_experiment(name).from_dict(payload)
        if name is not None and name != cls.name:
            raise ModelError(
                f"spec document names experiment {name!r} but was handed "
                f"to {cls.name!r}"
            )
        if not isinstance(params, Mapping):
            raise ModelError(f"spec params must be a mapping, got {params!r}")
        field_names = {f.name for f in dataclasses.fields(cls)}  # type: ignore[arg-type]
        unknown = sorted(set(params) - field_names)
        if unknown:
            raise ModelError(
                f"unknown parameters {unknown} for experiment "
                f"{cls.name!r}; expected a subset of {sorted(field_names)}"
            )
        hints = typing.get_type_hints(cls)
        kwargs = {
            key: _coerce(value, hints.get(key)) for key, value in params.items()
        }
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))

    # -- execution -----------------------------------------------------

    def run(self, session) -> Any:
        """Execute against *session* (config + caches); returns the
        payload.  Implemented by concrete specs."""
        raise NotImplementedError

    @classmethod
    def describe(cls) -> dict:
        """Parameter schema: ``{param: {"default": ..., "type": ...}}``.

        What ``repro experiments --json`` prints — enough for a caller
        to construct a valid params dict without reading the source.
        """
        out = {}
        for f in dataclasses.fields(cls):  # type: ignore[arg-type]
            entry: dict = {"type": str(f.type)}
            if f.default is not dataclasses.MISSING:
                entry["default"] = _jsonable(f.default)
            elif f.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
                entry["default"] = _jsonable(f.default_factory())
            out[f.name] = entry
        return out


# ---------------------------------------------------------------------------
# the experiment registry
# ---------------------------------------------------------------------------

_EXPERIMENTS: dict[str, Type[ExperimentSpec]] = {}


def register_experiment(
    spec_cls: Type[ExperimentSpec],
    name: Optional[str] = None,
    replace: bool = False,
) -> Type[ExperimentSpec]:
    """Add *spec_cls* to the registry under *name* (default: its own).

    Registered names are what ``repro run <experiment>`` and
    ``ExperimentSpec.from_dict`` accept; registering a spec makes the
    experiment addressable by ``(name, params)`` everywhere — CLI,
    serialized batches, future service endpoints.  Usable as a class
    decorator.
    """
    key = name or spec_cls.name
    if not key:
        raise ModelError("an experiment spec needs a non-empty name")
    if not dataclasses.is_dataclass(spec_cls):
        raise ModelError(
            f"experiment spec {spec_cls!r} must be a dataclass"
        )
    if key in _EXPERIMENTS and not replace:
        raise ModelError(
            f"experiment {key!r} is already registered; pass replace=True "
            "to override"
        )
    _EXPERIMENTS[key] = spec_cls
    return spec_cls


def get_experiment(name: str) -> Type[ExperimentSpec]:
    """Resolve a registered experiment name to its spec class."""
    spec_cls = _EXPERIMENTS.get(name)
    if spec_cls is None:
        from ..errors import RegistryError

        raise RegistryError.unknown("experiment", name, _EXPERIMENTS)
    return spec_cls


def available_experiments() -> tuple[str, ...]:
    """Registered experiment names, sorted (CLI choices come from here)."""
    return tuple(sorted(_EXPERIMENTS))


def make_spec(name: str, **params) -> ExperimentSpec:
    """Build a registered experiment's spec from keyword params.

    Params take the same JSON-side shapes ``from_dict`` accepts (lists
    where the field is a tuple, etc.) — the CLI's ``--param k=v``
    pairs land here.
    """
    return get_experiment(name).from_dict(
        {"experiment": name, "params": params}
    )


def spec_from_dict(payload: Mapping) -> ExperimentSpec:
    """Registry-dispatched :meth:`ExperimentSpec.from_dict`."""
    return ExperimentSpec.from_dict(payload)
