"""Concrete experiment specs for every run path in the reproduction.

One frozen dataclass per experiment; each ``run`` delegates to the
implementation in :mod:`repro.experiments` (imported lazily — the api
layer stays import-light and cycle-free) with execution strategy taken
from the session's :class:`~repro.api.config.RunConfig`.  The legacy
``fig*_experiment`` functions are thin wrappers over these specs, so a
spec run and a legacy call are byte-identical by construction.

Field values are normalized on construction (sequences → int/float
tuples) so that equality survives a JSON round-trip:
``from_dict(to_dict(spec)) == spec`` for every spec here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..errors import ModelError
from ..workloads.scenarios import PAPER_BUDGETS
from .spec import ExperimentSpec, register_experiment

__all__ = [
    "Table1Spec",
    "Fig2Spec",
    "Fig3Spec",
    "Fig4Spec",
    "Fig5abSpec",
    "Fig5cSpec",
    "DeadlineFrontierSpec",
    "BudgetSweepSpec",
    "DeadlineSweepSpec",
]


def _int_tuple(values: Sequence, what: str) -> tuple:
    try:
        return tuple(int(v) for v in values)
    except (TypeError, ValueError):
        raise ModelError(f"{what} must be a sequence of ints, got {values!r}")


def _float_tuple(values: Sequence, what: str) -> tuple:
    try:
        return tuple(float(v) for v in values)
    except (TypeError, ValueError):
        raise ModelError(
            f"{what} must be a sequence of numbers, got {values!r}"
        )


def _set(spec, **values) -> None:
    for key, value in values.items():
        object.__setattr__(spec, key, value)


@register_experiment
@dataclass(frozen=True)
class Table1Spec(ExperimentSpec):
    """Table 1 / Fig. 1 motivation examples (no parameters)."""

    name = "table1"

    def run(self, session):
        from ..experiments.figures import (
            motivation_example_1,
            motivation_example_2,
        )

        return {
            "example_1": motivation_example_1(),
            "example_2": motivation_example_2(),
        }


@register_experiment
@dataclass(frozen=True)
class Fig2Spec(ExperimentSpec):
    """One Fig. 2 subplot: a (scenario, pricing-case) budget sweep."""

    name = "fig2"

    scenario: str = "homo"
    case: str = "a"
    budgets: Tuple[int, ...] = PAPER_BUDGETS
    n_tasks: int = 100
    scoring: str = "mc"
    n_samples: int = 1500

    def __post_init__(self) -> None:
        _set(self, budgets=_int_tuple(self.budgets, "budgets"))

    def run(self, session):
        from ..experiments.figures import _run_fig2

        return _run_fig2(self, session.config)


@register_experiment
@dataclass(frozen=True)
class Fig3Spec(ExperimentSpec):
    """Worker arrival moments on the simulated platform (Fig. 3)."""

    name = "fig3"

    n_arrivals: int = 20
    price: int = 5

    def run(self, session):
        from ..experiments.figures import _run_fig3

        return _run_fig3(self, session.config)


@register_experiment
@dataclass(frozen=True)
class Fig4Spec(ExperimentSpec):
    """Reward vs latency + rate inference (Fig. 4, §5.2.2)."""

    name = "fig4"

    prices: Tuple[int, ...] = (5, 8, 10, 12)
    repetitions: int = 10

    def __post_init__(self) -> None:
        _set(self, prices=_int_tuple(self.prices, "prices"))

    def run(self, session):
        from ..experiments.figures import _run_fig4

        return _run_fig4(self, session.config)


@register_experiment
@dataclass(frozen=True)
class Fig5abSpec(ExperimentSpec):
    """Difficulty vs latency (Fig. 5(a)/(b))."""

    name = "fig5ab"

    vote_counts: Tuple[int, ...] = (4, 6, 8)
    prices: Tuple[int, ...] = (5, 8)
    repetitions: int = 10
    n_tasks: int = 20

    def __post_init__(self) -> None:
        _set(
            self,
            vote_counts=_int_tuple(self.vote_counts, "vote_counts"),
            prices=_int_tuple(self.prices, "prices"),
        )

    def run(self, session):
        from ..experiments.figures import _run_fig5ab

        return _run_fig5ab(self, session.config)


@register_experiment
@dataclass(frozen=True)
class Fig5cSpec(ExperimentSpec):
    """OPT vs the equal-payment heuristic on the AMT workload (Fig. 5(c))."""

    name = "fig5c"

    budgets: Tuple[int, ...] = (600, 700, 800, 900, 1000)
    repetitions: Tuple[int, int, int] = (10, 15, 20)
    n_samples: int = 800

    def __post_init__(self) -> None:
        _set(
            self,
            budgets=_int_tuple(self.budgets, "budgets"),
            repetitions=_int_tuple(self.repetitions, "repetitions"),
        )

    def run(self, session):
        from ..experiments.figures import _run_fig5c

        return _run_fig5c(self, session.config)


@register_experiment
@dataclass(frozen=True)
class DeadlineFrontierSpec(ExperimentSpec):
    """Deadline–cost frontier on a Fig. 2 workload (the [29] dual)."""

    name = "deadline-frontier"

    scenario: str = "repe"
    case: str = "a"
    n_tasks: int = 100
    n_deadlines: int = 10
    confidences: Tuple[float, ...] = (0.9,)
    max_price: int = 50
    deadlines: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        _set(
            self,
            confidences=_float_tuple(self.confidences, "confidences"),
            deadlines=None
            if self.deadlines is None
            else _float_tuple(self.deadlines, "deadlines"),
        )

    def run(self, session):
        from ..experiments.figures import _run_deadline_frontier

        return _run_deadline_frontier(self, session.config)


@register_experiment
@dataclass(frozen=True)
class BudgetSweepSpec(ExperimentSpec):
    """A generic strategy-vs-budget sweep over a *named* family.

    The registry-addressable form of
    :func:`repro.experiments.runner.run_budget_sweep`: ``family`` is a
    name registered in :mod:`repro.workloads.families`
    (``register_family``), so the whole sweep — workload included — is
    serializable.  An empty ``strategies`` tuple means the scenario's
    Fig. 2 default line-up.
    """

    name = "budget-sweep"

    family: str = "repe"
    case: str = "a"
    n_tasks: int = 100
    budgets: Tuple[int, ...] = PAPER_BUDGETS
    strategies: Tuple[str, ...] = ()
    scoring: str = "mc"
    n_samples: int = 2000
    include_processing: bool = True

    def __post_init__(self) -> None:
        _set(
            self,
            budgets=_int_tuple(self.budgets, "budgets"),
            strategies=tuple(str(s) for s in self.strategies),
        )

    def run(self, session):
        from ..experiments.figures import FIG2_STRATEGIES
        from ..experiments.runner import run_budget_sweep
        from ..workloads.families import get_family_builder

        strategies = self.strategies
        if not strategies:
            strategies = FIG2_STRATEGIES.get(self.family)
            if strategies is None:
                raise ModelError(
                    f"family {self.family!r} has no default strategy "
                    "line-up; set the spec's strategies explicitly"
                )
        family = get_family_builder(self.family)(
            case=self.case, n_tasks=self.n_tasks
        )
        config = session.config
        return run_budget_sweep(
            family,
            budgets=self.budgets,
            strategies=strategies,
            scoring=self.scoring,
            n_samples=self.n_samples,
            seed=config.seed,
            include_processing=self.include_processing,
            label=f"budget-sweep-{self.family}({self.case})",
            engine=config.engine,
        )


@register_experiment
@dataclass(frozen=True)
class DeadlineSweepSpec(ExperimentSpec):
    """A generic deadline–cost sweep over a *named* family.

    The registry-addressable form of
    :func:`repro.experiments.runner.run_deadline_sweep`, with an
    explicit deadline grid (use :class:`DeadlineFrontierSpec` for the
    auto-spanned Fig. 2 frontier).
    """

    name = "deadline-sweep"

    family: str = "repe"
    case: str = "a"
    n_tasks: int = 100
    deadlines: Tuple[float, ...] = ()
    confidences: Tuple[float, ...] = (0.9,)
    max_price: int = 1_000
    include_processing: bool = True

    def __post_init__(self) -> None:
        _set(
            self,
            deadlines=_float_tuple(self.deadlines, "deadlines"),
            confidences=_float_tuple(self.confidences, "confidences"),
        )

    def run(self, session):
        from ..experiments.runner import run_deadline_sweep
        from ..workloads.families import get_family_builder

        family = get_family_builder(self.family)(
            case=self.case, n_tasks=self.n_tasks
        )
        return run_deadline_sweep(
            family,
            deadlines=self.deadlines,
            confidences=self.confidences,
            max_price=self.max_price,
            include_processing=self.include_processing,
            comparator=session.config.comparator,
            label=f"deadline-sweep-{self.family}({self.case})",
        )
