"""Run configuration: the *how* of an experiment run, as one value.

Every entry point into the reproduction used to thread ``engine=``,
``comparator=``, ``seed=``, ``replications=`` and recorder choices as
loose keyword arguments from the CLI through the runner into the
figure harnesses.  :class:`RunConfig` captures all of them in one
frozen, serializable object:

* **engine** — Monte-Carlo / replication engine (a name registered in
  :mod:`repro.perf.engine`, an
  :class:`~repro.perf.engine.EvaluationEngine` instance, or ``None``
  for the default).  Experiments whose historical ``engine=None``
  means "the seed aggregate path" (Fig. 4 / Fig. 5ab) read the raw
  field, so wrapping a legacy call in a config never changes its
  output.
* **comparator** — deadline comparator (name, callable, or ``None``).
* **recorder** — trace policy: ``None`` (each experiment's own
  default), ``"trace"`` (full per-replication traces), or ``"null"``
  (the no-op :data:`~repro.market.trace.NULL_RECORDER`).
* **seed** — base :data:`~repro.stats.rng.RandomState`; replication
  fan-out derives substreams via
  :func:`repro.stats.rng.replication_seeds`.
* **replications** — independent seeded worlds per experiment cell.
* **faults** — a :class:`~repro.resilience.FaultPlan` (registered
  name, inline plan, or its dict form) deterministically injected
  while the run executes; ``None`` (the default) injects nothing.
* **retry** — a :class:`~repro.resilience.RetryPolicy` (attempts,
  deterministic capped backoff, fallback-engine chain); ``None`` means
  one attempt, no fallback.
* **timeout** — a :class:`~repro.resilience.TimeoutPolicy` (or bare
  seconds) checked cooperatively at the fault sites.
* **executor** — where ``Session.run_many`` batches execute: ``None``
  (the historical inline loop), a name registered in
  :mod:`repro.exec` (``"serial"`` / ``"process"``), or an
  :class:`~repro.exec.Executor` instance.

The three resilience fields serialize **only when set**, so default
configs — and therefore every pre-existing fingerprint — are
unchanged.  ``executor`` never serializes at all: it is orchestration,
not run identity — the same ``(spec, config)`` pair produces the same
payload on every executor, and keeping it out of :meth:`to_dict` is
what makes serial and process runs share fingerprints, checkpoint
entries, and golden documents byte-for-byte.

``RunConfig.resolve()`` is the **single place** ``None`` defaulting
happens: it delegates to :func:`repro.perf.engine.resolve_engine` and
:func:`repro.perf.deadline.get_deadline_comparator`, both of which
also accept the config object itself wherever an ``engine=`` /
``comparator=`` parameter appears in the library.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, replace
from typing import Any, Callable, Mapping, Optional, Union

import numpy as np

from ..errors import ModelError
from ..stats.rng import RandomState

__all__ = [
    "RunConfig",
    "ResolvedRunConfig",
    "RECORDER_POLICIES",
    "fingerprint",
]

#: Accepted values of :attr:`RunConfig.recorder`.
RECORDER_POLICIES = (None, "trace", "null")


def fingerprint(payload: Any) -> str:
    """Short, stable digest of a JSON-able payload.

    Canonical JSON (sorted keys, minimal separators) hashed with
    SHA-256 and truncated to 16 hex chars — the addressing token a
    cache / queue / result store keys runs by.
    """
    blob = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class RunConfig:
    """Execution strategy + seeding for an experiment run (frozen).

    Separates *what* to run (an
    :class:`~repro.api.spec.ExperimentSpec`) from *how* to run it; a
    ``(spec, config)`` pair fully determines a run's output, which is
    what makes runs addressable, replayable, and batchable.
    """

    engine: Union[str, None, object] = None
    comparator: Union[str, Callable, None] = None
    recorder: Optional[str] = None
    seed: RandomState = 0
    replications: int = 1
    faults: Union[str, Mapping, None, object] = None
    retry: Union[Mapping, None, object] = None
    timeout: Union[int, float, Mapping, None, object] = None
    executor: Union[str, None, object] = None

    def __post_init__(self) -> None:
        if not isinstance(self.replications, (int, np.integer)) or isinstance(
            self.replications, bool
        ):
            raise ModelError(
                f"replications must be an int, got {self.replications!r}"
            )
        if self.replications < 1:
            raise ModelError(
                f"replications must be >= 1, got {self.replications}"
            )
        if self.recorder not in RECORDER_POLICIES:
            raise ModelError(
                f"unknown recorder policy {self.recorder!r}; expected one "
                f"of {RECORDER_POLICIES}"
            )
        # Normalize the resilience fields eagerly (strings stay strings
        # — registry resolution happens at run time, like engines).
        from ..resilience.faults import FaultPlan
        from ..resilience.policy import RetryPolicy, TimeoutPolicy

        if isinstance(self.faults, Mapping):
            object.__setattr__(self, "faults", FaultPlan.from_dict(self.faults))
        elif self.faults is not None and not isinstance(
            self.faults, (str, FaultPlan)
        ):
            raise ModelError(
                f"faults must be a registered plan name, a FaultPlan, its "
                f"dict form, or None — got {self.faults!r}"
            )
        if isinstance(self.retry, Mapping):
            object.__setattr__(self, "retry", RetryPolicy.from_dict(self.retry))
        elif self.retry is not None and not isinstance(self.retry, RetryPolicy):
            raise ModelError(
                f"retry must be a RetryPolicy, its dict form, or None — "
                f"got {self.retry!r}"
            )
        if isinstance(self.timeout, (int, float)) and not isinstance(
            self.timeout, bool
        ):
            object.__setattr__(self, "timeout", TimeoutPolicy(self.timeout))
        elif isinstance(self.timeout, Mapping):
            object.__setattr__(
                self, "timeout", TimeoutPolicy.from_dict(self.timeout)
            )
        elif self.timeout is not None and not isinstance(
            self.timeout, TimeoutPolicy
        ):
            raise ModelError(
                f"timeout must be seconds, a TimeoutPolicy, its dict form, "
                f"or None — got {self.timeout!r}"
            )
        if self.executor is not None and not (
            isinstance(self.executor, str)
            or hasattr(self.executor, "run_tasks")
        ):
            raise ModelError(
                f"executor must be a registered executor name, an Executor "
                f"instance, or None — got {self.executor!r}"
            )

    # -- resolution ----------------------------------------------------

    def resolve(self) -> "ResolvedRunConfig":
        """Resolve every ``None`` default into a concrete strategy.

        The one place defaulting happens: the engine resolves through
        :func:`repro.perf.engine.resolve_engine`, the comparator
        through :func:`repro.perf.deadline.get_deadline_comparator`,
        and the recorder policy into a recorder factory.  Unknown
        names fail here, before any work runs.
        """
        from ..perf.deadline import (
            deadline_comparator_name,
            get_deadline_comparator,
        )
        from ..perf.engine import resolve_engine

        engine = resolve_engine(self.engine)
        return ResolvedRunConfig(
            engine=engine,
            engine_name=engine.name,
            comparator=get_deadline_comparator(self.comparator),
            comparator_name=deadline_comparator_name(self.comparator),
            recorder=self.recorder,
            seed=self.seed,
            replications=self.replications,
        )

    def replace(self, **overrides) -> "RunConfig":
        """A copy with *overrides* applied (configs are immutable)."""
        return replace(self, **overrides)

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-able form; raises :class:`ModelError` on unserializable
        members (engine/comparator instances resolve to their
        registered names, generator seeds cannot be serialized).  The
        resilience fields are emitted only when set, so default configs
        keep their historical five-key layout and fingerprints.  The
        ``executor`` field is deliberately never emitted: payloads are
        executor-invariant, so where a run executes must not change its
        fingerprint or its wire document (a worker receiving this dict
        runs inline — no recursive pool)."""
        out = {
            "engine": _engine_token(self.engine),
            "comparator": _comparator_token(self.comparator),
            "recorder": self.recorder,
            "seed": _seed_token(self.seed),
            "replications": int(self.replications),
        }
        if self.faults is not None:
            out["faults"] = (
                self.faults
                if isinstance(self.faults, str)
                else self.faults.to_dict()
            )
        if self.retry is not None:
            out["retry"] = self.retry.to_dict()
        if self.timeout is not None:
            out["timeout"] = self.timeout.to_dict()
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RunConfig":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ModelError(
                f"unknown RunConfig keys {unknown}; expected a subset of "
                f"{sorted(known)}"
            )
        return cls(**dict(payload))

    @classmethod
    def from_json(cls, text: str) -> "RunConfig":
        return cls.from_dict(json.loads(text))

    def fingerprint(self) -> str:
        """Digest of the serialized config (see :func:`fingerprint`)."""
        return fingerprint(self.to_dict())


@dataclass(frozen=True)
class ResolvedRunConfig:
    """A :class:`RunConfig` with every default made concrete.

    ``engine`` is an :class:`~repro.perf.engine.EvaluationEngine`
    instance and ``comparator`` a callable; the ``*_name`` fields are
    the display/serialization names.  ``make_recorders(n)`` applies
    the recorder policy: ``None`` returns ``None`` (let the experiment
    pick), ``"trace"`` returns *n* fresh
    :class:`~repro.market.trace.TraceRecorder` objects, ``"null"``
    returns the shared no-op sentinel.
    """

    engine: object
    engine_name: str
    comparator: Callable
    comparator_name: str
    recorder: Optional[str]
    seed: RandomState
    replications: int

    def make_recorders(self, n: int):
        if self.recorder is None:
            return None
        if self.recorder == "trace":
            from ..market.trace import TraceRecorder

            return [TraceRecorder() for _ in range(n)]
        from ..market.trace import NULL_RECORDER

        return NULL_RECORDER

    def replication_seeds(self) -> list:
        """The run's per-replication seeds (the shared protocol of
        :func:`repro.stats.rng.replication_seeds`)."""
        from ..stats.rng import replication_seeds

        return replication_seeds(self.seed, self.replications)


def _engine_token(engine) -> Optional[str]:
    if engine is None or isinstance(engine, str):
        return engine
    name = getattr(engine, "name", None)
    if isinstance(name, str) and name:
        from ..perf.engine import available_engines

        if name in available_engines():
            return name
    raise ModelError(
        f"engine {engine!r} is not serializable; register it "
        "(repro.perf.engine.register_engine) and reference it by name"
    )


def _comparator_token(comparator) -> Optional[str]:
    if comparator is None or isinstance(comparator, str):
        return comparator
    if callable(comparator):
        from ..perf.deadline import (
            available_deadline_comparators,
            get_deadline_comparator,
        )

        for name in available_deadline_comparators():
            if get_deadline_comparator(name) is comparator:
                return name
    raise ModelError(
        f"comparator {comparator!r} is not serializable; register it "
        "(repro.perf.deadline.register_deadline_comparator) and "
        "reference it by name"
    )


def _seed_token(seed):
    if seed is None or isinstance(seed, bool):
        if seed is None:
            return None
        raise ModelError(f"seed must be an int or None, got {seed!r}")
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    raise ModelError(
        f"seed {seed!r} is not serializable; pass an int (generators "
        "and seed sequences carry hidden state)"
    )
