"""repro.api — the declarative request/response facade.

Every run path in the reproduction is addressable through three
objects:

* :class:`~repro.api.spec.ExperimentSpec` — *what* to run: a frozen,
  JSON-round-trippable parameter set, registered by name
  (:func:`register_experiment` / :func:`available_experiments`);
* :class:`~repro.api.config.RunConfig` — *how* to run it: engine,
  comparator, recorder policy, seed, replications, with
  :meth:`~repro.api.config.RunConfig.resolve` as the single place
  defaults are applied;
* :class:`~repro.api.session.Session` — *where* it runs: the facade
  owning the config and the process-level kernel caches, exposing
  ``run(spec)`` → :class:`~repro.api.session.RunResult` and
  ``run_many(specs)`` for batched submission against shared tables.

The legacy ``repro.experiments`` functions are byte-identical wrappers
over this layer, and the CLI (``repro run <experiment> --param k=v``)
is a thin shell over the registry.  See ``docs/api.md``.
"""

from .config import RECORDER_POLICIES, ResolvedRunConfig, RunConfig, fingerprint
from .session import RunResult, Session, payload_to_jsonable
from .spec import (
    ExperimentSpec,
    available_experiments,
    get_experiment,
    make_spec,
    register_experiment,
    spec_from_dict,
)
from .specs import (
    BudgetSweepSpec,
    DeadlineFrontierSpec,
    DeadlineSweepSpec,
    Fig2Spec,
    Fig3Spec,
    Fig4Spec,
    Fig5abSpec,
    Fig5cSpec,
    Table1Spec,
)

__all__ = [
    "BudgetSweepSpec",
    "DeadlineFrontierSpec",
    "DeadlineSweepSpec",
    "ExperimentSpec",
    "Fig2Spec",
    "Fig3Spec",
    "Fig4Spec",
    "Fig5abSpec",
    "Fig5cSpec",
    "RECORDER_POLICIES",
    "ResolvedRunConfig",
    "RunConfig",
    "RunResult",
    "Session",
    "Table1Spec",
    "available_experiments",
    "fingerprint",
    "get_experiment",
    "make_spec",
    "payload_to_jsonable",
    "register_experiment",
    "spec_from_dict",
]
