"""The Session facade: one object that runs any registered experiment.

A :class:`Session` owns a :class:`~repro.api.config.RunConfig` and the
process-level caches (:mod:`repro.perf.cache` phase-kernel / weight
ladder tables), and exposes exactly two verbs:

* ``run(spec)`` — execute one :class:`~repro.api.spec.ExperimentSpec`
  (or its dict form) and return a typed :class:`RunResult`;
* ``run_many(specs)`` — execute a batch against the *shared* kernel
  tables, so runs probing the same rate profiles amortize each
  other's ladder builds (see the ``session_run_many`` benchmark
  section).

``Session(isolated=True)`` clears the process caches before every run
— cold-start semantics for benchmarking or bit-exact cache-freshness
audits; payloads are identical either way because every cache in the
library is bit-exact.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Iterable, Mapping, Optional, Union

import numpy as np

from ..errors import ModelError
from .config import RunConfig, fingerprint
from .spec import ExperimentSpec

__all__ = ["Session", "RunResult", "payload_to_jsonable"]


def payload_to_jsonable(value: Any) -> Any:
    """Best-effort JSON view of an experiment payload.

    Result dataclasses become field dicts, tuple keys become
    comma-joined strings, numpy scalars/arrays become numbers/lists.
    Lossy by design (it exists for ``--json`` output and logging);
    the lossless artifact is the payload object itself.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: payload_to_jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, Mapping):
        return {_key(value_k): payload_to_jsonable(v) for value_k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [payload_to_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return [payload_to_jsonable(v) for v in value.tolist()]
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _key(key: Any) -> str:
    if isinstance(key, str):
        return key
    if isinstance(key, (tuple, list)):
        return ",".join(str(k) for k in key)
    return str(key)


@dataclasses.dataclass(frozen=True)
class RunResult:
    """A finished run: the spec/config that produced it + its payload.

    ``payload`` is exactly the object the corresponding legacy
    experiment function returns.  ``fingerprint`` is the run's address
    — a digest of the serialized ``(spec, config)`` pair, the key a
    cache or result store would file this result under.  Computing it
    requires the config to be serializable (integer seed, named
    engine/comparator); runs configured with live generator seeds or
    unregistered engine instances still execute fine, they just cannot
    be fingerprinted.
    """

    spec: ExperimentSpec
    config: RunConfig
    payload: Any

    @property
    def experiment(self) -> str:
        return self.spec.name

    @property
    def fingerprint(self) -> str:
        return fingerprint(
            {"spec": self.spec.to_dict(), "config": self.config.to_dict()}
        )

    def to_dict(self) -> dict:
        """JSON-able document: spec + config + fingerprint + payload."""
        return {
            "experiment": self.experiment,
            "spec": self.spec.to_dict(),
            "config": self.config.to_dict(),
            "fingerprint": self.fingerprint,
            "payload": payload_to_jsonable(self.payload),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)


class Session:
    """Facade over the experiment registry and the process caches.

    Parameters
    ----------
    config:
        The run configuration every ``run``/``run_many`` call uses
        (default: ``RunConfig()`` — default engine/comparator, seed 0,
        one replication).
    isolated:
        When true, the process-level phase-kernel caches are cleared
        before **each** run — every run pays its own kernel builds.
        The default (shared) mode lets batched runs reuse each other's
        weight-ladder and cdf tables; outputs are bit-identical either
        way.
    """

    def __init__(
        self,
        config: Optional[RunConfig] = None,
        isolated: bool = False,
    ) -> None:
        if config is None:
            config = RunConfig()
        if not isinstance(config, RunConfig):
            raise ModelError(
                f"config must be a RunConfig, got {config!r} (build one "
                "with RunConfig(engine=..., seed=...))"
            )
        self.config = config
        self.isolated = bool(isolated)
        self.runs_completed = 0

    # -- execution -----------------------------------------------------

    def run(
        self, spec: Union[ExperimentSpec, Mapping, str]
    ) -> RunResult:
        """Execute *spec* under this session's config.

        *spec* may be an :class:`ExperimentSpec`, its ``to_dict``
        document, or a bare registered experiment name (default
        params).  Returns a :class:`RunResult` whose payload is
        byte-identical to the corresponding legacy function call.
        """
        spec = self._normalize_spec(spec)
        if self.config.recorder is not None and not spec.uses_recorder:
            # Refuse rather than fingerprint a policy that was never
            # applied: the built-in figures compute their outputs from
            # their own trace records, so a requested "null"/"trace"
            # policy would be a silent no-op in the stored document.
            raise ModelError(
                f"experiment {spec.name!r} does not consume the recorder "
                f"policy (config.recorder={self.config.recorder!r}); only "
                "specs with uses_recorder=True honor it"
            )
        if self.isolated:
            from ..perf.cache import clear_phase_caches

            clear_phase_caches()
        payload = spec.run(self)
        self.runs_completed += 1
        return RunResult(spec=spec, config=self.config, payload=payload)

    def run_many(
        self, specs: Iterable[Union[ExperimentSpec, Mapping, str]]
    ) -> list[RunResult]:
        """Execute a batch of specs against the shared kernel tables.

        Runs execute in order under one config; every phase-kernel /
        weight-ladder table built by one run is visible to the next
        (unless the session is ``isolated``), which is what makes a
        batched submission cheaper than cold per-run sessions — see
        the ``session_run_many`` section of
        ``benchmarks/bench_perf_engine.py``.
        """
        return [self.run(spec) for spec in specs]

    # -- introspection -------------------------------------------------

    @property
    def resolved(self):
        """The config with defaults resolved (see
        :meth:`RunConfig.resolve`); computed on demand so configs
        carrying experiment-interpreted raw values (e.g. Fig. 4's
        ``engine="aggregate"``) never fail eagerly."""
        return self.config.resolve()

    def cache_stats(self) -> dict:
        """Hit/miss counters of the process-level phase-kernel caches."""
        from ..perf.cache import phase_cache_stats

        return phase_cache_stats()

    def clear_caches(self) -> None:
        """Drop the process-level phase-kernel caches."""
        from ..perf.cache import clear_phase_caches

        clear_phase_caches()

    def _normalize_spec(self, spec) -> ExperimentSpec:
        if isinstance(spec, ExperimentSpec):
            return spec
        if isinstance(spec, str):
            from .spec import get_experiment

            return get_experiment(spec)()
        if isinstance(spec, Mapping):
            return ExperimentSpec.from_dict(spec)
        raise ModelError(
            f"cannot run {spec!r}; expected an ExperimentSpec, a spec "
            "dict, or a registered experiment name"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "isolated" if self.isolated else "shared"
        return (
            f"Session({self.config!r}, {mode}, "
            f"runs_completed={self.runs_completed})"
        )
