"""The Session facade: one object that runs any registered experiment.

A :class:`Session` owns a :class:`~repro.api.config.RunConfig` and the
process-level caches (:mod:`repro.perf.cache` phase-kernel / weight
ladder tables), and exposes exactly two verbs:

* ``run(spec)`` — execute one :class:`~repro.api.spec.ExperimentSpec`
  (or its dict form) and return a typed :class:`RunResult`;
* ``run_many(specs)`` — execute a batch against the *shared* kernel
  tables, so runs probing the same rate profiles amortize each
  other's ladder builds (see the ``session_run_many`` benchmark
  section).

``Session(isolated=True)`` clears the process caches before every run
— cold-start semantics for benchmarking or bit-exact cache-freshness
audits; payloads are identical either way because every cache in the
library is bit-exact.

``run`` is the **resilient executor**: it interprets the config's
fault plan, retry policy and timeout (:mod:`repro.resilience`),
walking the engine fallback chain attempt by attempt and recording
anything non-default in the result's
:class:`~repro.resilience.policy.ExecutionRecord`.  With no faults and
default policies the wrapping is a few attribute reads — payloads (and
their serialized documents) are byte-identical to the direct path, as
the ``session_resilience`` bench section certifies.
"""

from __future__ import annotations

import dataclasses
import json
import time
from typing import Any, Iterable, Mapping, Optional, Union

import numpy as np

from ..errors import ModelError, ReproError
from .config import RunConfig, fingerprint
from .spec import ExperimentSpec

__all__ = ["Session", "RunResult", "payload_to_jsonable"]


def payload_to_jsonable(value: Any) -> Any:
    """Best-effort JSON view of an experiment payload.

    Result dataclasses become field dicts, tuple keys become
    comma-joined strings, numpy scalars/arrays become numbers/lists.
    Lossy by design (it exists for ``--json`` output and logging);
    the lossless artifact is the payload object itself.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: payload_to_jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, Mapping):
        return {_key(value_k): payload_to_jsonable(v) for value_k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [payload_to_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return [payload_to_jsonable(v) for v in value.tolist()]
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _key(key: Any) -> str:
    if isinstance(key, str):
        return key
    if isinstance(key, (tuple, list)):
        return ",".join(str(k) for k in key)
    return str(key)


@dataclasses.dataclass(frozen=True)
class RunResult:
    """A finished run: the spec/config that produced it + its payload.

    ``payload`` is exactly the object the corresponding legacy
    experiment function returns.  ``fingerprint`` is the run's address
    — a digest of the serialized ``(spec, config)`` pair, the key a
    cache or result store would file this result under.  Computing it
    requires the config to be serializable (integer seed, named
    engine/comparator); runs configured with live generator seeds or
    unregistered engine instances still execute fine, they just cannot
    be fingerprinted.

    ``execution`` is the resilience layer's
    :class:`~repro.resilience.policy.ExecutionRecord`.  Every
    :meth:`Session.run` attaches one (it always carries the run's
    ``started_at``/``elapsed`` timing), but it only *serializes* when
    the record is significant — the executor retried or degraded onto
    a fallback engine — so default-path documents keep their
    historical layout byte-for-byte; ``to_dict(include_timing=True)``
    (the ``repro run --json`` path) opts the timing in.
    """

    spec: ExperimentSpec
    config: RunConfig
    payload: Any
    execution: Optional[Any] = None

    @property
    def experiment(self) -> str:
        return self.spec.name

    @property
    def fingerprint(self) -> str:
        return fingerprint(
            {"spec": self.spec.to_dict(), "config": self.config.to_dict()}
        )

    @property
    def degraded(self) -> bool:
        """Whether a fallback engine (not the configured one) produced
        the payload."""
        return bool(self.execution is not None and self.execution.degraded)

    def to_dict(self, include_timing: bool = False) -> dict:
        """JSON-able document: spec + config + fingerprint + payload
        (+ ``execution`` when the resilient executor recorded
        something non-default, or ``include_timing=True`` opts the
        always-present wall-clock record in)."""
        out = {
            "experiment": self.experiment,
            "spec": self.spec.to_dict(),
            "config": self.config.to_dict(),
            "fingerprint": self.fingerprint,
            "payload": payload_to_jsonable(self.payload),
        }
        if self.execution is not None and (
            include_timing or self.execution.significant
        ):
            out["execution"] = self.execution.to_dict(
                include_timing=include_timing
            )
        return out

    def to_json(
        self, indent: Optional[int] = None, include_timing: bool = False
    ) -> str:
        return json.dumps(
            self.to_dict(include_timing=include_timing),
            sort_keys=True,
            indent=indent,
        )

    @classmethod
    def from_document(cls, document: Mapping) -> "RunResult":
        """Rebuild a result from its :meth:`to_dict` document.

        The payload stays in its JSON form (``payload_to_jsonable`` is
        idempotent on it), so a restored result re-serializes
        byte-identically — the property checkpoint resume relies on.
        """
        from ..resilience.policy import ExecutionRecord

        execution = document.get("execution")
        return cls(
            spec=ExperimentSpec.from_dict(document["spec"]),
            config=RunConfig.from_dict(document["config"]),
            payload=document["payload"],
            execution=(
                ExecutionRecord.from_dict(execution)
                if execution is not None
                else None
            ),
        )


class Session:
    """Facade over the experiment registry and the process caches.

    Parameters
    ----------
    config:
        The run configuration every ``run``/``run_many`` call uses
        (default: ``RunConfig()`` — default engine/comparator, seed 0,
        one replication).
    isolated:
        When true, the process-level phase-kernel caches are cleared
        before **each** run — every run pays its own kernel builds.
        The default (shared) mode lets batched runs reuse each other's
        weight-ladder and cdf tables; outputs are bit-identical either
        way.
    """

    def __init__(
        self,
        config: Optional[RunConfig] = None,
        isolated: bool = False,
    ) -> None:
        if config is None:
            config = RunConfig()
        if not isinstance(config, RunConfig):
            raise ModelError(
                f"config must be a RunConfig, got {config!r} (build one "
                "with RunConfig(engine=..., seed=...))"
            )
        self.config = config
        self.isolated = bool(isolated)
        self.runs_completed = 0

    # -- execution -----------------------------------------------------

    def run(
        self,
        spec: Union[ExperimentSpec, Mapping, str],
        *,
        store=None,
    ) -> RunResult:
        """Execute *spec* under this session's config.

        *spec* may be an :class:`ExperimentSpec`, its ``to_dict``
        document, or a bare registered experiment name (default
        params).  Returns a :class:`RunResult` whose payload is
        byte-identical to the corresponding legacy function call.

        ``store`` (a :class:`~repro.store.ResultStore` or a directory
        path) memoizes the run by fingerprint: a verified stored entry
        is served without executing anything (the restored result
        serializes byte-identically to the computed one), a miss
        executes and writes the entry back atomically.  Store failures
        never fail the run — an unwritable entry just loses the
        memoization, a corrupt/stale entry is quarantined and the run
        recomputes.  Like :attr:`RunConfig.executor`, the store is
        orchestration, not identity: it never enters the fingerprint.
        """
        spec = self._normalize_spec(spec)
        if self.config.recorder is not None and not spec.uses_recorder:
            # Refuse rather than fingerprint a policy that was never
            # applied: the built-in figures compute their outputs from
            # their own trace records, so a requested "null"/"trace"
            # policy would be a silent no-op in the stored document.
            raise ModelError(
                f"experiment {spec.name!r} does not consume the recorder "
                f"policy (config.recorder={self.config.recorder!r}); only "
                "specs with uses_recorder=True honor it"
            )
        if store is not None:
            return self._run_stored(spec, store)
        return self._run_normalized(spec)

    def _run_stored(self, spec: ExperimentSpec, store) -> RunResult:
        """The memoized path: store lookup → serve or compute+write."""
        from ..errors import StoreError
        from ..store import resolve_store

        store = resolve_store(store)
        token = fingerprint(
            {"spec": spec.to_dict(), "config": self.config.to_dict()}
        )
        state = self._store_fault_state()
        lookup = store.lookup(token, fault_state=state)
        if lookup.hit:
            return RunResult.from_document(lookup.result)
        result = self._run_normalized(spec)
        try:
            store.put(
                token,
                result.to_dict(),
                status="degraded" if result.degraded else "succeeded",
                fault_state=state,
            )
        except StoreError:
            pass  # memoization lost, run intact
        return result

    def _store_fault_state(self):
        """A fresh fault state for the ``store.*`` sites, or ``None``.

        The store consults an explicitly passed state (the ``worker.*``
        pattern) with its own occurrence counters, independent of the
        per-attempt states the resilient executor activates.
        """
        from ..resilience.faults import resolve_fault_plan

        plan = resolve_fault_plan(self.config.faults)
        return plan.activate() if plan is not None else None

    def _run_normalized(self, spec: ExperimentSpec) -> RunResult:
        config = self.config
        if (
            config.faults is None
            and config.retry is None
            and config.timeout is None
        ):
            # Fast path: nothing to inject, nothing to retry — one
            # direct execution, exactly the pre-resilience behavior
            # (the timing-only ExecutionRecord never serializes by
            # default, so documents are unchanged).
            from ..resilience.policy import ExecutionRecord

            started_at = time.time()
            t0 = time.monotonic()
            payload = self._execute_once(self, spec)
            elapsed = time.monotonic() - t0
            self.runs_completed += 1
            return RunResult(
                spec=spec,
                config=config,
                payload=payload,
                execution=ExecutionRecord(
                    started_at=started_at, elapsed=elapsed
                ),
            )
        return self._run_resilient(spec)

    def _execute_once(self, session: "Session", spec: ExperimentSpec):
        if self.isolated:
            from ..perf.cache import clear_phase_caches

            clear_phase_caches()
        return spec.run(session)

    def _run_resilient(self, spec: ExperimentSpec) -> RunResult:
        """Walk the engine fallback chain, attempt by attempt.

        The configured engine gets ``retry.attempts`` tries, then each
        fallback engine gets the same; every attempt activates a fresh
        fault state (same deterministic fault sequence unless a rule's
        ``on_attempts`` says otherwise) and its own cooperative timeout
        deadline.  Failed attempts are logged into the result's
        :class:`~repro.resilience.policy.ExecutionRecord`; exhausting
        the chain re-raises the last failure with its
        :class:`~repro.resilience.document.ErrorDocument` attached.
        """
        from ..resilience.document import ErrorDocument
        from ..resilience.faults import resolve_fault_plan, runtime_scope, site_check
        from ..resilience.policy import DEFAULT_RETRY, ExecutionRecord

        config = self.config
        retry = config.retry if config.retry is not None else DEFAULT_RETRY
        plan = resolve_fault_plan(config.faults)
        timeout = (
            config.timeout.seconds if config.timeout is not None else None
        )

        stages: list = [None, *retry.fallback_engines]
        attempts_log: list[dict] = []
        attempt_index = 0
        last_exc: Optional[ReproError] = None
        started_at = time.time()
        t0 = time.monotonic()
        for stage, engine_name in enumerate(stages):
            if stage == 0:
                session, stage_config = self, config
            else:
                stage_config = config.replace(engine=engine_name)
                session = Session(stage_config, isolated=self.isolated)
            for _ in range(retry.attempts):
                state = (
                    plan.activate(attempt=attempt_index)
                    if plan is not None
                    else None
                )
                try:
                    with runtime_scope(state, timeout):
                        site_check("run.start")
                        payload = self._execute_once(session, spec)
                except ReproError as exc:
                    delay = retry.delay(attempt_index)
                    attempts_log.append(
                        {
                            "attempt": attempt_index,
                            "engine": engine_name,
                            "code": getattr(type(exc), "code", "error"),
                            "error": type(exc).__name__,
                            "message": str(exc),
                            "site": getattr(exc, "site", None),
                            "replication": getattr(exc, "replication", None),
                            "backoff": delay,
                        }
                    )
                    last_exc = exc
                    attempt_index += 1
                    if delay > 0.0:
                        time.sleep(delay)
                    continue
                self.runs_completed += 1
                return RunResult(
                    spec=spec,
                    config=config,
                    payload=payload,
                    execution=ExecutionRecord(
                        engine=engine_name,
                        degraded=stage > 0,
                        attempts=tuple(attempts_log),
                        started_at=started_at,
                        elapsed=time.monotonic() - t0,
                    ),
                )
        last_exc.error_document = ErrorDocument.capture(
            last_exc, spec=spec, config=config
        )
        raise last_exc

    def run_many(
        self,
        specs: Iterable[Union[ExperimentSpec, Mapping, str]],
        *,
        fail_fast: bool = False,
        checkpoint=None,
        executor=None,
        store=None,
    ):
        """Execute a batch of specs against the shared kernel tables.

        Runs execute in order under one config; every phase-kernel /
        weight-ladder table built by one run is visible to the next
        (unless the session is ``isolated``), which is what makes a
        batched submission cheaper than cold per-run sessions — see
        the ``session_run_many`` section of
        ``benchmarks/bench_perf_engine.py``.

        Returns a :class:`~repro.resilience.batch.BatchReport`: one
        :class:`~repro.resilience.batch.SpecOutcome` per spec
        (``succeeded`` / ``degraded`` / ``failed``), in submission
        order.  Per-spec failures are captured as
        :class:`~repro.resilience.document.ErrorDocument` entries
        instead of raising, unless ``fail_fast=True``.  Iterating the
        report yields the completed :class:`RunResult` objects, so
        all-success batches behave like the historical list.

        ``checkpoint`` names a JSONL journal file
        (:class:`~repro.resilience.checkpoint.CheckpointJournal`):
        completed specs are journaled as they finish, and a resumed
        batch skips (and restores) every journaled fingerprint —
        producing a report that serializes byte-identically to the
        uninterrupted run's.

        ``executor`` (or ``config.executor``) fans the batch across an
        executor from the :mod:`repro.exec` registry — ``"serial"``
        exercises the wire format in-process, ``"process"`` runs the
        supervised worker pool (crash recovery, straggler requeue,
        degradation to serial; see :mod:`repro.exec.process`).
        ``None`` keeps the historical inline loop.  Payloads are
        executor-invariant, so the returned report serializes
        byte-identically whichever path ran it; supervisor
        observability lands in :attr:`BatchReport.events` and as
        ``{"event": ...}`` audit lines in the checkpoint journal.

        ``store`` (a :class:`~repro.store.ResultStore` or a directory
        path) makes the batch memoized: verified stored entries are
        served without executing (``SpecOutcome.served``), misses
        execute and are written back, and the hit/miss/quarantine
        tally lands in :attr:`BatchReport.store`.  With both
        ``checkpoint=`` and ``store=``, the journal line wins — a spec
        journaled but evicted from (or corrupted in) the store is
        restored from the journal, never re-executed, and the store is
        backfilled from the journal entry on resume.
        """
        from ..resilience.batch import BatchReport, SpecOutcome
        from ..resilience.checkpoint import CheckpointJournal
        from ..resilience.document import ErrorDocument

        normalized = [self._normalize_spec(spec) for spec in specs]
        if executor is None:
            executor = self.config.executor
        if executor is not None:
            return self._run_many_executor(
                normalized,
                executor,
                fail_fast=fail_fast,
                checkpoint=checkpoint,
                store=store,
            )
        journal = completed = None
        if checkpoint is not None:
            journal = CheckpointJournal(checkpoint)
            completed = journal.load()
        store, store_state, store_counts = self._store_batch_setup(store)
        outcomes = []
        for spec in normalized:
            token = None
            if journal is not None or store is not None:
                token = fingerprint(
                    {
                        "spec": spec.to_dict(),
                        "config": self.config.to_dict(),
                    }
                )
            if journal is not None:
                entry = completed.get(token)
                if entry is not None:
                    outcomes.append(
                        SpecOutcome(
                            spec=spec,
                            status=entry["status"],
                            result=RunResult.from_document(entry["result"]),
                            restored=True,
                        )
                    )
                    if store is not None and token not in store:
                        # Journal line wins; backfill the evicted store
                        # entry so future batches hit without a journal.
                        self._store_put(
                            store,
                            token,
                            entry["result"],
                            entry["status"],
                            store_state,
                            store_counts,
                        )
                    continue
            if store is not None:
                lookup = store.lookup(token, fault_state=store_state)
                if lookup.quarantined:
                    store_counts["quarantined"] += 1
                if lookup.hit:
                    store_counts["hits"] += 1
                    outcomes.append(
                        SpecOutcome(
                            spec=spec,
                            status=lookup.status,
                            result=RunResult.from_document(lookup.result),
                            served=True,
                        )
                    )
                    if journal is not None:
                        journal.append(token, lookup.status, lookup.result)
                    continue
                store_counts["misses"] += 1
            try:
                result = self.run(spec)
            except ReproError as exc:
                if fail_fast:
                    raise
                outcomes.append(
                    SpecOutcome(
                        spec=spec,
                        status="failed",
                        error=ErrorDocument.capture(
                            exc, spec=spec, config=self.config
                        ),
                    )
                )
                continue
            status = "degraded" if result.degraded else "succeeded"
            outcomes.append(SpecOutcome(spec=spec, status=status, result=result))
            if journal is not None:
                journal.append(token, status, result.to_dict())
            if store is not None:
                self._store_put(
                    store,
                    token,
                    result.to_dict(),
                    status,
                    store_state,
                    store_counts,
                )
        return BatchReport(
            tuple(outcomes),
            store=dict(store_counts) if store is not None else None,
        )

    def _store_batch_setup(self, store):
        """Resolve ``store=`` plus one shared fault state and tally.

        One state per batch, so ``store.*`` occurrence indexes count
        across the whole batch (``at=[2]`` fires on the third store
        operation of the batch, whichever spec reaches it).
        """
        if store is None:
            return None, None, None
        from ..store import resolve_store

        return (
            resolve_store(store),
            self._store_fault_state(),
            {"hits": 0, "misses": 0, "quarantined": 0, "write_failures": 0},
        )

    @staticmethod
    def _store_put(store, token, result_doc, status, state, counts) -> None:
        """Best-effort store write: failures are counted, never raised."""
        from ..errors import StoreError

        try:
            store.put(token, result_doc, status=status, fault_state=state)
        except StoreError:
            counts["write_failures"] += 1

    def _run_many_executor(
        self, specs: list, executor, *, fail_fast: bool, checkpoint, store=None
    ):
        """The ``run_many`` fan-out path: wire tasks on an executor.

        Each spec becomes an :class:`~repro.exec.ExecTask` carrying the
        serialized ``(spec, config)`` pair; completed tasks come back
        as result documents and are restored with
        :meth:`RunResult.from_document` — the byte-identity inverse —
        so the merged report serializes exactly like the inline loop's.
        Checkpointing and resume share the inline path's journal
        format; supervisor events are appended both to the report and
        (as skip-on-load audit lines) to the journal.

        The store is consulted and written **in the parent only**:
        hits are filtered out before dispatch and misses are written
        back as completions arrive, so pool workers never touch the
        store and concurrent same-key writes within one batch are
        impossible by construction (cross-batch races are safe at the
        file level — see :meth:`repro.store.ResultStore.put`).
        """
        from ..exec import ExecTask, resolve_executor
        from ..resilience.batch import BatchReport, SpecOutcome
        from ..resilience.checkpoint import CheckpointJournal
        from ..resilience.document import ErrorDocument
        from ..errors import RemoteTaskError

        resolved = resolve_executor(executor)
        config_doc = self.config.to_dict()  # wire format: must serialize
        journal = completed = None
        if checkpoint is not None:
            journal = CheckpointJournal(checkpoint)
            completed = journal.load()
        store, store_state, store_counts = self._store_batch_setup(store)

        outcomes: list = [None] * len(specs)
        tasks = []
        for index, spec in enumerate(specs):
            token = fingerprint(
                {"spec": spec.to_dict(), "config": config_doc}
            )
            if journal is not None:
                entry = completed.get(token)
                if entry is not None:
                    outcomes[index] = SpecOutcome(
                        spec=spec,
                        status=entry["status"],
                        result=RunResult.from_document(entry["result"]),
                        restored=True,
                    )
                    if store is not None and token not in store:
                        self._store_put(
                            store,
                            token,
                            entry["result"],
                            entry["status"],
                            store_state,
                            store_counts,
                        )
                    continue
            if store is not None:
                lookup = store.lookup(token, fault_state=store_state)
                if lookup.quarantined:
                    store_counts["quarantined"] += 1
                if lookup.hit:
                    store_counts["hits"] += 1
                    outcomes[index] = SpecOutcome(
                        spec=spec,
                        status=lookup.status,
                        result=RunResult.from_document(lookup.result),
                        served=True,
                    )
                    if journal is not None:
                        journal.append(token, lookup.status, lookup.result)
                    continue
                store_counts["misses"] += 1
            tasks.append(
                ExecTask(
                    index=index,
                    kind="run",
                    spec=spec.to_dict(),
                    config=config_doc,
                    fingerprint=token,
                )
            )

        events: list = []

        def on_event(event: dict) -> None:
            events.append(dict(event))
            if journal is not None:
                journal.append_event(event)

        def on_complete(task, outcome) -> None:
            if not outcome.ok:
                return
            if journal is not None:
                journal.append(task.fingerprint, outcome.status, outcome.result)
            if store is not None:
                self._store_put(
                    store,
                    task.fingerprint,
                    outcome.result,
                    outcome.status,
                    store_state,
                    store_counts,
                )

        from ..perf.cache import export_ladder_state

        task_outcomes = resolved.run_tasks(
            tasks,
            fail_fast=fail_fast,
            faults=self.config.faults,
            retry=self.config.retry,
            timeout=self.config.timeout,
            on_complete=on_complete,
            on_event=on_event,
            # Hand the parent's warm kernel-cache state to pool workers
            # so small batches don't pay per-worker cold ladder builds.
            warmup=export_ladder_state(),
        )
        self.runs_completed += sum(1 for o in task_outcomes if o.ok)

        first_error = None
        for outcome in task_outcomes:
            spec = specs[outcome.index]
            if outcome.ok:
                outcomes[outcome.index] = SpecOutcome(
                    spec=spec,
                    status=outcome.status,
                    result=RunResult.from_document(outcome.result),
                )
            else:
                error = ErrorDocument.from_dict(outcome.error)
                if first_error is None:
                    first_error = error
                outcomes[outcome.index] = SpecOutcome(
                    spec=spec, status="failed", error=error
                )
        if fail_fast and first_error is not None:
            exc = RemoteTaskError(
                f"batch task failed on executor {resolved.name!r}: "
                f"{first_error.message}"
            )
            exc.error_document = first_error
            raise exc
        missing = [i for i, o in enumerate(outcomes) if o is None]
        if missing:
            # fail_fast executors may stop dispatching after a failure;
            # without fail_fast every task must come back.
            raise ModelError(
                f"executor {resolved.name!r} returned no outcome for "
                f"tasks {missing}"
            )
        return BatchReport(
            tuple(outcomes),
            events=tuple(events),
            store=dict(store_counts) if store is not None else None,
        )

    # -- introspection -------------------------------------------------

    @property
    def resolved(self):
        """The config with defaults resolved (see
        :meth:`RunConfig.resolve`); computed on demand so configs
        carrying experiment-interpreted raw values (e.g. Fig. 4's
        ``engine="aggregate"``) never fail eagerly."""
        return self.config.resolve()

    def cache_stats(self) -> dict:
        """Hit/miss counters of the process-level phase-kernel caches."""
        from ..perf.cache import phase_cache_stats

        return phase_cache_stats()

    def clear_caches(self) -> None:
        """Drop the process-level phase-kernel caches."""
        from ..perf.cache import clear_phase_caches

        clear_phase_caches()

    def _normalize_spec(self, spec) -> ExperimentSpec:
        if isinstance(spec, ExperimentSpec):
            return spec
        if isinstance(spec, str):
            from .spec import get_experiment

            return get_experiment(spec)()
        if isinstance(spec, Mapping):
            return ExperimentSpec.from_dict(spec)
        raise ModelError(
            f"cannot run {spec!r}; expected an ExperimentSpec, a spec "
            "dict, or a registered experiment name"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "isolated" if self.isolated else "shared"
        return (
            f"Session({self.config!r}, {mode}, "
            f"runs_completed={self.runs_completed})"
        )
