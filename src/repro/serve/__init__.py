"""``repro.serve`` — the live crowd-market service layer.

Turns the batch library into a long-running HTTP service (the
ROADMAP's "serving heavy traffic" north star): submissions flow
through the experiment registry and the content-addressed result
store exactly as :meth:`repro.api.Session.run` would take them, an
online market endpoint prices arriving task batches against a live
budget ledger with the paper's DP / deadline kernels, and a seeded
load generator replays deterministic traffic for tests and the
``service_latency`` bench.  Layering (see ``docs/architecture.md``):

    cli → serve → api / exec → engines

Everything is stdlib + the already-present numpy: the HTTP layer is
asyncio streams, compute dispatch rides the ``"async"`` executor
(:mod:`repro.exec.asyncexec`), and failure paths are deterministic
via the ``serve.request`` / ``serve.backend`` fault sites.
"""

from .backend import ExecutorBackend, ServiceBackend
from .loadgen import (
    DEFAULT_MIX,
    LoadReport,
    ScheduledRequest,
    build_schedule,
    http_request,
    run_load,
)
from .market import DEFAULT_MARKET_BUDGET, LiveMarket
from .service import (
    ReproService,
    ServiceHandle,
    serve_forever,
    start_in_thread,
)

__all__ = [
    "ReproService",
    "ServiceHandle",
    "ServiceBackend",
    "ExecutorBackend",
    "LiveMarket",
    "DEFAULT_MARKET_BUDGET",
    "ScheduledRequest",
    "LoadReport",
    "DEFAULT_MIX",
    "build_schedule",
    "run_load",
    "http_request",
    "serve_forever",
    "start_in_thread",
]
