"""Live crowd market: a persistent budget ledger over the pricing kernels.

The batch experiments answer "what would this budget buy?"; the
service's market endpoint answers it *online*: task batches arrive one
request at a time, each is priced by the same DP / deadline kernels
the figures use (:class:`~repro.core.tuner.Tuner` strategies for a
fixed batch budget, :func:`~repro.core.deadline.min_cost_for_deadline`
for a latency target), and the cost is charged against one live
ledger that persists across requests.  A batch the remaining budget
cannot cover is rejected with
:class:`~repro.errors.InfeasibleAllocationError` — the service maps
that to a 409 with a typed
:class:`~repro.resilience.document.ErrorDocument`, and the ledger is
left untouched (charges are all-or-nothing).

Determinism: allocation requests carry no randomness (the DP and
deadline kernels are rng-free), so a fixed request sequence produces a
fixed ledger trajectory — :meth:`LiveMarket.state_document` exposes a
``trajectory_digest`` over the accepted charge sequence that the
seeded load generator asserts on.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from ..core.deadline import min_cost_for_deadline
from ..core.tuner import STRATEGIES, Tuner
from ..errors import InfeasibleAllocationError, ModelError
from ..workloads.families import available_families, scenario_family

__all__ = ["LiveMarket", "DEFAULT_MARKET_BUDGET"]

#: Ledger units a service starts with unless configured otherwise.
DEFAULT_MARKET_BUDGET = 100_000

#: How many open-task entries ``state_document`` inlines (the full
#: count is always reported; the tail keeps state responses bounded).
_STATE_TAIL = 20


def _group_price_rows(group_prices: dict) -> list[dict]:
    """JSON-able rows for a ``group key -> price`` mapping."""
    rows = []
    for key, price in group_prices.items():
        type_name, repetitions, processing_rate = key
        rows.append(
            {
                "type": type_name,
                "repetitions": int(repetitions),
                "processing_rate": float(processing_rate),
                "price": int(price),
            }
        )
    return rows


class LiveMarket:
    """A budget ledger plus open-task queue fed by allocate requests.

    Parameters
    ----------
    budget:
        Total ledger units available to accepted batches.
    """

    def __init__(self, budget: int = DEFAULT_MARKET_BUDGET) -> None:
        budget = int(budget)
        if budget < 0:
            raise ModelError(f"market budget must be >= 0, got {budget}")
        self.budget = budget
        self.spent = 0
        self.accepted = 0
        self.rejected = 0
        self.open_tasks: list[dict] = []
        self._digest = hashlib.sha256()

    @property
    def remaining(self) -> int:
        return self.budget - self.spent

    # -- pricing -------------------------------------------------------

    def _price(self, request: dict) -> tuple[dict, int]:
        """Price one batch request; returns ``(allocation doc, cost)``."""
        scenario = request.get("scenario")
        if not isinstance(scenario, str) or not scenario:
            raise ModelError(
                "an allocate request needs a 'scenario' (one of "
                f"{sorted(available_families())})"
            )
        case = str(request.get("case", "a"))
        n_tasks = int(request.get("n_tasks", 8))
        family = scenario_family(scenario, case=case, n_tasks=n_tasks)

        has_budget = "budget" in request
        has_deadline = "deadline" in request
        if has_budget == has_deadline:
            raise ModelError(
                "an allocate request needs exactly one of 'budget' "
                "(batch budget for the DP kernels) or 'deadline' "
                "(latency target for the deadline kernel)"
            )

        if has_budget:
            batch_budget = int(request["budget"])
            strategy = str(request.get("strategy", "auto"))
            if strategy != "auto" and strategy not in STRATEGIES:
                raise ModelError(
                    f"unknown strategy {strategy!r}; expected 'auto' or one "
                    f"of {sorted(STRATEGIES)}"
                )
            problem = family.problem_at(batch_budget)
            # A fixed default seed keeps rng-using strategies (EA's
            # remainder placement) deterministic per request, so a
            # replayed schedule reproduces the ledger trajectory.
            tuner = Tuner(strategy=strategy, seed=int(request.get("seed", 0)))
            allocation = tuner.tune(problem)
            prices = {
                g.key: allocation[g.tasks[0].task_id][0]
                for g in problem.groups()
            }
            doc = {
                "mode": "budget",
                "scenario": scenario,
                "case": case,
                "n_tasks": n_tasks,
                "strategy": tuner.resolve_strategy(problem),
                "batch_budget": batch_budget,
                "group_prices": _group_price_rows(prices),
            }
            return doc, int(allocation.total_cost)

        deadline = float(request["deadline"])
        confidence = float(request.get("confidence", 0.9))
        max_price = int(request.get("max_price", 1_000))
        result = min_cost_for_deadline(
            family.tasks,
            deadline,
            confidence=confidence,
            max_price=max_price,
        )
        doc = {
            "mode": "deadline",
            "scenario": scenario,
            "case": case,
            "n_tasks": n_tasks,
            "deadline": deadline,
            "confidence": confidence,
            "achieved_probability": result.achieved_probability,
            "group_prices": _group_price_rows(result.group_prices),
        }
        return doc, int(result.cost)

    # -- the ledger ----------------------------------------------------

    def allocate(self, request: dict) -> dict:
        """Price *request*, charge the ledger, enqueue the open batch.

        Raises :class:`~repro.errors.ModelError` on a malformed request
        (no charge) and :class:`~repro.errors.InfeasibleAllocationError`
        when the remaining ledger cannot cover the priced cost (the
        rejection is counted, the ledger stays untouched).
        """
        doc, cost = self._price(request)
        if cost > self.remaining:
            self.rejected += 1
            raise InfeasibleAllocationError(self.remaining, cost)
        allocation_id = f"a{self.accepted:06d}"
        self.spent += cost
        self.accepted += 1
        self._digest.update(f"{allocation_id}:{cost};".encode("ascii"))
        entry = dict(doc, allocation_id=allocation_id, cost=cost)
        self.open_tasks.append(entry)
        return dict(entry, remaining_budget=self.remaining)

    def state_document(self) -> dict:
        """The ledger + open-task queue as one JSON-able document."""
        return {
            "ledger": {
                "budget": self.budget,
                "spent": self.spent,
                "remaining": self.remaining,
                "accepted": self.accepted,
                "rejected": self.rejected,
            },
            "trajectory_digest": self._digest.hexdigest()[:16],
            "open_tasks": {
                "count": len(self.open_tasks),
                "tail": self.open_tasks[-_STATE_TAIL:],
            },
        }
