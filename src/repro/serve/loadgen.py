"""Seeded synthetic traffic for the service layer.

The generator has two halves with a hard line between them:

* :func:`build_schedule` — a **pure function of its seed**.  It draws
  the request sequence (kinds, payloads, exponential inter-arrival
  offsets — the agent market's Poisson arrival model, applied to
  requesters instead of workers) from one
  ``numpy.random.default_rng(seed)`` stream and returns plain
  records.  Same seed → byte-identical schedule, every process, every
  machine.
* :func:`run_load` — the asyncio client fleet that *replays* a
  schedule against a live service: ``concurrency`` requesters drain
  the schedule in order, each request opening a fresh connection
  (``Connection: close`` matches the server).  Latency per request and
  the outcome of every exchange land in a :class:`LoadReport` with
  p50/p95/p99 and sustained requests/sec.

Determinism of *service state* follows from determinism of the
schedule whenever requests are applied in schedule order
(``concurrency=1``): the market ledger's trajectory digest is then a
pure function of the seed, which is exactly what the serve test suite
asserts.  At higher concurrency the interleaving (and thus latency
numbers) vary, but every submitted run's *payload* is still
deterministic — runs are content-addressed.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..errors import ModelError

__all__ = [
    "ScheduledRequest",
    "LoadReport",
    "build_schedule",
    "run_load",
    "http_request",
    "DEFAULT_MIX",
]

#: Default traffic mix (weights; normalized by the schedule builder).
#: ``submit`` drives the batch path, ``poll`` / ``result`` exercise the
#: read side against previously submitted runs, ``allocate`` / ``state``
#: drive the online market.
DEFAULT_MIX = {
    "submit": 0.25,
    "poll": 0.2,
    "result": 0.15,
    "allocate": 0.3,
    "state": 0.1,
}

#: The tiny spec pool submissions draw from.  Deliberately small so a
#: seeded schedule resubmits the same (spec, config) pairs and the
#: store's hit path sees real traffic.
_SPEC_POOL = [
    {
        "experiment": "budget-sweep",
        "params": {
            "family": "repe",
            "case": "a",
            "n_tasks": 4,
            "budgets": [600, 900],
            "strategies": ["ra"],
            "scoring": "numeric",
        },
    },
    {
        "experiment": "budget-sweep",
        "params": {
            "family": "homo",
            "case": "a",
            "n_tasks": 4,
            "budgets": [400],
            "strategies": ["ea"],
            "n_samples": 30,
        },
    },
    {
        "experiment": "fig4",
        "params": {"prices": [5, 8], "repetitions": 2},
    },
]

_ALLOCATE_SCENARIOS = ("homo", "repe", "heter")


@dataclass(frozen=True)
class ScheduledRequest:
    """One planned request: when, what, and with which payload."""

    index: int
    offset: float  # seconds after schedule start (exponential gaps)
    kind: str  # "submit" | "poll" | "result" | "allocate" | "state"
    payload: Optional[dict] = None
    #: For poll/result: which submit (by schedule position among
    #: submits) to address; the runner resolves it to a run id.
    target_submit: Optional[int] = None


@dataclass
class LoadReport:
    """What a replayed schedule did to (and learned from) the service."""

    requests: int = 0
    failures: list = field(default_factory=list)
    counts: dict = field(default_factory=dict)
    status_counts: dict = field(default_factory=dict)
    latencies_ms: dict = field(default_factory=dict)
    duration_sec: float = 0.0
    requests_per_sec: float = 0.0
    market_state: Optional[dict] = None
    health: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def percentiles(self, kind: Optional[str] = None) -> dict:
        """p50/p95/p99 (ms) over one kind, or all requests pooled."""
        if kind is None:
            pool: list = sum(self.latencies_ms.values(), [])
        else:
            pool = list(self.latencies_ms.get(kind, []))
        if not pool:
            return {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
        arr = np.sort(np.asarray(pool, dtype=float))
        return {
            "p50_ms": float(np.percentile(arr, 50)),
            "p95_ms": float(np.percentile(arr, 95)),
            "p99_ms": float(np.percentile(arr, 99)),
        }

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "counts": dict(self.counts),
            "status_counts": {
                str(k): v for k, v in sorted(self.status_counts.items())
            },
            "failures": len(self.failures),
            "duration_sec": self.duration_sec,
            "requests_per_sec": self.requests_per_sec,
            "percentiles": self.percentiles(),
            "market_state": self.market_state,
            "health": self.health,
        }


def build_schedule(
    seed: int,
    n_requests: int,
    mix: Optional[dict] = None,
    arrival_rate: float = 200.0,
    market_budget_range: tuple = (150, 400),
) -> list[ScheduledRequest]:
    """Draw a deterministic request schedule from *seed*.

    ``arrival_rate`` is the requester arrival intensity (requests/sec);
    offsets accumulate exponential inter-arrival gaps exactly like the
    agent market draws worker arrivals.  ``mix`` maps request kinds to
    weights (default :data:`DEFAULT_MIX`).
    """
    if n_requests < 1:
        raise ModelError(f"n_requests must be >= 1, got {n_requests}")
    mix = dict(DEFAULT_MIX if mix is None else mix)
    kinds = sorted(mix)
    weights = np.asarray([float(mix[k]) for k in kinds], dtype=float)
    if (weights < 0).any() or weights.sum() <= 0:
        raise ModelError(f"mix weights must be non-negative and sum > 0: {mix}")
    weights = weights / weights.sum()

    rng = np.random.default_rng(seed)
    schedule: list[ScheduledRequest] = []
    clock = 0.0
    n_submits = 0
    for index in range(n_requests):
        clock += float(rng.exponential(1.0 / arrival_rate))
        kind = kinds[int(rng.choice(len(kinds), p=weights))]
        if kind in ("poll", "result") and n_submits == 0:
            kind = "submit"  # nothing to read yet: promote to a write
        payload = None
        target = None
        if kind == "submit":
            payload = _SPEC_POOL[int(rng.integers(len(_SPEC_POOL)))]
            n_submits += 1
        elif kind in ("poll", "result"):
            target = int(rng.integers(n_submits))
        elif kind == "allocate":
            scenario = _ALLOCATE_SCENARIOS[
                int(rng.integers(len(_ALLOCATE_SCENARIOS)))
            ]
            lo, hi = market_budget_range
            payload = {
                "scenario": scenario,
                "case": "a",
                "n_tasks": int(rng.integers(4, 9)),
                "budget": int(rng.integers(lo, hi)),
            }
        schedule.append(
            ScheduledRequest(
                index=index,
                offset=clock,
                kind=kind,
                payload=payload,
                target_submit=target,
            )
        )
    return schedule


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Optional[dict] = None,
    timeout: float = 30.0,
) -> tuple[int, dict]:
    """One HTTP/1.1 exchange over a fresh connection; returns (status, doc)."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        payload = b"" if body is None else json.dumps(body).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(-1), timeout)
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except Exception:
            pass
    header, _, rest = raw.partition(b"\r\n\r\n")
    status_line = header.split(b"\r\n", 1)[0].decode("latin-1")
    status = int(status_line.split()[1])
    doc = json.loads(rest.decode("utf-8")) if rest else {}
    return status, doc


#: Responses the schedule treats as expected (not failures): 2xx
#: always; 409 for allocate (an exhausted ledger is a correct answer).
def _expected(kind: str, status: int) -> bool:
    if 200 <= status < 300:
        return True
    return kind == "allocate" and status == 409


async def run_load(
    host: str,
    port: int,
    schedule: Sequence[ScheduledRequest],
    concurrency: int = 8,
    paced: bool = False,
    poll_until_done: bool = False,
    timeout: float = 30.0,
) -> LoadReport:
    """Replay *schedule* against a live service.

    ``concurrency`` requesters drain the schedule in order.  With
    ``paced=True`` each request additionally waits for its arrival
    offset (open-loop traffic); the default is closed-loop maximum
    throughput.  ``poll_until_done=True`` makes ``poll`` requests spin
    until their target run leaves the queue (used by smoke tests that
    need every outcome settled).
    """
    if concurrency < 1:
        raise ModelError(f"concurrency must be >= 1, got {concurrency}")
    report = LoadReport()
    submit_ids: dict[int, str] = {}
    queue: asyncio.Queue = asyncio.Queue()
    for request in schedule:
        queue.put_nowait(request)
    started = time.perf_counter()

    async def one(request: ScheduledRequest) -> None:
        if paced:
            delay = started + request.offset - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
        method, path, body = "GET", "/health", None
        if request.kind == "submit":
            method, path, body = "POST", "/runs", {"spec": request.payload}
        elif request.kind == "allocate":
            method, path, body = "POST", "/market/allocate", request.payload
        elif request.kind == "state":
            method, path = "GET", "/market/state"
        elif request.kind in ("poll", "result"):
            run_id = submit_ids.get(request.target_submit)
            if run_id is None:
                path = "/health"  # target submit still in flight
            elif request.kind == "poll":
                path = f"/runs/{run_id}"
            else:
                path = f"/runs/{run_id}/result"
        t0 = time.perf_counter()
        status, doc = await http_request(
            host, port, method, path, body, timeout=timeout
        )
        if (
            poll_until_done
            and request.kind in ("poll", "result")
            and status == 202
        ):
            while status == 202:
                await asyncio.sleep(0.005)
                status, doc = await http_request(
                    host, port, method, path, None, timeout=timeout
                )
        elapsed_ms = (time.perf_counter() - t0) * 1000.0
        if request.kind == "submit" and isinstance(doc, dict):
            run_id = doc.get("run_id")
            if run_id:
                submit_ids.setdefault(len(submit_ids), run_id)
        report.requests += 1
        report.counts[request.kind] = report.counts.get(request.kind, 0) + 1
        report.status_counts[status] = report.status_counts.get(status, 0) + 1
        report.latencies_ms.setdefault(request.kind, []).append(elapsed_ms)
        if not _expected(request.kind, status):
            report.failures.append(
                {"index": request.index, "kind": request.kind,
                 "status": status, "body": doc}
            )

    async def worker() -> None:
        while True:
            try:
                request = queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            try:
                await one(request)
            except Exception as exc:
                report.requests += 1
                report.failures.append(
                    {"index": request.index, "kind": request.kind,
                     "status": None, "body": repr(exc)}
                )

    await asyncio.gather(*(worker() for _ in range(min(concurrency, len(schedule)))))
    report.duration_sec = time.perf_counter() - started
    if report.duration_sec > 0:
        report.requests_per_sec = report.requests / report.duration_sec
    try:
        _, report.market_state = await http_request(
            host, port, "GET", "/market/state", timeout=timeout
        )
        _, report.health = await http_request(
            host, port, "GET", "/health", timeout=timeout
        )
    except Exception:
        pass
    return report
