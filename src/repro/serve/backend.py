"""Pluggable compute backends for the service layer.

The service only ever talks to a backend through one coroutine —
``execute(spec_doc, config_doc)`` returning a
:class:`~repro.exec.base.TaskOutcome` — so *where* a submitted run
executes is swappable without touching any endpoint logic.
:class:`ExecutorBackend` is the standard implementation: it funnels
every run through an :class:`~repro.exec.asyncexec.AsyncExecutor`
(wrapping whatever inner executor the deployment chose — ``"serial"``
for a single-process service, ``"process"`` for the supervised pool),
so the event loop never blocks on compute.

The ``serve.backend`` fault site is evaluated here, *before* dispatch,
against the service's explicitly passed
:class:`~repro.resilience.faults.FaultState` (the ``worker.*`` /
``store.*`` pattern): a firing rule kills that one run with a
replayable :class:`~repro.errors.FaultInjectedError` outcome while the
loop, the other in-flight runs, and the ledger stay healthy —
exactly the crash-mid-run recovery scenario the serve tests replay.
"""

from __future__ import annotations

from typing import Optional

from ..errors import FaultInjectedError
from ..exec.asyncexec import AsyncExecutor
from ..exec.base import ExecTask, Executor, TaskOutcome, resolve_executor
from ..resilience.document import ErrorDocument

__all__ = ["ServiceBackend", "ExecutorBackend"]


class ServiceBackend:
    """Protocol: run one serialized ``(spec, config)`` pair off-loop."""

    async def execute(
        self, spec_doc: dict, config_doc: dict, fault_state=None
    ) -> TaskOutcome:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release any pools the backend holds (idempotent)."""


class ExecutorBackend(ServiceBackend):
    """Run submissions on a registered executor via async dispatch.

    Parameters
    ----------
    executor:
        Registered executor name or instance.  An
        :class:`AsyncExecutor` is used as-is; anything else becomes the
        *inner* executor of a fresh async dispatcher.
    workers:
        Concurrent dispatch width when a dispatcher is created here.
    retry / timeout:
        Supervisor-level policies forwarded to every dispatch (the
        in-run policies still come from each submission's config).
    """

    def __init__(
        self,
        executor="serial",
        workers: int = 2,
        retry=None,
        timeout=None,
    ) -> None:
        resolved = (
            executor
            if isinstance(executor, Executor)
            else resolve_executor(executor)
        )
        if isinstance(resolved, AsyncExecutor):
            self._async = resolved
            self._owns_dispatcher = False
        else:
            self._async = AsyncExecutor(inner=resolved, workers=workers)
            self._owns_dispatcher = True
        self.retry = retry
        self.timeout = timeout
        self._dispatches = 0

    @property
    def executor_name(self) -> str:
        inner = self._async.inner
        return inner if isinstance(inner, str) else inner.name

    async def execute(
        self, spec_doc: dict, config_doc: dict, fault_state=None
    ) -> TaskOutcome:
        index = self._dispatches
        self._dispatches += 1
        task = ExecTask(index=index, spec=spec_doc, config=config_doc)
        if fault_state is not None:
            fired = fault_state.fires("serve.backend")
            if fired is not None:
                occurrence, _rule = fired
                error = ErrorDocument.capture(
                    FaultInjectedError(
                        "serve.backend",
                        occurrence=occurrence,
                        detail="backend killed before dispatch",
                    )
                ).to_dict()
                return TaskOutcome(index=index, status="failed", error=error)
        return await self._async.execute_async(
            task, retry=self.retry, timeout=self.timeout
        )

    def close(self) -> None:
        if self._owns_dispatcher:
            self._async.close()
