"""``ReproService``: the asyncio HTTP app over sessions, store, market.

Pure stdlib (asyncio streams + a hand-rolled HTTP/1.1 exchange per
connection — every response closes the connection, which keeps the
parser tiny and the load generator honest about connection cost).
The service composes the layers underneath without reimplementing any
of them:

* **Batch endpoints** — ``POST /runs`` validates the submitted spec /
  config documents through the experiment registry, addresses the run
  by the same content fingerprint :meth:`repro.api.Session.run`
  memoizes under, serves store hits *without touching compute*, and
  dispatches misses to the pluggable backend; ``GET /runs/<id>`` polls
  status; ``GET /runs/<id>/result`` returns the full
  :class:`~repro.api.session.RunResult` document (byte-identical to a
  direct ``Session.run`` of the same pair).
* **Online market** — ``POST /market/allocate`` prices arriving task
  batches with the DP / deadline kernels against the live
  :class:`~repro.serve.market.LiveMarket` ledger;
  ``GET /market/state`` exposes ledger + open-task queue.
* **Faults** — the ``serve.request`` / ``serve.backend`` sites are
  evaluated against one explicitly activated
  :class:`~repro.resilience.faults.FaultState` shared with the store's
  ``store.*`` sites, so an injected plan exercises the whole
  request → backend → store path deterministically.

Every error response body is a replayable
:class:`~repro.resilience.document.ErrorDocument` dict with the
library's stable error codes: 400 for invalid documents, 404 for
unknown ids/routes, 409 for an exhausted ledger, 500 for injected or
unexpected failures.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Optional

from ..api.config import RunConfig, fingerprint
from ..api.spec import ExperimentSpec, available_experiments
from ..errors import (
    InfeasibleAllocationError,
    FaultInjectedError,
    ModelError,
    ReproError,
    RunNotFoundError,
    StoreError,
)
from ..resilience.document import ErrorDocument
from ..resilience.faults import FaultState, resolve_fault_plan
from ..store import resolve_store
from ..workloads.families import available_families
from .backend import ExecutorBackend, ServiceBackend
from .market import DEFAULT_MARKET_BUDGET, LiveMarket

__all__ = ["ReproService", "ServiceHandle", "start_in_thread", "serve_forever"]

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    409: "Conflict",
    500: "Internal Server Error",
}


class _RunRecord:
    """One submitted run's lifecycle, addressed by its fingerprint."""

    __slots__ = (
        "run_id", "experiment", "spec_doc", "config_doc",
        "status", "served", "result_doc", "error",
    )

    def __init__(self, run_id, experiment, spec_doc, config_doc) -> None:
        self.run_id = run_id
        self.experiment = experiment
        self.spec_doc = spec_doc
        self.config_doc = config_doc
        self.status = "queued"
        self.served = False
        self.result_doc: Optional[dict] = None
        self.error: Optional[dict] = None

    @property
    def done(self) -> bool:
        return self.status in ("succeeded", "degraded", "failed")

    def status_document(self) -> dict:
        doc = {
            "run_id": self.run_id,
            "experiment": self.experiment,
            "status": self.status,
            "served": self.served,
        }
        if self.error is not None:
            doc["error"] = self.error
        return doc


def _error_body(exc: BaseException, spec=None, config=None) -> dict:
    return ErrorDocument.capture(exc, spec=spec, config=config).to_dict()


def _http_status(exc: BaseException) -> int:
    if isinstance(exc, RunNotFoundError):
        return 404
    if isinstance(exc, InfeasibleAllocationError):
        return 409
    if isinstance(exc, FaultInjectedError):
        return 500
    if isinstance(exc, (ModelError, ValueError)):
        return 400
    return 500


class ReproService:
    """The service app: routing, run records, market, fault sites.

    Parameters
    ----------
    store:
        Result store (path or :class:`~repro.store.ResultStore`) for
        store-first serving; ``None`` disables memoization.
    backend:
        A :class:`~repro.serve.backend.ServiceBackend`; default is an
        :class:`~repro.serve.backend.ExecutorBackend` over *executor*.
    executor / workers:
        Inner executor name (``"serial"`` / ``"process"`` / an
        instance) and dispatch width for the default backend.
    faults:
        A fault plan (name / dict / :class:`FaultPlan`) whose
        ``serve.*`` and ``store.*`` rules are evaluated against one
        explicit state owned by the service.
    config:
        Base :class:`RunConfig` for submissions that carry none.
    market_budget:
        Ledger units for the online market.
    """

    def __init__(
        self,
        store=None,
        backend: Optional[ServiceBackend] = None,
        executor="serial",
        workers: int = 2,
        faults=None,
        config: Optional[RunConfig] = None,
        market_budget: int = DEFAULT_MARKET_BUDGET,
    ) -> None:
        self.store = resolve_store(store)
        self.backend = backend or ExecutorBackend(executor, workers=workers)
        self.config = config or RunConfig()
        plan = resolve_fault_plan(faults) if faults is not None else None
        self._fault_state = FaultState(plan) if plan is not None else None
        self.market = LiveMarket(budget=market_budget)
        self.runs: dict[str, _RunRecord] = {}
        self._inflight: set = set()
        self.tally = {
            "requests": 0,
            "store_hits": 0,
            "store_misses": 0,
            "computed": 0,
            "failed_runs": 0,
            "store_write_failures": 0,
            "injected_request_faults": 0,
        }

    # -- routing -------------------------------------------------------

    async def handle(self, method: str, path: str, body: bytes):
        """Dispatch one request; returns ``(http_status, json_doc)``."""
        self.tally["requests"] += 1
        if self._fault_state is not None:
            fired = self._fault_state.fires("serve.request")
            if fired is not None:
                occurrence, _rule = fired
                self.tally["injected_request_faults"] += 1
                exc = FaultInjectedError(
                    "serve.request",
                    occurrence=occurrence,
                    detail=f"{method} {path}",
                )
                return 500, _error_body(exc)
        try:
            return await self._route(method, path, body)
        except ReproError as exc:
            return _http_status(exc), _error_body(exc)
        except Exception as exc:  # defensive: the loop must survive
            return 500, _error_body(exc)

    async def _route(self, method: str, path: str, body: bytes):
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if method == "GET" and path == "/health":
            return 200, self.health_document()
        if method == "GET" and path == "/experiments":
            return 200, {
                "experiments": list(available_experiments()),
                "families": list(available_families()),
            }
        if method == "POST" and path == "/runs":
            return await self._submit(self._json_body(body))
        if method == "GET" and path.startswith("/runs/"):
            rest = path[len("/runs/"):]
            if rest.endswith("/result"):
                return self._result(rest[: -len("/result")])
            if "/" not in rest and rest:
                return self._status(rest)
        if method == "POST" and path == "/market/allocate":
            return 200, self.market.allocate(self._json_body(body))
        if method == "GET" and path == "/market/state":
            return 200, self.market.state_document()
        raise RunNotFoundError(f"{method} {path}")

    @staticmethod
    def _json_body(body: bytes) -> dict:
        if not body:
            return {}
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ModelError(f"request body is not valid JSON: {exc}")
        if not isinstance(doc, dict):
            raise ModelError(
                f"request body must be a JSON object, got {type(doc).__name__}"
            )
        return doc

    def health_document(self) -> dict:
        return {
            "status": "ok",
            "runs": len(self.runs),
            "store": self.store is not None,
            "tally": dict(self.tally),
        }

    # -- batch endpoints -----------------------------------------------

    async def _submit(self, payload: dict):
        spec_doc = payload.get("spec")
        if not isinstance(spec_doc, dict):
            raise ModelError(
                "a submission needs a 'spec' document "
                '({"experiment": name, "params": {...}})'
            )
        spec = ExperimentSpec.from_dict(spec_doc)
        config_doc = payload.get("config")
        if config_doc is not None:
            if not isinstance(config_doc, dict):
                raise ModelError("'config' must be a JSON object when given")
            config = RunConfig.from_dict(config_doc)
        else:
            config = self.config
        token = fingerprint(
            {"spec": spec.to_dict(), "config": config.to_dict()}
        )
        record = self.runs.get(token)
        if record is not None and record.status != "failed":
            return 200, record.status_document()
        # Unknown id, or a failed run: a failure (backend crash,
        # injected fault) is not a cached outcome — resubmission
        # replaces the record and re-dispatches, which is the recovery
        # path the serve.backend tests replay.
        record = _RunRecord(
            token, spec.name, spec.to_dict(), config.to_dict()
        )
        self.runs[token] = record
        if self.store is not None:
            lookup = self.store.lookup(token, fault_state=self._fault_state)
            if lookup.hit:
                # The memoized path: a verified stored document is the
                # run, byte-identical to computing it (Session.run's
                # store-first contract) — compute is never touched.
                self.tally["store_hits"] += 1
                record.status = lookup.status or "succeeded"
                record.served = True
                record.result_doc = lookup.result
                return 200, record.status_document()
            self.tally["store_misses"] += 1
        # Keep a strong reference so the dispatch task cannot be
        # garbage-collected before it completes.
        task = asyncio.ensure_future(self._execute(record))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)
        return 202, record.status_document()

    async def _execute(self, record: _RunRecord) -> None:
        record.status = "running"
        try:
            outcome = await self.backend.execute(
                record.spec_doc, record.config_doc, self._fault_state
            )
        except Exception as exc:  # defensive: a backend bug is a failed run
            record.status = "failed"
            record.error = _error_body(exc)
            self.tally["failed_runs"] += 1
            return
        if outcome.ok:
            record.status = outcome.status
            record.result_doc = outcome.result
            self.tally["computed"] += 1
            if self.store is not None:
                try:
                    self.store.put(
                        record.run_id,
                        outcome.result,
                        status=outcome.status,
                        fault_state=self._fault_state,
                    )
                except StoreError:
                    self.tally["store_write_failures"] += 1
        else:
            record.status = "failed"
            record.error = outcome.error
            self.tally["failed_runs"] += 1

    def _record_or_raise(self, run_id: str) -> _RunRecord:
        record = self.runs.get(run_id)
        if record is None:
            raise RunNotFoundError(run_id)
        return record

    def _status(self, run_id: str):
        return 200, self._record_or_raise(run_id).status_document()

    def _result(self, run_id: str):
        record = self.runs.get(run_id)
        if record is None and self.store is not None:
            # Store-first even without a live record: a persistent
            # store can serve runs submitted before a restart.
            lookup = self.store.lookup(run_id, fault_state=self._fault_state)
            if lookup.hit:
                self.tally["store_hits"] += 1
                return 200, lookup.result
        if record is None:
            raise RunNotFoundError(run_id)
        if record.status == "failed":
            return 500, record.error or _error_body(
                ModelError(f"run {run_id} failed without an error document")
            )
        if not record.done:
            return 202, record.status_document()
        return 200, record.result_doc

    # -- the HTTP layer ------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            request_line = await reader.readline()
            if not request_line:
                return
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, target = parts[0].upper(), parts[1]
            headers = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or 0)
            body = await reader.readexactly(length) if length else b""
            status, doc = await self.handle(method, target, body)
            payload = json.dumps(doc).encode("utf-8")
            head = (
                f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def start(self, host: str = "127.0.0.1", port: int = 0):
        """Bind and return the :class:`asyncio.Server` (port 0 = any)."""
        return await asyncio.start_server(self._handle_connection, host, port)

    def close(self) -> None:
        """Release backend pools (idempotent; the server is separate)."""
        self.backend.close()


async def serve_forever(
    service: ReproService, host: str = "127.0.0.1", port: int = 8765
) -> None:
    """Run *service* until cancelled (the ``repro serve`` entry point)."""
    server = await service.start(host, port)
    addr = server.sockets[0].getsockname()
    print(f"repro service listening on http://{addr[0]}:{addr[1]}")
    async with server:
        await server.serve_forever()


class ServiceHandle:
    """A running in-thread service: ``base_url`` + ``stop()``.

    Returned by :func:`start_in_thread`; tests, benches and examples
    use it to exercise the real socket path without blocking the
    caller.  ``stop()`` is idempotent and joins the server thread.
    """

    def __init__(self, service, host, port, loop, stop_event, thread) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._loop = loop
        self._stop_event = stop_event
        self._thread = thread

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop_event.set)
            self._thread.join(timeout=10.0)
        self.service.close()

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def start_in_thread(
    service: ReproService, host: str = "127.0.0.1", port: int = 0
) -> ServiceHandle:
    """Start *service* on a daemon thread; returns a :class:`ServiceHandle`."""
    started = threading.Event()
    state: dict = {}

    def _run() -> None:
        async def main() -> None:
            server = await service.start(host, port)
            state["port"] = server.sockets[0].getsockname()[1]
            state["loop"] = asyncio.get_running_loop()
            state["stop"] = asyncio.Event()
            started.set()
            async with server:
                await state["stop"].wait()

        asyncio.run(main())

    thread = threading.Thread(
        target=_run, name="repro-serve", daemon=True
    )
    thread.start()
    if not started.wait(timeout=10.0):
        raise ModelError("service thread failed to start within 10s")
    return ServiceHandle(
        service, host, state["port"], state["loop"], state["stop"], thread
    )
