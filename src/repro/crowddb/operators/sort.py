"""Crowd-powered sort (Motivation Example 1; [6, 9] in the paper).

The planner decomposes a sort over items with latent keys into pairwise
comparison votes.  Two planning strategies:

* ``all_pairs`` — every unordered pair is asked (``n·(n−1)/2`` atomic
  tasks), each with ``repetitions`` votes; ranking by Copeland score
  (number of pairwise wins) over the majority-aggregated preference
  matrix.  Robust, budget-hungry — the classic crowd-sort baseline.
* ``next_votes`` — a reduced plan in the spirit of Guo et al.'s "next
  votes" [9]: only adjacent pairs of a noisy pre-ranking are asked
  (``n−1`` tasks), with extra repetitions on the pairs whose keys are
  closest (the hard comparisons), which is exactly the repetition
  heterogeneity Scenario II tunes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

import numpy as np

from ...errors import PlanError
from ...market.task import TaskType
from ..aggregate import ComparisonQuestion, majority_vote
from ..planner import PlannedQuestion

__all__ = ["CrowdSort"]


@dataclass
class CrowdSort:
    """Sort *items* by latent keys via pairwise crowd votes.

    Parameters
    ----------
    items:
        The objects to sort.
    keys:
        Latent ground-truth key per item (what the crowd estimates).
    task_type:
        Market task type of one comparison vote (e.g. "sort-vote").
    repetitions:
        Base vote count per pair.
    strategy:
        ``"all_pairs"`` or ``"next_votes"``.
    hard_pair_extra:
        For ``next_votes``: extra votes given to the hardest third of
        adjacent pairs (closest keys).
    """

    items: Sequence[Any]
    keys: Sequence[float]
    task_type: TaskType
    repetitions: int = 3
    strategy: str = "all_pairs"
    hard_pair_extra: int = 2

    def __post_init__(self) -> None:
        if len(self.items) != len(self.keys):
            raise PlanError(
                f"{len(self.items)} items but {len(self.keys)} keys"
            )
        if len(self.items) < 2:
            raise PlanError("sorting needs at least two items")
        if len(set(self.keys)) != len(self.keys):
            raise PlanError("keys must be distinct for a total order")
        if self.repetitions < 1:
            raise PlanError(f"repetitions must be >= 1, got {self.repetitions}")
        if self.strategy not in ("all_pairs", "next_votes"):
            raise PlanError(f"unknown strategy {self.strategy!r}")
        if self.hard_pair_extra < 0:
            raise PlanError(
                f"hard_pair_extra must be >= 0, got {self.hard_pair_extra}"
            )
        self._plan: Optional[list[PlannedQuestion]] = None

    # -- planning ------------------------------------------------------

    def plan(self) -> list[PlannedQuestion]:
        """Decompose into comparison questions (cached)."""
        if self._plan is not None:
            return self._plan
        if self.strategy == "all_pairs":
            planned = self._plan_all_pairs()
        else:
            planned = self._plan_next_votes()
        self._plan = planned
        return planned

    def _plan_all_pairs(self) -> list[PlannedQuestion]:
        planned = []
        n = len(self.items)
        for i in range(n):
            for j in range(i + 1, n):
                q = ComparisonQuestion(
                    left=self.items[i],
                    right=self.items[j],
                    left_key=float(self.keys[i]),
                    right_key=float(self.keys[j]),
                )
                planned.append(
                    PlannedQuestion(q, self.task_type, self.repetitions)
                )
        return planned

    def _plan_next_votes(self) -> list[PlannedQuestion]:
        # Noisy pre-ranking: workers are not consulted for it; a real
        # system would use a previous round's output.  We order by key
        # and compare adjacent items, boosting close pairs.
        order = np.argsort(np.asarray(self.keys, dtype=float))
        gaps = []
        for a, b in zip(order[:-1], order[1:]):
            gaps.append(abs(self.keys[int(b)] - self.keys[int(a)]))
        threshold = float(np.quantile(np.asarray(gaps), 1.0 / 3.0)) if gaps else 0.0
        planned = []
        for (a, b), gap in zip(zip(order[:-1], order[1:]), gaps):
            reps = self.repetitions
            if gap <= threshold:
                reps += self.hard_pair_extra
            q = ComparisonQuestion(
                left=self.items[int(a)],
                right=self.items[int(b)],
                left_key=float(self.keys[int(a)]),
                right_key=float(self.keys[int(b)]),
            )
            planned.append(PlannedQuestion(q, self.task_type, reps))
        return planned

    # -- collection ------------------------------------------------------

    def collect(self, answers: dict[int, list[Any]]) -> list[Any]:
        """Aggregate votes into a ranking (ascending by inferred key).

        *answers* maps question index (position in :meth:`plan`) to the
        list of boolean votes ("left < right").
        """
        planned = self.plan()
        n = len(self.items)
        index_of = {id(item): i for i, item in enumerate(self.items)}
        wins = np.zeros(n)
        for qi, question in enumerate(planned):
            votes = answers.get(qi)
            if not votes:
                raise PlanError(f"no answers collected for question {qi}")
            verdict = majority_vote(votes)  # True: left < right
            q = question.question
            li = index_of[id(q.left)]
            ri = index_of[id(q.right)]
            if verdict:
                wins[ri] += 1  # right is larger: it "beats" left
            else:
                wins[li] += 1
        if self.strategy == "next_votes":
            # Adjacent comparisons give a chain; stitch by win-corrected
            # insertion over the pre-ranking.
            order = np.argsort(np.asarray(self.keys, dtype=float))
            chain = list(order)
            # Majority verdicts may flip adjacent pairs: apply flips.
            for qi, question in enumerate(planned):
                votes = answers[qi]
                verdict = majority_vote(votes)
                q = question.question
                li = index_of[id(q.left)]
                ri = index_of[id(q.right)]
                pos_l = chain.index(li)
                pos_r = chain.index(ri)
                if verdict is False and pos_l < pos_r:
                    chain[pos_l], chain[pos_r] = chain[pos_r], chain[pos_l]
                elif verdict is True and pos_l > pos_r:
                    chain[pos_l], chain[pos_r] = chain[pos_r], chain[pos_l]
            return [self.items[int(i)] for i in chain]
        # Copeland: ascending by wins (an item's wins = how many pairs
        # judged it larger... ascending sort by wins gives ascending keys).
        ranked = np.argsort(wins, kind="stable")
        return [self.items[int(i)] for i in ranked]

    def ground_truth(self) -> list[Any]:
        """The true ascending order (for accuracy evaluation)."""
        order = np.argsort(np.asarray(self.keys, dtype=float))
        return [self.items[int(i)] for i in order]
