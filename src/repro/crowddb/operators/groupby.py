"""Crowd-powered group-by ([10] in the paper: Davidson et al., ICDT 2013).

Items carry a latent categorical label only humans can judge ("which
animal is in this photo?").  The planner asks a multiple-choice
question per item, repeated for reliability; plurality aggregation
assigns each item to a group.  One parallel batch → a Scenario I/II
H-Tuning instance (repetitions may vary per item via ``hard_items``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Hashable, Optional, Sequence

import numpy as np

from ...errors import PlanError
from ...market.task import TaskType
from ..aggregate import majority_vote
from ..planner import PlannedQuestion

__all__ = ["CategoryQuestion", "CrowdGroupBy"]

_qid = itertools.count()


@dataclass(frozen=True)
class CategoryQuestion:
    """"Which category does *item* belong to?" — a k-way vote.

    A worker answers the true category with probability *accuracy*;
    errors are uniform over the remaining categories.
    """

    item: Any
    true_category: Hashable
    categories: tuple
    qid: int = field(default_factory=lambda: next(_qid))

    def __post_init__(self) -> None:
        if len(self.categories) < 2:
            raise PlanError("need at least two categories")
        if len(set(self.categories)) != len(self.categories):
            raise PlanError("categories must be distinct")
        if self.true_category not in self.categories:
            raise PlanError(
                f"true category {self.true_category!r} not among "
                f"{self.categories}"
            )

    def sample_answer(self, rng: np.random.Generator, accuracy: float):
        if rng.random() < accuracy:
            return self.true_category
        others = [c for c in self.categories if c != self.true_category]
        return others[int(rng.integers(0, len(others)))]


@dataclass
class CrowdGroupBy:
    """Partition *items* into latent categories via k-way crowd votes.

    Parameters
    ----------
    items / labels:
        Objects and their latent category labels.
    categories:
        The label vocabulary shown to workers.
    task_type:
        Market task type of one categorization vote.
    repetitions:
        Votes per item (plurality wins).
    hard_items / hard_extra:
        Ambiguous items get extra votes (repetition heterogeneity).
    """

    items: Sequence[Any]
    labels: Sequence[Hashable]
    categories: Sequence[Hashable]
    task_type: TaskType
    repetitions: int = 3
    hard_items: Sequence[int] = ()
    hard_extra: int = 2

    def __post_init__(self) -> None:
        if len(self.items) != len(self.labels):
            raise PlanError(
                f"{len(self.items)} items but {len(self.labels)} labels"
            )
        if not self.items:
            raise PlanError("group-by needs at least one item")
        cats = tuple(self.categories)
        if len(set(cats)) != len(cats) or len(cats) < 2:
            raise PlanError("categories must be >= 2 distinct values")
        missing = {l for l in self.labels if l not in cats}
        if missing:
            raise PlanError(f"labels outside the vocabulary: {missing}")
        if self.repetitions < 1:
            raise PlanError(f"repetitions must be >= 1, got {self.repetitions}")
        bad = [i for i in self.hard_items if not 0 <= i < len(self.items)]
        if bad:
            raise PlanError(f"hard_items indices out of range: {bad}")
        self._categories = cats
        self._plan: Optional[list[PlannedQuestion]] = None

    def plan(self) -> list[PlannedQuestion]:
        """One categorization question per item (cached)."""
        if self._plan is not None:
            return self._plan
        hard = set(self.hard_items)
        planned = []
        for i, (item, label) in enumerate(zip(self.items, self.labels)):
            reps = self.repetitions + (self.hard_extra if i in hard else 0)
            q = CategoryQuestion(
                item=item, true_category=label, categories=self._categories
            )
            planned.append(PlannedQuestion(q, self.task_type, reps))
        self._plan = planned
        return planned

    def collect(self, answers: dict[int, list[Any]]) -> dict[Hashable, list[Any]]:
        """Plurality-vote grouping: category -> items (input order).

        Every vocabulary category appears as a key, possibly empty.
        """
        planned = self.plan()
        groups: dict[Hashable, list[Any]] = {c: [] for c in self._categories}
        for i, question in enumerate(planned):
            votes = answers.get(i)
            if not votes:
                raise PlanError(f"no answers collected for item {i}")
            verdict = majority_vote(votes)
            groups[verdict].append(question.question.item)
        return groups

    def ground_truth(self) -> dict[Hashable, list[Any]]:
        groups: dict[Hashable, list[Any]] = {c: [] for c in self._categories}
        for item, label in zip(self.items, self.labels):
            groups[label].append(item)
        return groups

    def accuracy_against_truth(
        self, answers: dict[int, list[Any]]
    ) -> float:
        """Fraction of items assigned to their true category."""
        planned = self.plan()
        correct = 0
        for i, question in enumerate(planned):
            votes = answers.get(i)
            if not votes:
                raise PlanError(f"no answers collected for item {i}")
            if majority_vote(votes) == question.question.true_category:
                correct += 1
        return correct / len(planned)
