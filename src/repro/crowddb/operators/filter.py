"""Crowd-powered filter (CrowdScreen [7]; Motivation Example 2).

Each item gets a yes/no predicate question repeated ``repetitions``
times; items whose majority vote is "yes" pass the filter.  An
optional adaptive mode gives ambiguous items (those the requester
marks as hard) more repetitions — the repetition heterogeneity that
Scenario II tunes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from ...errors import PlanError
from ...market.task import TaskType
from ..aggregate import PredicateQuestion, majority_confidence, majority_vote
from ..planner import PlannedQuestion

__all__ = ["CrowdFilter"]


@dataclass
class CrowdFilter:
    """Filter *items* by a latent predicate via yes/no crowd votes.

    Parameters
    ----------
    items:
        Candidate objects.
    truths:
        Latent ground-truth predicate value per item.
    task_type:
        Market task type of one vote (e.g. "yes-no-vote").
    repetitions:
        Base vote count per item.
    hard_items:
        Indices of items the planner considers ambiguous; they get
        ``hard_extra`` additional votes.
    hard_extra:
        Extra votes for hard items.
    """

    items: Sequence[Any]
    truths: Sequence[bool]
    task_type: TaskType
    repetitions: int = 3
    hard_items: Sequence[int] = ()
    hard_extra: int = 2

    def __post_init__(self) -> None:
        if len(self.items) != len(self.truths):
            raise PlanError(
                f"{len(self.items)} items but {len(self.truths)} truths"
            )
        if not self.items:
            raise PlanError("filtering needs at least one item")
        if self.repetitions < 1:
            raise PlanError(f"repetitions must be >= 1, got {self.repetitions}")
        if self.hard_extra < 0:
            raise PlanError(f"hard_extra must be >= 0, got {self.hard_extra}")
        bad = [i for i in self.hard_items if not 0 <= i < len(self.items)]
        if bad:
            raise PlanError(f"hard_items indices out of range: {bad}")
        self._plan: Optional[list[PlannedQuestion]] = None

    def plan(self) -> list[PlannedQuestion]:
        """One predicate question per item (cached)."""
        if self._plan is not None:
            return self._plan
        hard = set(self.hard_items)
        planned = []
        for i, (item, truth) in enumerate(zip(self.items, self.truths)):
            reps = self.repetitions + (self.hard_extra if i in hard else 0)
            q = PredicateQuestion(item=item, truth=bool(truth))
            planned.append(PlannedQuestion(q, self.task_type, reps))
        self._plan = planned
        return planned

    def collect(self, answers: dict[int, list[Any]]) -> list[Any]:
        """Items whose majority vote is yes, in input order."""
        planned = self.plan()
        passed = []
        for i, question in enumerate(planned):
            votes = answers.get(i)
            if not votes:
                raise PlanError(f"no answers collected for item {i}")
            if majority_vote(votes):
                passed.append(question.question.item)
        return passed

    def collect_with_confidence(
        self, answers: dict[int, list[Any]]
    ) -> list[tuple[Any, bool, float]]:
        """Per-item (item, verdict, posterior confidence) triples."""
        planned = self.plan()
        out = []
        for i, question in enumerate(planned):
            votes = answers.get(i)
            if not votes:
                raise PlanError(f"no answers collected for item {i}")
            verdict = bool(majority_vote(votes))
            conf = majority_confidence(
                [bool(v) for v in votes], self.task_type.accuracy
            )
            out.append((question.question.item, verdict, conf))
        return out

    def ground_truth(self) -> list[Any]:
        """Items that truly satisfy the predicate."""
        return [item for item, t in zip(self.items, self.truths) if t]
