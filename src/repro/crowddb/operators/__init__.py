"""Crowd-powered database operators (the paper's motivating apps)."""

from .count import CrowdCount, CrowdThresholdFilter
from .filter import CrowdFilter
from .groupby import CategoryQuestion, CrowdGroupBy
from .max_ import CrowdMax
from .sort import CrowdSort
from .topk import CrowdTopK

__all__ = [
    "CategoryQuestion",
    "CrowdCount",
    "CrowdFilter",
    "CrowdGroupBy",
    "CrowdMax",
    "CrowdSort",
    "CrowdTopK",
    "CrowdThresholdFilter",
]
