"""Crowd-powered max discovery ([8, 9] in the paper).

Single-elimination tournament: items are paired, each pair resolved by
repeated comparison votes, winners advance.  ``ceil(log2 n)`` rounds;
all comparisons inside a round are independent, so every round is one
parallel batch — a multi-phase job in the paper's sense (a *job* is
"accomplished by invoking tasks in parallel in one or more phases").

Because later rounds cannot be planned before earlier rounds resolve,
the engine executes round by round, re-tuning the remaining budget
each round (the per-round split is configurable).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from ...errors import PlanError
from ...market.task import TaskType
from ..aggregate import ComparisonQuestion, majority_vote
from ..planner import PlannedQuestion

__all__ = ["CrowdMax"]


@dataclass
class CrowdMax:
    """Find the max-key item via a comparison tournament.

    Parameters
    ----------
    items / keys:
        Candidates and their latent magnitudes.
    task_type:
        Market task type of a comparison vote.
    repetitions:
        Votes per match.
    """

    items: Sequence[Any]
    keys: Sequence[float]
    task_type: TaskType
    repetitions: int = 3

    def __post_init__(self) -> None:
        if len(self.items) != len(self.keys):
            raise PlanError(f"{len(self.items)} items but {len(self.keys)} keys")
        if not self.items:
            raise PlanError("max discovery needs at least one item")
        if len(set(self.keys)) != len(self.keys):
            raise PlanError("keys must be distinct")
        if self.repetitions < 1:
            raise PlanError(f"repetitions must be >= 1, got {self.repetitions}")
        # Tournament state: indices still alive.
        self._alive: list[int] = list(range(len(self.items)))
        self._round_pairs: list[tuple[int, int]] = []
        self._bye: Optional[int] = None

    @property
    def num_rounds(self) -> int:
        """Total rounds a full tournament needs."""
        return max(1, math.ceil(math.log2(max(len(self.items), 1))))

    @property
    def finished(self) -> bool:
        return len(self._alive) == 1

    @property
    def winner(self) -> Any:
        if not self.finished:
            raise PlanError("tournament still has contenders")
        return self.items[self._alive[0]]

    @property
    def result(self) -> Any:
        """Alias of :attr:`winner` (uniform multi-round operator API)."""
        return self.winner

    def plan_round(self) -> list[PlannedQuestion]:
        """Plan the next round's matches.

        Pairs the currently alive items in order; an odd item out gets
        a bye.  Raises when the tournament is already decided.
        """
        if self.finished:
            raise PlanError("tournament finished; no round to plan")
        alive = self._alive
        self._round_pairs = []
        self._bye = None
        planned = []
        i = 0
        while i + 1 < len(alive):
            a, b = alive[i], alive[i + 1]
            self._round_pairs.append((a, b))
            q = ComparisonQuestion(
                left=self.items[a],
                right=self.items[b],
                left_key=float(self.keys[a]),
                right_key=float(self.keys[b]),
            )
            planned.append(PlannedQuestion(q, self.task_type, self.repetitions))
            i += 2
        if i < len(alive):
            self._bye = alive[i]
        return planned

    def collect_round(self, answers: dict[int, list[Any]]) -> list[Any]:
        """Resolve the planned round; returns the advancing items."""
        if not self._round_pairs and self._bye is None:
            raise PlanError("no round planned")
        survivors: list[int] = []
        for qi, (a, b) in enumerate(self._round_pairs):
            votes = answers.get(qi)
            if not votes:
                raise PlanError(f"no answers for match {qi}")
            verdict = majority_vote(votes)  # True: left < right
            survivors.append(b if verdict else a)
        if self._bye is not None:
            survivors.append(self._bye)
        self._alive = survivors
        self._round_pairs = []
        self._bye = None
        return [self.items[i] for i in survivors]

    def ground_truth(self) -> Any:
        """The true maximum-key item."""
        best = max(range(len(self.items)), key=lambda i: self.keys[i])
        return self.items[best]
