"""Crowd-powered counting / estimation — the AMT experiment's task.

§5.2.1: workers see images and estimate the number of dots, then
threshold-filter.  :class:`CrowdCount` reproduces the estimation part
(repeated numeric judgments, trimmed-mean aggregation);
:class:`CrowdThresholdFilter` composes it with the filter semantics
("filter out the ones who have dots less than a given threshold").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from ...errors import PlanError
from ...market.task import TaskType
from ..aggregate import CountQuestion, aggregate_numeric
from ..planner import PlannedQuestion

__all__ = ["CrowdCount", "CrowdThresholdFilter"]


@dataclass
class CrowdCount:
    """Estimate a numeric magnitude per item via repeated judgments."""

    items: Sequence[Any]
    true_counts: Sequence[int]
    task_type: TaskType
    repetitions: int = 5
    trim: float = 0.1

    def __post_init__(self) -> None:
        if len(self.items) != len(self.true_counts):
            raise PlanError(
                f"{len(self.items)} items but {len(self.true_counts)} counts"
            )
        if not self.items:
            raise PlanError("counting needs at least one item")
        if self.repetitions < 1:
            raise PlanError(f"repetitions must be >= 1, got {self.repetitions}")
        self._plan: Optional[list[PlannedQuestion]] = None

    def plan(self) -> list[PlannedQuestion]:
        if self._plan is not None:
            return self._plan
        planned = [
            PlannedQuestion(
                CountQuestion(item=item, true_count=int(count)),
                self.task_type,
                self.repetitions,
            )
            for item, count in zip(self.items, self.true_counts)
        ]
        self._plan = planned
        return planned

    def collect(self, answers: dict[int, list[Any]]) -> dict[Any, float]:
        """Trimmed-mean estimate per item (keyed by the item object)."""
        planned = self.plan()
        out = {}
        for i, question in enumerate(planned):
            votes = answers.get(i)
            if not votes:
                raise PlanError(f"no answers collected for item {i}")
            out[question.question.item] = aggregate_numeric(
                [float(v) for v in votes], trim=self.trim
            )
        return out


@dataclass
class CrowdThresholdFilter:
    """The AMT experiment's end-to-end task: estimate then threshold.

    Items whose crowd-estimated count is >= *threshold* pass.
    """

    items: Sequence[Any]
    true_counts: Sequence[int]
    threshold: float
    task_type: TaskType
    repetitions: int = 5
    trim: float = 0.1

    def __post_init__(self) -> None:
        self._counter = CrowdCount(
            items=self.items,
            true_counts=self.true_counts,
            task_type=self.task_type,
            repetitions=self.repetitions,
            trim=self.trim,
        )

    def plan(self) -> list[PlannedQuestion]:
        return self._counter.plan()

    def collect(self, answers: dict[int, list[Any]]) -> list[Any]:
        """Items passing the threshold, in input order."""
        estimates = self._counter.collect(answers)
        return [item for item in self.items if estimates[item] >= self.threshold]

    def ground_truth(self) -> list[Any]:
        return [
            item
            for item, count in zip(self.items, self.true_counts)
            if count >= self.threshold
        ]
