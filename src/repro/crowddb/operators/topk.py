"""Crowd-powered top-k ([10] in the paper: Davidson et al., ICDT 2013).

Two-phase plan:

1. **Pruning round** — items are grouped into buckets of size
   ``2k``; within each bucket, all pairs are compared and the k
   highest-scoring items survive (one parallel batch).
2. **Final round** — all survivors are compared pairwise and the top k
   by Copeland score are returned, ordered.

Both rounds are parallel batches of comparison votes, so each feeds
the tuner as one H-Tuning instance (Scenario I within a round).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional, Sequence

import numpy as np

from ...errors import PlanError
from ...market.task import TaskType
from ..aggregate import ComparisonQuestion, majority_vote
from ..planner import PlannedQuestion

__all__ = ["CrowdTopK"]


@dataclass
class CrowdTopK:
    """Find the k largest-key items via bucketed pairwise voting.

    Parameters
    ----------
    items / keys:
        Candidates and their latent magnitudes (keys distinct).
    k:
        How many winners to return (1 <= k <= len(items)).
    task_type:
        Market task type of one comparison vote.
    repetitions:
        Votes per comparison.
    """

    items: Sequence[Any]
    keys: Sequence[float]
    k: int
    task_type: TaskType
    repetitions: int = 3

    def __post_init__(self) -> None:
        if len(self.items) != len(self.keys):
            raise PlanError(f"{len(self.items)} items but {len(self.keys)} keys")
        if not self.items:
            raise PlanError("top-k needs at least one item")
        if len(set(self.keys)) != len(self.keys):
            raise PlanError("keys must be distinct")
        if not 1 <= self.k <= len(self.items):
            raise PlanError(
                f"k must be in [1, {len(self.items)}], got {self.k}"
            )
        if self.repetitions < 1:
            raise PlanError(f"repetitions must be >= 1, got {self.repetitions}")
        self._alive: list[int] = list(range(len(self.items)))
        self._phase = "prune" if len(self.items) > 2 * self.k else "final"
        self._round_questions: list[tuple[int, int]] = []
        self._buckets: list[list[int]] = []

    # -- phases --------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._phase == "done"

    @property
    def result(self) -> list[Any]:
        if not self.finished:
            raise PlanError("top-k not finished")
        return [self.items[i] for i in self._alive]

    def plan_round(self) -> list[PlannedQuestion]:
        """Plan the next parallel batch of comparisons."""
        if self.finished:
            raise PlanError("top-k already finished")
        self._round_questions = []
        planned: list[PlannedQuestion] = []
        if self._phase == "prune":
            self._buckets = [
                self._alive[i : i + 2 * self.k]
                for i in range(0, len(self._alive), 2 * self.k)
            ]
            for bucket in self._buckets:
                for a_pos in range(len(bucket)):
                    for b_pos in range(a_pos + 1, len(bucket)):
                        a, b = bucket[a_pos], bucket[b_pos]
                        self._round_questions.append((a, b))
                        planned.append(self._question(a, b))
        else:  # final
            for a_pos in range(len(self._alive)):
                for b_pos in range(a_pos + 1, len(self._alive)):
                    a, b = self._alive[a_pos], self._alive[b_pos]
                    self._round_questions.append((a, b))
                    planned.append(self._question(a, b))
        if not planned:
            # Degenerate: nothing to compare (|alive| <= 1) — finish.
            self._phase = "done"
            raise PlanError("nothing to compare; top-k already decided")
        return planned

    def _question(self, a: int, b: int) -> PlannedQuestion:
        q = ComparisonQuestion(
            left=self.items[a],
            right=self.items[b],
            left_key=float(self.keys[a]),
            right_key=float(self.keys[b]),
        )
        return PlannedQuestion(q, self.task_type, self.repetitions)

    def collect_round(self, answers: dict[int, list[Any]]) -> list[Any]:
        """Resolve the planned round; returns the still-alive items."""
        if not self._round_questions:
            raise PlanError("no round planned")
        wins: dict[int, float] = {i: 0.0 for i in self._alive}
        for qi, (a, b) in enumerate(self._round_questions):
            votes = answers.get(qi)
            if not votes:
                raise PlanError(f"no answers for comparison {qi}")
            verdict = majority_vote(votes)  # True: left < right
            if verdict:
                wins[b] += 1.0
            else:
                wins[a] += 1.0
        if self._phase == "prune":
            survivors: list[int] = []
            for bucket in self._buckets:
                keep = min(self.k, len(bucket))
                ranked = sorted(bucket, key=lambda i: -wins[i])
                survivors.extend(ranked[:keep])
            self._alive = survivors
            self._phase = (
                "final" if len(self._alive) > self.k else "done"
            )
        else:
            ranked = sorted(self._alive, key=lambda i: -wins[i])
            self._alive = ranked[: self.k]
            self._phase = "done"
        self._round_questions = []
        self._buckets = []
        return [self.items[i] for i in self._alive]

    def ground_truth(self) -> list[Any]:
        """The true top-k, descending by key."""
        order = sorted(
            range(len(self.items)), key=lambda i: -float(self.keys[i])
        )
        return [self.items[i] for i in order[: self.k]]
