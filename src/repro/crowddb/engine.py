"""Crowd-query execution engine.

Ties the whole reproduction together, end to end:

1. the operator plans its atomic questions;
2. the planner builds an :class:`~repro.core.problem.HTuningProblem`;
3. the :class:`~repro.core.tuner.Tuner` allocates the budget (EA/RA/HA
   by scenario);
4. the priced tasks are published on the
   :class:`~repro.market.platform.CrowdPlatform`;
5. answers flow back into the operator's ``collect``.

This is the "crowd-powered database with primitive tuning ability"
the paper's conclusion describes.

The platform decides which market engine serves the query
(``"aggregate"``, ``"agent"``, or the vectorized ``"batch"`` engine —
answer sampling included, so crowd queries no longer require the
scalar event loop); :class:`QueryOutcome` records which one ran.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional

from ..core.problem import Allocation
from ..core.tuner import Tuner
from ..errors import PlanError
from ..market.platform import CrowdPlatform
from ..market.pricing import PricingModel
from ..market.simulator import JobResult
from .planner import CrowdQuery, PlannedQuestion

__all__ = ["QueryOutcome", "CrowdQueryEngine"]


@dataclass
class QueryOutcome:
    """Everything a requester gets back from one crowd query."""

    result: Any
    allocation: Allocation
    job: JobResult
    strategy: str
    #: Market engine that served the query ("aggregate"/"agent"/"batch").
    engine: str = "aggregate"

    @property
    def latency(self) -> float:
        return self.job.latency

    @property
    def total_paid(self) -> int:
        return self.job.total_paid


class CrowdQueryEngine:
    """Executes crowd operators against a platform with tuned budgets.

    Parameters
    ----------
    platform:
        The (simulated) crowdsourcing market.
    pricing:
        ``type name -> PricingModel`` registry the tuner plans with;
        should describe the same market the platform simulates (use
        :mod:`repro.inference` to calibrate it from probes).
    tuner:
        Allocation strategy; defaults to the scenario-aware ``auto``.
    """

    def __init__(
        self,
        platform: CrowdPlatform,
        pricing: Mapping[str, PricingModel],
        tuner: Optional[Tuner] = None,
    ) -> None:
        if not pricing:
            raise PlanError("the engine needs at least one pricing model")
        self.platform = platform
        self.pricing = dict(pricing)
        self.tuner = tuner or Tuner()

    def execute(self, operator: Any, budget: int) -> QueryOutcome:
        """Run a single-phase operator (sort / filter / count).

        The operator must expose ``plan() -> list[PlannedQuestion]``
        and ``collect(answers) -> result``.
        """
        planned = operator.plan()
        outcome = self._run_phase(planned, budget)
        answers = outcome.job.answers
        result = operator.collect(answers)
        return QueryOutcome(
            result=result,
            allocation=outcome.allocation,
            job=outcome.job,
            strategy=outcome.strategy,
            engine=outcome.engine,
        )

    def execute_tournament(self, operator: Any, budget: int) -> QueryOutcome:
        """Run a multi-round operator; kept as the historic name for
        max tournaments (see :meth:`execute_rounds`)."""
        return self.execute_rounds(operator, budget)

    def execute_rounds(self, operator: Any, budget: int) -> QueryOutcome:
        """Run any multi-round operator (max tournament, top-k, ...).

        The operator must expose ``finished``, ``plan_round()``,
        ``collect_round(answers)``, and ``result``.  The remaining
        budget is split across estimated remaining rounds; each round
        is tuned and executed as one parallel batch, and round
        latencies accumulate (rounds are sequential).
        """
        total_latency = 0.0
        total_paid = 0
        last: Optional[QueryOutcome] = None
        remaining_budget = int(budget)
        while not operator.finished:
            planned = operator.plan_round()
            rounds_left = self._estimate_rounds_left(operator)
            reps_this_round = sum(q.repetitions for q in planned)
            if rounds_left <= 1:
                round_budget = remaining_budget
            else:
                # Give this round its per-repetition share, never less
                # than the feasibility floor.
                share = max(
                    reps_this_round,
                    remaining_budget // rounds_left,
                )
                round_budget = min(share, remaining_budget)
            outcome = self._run_phase(planned, round_budget)
            operator.collect_round(outcome.job.answers)
            total_latency += outcome.job.latency
            total_paid += outcome.job.total_paid
            remaining_budget -= outcome.job.total_paid
            last = outcome
        if last is None:
            raise PlanError("multi-round operator had no rounds to run")
        job = last.job
        job.makespan = total_latency
        job.total_paid = total_paid
        return QueryOutcome(
            result=operator.result,
            allocation=last.allocation,
            job=job,
            strategy=last.strategy,
            engine=last.engine,
        )

    @staticmethod
    def _estimate_rounds_left(operator: Any) -> int:
        import math

        alive = len(getattr(operator, "_alive", [])) or 2
        return max(1, math.ceil(math.log2(alive)))

    def _run_phase(
        self, planned: list[PlannedQuestion], budget: int
    ) -> QueryOutcome:
        query = CrowdQuery(planned, self.pricing, budget)
        problem = query.to_problem()
        strategy = self.tuner.resolve_strategy(problem)
        allocation = self.tuner.tune(problem)
        orders = query.to_orders(allocation)
        requests = [
            # run_batch assigns atomic ids sequentially in order, which
            # matches the question indices because orders are in plan
            # order.
            _order_to_request(o)
            for o in orders
        ]
        job = self.platform.run_batch(requests)
        # Remap platform-assigned atomic ids back to question indices.
        job.answers = _remap_sequential(job.answers)
        return QueryOutcome(
            result=None,
            allocation=allocation,
            job=job,
            strategy=strategy,
            engine=self.platform.engine_name,
        )


def _order_to_request(order):
    from ..market.platform import PublishRequest

    return PublishRequest(
        task_type=order.task_type,
        prices=order.prices,
        payload=order.payload,
    )


def _remap_sequential(answers: dict[int, list[Any]]) -> dict[int, list[Any]]:
    """Platform atomic ids are globally sequential; rebase to 0..n-1
    per batch so they line up with question indices."""
    if not answers:
        return answers
    base = min(answers)
    return {k - base: v for k, v in answers.items()}
