"""Crowd-powered database substrate (paper §1's motivating systems).

* :mod:`~repro.crowddb.aggregate` — question payloads + answer
  aggregation under error-prone workers;
* :mod:`~repro.crowddb.operators` — sort, filter, max, count/threshold;
* :mod:`~repro.crowddb.planner` — operator plans → H-Tuning instances
  → market orders;
* :mod:`~repro.crowddb.engine` — end-to-end tuned query execution.
"""

from .aggregate import (
    ComparisonQuestion,
    CountQuestion,
    PredicateQuestion,
    aggregate_numeric,
    majority_confidence,
    majority_vote,
)
from .engine import CrowdQueryEngine, QueryOutcome
from .operators import (
    CategoryQuestion,
    CrowdCount,
    CrowdFilter,
    CrowdGroupBy,
    CrowdMax,
    CrowdSort,
    CrowdThresholdFilter,
    CrowdTopK,
)
from .planner import CrowdQuery, PlannedQuestion

__all__ = [
    "CategoryQuestion",
    "ComparisonQuestion",
    "CountQuestion",
    "CrowdCount",
    "CrowdFilter",
    "CrowdGroupBy",
    "CrowdMax",
    "CrowdQuery",
    "CrowdQueryEngine",
    "CrowdSort",
    "CrowdTopK",
    "CrowdThresholdFilter",
    "PlannedQuestion",
    "PredicateQuestion",
    "QueryOutcome",
    "aggregate_numeric",
    "majority_confidence",
    "majority_vote",
]
