"""Query planner: crowd operators → H-Tuning instances → market orders.

This is the glue of Motivation Examples 1 and 2: a database query is
decomposed into atomic voting tasks with repetition requirements (the
"next votes" style planning the paper cites), the tuner allocates the
budget over them, and the resulting priced tasks are published.

:class:`CrowdQuery` is the intermediate representation:

    operator  --plan-->  [PlannedQuestion]  --to_problem-->  HTuningProblem
                                            --to_orders--->  [AtomicTaskOrder]

One planned question = one atomic task; its repetitions become the
task's repetition requirement, its :class:`~repro.market.task.TaskType`
supplies λ_p, and the pricing registry supplies λ_o(c) per type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

from ..core.problem import Allocation, HTuningProblem, TaskSpec
from ..errors import PlanError
from ..market.pricing import PricingModel
from ..market.simulator import AtomicTaskOrder
from ..market.task import TaskType

__all__ = ["PlannedQuestion", "CrowdQuery"]


@dataclass(frozen=True)
class PlannedQuestion:
    """One atomic task in a crowd query plan."""

    question: Any  # payload exposing sample_answer(rng, accuracy)
    task_type: TaskType
    repetitions: int

    def __post_init__(self) -> None:
        if self.repetitions < 1 or int(self.repetitions) != self.repetitions:
            raise PlanError(
                f"repetitions must be a positive integer, got {self.repetitions}"
            )
        if not hasattr(self.question, "sample_answer"):
            raise PlanError(
                f"question payload {self.question!r} lacks sample_answer()"
            )


class CrowdQuery:
    """A planned crowd query: questions + pricing registry + budget."""

    def __init__(
        self,
        questions: Sequence[PlannedQuestion],
        pricing: Mapping[str, PricingModel],
        budget: int,
    ) -> None:
        if not questions:
            raise PlanError("a crowd query needs at least one question")
        self.questions = list(questions)
        self.pricing = dict(pricing)
        missing = {
            q.task_type.name for q in self.questions
        } - set(self.pricing)
        if missing:
            raise PlanError(
                f"no pricing model registered for task types: {sorted(missing)}"
            )
        self.budget = int(budget)

    def to_problem(self) -> HTuningProblem:
        """Build the H-Tuning instance for this query.

        Task ids are the question indices, so allocations map back to
        questions positionally.
        """
        specs = [
            TaskSpec(
                task_id=i,
                repetitions=q.repetitions,
                pricing=self.pricing[q.task_type.name],
                processing_rate=q.task_type.processing_rate,
                type_name=q.task_type.name,
            )
            for i, q in enumerate(self.questions)
        ]
        return HTuningProblem(specs, self.budget)

    def to_orders(self, allocation: Allocation) -> list[AtomicTaskOrder]:
        """Turn an allocation into market orders, one per question."""
        orders = []
        for i, q in enumerate(self.questions):
            if i not in allocation:
                raise PlanError(f"allocation missing task id {i}")
            prices = allocation[i]
            if len(prices) != q.repetitions:
                raise PlanError(
                    f"question {i} needs {q.repetitions} prices, "
                    f"allocation provides {len(prices)}"
                )
            orders.append(
                AtomicTaskOrder(
                    task_type=q.task_type,
                    prices=tuple(prices),
                    atomic_task_id=i,
                    payload=q.question,
                )
            )
        return orders
