"""Answer aggregation for error-prone crowd workers.

HPU characteristic (ii): results are error-prone with some probability.
The crowd-DB operators therefore ask each atomic question several times
(the "repetitions" that Scenarios II/III tune) and aggregate:

* :func:`majority_vote` — the standard binary/categorical rule;
* :func:`majority_confidence` — posterior probability that the
  majority label is the truth under iid Bernoulli(accuracy) workers;
* :func:`aggregate_numeric` — robust mean for estimation questions
  (the dot-counting tasks of the AMT experiment, §5.2.1).

Payload classes double as the simulator's answer generators: the
market calls ``payload.sample_answer(rng, accuracy)`` per repetition.
"""

from __future__ import annotations

import itertools
import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Hashable, Optional, Sequence

import numpy as np

from ..errors import PlanError

__all__ = [
    "ComparisonQuestion",
    "PredicateQuestion",
    "CountQuestion",
    "majority_vote",
    "majority_confidence",
    "aggregate_numeric",
]

_question_uid = itertools.count()


@dataclass(frozen=True)
class ComparisonQuestion:
    """"Is *left* smaller than *right*?" — the pairwise sort/max vote.

    ``left_key``/``right_key`` are the latent ground-truth magnitudes;
    workers answer ``left_key < right_key`` with probability
    *accuracy*, else the opposite.
    """

    left: Any
    right: Any
    left_key: float
    right_key: float
    qid: int = field(default_factory=lambda: next(_question_uid))

    def __post_init__(self) -> None:
        if self.left_key == self.right_key:
            raise PlanError(
                f"comparison requires distinct keys, got {self.left_key} for both "
                f"{self.left!r} and {self.right!r}"
            )

    @property
    def truth(self) -> bool:
        return self.left_key < self.right_key

    def sample_answer(self, rng: np.random.Generator, accuracy: float) -> bool:
        correct = rng.random() < accuracy
        return self.truth if correct else not self.truth


@dataclass(frozen=True)
class PredicateQuestion:
    """"Does *item* satisfy the predicate?" — the filter's yes/no vote."""

    item: Any
    truth: bool
    qid: int = field(default_factory=lambda: next(_question_uid))

    def sample_answer(self, rng: np.random.Generator, accuracy: float) -> bool:
        correct = rng.random() < accuracy
        return self.truth if correct else not self.truth


@dataclass(frozen=True)
class CountQuestion:
    """"How many dots are on this image?" — the AMT estimation task.

    Workers report the true count corrupted by relative Gaussian noise
    whose spread shrinks with accuracy: std = (1 − accuracy + floor) ·
    truth; answers are clipped at zero and rounded.
    """

    item: Any
    true_count: int
    noise_floor: float = 0.05
    qid: int = field(default_factory=lambda: next(_question_uid))

    def __post_init__(self) -> None:
        if self.true_count < 0:
            raise PlanError(f"true_count must be >= 0, got {self.true_count}")
        if self.noise_floor < 0:
            raise PlanError(f"noise_floor must be >= 0, got {self.noise_floor}")

    def sample_answer(self, rng: np.random.Generator, accuracy: float) -> int:
        spread = (1.0 - accuracy + self.noise_floor) * max(self.true_count, 1)
        value = rng.normal(self.true_count, spread)
        return int(max(0, round(value)))


def majority_vote(answers: Sequence[Hashable]) -> Hashable:
    """Most frequent answer; deterministic tie-break by sorted repr.

    Raises :class:`~repro.errors.PlanError` on an empty answer list —
    silent defaults would mask lost tasks.
    """
    if not answers:
        raise PlanError("cannot take a majority of zero answers")
    counts = Counter(answers)
    best = max(counts.values())
    winners = sorted((a for a, c in counts.items() if c == best), key=repr)
    return winners[0]


def majority_confidence(
    answers: Sequence[bool], accuracy: float, prior: float = 0.5
) -> float:
    """Posterior ``P(majority answer is true)`` for binary questions.

    Workers are iid Bernoulli(*accuracy*); *prior* is the prior
    probability of the majority label.  With ``a`` votes for the
    majority label and ``b`` against:

        P ∝ prior · acc^a (1−acc)^b  vs  (1−prior) · acc^b (1−acc)^a
    """
    if not answers:
        raise PlanError("cannot score zero answers")
    if not 0.5 <= accuracy < 1.0:
        # accuracy 1.0 would be certainty; 0.5 is an uninformative crowd.
        if accuracy == 1.0:
            return 1.0
        raise PlanError(f"accuracy must be in [0.5, 1], got {accuracy}")
    if not 0.0 < prior < 1.0:
        raise PlanError(f"prior must be in (0,1), got {prior}")
    label = majority_vote(answers)
    a = sum(1 for x in answers if x == label)
    b = len(answers) - a
    log_for = math.log(prior) + a * math.log(accuracy) + b * math.log1p(-accuracy)
    log_against = (
        math.log1p(-prior) + b * math.log(accuracy) + a * math.log1p(-accuracy)
    )
    m = max(log_for, log_against)
    return math.exp(log_for - m) / (math.exp(log_for - m) + math.exp(log_against - m))


def aggregate_numeric(
    answers: Sequence[float], trim: float = 0.1
) -> float:
    """Trimmed mean of numeric crowd estimates.

    *trim* is the fraction discarded from each tail (0 = plain mean);
    robust to the occasional wildly-wrong count.
    """
    if not answers:
        raise PlanError("cannot aggregate zero numeric answers")
    if not 0.0 <= trim < 0.5:
        raise PlanError(f"trim must be in [0, 0.5), got {trim}")
    values = np.sort(np.asarray(answers, dtype=float))
    k = int(len(values) * trim)
    kept = values[k : len(values) - k] if k > 0 else values
    if kept.size == 0:
        kept = values
    return float(kept.mean())
