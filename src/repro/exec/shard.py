"""Replication-ensemble sharding with a bit-identical merge.

A replication ensemble is R seeded worlds drawn from one base seed via
:func:`repro.stats.rng.replication_seeds` — the *public* seed protocol
every engine shares.  Because the per-replication seeds are materialized
up front, the ensemble splits into contiguous shards that can run
anywhere: each shard is handed its seed slice plus the **global offset**
of its first replication, the engines thread that offset into fault
coordinates and error labels (``replication_offset=``), and the merge
at finalize is plain concatenation in offset order.

Identity contract (certified in
``tests/exec/test_replication_sharding.py``):

* ``executor=None`` (in-process sharding) is **fully bit-identical** to
  the unsharded sequential run for every engine and shard count —
  including process-local task ``uid`` / ``worker_id`` counters, which
  keep advancing in replication order exactly as one sequential pass
  would advance them.
* A process executor runs shards in separate interpreters, so those
  global counters restart per worker: results are
  **trajectory-identical** (same events, times, costs, answers) with
  ids matching modulo a per-shard constant — the same relative-id
  contract ``tests/perf/test_market_replications.py`` established for
  engine comparison.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ModelError, RemoteTaskError
from .base import ExecTask, resolve_executor
from .worker import run_replication_shard

__all__ = ["split_replications", "sharded_run_replications"]


def split_replications(n: int, shards: int) -> list:
    """Contiguous near-equal ``(offset, count)`` slices of ``range(n)``.

    The first ``n % shards`` shards carry one extra replication; empty
    shards are dropped, so every returned slice is non-empty and the
    counts sum to *n*.
    """
    if not isinstance(n, int) or isinstance(n, bool) or n < 1:
        raise ModelError(f"replication count must be an int >= 1, got {n!r}")
    if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
        raise ModelError(f"shards must be an int >= 1, got {shards!r}")
    shards = min(shards, n)
    base, extra = divmod(n, shards)
    bounds = []
    offset = 0
    for shard in range(shards):
        count = base + (1 if shard < extra else 0)
        bounds.append((offset, count))
        offset += count
    return bounds


def sharded_run_replications(
    simulator,
    orders,
    seeds,
    *,
    engine=None,
    shards: int = 2,
    executor=None,
    recorders=None,
    start_time: float = 0.0,
    **run_kwargs,
) -> list:
    """Run a replication ensemble in contiguous shards and merge.

    ``seeds`` is the full ensemble's seed list (normally
    ``replication_seeds(seed, R)``); each shard receives its slice plus
    its global ``replication_offset``.  With ``executor=None`` the
    shards run in-process (bit-identical to the sequential ensemble);
    with an executor name/instance the shards become ``call`` tasks on
    that executor — crash recovery, straggler requeue and degradation
    apply per shard, and a shard whose retries exhaust raises
    :class:`~repro.errors.RemoteTaskError`.

    ``recorders`` are only supported in-process: a recorder mutated in
    a child process never reaches the caller, so handing recorders to a
    remote executor raises instead of silently dropping traces.
    """
    from ..perf.engine import resolve_engine

    seeds = list(seeds)
    resolved_engine = resolve_engine(engine)
    bounds = split_replications(len(seeds), shards)

    if executor is None:
        if recorders is not None:
            recorders = list(recorders)
        results: list = []
        for offset, count in bounds:
            shard_recorders = (
                recorders[offset:offset + count]
                if recorders is not None
                else None
            )
            results.extend(
                resolved_engine.run_replications(
                    simulator,
                    orders,
                    seeds[offset:offset + count],
                    shard_recorders,
                    start_time,
                    replication_offset=offset,
                    **run_kwargs,
                )
            )
        return results

    if recorders is not None:
        raise ModelError(
            "recorders cannot cross process boundaries; run recorded "
            "ensembles with executor=None (in-process sharding)"
        )
    executor = resolve_executor(executor)
    tasks = [
        ExecTask(
            index=shard_index,
            kind="call",
            call=(
                run_replication_shard,
                (
                    simulator,
                    orders,
                    seeds[offset:offset + count],
                    offset,
                    resolved_engine.name,
                    start_time,
                ),
                {"run_kwargs": dict(run_kwargs)} if run_kwargs else {},
            ),
        )
        for shard_index, (offset, count) in enumerate(bounds)
    ]
    outcomes = {o.index: o for o in executor.run_tasks(tasks)}
    merged: list = []
    for shard_index in range(len(bounds)):
        outcome = outcomes.get(shard_index)
        if outcome is None or not outcome.ok:
            message = (
                outcome.error.get("message", "shard failed")
                if outcome is not None and outcome.error
                else "shard was never completed"
            )
            error = RemoteTaskError(
                f"replication shard {shard_index} failed on executor "
                f"{executor.name!r}: {message}"
            )
            if outcome is not None and outcome.error:
                from ..resilience.document import ErrorDocument

                error.error_document = ErrorDocument.from_dict(outcome.error)
            raise error
        merged.extend(outcome.result)
    return merged
