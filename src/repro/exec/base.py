"""Executor protocol + registry: *where* a batch of runs executes.

An :class:`Executor` consumes :class:`ExecTask` wire documents — a
``(spec, config)`` pair serialized with the library's own
``to_dict`` forms, or a picklable callable for replication shards —
and produces one :class:`TaskOutcome` per task.  Executors are pure
orchestration: a task's *payload* is executor-invariant (the same
``(spec, config)`` produces the same result document on every
executor), which is why :class:`~repro.api.config.RunConfig` excludes
its ``executor`` field from serialization and why serial and process
batch reports compare byte-identically.

The registry mirrors the engine / comparator / experiment registries
(:func:`register_executor` / :func:`get_executor` /
:func:`available_executors`), so ``RunConfig(executor="process")`` and
``repro run-many --executor process`` resolve through the same single
place.

* :class:`SerialExecutor` (``"serial"``) — the wire format exercised
  in-process: tasks round-trip through their documents exactly as a
  worker would see them, but execute sequentially in the caller.
* :class:`~repro.exec.process.ProcessExecutor` (``"process"``) — the
  supervised multiprocess worker pool with crash recovery, straggler
  requeue and graceful degradation (see :mod:`repro.exec.process`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from ..errors import ModelError, RegistryError, ReproError

__all__ = [
    "ExecTask",
    "TaskOutcome",
    "Executor",
    "SerialExecutor",
    "register_executor",
    "get_executor",
    "resolve_executor",
    "available_executors",
    "DEFAULT_EXECUTOR",
]


@dataclass(frozen=True)
class ExecTask:
    """One unit of work in executor wire format.

    ``kind="run"`` tasks carry the serialized ``(spec, config)`` pair —
    a worker rebuilds both with ``from_dict`` and executes through the
    ordinary :meth:`repro.api.Session.run` path, so retries, fault
    plans and cooperative timeouts inside the run behave exactly as
    they do serially.  ``kind="call"`` tasks carry a picklable
    ``(func, args, kwargs)`` triple (the replication-shard fan-out of
    :func:`repro.exec.shard.sharded_run_replications`).
    """

    index: int
    kind: str = "run"  # "run" | "call"
    spec: Optional[dict] = None
    config: Optional[dict] = None
    call: Optional[tuple] = None
    fingerprint: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ("run", "call"):
            raise ModelError(
                f"unknown task kind {self.kind!r}; expected 'run' or 'call'"
            )
        if self.kind == "run" and (self.spec is None or self.config is None):
            raise ModelError(
                "a 'run' task needs serialized spec and config documents"
            )
        if self.kind == "call" and self.call is None:
            raise ModelError("a 'call' task needs a (func, args, kwargs) triple")

    @property
    def payload(self):
        """What crosses the wire to a worker for this task."""
        if self.kind == "run":
            return (self.spec, self.config)
        return self.call


@dataclass(frozen=True)
class TaskOutcome:
    """One task's fate: status + result/error document.

    ``result`` is the :meth:`RunResult.to_dict` document for ``run``
    tasks (restorable via ``RunResult.from_document``) or the
    function's return value for ``call`` tasks; ``error`` is an
    :class:`~repro.resilience.document.ErrorDocument` dict.  ``worker``
    and ``dispatches`` are supervisor bookkeeping (``None``/1 on the
    serial executor).
    """

    index: int
    status: str  # "succeeded" | "degraded" | "failed"
    result: Optional[object] = None
    error: Optional[dict] = None
    worker: Optional[int] = None
    dispatches: int = 1

    @property
    def ok(self) -> bool:
        return self.status != "failed"


class Executor:
    """Strategy interface: execute a batch of :class:`ExecTask` units.

    ``run_tasks`` returns outcomes in *completion* order; callers index
    them back by :attr:`TaskOutcome.index`.  ``on_complete(task,
    outcome)`` fires as each task finishes (the checkpoint-journal
    hook), ``on_event(dict)`` streams supervisor observability events
    (crashes, requeues, respawns — serial executors emit none).

    ``faults`` / ``retry`` / ``timeout`` are the *supervisor-level*
    policies: ``worker.*`` fault sites, the requeue budget (a task is
    dispatched at most ``1 + retry.attempts`` times), and the per-task
    straggler deadline.  The same policies also travel inside each
    ``run`` task's config document, where they drive the ordinary
    in-run resilience machinery — the ``worker.*`` sites are
    unreachable from in-run :func:`~repro.resilience.faults.site_check`
    calls, so nothing fires twice.

    ``warmup`` is an optional phase-kernel cache snapshot
    (:func:`repro.perf.cache.export_ladder_state`) multiprocess
    executors ship to freshly spawned workers; in-process executors
    ignore it (their caches are already warm by definition).  Purely
    a performance hint — payloads are identical with or without it.
    """

    name: str = ""

    def run_tasks(
        self,
        tasks,
        *,
        fail_fast: bool = False,
        faults=None,
        retry=None,
        timeout=None,
        on_complete: Optional[Callable] = None,
        on_event: Optional[Callable] = None,
        warmup=None,
    ) -> list:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


def execute_task_inline(task: ExecTask) -> TaskOutcome:
    """Run one task in the current process (the serial/degraded path).

    Exactly what a pool worker does with the task's wire payload, minus
    the queues: documents in, documents out.
    """
    from .worker import execute_wire_payload

    try:
        status, result = execute_wire_payload(task.kind, task.payload)
    except ReproError as exc:
        return TaskOutcome(
            index=task.index,
            status="failed",
            error=_capture_error(exc, task),
        )
    return TaskOutcome(index=task.index, status=status, result=result)


def _capture_error(exc: BaseException, task: ExecTask) -> dict:
    """An :class:`ErrorDocument` dict for *exc* raised executing *task*."""
    from ..resilience.document import ErrorDocument

    spec = config = None
    if task.kind == "run":
        from ..api.config import RunConfig
        from ..api.spec import ExperimentSpec

        try:
            spec = ExperimentSpec.from_dict(task.spec)
            config = RunConfig.from_dict(task.config)
        except Exception:
            spec = config = None
    return ErrorDocument.capture(exc, spec=spec, config=config).to_dict()


class SerialExecutor(Executor):
    """The wire format, exercised sequentially in-process.

    Every task round-trips through its serialized documents — the same
    bytes a pool worker would receive — so ``executor="serial"``
    certifies the wire protocol itself while staying single-process
    (and therefore fully bit-identical, including process-local task
    uid / worker-id counters).
    """

    name = "serial"

    def run_tasks(
        self,
        tasks,
        *,
        fail_fast: bool = False,
        faults=None,
        retry=None,
        timeout=None,
        on_complete: Optional[Callable] = None,
        on_event: Optional[Callable] = None,
        warmup=None,  # in-process: caches are already warm
    ) -> list:
        outcomes = []
        for task in tasks:
            outcome = execute_task_inline(task)
            outcomes.append(outcome)
            if on_complete is not None:
                on_complete(task, outcome)
            if fail_fast and not outcome.ok:
                break
        return outcomes


# ---------------------------------------------------------------------------
# the executor registry (mirrors engines / comparators / experiments)
# ---------------------------------------------------------------------------

_REGISTRY: dict = {}

#: Name of the executor used when callers pass nothing.
DEFAULT_EXECUTOR = "serial"


def register_executor(
    executor: Executor, name: Optional[str] = None, replace: bool = False
) -> Executor:
    """Add *executor* to the registry under *name* (default: its own).

    Registered names are what ``RunConfig(executor=...)`` and
    ``repro run-many --executor`` accept.
    """
    key = name or executor.name
    if not key:
        raise ModelError("an executor needs a non-empty name")
    if key in _REGISTRY and not replace:
        raise ModelError(
            f"executor {key!r} is already registered; pass replace=True to "
            "override"
        )
    _REGISTRY[key] = executor
    return executor


def get_executor(executor: Union[str, Executor, None]) -> Executor:
    """Resolve an ``executor=`` argument to an :class:`Executor`.

    Accepts an executor instance (returned as-is), a registered name,
    or ``None`` (the default serial executor).  Unknown names raise
    :class:`~repro.errors.RegistryError` with a did-you-mean hint.
    """
    if executor is None:
        executor = DEFAULT_EXECUTOR
    if isinstance(executor, Executor):
        return executor
    resolved = _REGISTRY.get(executor)
    if resolved is None:
        raise RegistryError.unknown(
            "executor", executor, _REGISTRY,
            hint="or an Executor instance",
        )
    return resolved


_MISSING = object()


def resolve_executor(executor) -> Executor:
    """The single place ``executor=`` defaulting happens.

    Accepts everything :func:`get_executor` does **plus** a config
    object exposing an ``executor`` attribute
    (:class:`repro.api.RunConfig`) — same unwrap contract as
    :func:`repro.perf.engine.resolve_engine`.
    """
    if executor is None or isinstance(executor, (str, Executor)):
        return get_executor(executor)
    inner = getattr(executor, "executor", _MISSING)
    if inner is not _MISSING:
        return get_executor(inner)
    return get_executor(executor)


def available_executors() -> tuple:
    """Registered executor names, sorted (CLI choices come from here)."""
    return tuple(sorted(_REGISTRY))


register_executor(SerialExecutor())
