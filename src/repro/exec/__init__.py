"""Executors: where a batch of runs executes (serial / process pool).

The executor layer sits between :class:`repro.api.Session` and the
engines: :meth:`Session.run_many` fans its specs — and
:func:`sharded_run_replications` fans a replication ensemble — across
an :class:`Executor` resolved through the same kind of name registry
engines and comparators use.  ``"serial"`` exercises the wire format
in-process; ``"process"`` is the supervised multiprocess pool with
crash recovery, straggler requeue and graceful degradation
(:mod:`repro.exec.process`); ``"async"`` is the asyncio dispatcher
that feeds a blocking inner executor from an event loop
(:mod:`repro.exec.asyncexec`, the :mod:`repro.serve` backend).
Results are executor-invariant by construction — the certification
tests live under ``tests/exec/``.
"""

from .base import (
    DEFAULT_EXECUTOR,
    ExecTask,
    Executor,
    SerialExecutor,
    TaskOutcome,
    available_executors,
    get_executor,
    register_executor,
    resolve_executor,
)
from .asyncexec import AsyncExecutor
from .process import ProcessExecutor
from .shard import sharded_run_replications, split_replications
from .worker import run_replication_shard, run_task_document, worker_main

__all__ = [
    "DEFAULT_EXECUTOR",
    "ExecTask",
    "Executor",
    "SerialExecutor",
    "TaskOutcome",
    "AsyncExecutor",
    "ProcessExecutor",
    "available_executors",
    "get_executor",
    "register_executor",
    "resolve_executor",
    "sharded_run_replications",
    "split_replications",
    "run_replication_shard",
    "run_task_document",
    "worker_main",
]
