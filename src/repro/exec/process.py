"""``"process"``: a supervised multiprocess worker pool.

The supervisor owns N child processes (fork where available, spawn
otherwise), one task queue per worker and a shared result queue, and
runs a poll loop with four detection paths:

* **completion** — ``done``/``error`` messages retire the in-flight
  task and free the worker;
* **crash** — a nonzero/early exit (``proc.exitcode`` set while a task
  is in flight, or before ``ready``);
* **straggler** — a task still in flight past its deadline
  (``TimeoutPolicy.seconds``, wall clock from dispatch);
* **stall** — heartbeats stale past ``stall_timeout`` (a wedged worker
  whose process is technically alive).

Crashed / straggling / stalled workers are killed and their task is
**requeued** with the retry policy's deterministic backoff — a task is
dispatched at most ``1 + retry.attempts`` times before it fails with a
:class:`~repro.errors.WorkerCrashError` document.  Dead pool members
are respawned up to a respawn budget; when the pool collapses with the
budget exhausted, the supervisor **degrades to serial** and finishes
the remaining tasks in-process, so a batch always completes.  Every
decision is emitted through ``on_event`` (→
:attr:`~repro.resilience.batch.BatchReport.events` and the checkpoint
journal's ``{"event": ...}`` audit lines).

Fault injection: the supervisor — never the workers — evaluates the
``worker.spawn`` / ``worker.task`` / ``worker.hang`` sites against a
single :class:`~repro.resilience.faults.FaultState`, so the occurrence
counters advance in one deterministic stream; a firing rule turns into
a *directive* the child acts out for real (``os._exit`` / wedge).
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from typing import Callable, Optional

from ..errors import ModelError, WorkerCrashError
from .base import (
    Executor,
    ExecTask,
    TaskOutcome,
    execute_task_inline,
    register_executor,
)
from .worker import worker_main

__all__ = ["ProcessExecutor"]


def _pick_context():
    """Fork where the platform has it (cheap, shares the parent's
    imports), spawn otherwise — :func:`worker_main` is importable
    top-level precisely so both work."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class _Member:
    """Supervisor-side record of one pool worker."""

    __slots__ = (
        "id", "proc", "queue", "task", "dispatched_at", "last_beat", "ready",
    )

    def __init__(self, worker_id, proc, queue) -> None:
        self.id = worker_id
        self.proc = proc
        self.queue = queue
        self.task = None  # in-flight _Pending, or None when idle
        self.dispatched_at = None
        self.last_beat = time.monotonic()
        self.ready = False  # has sent its `ready` handshake


class _Pending:
    """One task plus its supervisor-side dispatch bookkeeping."""

    __slots__ = ("task", "dispatches")

    def __init__(self, task: ExecTask) -> None:
        self.task = task
        self.dispatches = 0


class ProcessExecutor(Executor):
    """Supervised worker pool (see module docstring).

    Parameters
    ----------
    workers:
        Pool size (>= 1).  The pool never spawns more members than
        there are tasks.
    heartbeat_interval:
        Seconds between worker heartbeats.
    stall_timeout:
        Heartbeat staleness that marks a live process wedged
        (default: ``max(40 × heartbeat_interval, 2.0)``).
    max_respawns:
        Replacement-worker budget for the whole batch (default:
        ``2 × workers``); exhausting it with no live workers degrades
        the batch to serial in-process execution.
    poll_interval:
        Supervisor loop tick (result-queue wait), seconds.
    """

    name = "process"

    def __init__(
        self,
        workers: int = 2,
        heartbeat_interval: float = 0.05,
        stall_timeout: Optional[float] = None,
        max_respawns: Optional[int] = None,
        poll_interval: float = 0.02,
    ) -> None:
        if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
            raise ModelError(f"workers must be an int >= 1, got {workers!r}")
        self.workers = workers
        self.heartbeat_interval = float(heartbeat_interval)
        self.stall_timeout = (
            float(stall_timeout)
            if stall_timeout is not None
            else max(40.0 * self.heartbeat_interval, 2.0)
        )
        self.max_respawns = (
            int(max_respawns) if max_respawns is not None else 2 * workers
        )
        self.poll_interval = float(poll_interval)

    # -- the supervisor ------------------------------------------------

    def run_tasks(
        self,
        tasks,
        *,
        fail_fast: bool = False,
        faults=None,
        retry=None,
        timeout=None,
        on_complete: Optional[Callable] = None,
        on_event: Optional[Callable] = None,
        warmup=None,
    ) -> list:
        from ..resilience.faults import resolve_fault_plan
        from ..resilience.policy import DEFAULT_RETRY

        tasks = list(tasks)
        if not tasks:
            return []
        retry = retry if retry is not None else DEFAULT_RETRY
        deadline_seconds = timeout.seconds if timeout is not None else None
        plan = resolve_fault_plan(faults)
        # One deterministic counter stream for the whole pool: the
        # supervisor is single-threaded, so worker.* occurrences advance
        # in decision order regardless of which child does the work.
        fault_state = plan.activate() if plan is not None else None

        ctx = _pick_context()
        result_queue = ctx.Queue()
        supervisor = _Supervision(
            executor=self,
            ctx=ctx,
            result_queue=result_queue,
            retry=retry,
            deadline_seconds=deadline_seconds,
            fault_state=fault_state,
            on_complete=on_complete,
            on_event=on_event,
            warmup=warmup,
        )
        try:
            return supervisor.run(
                [_Pending(task) for task in tasks], fail_fast=fail_fast
            )
        finally:
            supervisor.shutdown()


class _Supervision:
    """One batch's supervisor loop state (built per ``run_tasks`` call)."""

    def __init__(
        self,
        executor: ProcessExecutor,
        ctx,
        result_queue,
        retry,
        deadline_seconds,
        fault_state,
        on_complete,
        on_event,
        warmup=None,
    ) -> None:
        self.executor = executor
        self.ctx = ctx
        self.result_queue = result_queue
        self.retry = retry
        self.deadline_seconds = deadline_seconds
        self.fault_state = fault_state
        self.on_complete = on_complete
        self.on_event = on_event
        # Phase-kernel cache snapshot shipped to each worker on its
        # ready handshake (see repro.perf.cache.export_ladder_state).
        self.warmup = list(warmup) if warmup else None
        self.members: dict = {}  # worker_id -> _Member
        self.next_worker_id = 0
        self.respawns_used = 0
        self.pending: deque = deque()
        self.outcomes: list = []
        self.tasks_by_index: dict = {}
        self.stopping = False  # fail_fast tripped
        self.degraded = False

    # -- events --------------------------------------------------------

    def emit(self, event: dict) -> None:
        if self.on_event is not None:
            self.on_event(dict(event))

    # -- pool management -----------------------------------------------

    def spawn_member(self) -> None:
        directive = None
        if self.fault_state is not None:
            fired = self.fault_state.fires("worker.spawn")
            if fired is not None:
                directive = "crash"
                self.emit(
                    {
                        "type": "fault.worker",
                        "site": "worker.spawn",
                        "occurrence": fired[0],
                    }
                )
        worker_id = self.next_worker_id
        self.next_worker_id += 1
        queue = self.ctx.Queue()
        proc = self.ctx.Process(
            target=worker_main,
            args=(
                worker_id,
                queue,
                self.result_queue,
                self.executor.heartbeat_interval,
                directive,
            ),
            daemon=True,
        )
        proc.start()
        self.members[worker_id] = _Member(worker_id, proc, queue)
        self.emit(
            {
                "type": "worker.spawned",
                "worker": worker_id,
                "warmup": len(self.warmup) if self.warmup else 0,
            }
        )

    def reap_member(self, member: _Member, reason: str) -> None:
        """Kill *member* (if still alive), requeue its task, respawn."""
        pending = member.task
        member.task = None
        if member.proc.is_alive():
            member.proc.terminate()
            member.proc.join(timeout=5.0)
        exit_code = member.proc.exitcode
        del self.members[member.id]
        self.emit(
            {
                "type": reason,
                "worker": member.id,
                "exit_code": exit_code,
                "task": pending.task.index if pending is not None else None,
            }
        )
        if pending is not None:
            self.requeue(pending, member, exit_code, reason)
        if self.respawns_used < self.executor.max_respawns and not self.stopping:
            self.respawns_used += 1
            self.spawn_member()
            self.emit(
                {
                    "type": "worker.respawned",
                    "replaces": member.id,
                    "respawns_used": self.respawns_used,
                }
            )

    def requeue(self, pending: _Pending, member: _Member, exit_code, reason) -> None:
        """Give a disrupted task another dispatch, or fail it."""
        if pending.dispatches <= self.retry.attempts:
            delay = self.retry.delay(pending.dispatches - 1)
            if delay > 0.0:
                time.sleep(delay)
            self.pending.appendleft(pending)
            self.emit(
                {
                    "type": "task.requeued",
                    "task": pending.task.index,
                    "dispatches": pending.dispatches,
                    "backoff": delay,
                }
            )
            return
        error = WorkerCrashError(
            f"task {pending.task.index} lost to {reason} (worker "
            f"{member.id}, exit code {exit_code}) after "
            f"{pending.dispatches} dispatches",
            worker=member.id,
            exit_code=exit_code,
        )
        self.complete(
            pending,
            TaskOutcome(
                index=pending.task.index,
                status="failed",
                error=self._crash_document(error, pending.task),
                worker=member.id,
                dispatches=pending.dispatches,
            ),
        )

    def _crash_document(self, error: WorkerCrashError, task: ExecTask) -> dict:
        from .base import _capture_error

        return _capture_error(error, task)

    # -- task lifecycle ------------------------------------------------

    def dispatch(self, member: _Member, pending: _Pending) -> None:
        directive = None
        if self.fault_state is not None:
            fired = self.fault_state.fires("worker.task")
            if fired is not None:
                directive = "crash"
            else:
                hung = self.fault_state.fires("worker.hang")
                if hung is not None:
                    directive = "hang"
                    fired = hung
            if directive is not None:
                self.emit(
                    {
                        "type": "fault.worker",
                        "site": (
                            "worker.task"
                            if directive == "crash"
                            else "worker.hang"
                        ),
                        "worker": member.id,
                        "task": pending.task.index,
                        "occurrence": fired[0],
                    }
                )
        pending.dispatches += 1
        member.task = pending
        member.dispatched_at = time.monotonic()
        member.last_beat = member.dispatched_at
        task = pending.task
        member.queue.put(("task", task.index, task.kind, task.payload, directive))

    def complete(self, pending: _Pending, outcome: TaskOutcome) -> None:
        self.outcomes.append(outcome)
        if self.on_complete is not None:
            self.on_complete(pending.task, outcome)

    # -- the loop ------------------------------------------------------

    def run(self, pendings: list, fail_fast: bool = False) -> list:
        self.pending.extend(pendings)
        total = len(pendings)
        pool_size = min(self.executor.workers, total)
        for _ in range(pool_size):
            self.spawn_member()

        while len(self.outcomes) < total:
            if self.stopping and not self._in_flight():
                break
            if not self.members:
                # Pool collapsed with the respawn budget exhausted:
                # degrade to serial so the batch still completes.
                self._degrade_to_serial()
                continue
            self._dispatch_idle()
            self._drain_results()
            self._check_liveness()
            self._check_deadlines()
            if fail_fast and not self.stopping and any(
                not o.ok for o in self.outcomes
            ):
                self.stopping = True
                self.pending.clear()
        return self.outcomes

    def _in_flight(self) -> bool:
        return any(m.task is not None for m in self.members.values())

    def _dispatch_idle(self) -> None:
        if self.stopping:
            return
        for member in list(self.members.values()):
            if not self.pending:
                break
            # Only hand work to members that completed the `ready`
            # handshake: a spawn that dies on arrival must not consume
            # a task dispatch from the requeue budget.
            if member.task is None and member.ready and member.proc.is_alive():
                self.dispatch(member, self.pending.popleft())

    def _drain_results(self) -> None:
        import queue as queue_module

        try:
            message = self.result_queue.get(timeout=self.executor.poll_interval)
        except queue_module.Empty:
            return
        while True:
            self._handle(message)
            try:
                message = self.result_queue.get_nowait()
            except queue_module.Empty:
                return

    def _handle(self, message) -> None:
        kind = message[0]
        worker_id = message[1]
        member = self.members.get(worker_id)
        if member is None:
            return  # a late message from an already-reaped worker
        if kind in ("beat", "ready"):
            member.last_beat = time.monotonic()
            if kind == "ready":
                member.ready = True
                if self.warmup:
                    # Warm the fresh worker's phase-kernel caches before
                    # any task reaches it: small batches otherwise pay
                    # one cold ladder build per worker.
                    member.queue.put(("warmup", self.warmup))
            return
        pending = member.task
        member.task = None
        member.dispatched_at = None
        if pending is None:
            return
        if kind == "done":
            _, _, index, status, result = message
            self.complete(
                pending,
                TaskOutcome(
                    index=index,
                    status=status,
                    result=result,
                    worker=worker_id,
                    dispatches=pending.dispatches,
                ),
            )
        elif kind == "error":
            _, _, index, error_doc = message
            self.complete(
                pending,
                TaskOutcome(
                    index=index,
                    status="failed",
                    error=error_doc,
                    worker=worker_id,
                    dispatches=pending.dispatches,
                ),
            )

    def _check_liveness(self) -> None:
        for member in list(self.members.values()):
            if member.proc.exitcode is not None:
                self.reap_member(member, "worker.crashed")

    def _check_deadlines(self) -> None:
        now = time.monotonic()
        for member in list(self.members.values()):
            if member.task is None:
                # Idle members still heartbeat; one that goes silent
                # (including a spawn that never says `ready`) is wedged.
                if now - member.last_beat > self.executor.stall_timeout:
                    self.reap_member(member, "worker.stalled")
                continue
            if (
                self.deadline_seconds is not None
                and member.dispatched_at is not None
                and now - member.dispatched_at > self.deadline_seconds
            ):
                self.emit(
                    {
                        "type": "task.straggler",
                        "worker": member.id,
                        "task": member.task.task.index,
                        "deadline": self.deadline_seconds,
                    }
                )
                self.reap_member(member, "worker.straggler")
            elif now - member.last_beat > self.executor.stall_timeout:
                self.reap_member(member, "worker.stalled")

    def _degrade_to_serial(self) -> None:
        self.degraded = True
        remaining = len(self.pending)
        self.emit({"type": "pool.degraded", "remaining": remaining})
        while self.pending:
            pending = self.pending.popleft()
            pending.dispatches += 1
            outcome = execute_task_inline(pending.task)
            self.complete(
                pending,
                TaskOutcome(
                    index=outcome.index,
                    status=outcome.status,
                    result=outcome.result,
                    error=outcome.error,
                    worker=None,
                    dispatches=pending.dispatches,
                ),
            )
            if self.stopping:
                self.pending.clear()

    # -- teardown ------------------------------------------------------

    def shutdown(self) -> None:
        for member in self.members.values():
            try:
                member.queue.put(("stop",))
            except Exception:  # pragma: no cover - queue torn down
                pass
        for member in self.members.values():
            member.proc.join(timeout=2.0)
            if member.proc.is_alive():
                member.proc.terminate()
                member.proc.join(timeout=5.0)
        self.members.clear()
        self.result_queue.close()


register_executor(ProcessExecutor())
