"""``"async"`` executor: an asyncio dispatcher over a blocking inner pool.

:class:`AsyncExecutor` is the bridge between an event loop (the
:mod:`repro.serve` service layer) and the blocking executors that do
the actual work.  Each :class:`~repro.exec.base.ExecTask` is handed to
the *inner* executor — by default the supervised
:class:`~repro.exec.process.ProcessExecutor` pool — on a worker thread
via ``loop.run_in_executor``, so the loop stays responsive while
compute fans out, and an :class:`asyncio.Semaphore` caps how many
inner batches run at once.

Three contracts carry over unchanged from the rest of the executor
layer:

* **Executor-invariant payloads** — a task executes through the same
  wire documents and the same :meth:`repro.api.Session.run` path as it
  would serially, so results are byte-identical across ``"serial"``,
  ``"process"`` and ``"async"`` and ``executor`` stays excluded from
  :meth:`RunConfig.to_dict`.
* **Callback discipline** — ``on_complete`` / ``on_event`` fire on the
  event-loop thread (never concurrently), so checkpoint journals and
  event sinks need no locking.  Inner-executor supervisor events are
  buffered per task and replayed in completion order.
* **Degradation surfaces, it doesn't raise** — a task whose inner
  batch degrades or fails comes back as an ordinary
  :class:`~repro.exec.base.TaskOutcome`, feeding the same
  :class:`~repro.resilience.batch.BatchReport` machinery.

The synchronous :meth:`run_tasks` entry point (the registry contract
used by :meth:`Session.run_many`) simply drives
:meth:`run_tasks_async` with :func:`asyncio.run`; it must not be
called from a thread that already runs an event loop — async callers
await :meth:`run_tasks_async` (or the single-task
:meth:`execute_async`) directly.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Callable, Optional

from ..errors import ModelError
from .base import Executor, register_executor, resolve_executor

__all__ = ["AsyncExecutor"]


class AsyncExecutor(Executor):
    """Asyncio dispatcher running tasks on a blocking inner executor.

    Parameters
    ----------
    inner:
        The executor that actually runs each task — a registered name
        or an :class:`Executor` instance (default ``"process"``, the
        supervised pool).  Resolved lazily at dispatch time, so the
        registry can rebind the name after construction.
    workers:
        Maximum number of tasks in flight at once (semaphore width,
        and the dispatch thread-pool size).
    """

    name = "async"

    def __init__(self, inner="process", workers: int = 2) -> None:
        if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
            raise ModelError(f"workers must be an int >= 1, got {workers!r}")
        self.inner = inner
        self.workers = workers
        self._pool: Optional[ThreadPoolExecutor] = None

    # -- dispatch ------------------------------------------------------

    def _dispatch_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-async-dispatch",
            )
        return self._pool

    def _run_one(self, inner, task, faults, retry, timeout, warmup):
        """Blocking single-task inner batch (runs on a worker thread).

        Events are buffered and handed back so the async side can
        replay them on the loop thread.
        """
        events: list = []
        outcomes = inner.run_tasks(
            [task],
            faults=faults,
            retry=retry,
            timeout=timeout,
            on_event=events.append,
            warmup=warmup,
        )
        return outcomes[0], events

    async def execute_async(
        self,
        task,
        *,
        faults=None,
        retry=None,
        timeout=None,
        warmup=None,
        on_event: Optional[Callable] = None,
    ):
        """Run one task on the inner executor without blocking the loop."""
        loop = asyncio.get_running_loop()
        inner = resolve_executor(self.inner)
        outcome, events = await loop.run_in_executor(
            self._dispatch_pool(),
            partial(self._run_one, inner, task, faults, retry, timeout, warmup),
        )
        if on_event is not None:
            for event in events:
                on_event(event)
        return outcome

    async def run_tasks_async(
        self,
        tasks,
        *,
        fail_fast: bool = False,
        faults=None,
        retry=None,
        timeout=None,
        on_complete: Optional[Callable] = None,
        on_event: Optional[Callable] = None,
        warmup=None,
    ) -> list:
        """Async variant of :meth:`run_tasks` (same outcome contract)."""
        tasks = list(tasks)
        if not tasks:
            return []
        semaphore = asyncio.Semaphore(self.workers)

        async def dispatch(task):
            async with semaphore:
                return task, await self.execute_async(
                    task,
                    faults=faults,
                    retry=retry,
                    timeout=timeout,
                    warmup=warmup,
                    on_event=on_event,
                )

        pending = [asyncio.ensure_future(dispatch(t)) for t in tasks]
        outcomes: list = []
        try:
            for fut in asyncio.as_completed(list(pending)):
                task, outcome = await fut
                outcomes.append(outcome)
                if on_complete is not None:
                    on_complete(task, outcome)
                if fail_fast and not outcome.ok:
                    break
        finally:
            for fut in pending:
                fut.cancel()
            await asyncio.gather(*pending, return_exceptions=True)
        return outcomes

    def run_tasks(
        self,
        tasks,
        *,
        fail_fast: bool = False,
        faults=None,
        retry=None,
        timeout=None,
        on_complete: Optional[Callable] = None,
        on_event: Optional[Callable] = None,
        warmup=None,
    ) -> list:
        try:
            asyncio.get_running_loop()
        except RuntimeError:
            pass
        else:
            raise ModelError(
                "AsyncExecutor.run_tasks cannot block inside a running "
                "event loop; await run_tasks_async instead"
            )
        return asyncio.run(
            self.run_tasks_async(
                tasks,
                fail_fast=fail_fast,
                faults=faults,
                retry=retry,
                timeout=timeout,
                on_complete=on_complete,
                on_event=on_event,
                warmup=warmup,
            )
        )

    def close(self) -> None:
        """Shut down the dispatch thread pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


register_executor(AsyncExecutor())
