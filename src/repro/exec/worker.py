"""Pool-worker entry point and wire-payload execution helpers.

Everything here is **top-level and importable**, because under the
``spawn`` multiprocessing start method the child re-imports this module
to find :func:`worker_main`.  The protocol is deliberately tiny:

Supervisor → worker (per-worker task queue)
    ``("task", index, kind, payload, directive)``, ``("warmup",
    state)`` or ``("stop",)``.
    ``directive`` is ``None``, ``"crash"`` (fault-injected: die with
    ``os._exit`` before touching the task) or ``"hang"`` (fault-
    injected: stop heartbeats and wedge, so the supervisor's straggler
    / stall detection has a real victim).  ``warmup`` carries a
    phase-kernel cache snapshot
    (:func:`repro.perf.cache.export_ladder_state`) sent once after the
    ready handshake; the worker rebuilds those weight ladders in one
    batched recurrence before its first task, so small batches don't
    pay per-worker cold cache builds.

Worker → supervisor (shared result queue)
    ``("ready", worker_id)`` once after startup,
    ``("beat", worker_id)`` every heartbeat interval from a daemon
    thread, and per task either
    ``("done", worker_id, index, status, result)`` or
    ``("error", worker_id, index, error_doc)``.

``run`` payloads execute through the ordinary
:meth:`repro.api.Session.run` path — the worker rebuilds the spec and
config with ``from_dict`` and returns the result's ``to_dict``
document, so a result that crossed the pool re-serializes
byte-identically to one produced serially
(:meth:`~repro.api.session.RunResult.from_document` is the restoring
inverse).  Failures come back as
:class:`~repro.resilience.document.ErrorDocument` dicts, replayable on
the supervisor side.
"""

from __future__ import annotations

import os
import threading
import time

from ..errors import ReproError

__all__ = [
    "worker_main",
    "execute_wire_payload",
    "run_task_document",
    "run_replication_shard",
    "CRASH_EXIT_CODE",
]

#: Exit status of a fault-injected worker crash (recognizably nonzero).
CRASH_EXIT_CODE = 13

#: How long a fault-injected hang sleeps; the supervisor kills the
#: worker long before this elapses.
_HANG_SLEEP = 3600.0


def run_task_document(spec_doc, config_doc):
    """Execute one serialized ``(spec, config)`` pair in this process.

    Returns ``(status, result_document)`` where status is
    ``"succeeded"`` or ``"degraded"``; raises
    :class:`~repro.errors.ReproError` exactly as a serial run would.
    """
    from ..api.config import RunConfig
    from ..api.session import Session
    from ..api.spec import ExperimentSpec

    spec = ExperimentSpec.from_dict(spec_doc)
    config = RunConfig.from_dict(config_doc)
    result = Session(config).run(spec)
    status = "degraded" if result.degraded else "succeeded"
    return status, result.to_dict()


def run_replication_shard(
    simulator, orders, seeds, offset, engine, start_time=0.0, run_kwargs=None
):
    """Run one contiguous replication shard at its global *offset*.

    The ``call``-task target of
    :func:`repro.exec.shard.sharded_run_replications`: resolves the
    engine by name and hands it the seed slice with
    ``replication_offset=offset``, so fault coordinates and error
    labels stay global no matter which worker ran the shard.
    """
    from ..perf.engine import resolve_engine

    resolved = resolve_engine(engine)
    return resolved.run_replications(
        simulator,
        orders,
        seeds,
        None,
        start_time,
        replication_offset=offset,
        **(run_kwargs or {}),
    )


def execute_wire_payload(kind: str, payload):
    """Dispatch one wire payload; returns ``(status, result)``."""
    if kind == "run":
        spec_doc, config_doc = payload
        return run_task_document(spec_doc, config_doc)
    func, args, kwargs = payload
    return "succeeded", func(*args, **(kwargs or {}))


def _error_payload(exc: BaseException, kind: str, payload) -> dict:
    """An :class:`ErrorDocument` dict for a failed wire payload."""
    from ..resilience.document import ErrorDocument

    spec = config = None
    if kind == "run":
        from ..api.config import RunConfig
        from ..api.spec import ExperimentSpec

        try:
            spec = ExperimentSpec.from_dict(payload[0])
            config = RunConfig.from_dict(payload[1])
        except Exception:
            spec = config = None
    return ErrorDocument.capture(exc, spec=spec, config=config).to_dict()


def worker_main(
    worker_id: int,
    task_queue,
    result_queue,
    heartbeat_interval: float = 0.05,
    spawn_directive=None,
) -> None:
    """The pool member's main loop (runs in the child process)."""
    if spawn_directive == "crash":
        # Fault-injected spawn failure: die before announcing readiness,
        # exactly like a worker whose interpreter never came up.
        os._exit(CRASH_EXIT_CODE)

    stop_beats = threading.Event()

    def _beat() -> None:
        while not stop_beats.wait(heartbeat_interval):
            try:
                result_queue.put(("beat", worker_id))
            except Exception:  # pragma: no cover - queue torn down
                return

    beats = threading.Thread(target=_beat, daemon=True)
    beats.start()
    result_queue.put(("ready", worker_id))

    while True:
        message = task_queue.get()
        if message[0] == "stop":
            break
        if message[0] == "warmup":
            from ..perf.cache import warm_ladders

            try:
                warm_ladders(message[1])
            except Exception:  # pragma: no cover - defensive
                pass  # a bad snapshot must never kill a worker
            continue
        _, index, kind, payload, directive = message
        if directive == "crash":
            # Fault-injected mid-batch crash: a genuinely dead process,
            # detected by the supervisor through its exit code.  Park
            # the heartbeat thread first: dying while it holds the
            # shared result-queue write lock would wedge every later
            # worker's ready handshake, turning a clean injected crash
            # into a whole-pool poisoning the fault did not ask for.
            stop_beats.set()
            beats.join(timeout=1.0)
            os._exit(CRASH_EXIT_CODE)
        if directive == "hang":
            # Fault-injected wedge: heartbeats stop, the task never
            # completes — straggler/stall detection must reap us.
            stop_beats.set()
            time.sleep(_HANG_SLEEP)
            continue
        try:
            status, result = execute_wire_payload(kind, payload)
        except ReproError as exc:
            result_queue.put(
                ("error", worker_id, index, _error_payload(exc, kind, payload))
            )
        except Exception as exc:  # pragma: no cover - defensive
            result_queue.put(
                ("error", worker_id, index, _error_payload(exc, kind, payload))
            )
        else:
            result_queue.put(("done", worker_id, index, status, result))

    stop_beats.set()
