"""Numeric convolution of latency densities.

§3.2 derives the overall-latency pdf as the convolution of the on-hold
and processing densities.  For two exponentials the closed form is the
hypoexponential (see :class:`repro.stats.distributions.Hypoexponential`);
for longer chains (e.g. a task's full multi-repetition life, or
deterministic requester-side post-processing) we convolve numerically
on a uniform grid with the FFT.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ModelError

__all__ = ["grid_for", "convolve_pdf", "convolve_cdf", "convolve_densities"]


def grid_for(components, grid_points: int = 4096) -> np.ndarray:
    """Build a uniform time grid wide enough for the sum of *components*.

    The grid spans ``[0, Σ means + 10·sqrt(Σ vars)]`` which captures all
    but a negligible sliver of the sum's mass for the light-tailed
    distributions used in this library.
    """
    components = list(components)
    if not components:
        raise ModelError("need at least one component")
    if grid_points < 16:
        raise ModelError(f"grid_points too small: {grid_points}")
    total_mean = sum(float(c.mean()) for c in components)
    total_var = 0.0
    for c in components:
        try:
            total_var += float(c.var())
        except NotImplementedError:
            total_var += float(c.mean()) ** 2
    upper = total_mean + 10.0 * math.sqrt(total_var) + 1e-9
    return np.linspace(0.0, upper, grid_points)


def convolve_densities(components, grid_points: int = 4096):
    """Convolve component pdfs on a shared grid.

    Returns ``(grid, pdf_values)`` where ``pdf_values`` integrates to ~1.
    Uses zero-padded FFT convolution; each pairwise convolution is
    truncated back to the grid length, and the running density is
    renormalized to control accumulated truncation error.
    """
    components = list(components)
    grid = grid_for(components, grid_points)
    dt = grid[1] - grid[0]
    pdf = np.asarray(components[0].pdf(grid), dtype=float)
    for comp in components[1:]:
        other = np.asarray(comp.pdf(grid), dtype=float)
        full = np.convolve(pdf, other) * dt
        pdf = full[: len(grid)]
        mass = np.trapezoid(pdf, grid)
        if mass > 0:
            pdf = pdf / mass
    return grid, pdf


def convolve_pdf(components, t, grid_points: int = 4096):
    """pdf of the sum of *components* evaluated at *t* (interpolated)."""
    grid, pdf = convolve_densities(components, grid_points)
    t_arr = np.asarray(t, dtype=float)
    out = np.interp(t_arr, grid, pdf, left=0.0, right=0.0)
    return out if out.ndim else float(out)


def convolve_cdf(components, t, grid_points: int = 4096):
    """cdf of the sum of *components* evaluated at *t*."""
    grid, pdf = convolve_densities(components, grid_points)
    dt = grid[1] - grid[0]
    cdf = np.cumsum(pdf) * dt
    cdf = np.clip(cdf, 0.0, 1.0)
    t_arr = np.asarray(t, dtype=float)
    out = np.interp(t_arr, grid, cdf, left=0.0, right=1.0)
    return out if out.ndim else float(out)
