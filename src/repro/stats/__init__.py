"""Probability substrate for the HPU latency model (paper §3).

Public surface:

* distributions — :class:`Exponential`, :class:`Erlang`,
  :class:`Hypoexponential`, :class:`Deterministic`, :class:`MaximumOf`,
  :class:`SumOf`, and :func:`two_phase_latency`;
* order statistics — expected maxima/minima used by the tuning
  objectives;
* convolution — numeric pdf/cdf of sums of phases;
* rng — seed normalization and substream spawning.
"""

from .convolution import convolve_cdf, convolve_densities, convolve_pdf, grid_for
from .distributions import (
    Deterministic,
    Distribution,
    Erlang,
    Exponential,
    Hypoexponential,
    MaximumOf,
    SumOf,
    two_phase_latency,
)
from .phase_type import (
    hypoexponential_cdf,
    hypoexponential_mean,
    hypoexponential_sf,
)
from .order_statistics import (
    expected_max_erlang_iid,
    expected_max_exponential,
    expected_max_exponential_iid,
    expected_maximum_generic,
    expected_min_exponential,
    harmonic_number,
)
from .rng import RandomState, ensure_rng, replication_seeds, spawn

__all__ = [
    "Deterministic",
    "Distribution",
    "Erlang",
    "Exponential",
    "Hypoexponential",
    "MaximumOf",
    "RandomState",
    "SumOf",
    "convolve_cdf",
    "convolve_densities",
    "convolve_pdf",
    "ensure_rng",
    "expected_max_erlang_iid",
    "expected_max_exponential",
    "expected_max_exponential_iid",
    "expected_maximum_generic",
    "expected_min_exponential",
    "grid_for",
    "harmonic_number",
    "hypoexponential_cdf",
    "hypoexponential_mean",
    "hypoexponential_sf",
    "replication_seeds",
    "spawn",
    "two_phase_latency",
]
