"""Latency distributions used by the HPU model (paper §3.2).

The paper models each phase of a task's life with an exponential clock:

* on-hold phase  ``L_o ~ Exp(λ_o(c))`` — rate depends on the price ``c``;
* processing phase ``L_p ~ Exp(λ_p)`` — rate depends on difficulty only.

A task repeated ``k`` times sequentially has Erlang(k, λ) latency
(Lemma 3), and the two-phase overall latency ``L = L_o + L_p`` is
hypoexponential (§3.2's convolution).  This module implements those
distributions with a small, explicit interface (pdf / cdf / sf / mean /
var / sample) so the rest of the library never reaches into scipy
directly and the λ_o → λ_p degenerate limit is handled in exactly one
place.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from ..errors import ModelError
from .rng import RandomState, ensure_rng

__all__ = [
    "Distribution",
    "Exponential",
    "Erlang",
    "Hypoexponential",
    "Deterministic",
    "MaximumOf",
    "SumOf",
    "two_phase_latency",
]

#: Relative rate difference below which two exponential rates are
#: treated as equal (the hypoexponential density is numerically
#: unstable when λ_o ≈ λ_p; we switch to the Erlang limit there).
_RATE_EQ_RTOL = 1e-9


def _validate_rate(rate: float, name: str = "rate") -> float:
    rate = float(rate)
    if not math.isfinite(rate) or rate <= 0.0:
        raise ModelError(f"{name} must be a positive finite number, got {rate}")
    return rate


@runtime_checkable
class Distribution(Protocol):
    """Minimal protocol all latency distributions implement."""

    def pdf(self, t: np.ndarray | float) -> np.ndarray | float:
        """Probability density at ``t`` (0 for t < 0)."""
        ...

    def cdf(self, t: np.ndarray | float) -> np.ndarray | float:
        """``P(L <= t)``."""
        ...

    def sf(self, t: np.ndarray | float) -> np.ndarray | float:
        """Survival function ``P(L > t)``."""
        ...

    def mean(self) -> float:
        """Expected value."""
        ...

    def var(self) -> float:
        """Variance."""
        ...

    def sample(self, rng: RandomState = None, size: int | None = None):
        """Draw samples."""
        ...


@dataclass(frozen=True)
class Exponential:
    """Exponential distribution ``Exp(rate)``.

    The paper's primitive for both latency phases (§3.1.1): the task
    acceptance time satisfies ``P(t_acc <= s) = 1 - exp(-λ s)``.
    """

    rate: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "rate", _validate_rate(self.rate))

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        out = np.where(t < 0, 0.0, self.rate * np.exp(-self.rate * np.maximum(t, 0.0)))
        return out if out.ndim else float(out)

    def cdf(self, t):
        t = np.asarray(t, dtype=float)
        out = np.where(t < 0, 0.0, -np.expm1(-self.rate * np.maximum(t, 0.0)))
        return out if out.ndim else float(out)

    def sf(self, t):
        t = np.asarray(t, dtype=float)
        out = np.where(t < 0, 1.0, np.exp(-self.rate * np.maximum(t, 0.0)))
        return out if out.ndim else float(out)

    def mean(self) -> float:
        return 1.0 / self.rate

    def var(self) -> float:
        return 1.0 / (self.rate * self.rate)

    def quantile(self, q: float) -> float:
        """Inverse cdf; ``q`` in [0, 1)."""
        if not 0.0 <= q < 1.0:
            raise ModelError(f"quantile level must be in [0, 1), got {q}")
        return -math.log1p(-q) / self.rate

    def sample(self, rng: RandomState = None, size: int | None = None):
        gen = ensure_rng(rng)
        return gen.exponential(scale=1.0 / self.rate, size=size)


@dataclass(frozen=True)
class Erlang:
    """Erlang distribution ``Erl(shape, rate)`` — sum of iid exponentials.

    Lemma 3: an atomic task run for ``k`` sequential repetitions, each
    with ``Exp(λ)`` latency, completes after ``Erl(k, λ)`` time.
    """

    shape: int
    rate: float

    def __post_init__(self) -> None:
        if int(self.shape) != self.shape or self.shape < 1:
            raise ModelError(f"Erlang shape must be a positive integer, got {self.shape}")
        object.__setattr__(self, "shape", int(self.shape))
        object.__setattr__(self, "rate", _validate_rate(self.rate))

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        k, lam = self.shape, self.rate
        tt = np.maximum(t, 0.0)
        with np.errstate(divide="ignore"):
            log_pdf = (
                k * math.log(lam)
                + (k - 1) * np.log(np.where(tt > 0, tt, 1.0))
                - lam * tt
                - math.lgamma(k)
            )
        out = np.where(t < 0, 0.0, np.exp(log_pdf))
        if k > 1:
            out = np.where(t == 0, 0.0, out)
        elif np.any(t == 0):
            out = np.where(t == 0, lam, out)
        return out if out.ndim else float(out)

    def cdf(self, t):
        # P(Erl(k,λ) <= t) = P(Poisson(λt) >= k) = 1 - Σ_{i<k} e^{-λt}(λt)^i / i!
        t = np.asarray(t, dtype=float)
        lam_t = self.rate * np.maximum(t, 0.0)
        acc = np.zeros_like(lam_t)
        term = np.ones_like(lam_t)
        for i in range(self.shape):
            if i > 0:
                term = term * lam_t / i
            acc = acc + term
        out = np.where(t < 0, 0.0, 1.0 - np.exp(-lam_t) * acc)
        out = np.clip(out, 0.0, 1.0)
        return out if out.ndim else float(out)

    def sf(self, t):
        t_arr = np.asarray(t, dtype=float)
        out = 1.0 - np.asarray(self.cdf(t_arr))
        return out if out.ndim else float(out)

    def mean(self) -> float:
        return self.shape / self.rate

    def var(self) -> float:
        return self.shape / (self.rate * self.rate)

    def sample(self, rng: RandomState = None, size: int | None = None):
        gen = ensure_rng(rng)
        return gen.gamma(shape=self.shape, scale=1.0 / self.rate, size=size)


@dataclass(frozen=True)
class Hypoexponential:
    """Sum of two independent exponentials with distinct rates (§3.2).

    This is the overall task latency ``L = L_o + L_p`` with density

        f(t) = λ_o λ_p / (λ_o - λ_p) (e^{-λ_p t} - e^{-λ_o t}).

    Construct via :func:`two_phase_latency`, which falls back to
    ``Erlang(2, λ)`` when the two rates coincide.
    """

    rate_onhold: float
    rate_processing: float

    def __post_init__(self) -> None:
        a = _validate_rate(self.rate_onhold, "rate_onhold")
        b = _validate_rate(self.rate_processing, "rate_processing")
        if math.isclose(a, b, rel_tol=_RATE_EQ_RTOL):
            raise ModelError(
                "Hypoexponential requires distinct rates; use two_phase_latency() "
                "which degrades to Erlang(2, rate) when rates coincide"
            )
        object.__setattr__(self, "rate_onhold", a)
        object.__setattr__(self, "rate_processing", b)

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        a, b = self.rate_onhold, self.rate_processing
        tt = np.maximum(t, 0.0)
        coeff = a * b / (a - b)
        out = np.where(t < 0, 0.0, coeff * (np.exp(-b * tt) - np.exp(-a * tt)))
        return out if out.ndim else float(out)

    def cdf(self, t):
        t = np.asarray(t, dtype=float)
        a, b = self.rate_onhold, self.rate_processing
        tt = np.maximum(t, 0.0)
        # F(t) = 1 - (a e^{-b t} - b e^{-a t}) / (a - b)
        out = 1.0 - (a * np.exp(-b * tt) - b * np.exp(-a * tt)) / (a - b)
        out = np.where(t < 0, 0.0, np.clip(out, 0.0, 1.0))
        return out if out.ndim else float(out)

    def sf(self, t):
        t_arr = np.asarray(t, dtype=float)
        out = 1.0 - np.asarray(self.cdf(t_arr))
        return out if out.ndim else float(out)

    def mean(self) -> float:
        return 1.0 / self.rate_onhold + 1.0 / self.rate_processing

    def var(self) -> float:
        return 1.0 / self.rate_onhold**2 + 1.0 / self.rate_processing**2

    def sample(self, rng: RandomState = None, size: int | None = None):
        gen = ensure_rng(rng)
        a = gen.exponential(scale=1.0 / self.rate_onhold, size=size)
        b = gen.exponential(scale=1.0 / self.rate_processing, size=size)
        return a + b


@dataclass(frozen=True)
class Deterministic:
    """Point mass at ``value`` — useful for tests and degenerate phases."""

    value: float

    def __post_init__(self) -> None:
        v = float(self.value)
        if not math.isfinite(v) or v < 0:
            raise ModelError(f"Deterministic latency must be finite and >= 0, got {v}")
        object.__setattr__(self, "value", v)

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        out = np.where(t == self.value, math.inf, 0.0)
        return out if out.ndim else float(out)

    def cdf(self, t):
        t = np.asarray(t, dtype=float)
        out = np.where(t >= self.value, 1.0, 0.0)
        return out if out.ndim else float(out)

    def sf(self, t):
        t = np.asarray(t, dtype=float)
        out = np.where(t >= self.value, 0.0, 1.0)
        return out if out.ndim else float(out)

    def mean(self) -> float:
        return self.value

    def var(self) -> float:
        return 0.0

    def sample(self, rng: RandomState = None, size: int | None = None):
        if size is None:
            return self.value
        return np.full(size, self.value)


class MaximumOf:
    """Distribution of ``max(X_1, ..., X_n)`` for independent components.

    Parallel processing (§3.2.1): the latency of a batch is the maximum
    of its members, with cdf the product of member cdfs.
    """

    def __init__(self, components: list) -> None:
        if not components:
            raise ModelError("MaximumOf requires at least one component")
        self.components = list(components)

    def cdf(self, t):
        t = np.asarray(t, dtype=float)
        out = np.ones_like(t, dtype=float)
        for comp in self.components:
            out = out * np.asarray(comp.cdf(t))
        return out if out.ndim else float(out)

    def sf(self, t):
        t_arr = np.asarray(t, dtype=float)
        out = 1.0 - np.asarray(self.cdf(t_arr))
        return out if out.ndim else float(out)

    def pdf(self, t, eps: float = 1e-6):
        """Numerical derivative of the cdf (central difference)."""
        t = np.asarray(t, dtype=float)
        hi = np.asarray(self.cdf(t + eps))
        lo = np.asarray(self.cdf(np.maximum(t - eps, 0.0)))
        width = (t + eps) - np.maximum(t - eps, 0.0)
        out = (hi - lo) / width
        return out if out.ndim else float(out)

    def mean(self, upper: float | None = None) -> float:
        """``E[max] = ∫ (1 - Π F_i(t)) dt`` by adaptive quadrature."""
        from .order_statistics import expected_maximum_generic

        return expected_maximum_generic(self.components, upper=upper)

    def var(self) -> float:
        raise NotImplementedError("variance of a generic maximum is not provided")

    def sample(self, rng: RandomState = None, size: int | None = None):
        gen = ensure_rng(rng)
        draws = [np.asarray(c.sample(gen, size=size)) for c in self.components]
        out = np.maximum.reduce(draws)
        if size is None:
            return float(out)
        return out


class SumOf:
    """Distribution of a sum of independent components (sequential phases).

    Only mean/var/sample are exact; pdf/cdf go through the numeric
    convolution helpers in :mod:`repro.stats.convolution`.
    """

    def __init__(self, components: list) -> None:
        if not components:
            raise ModelError("SumOf requires at least one component")
        self.components = list(components)

    def mean(self) -> float:
        return float(sum(c.mean() for c in self.components))

    def var(self) -> float:
        return float(sum(c.var() for c in self.components))

    def sample(self, rng: RandomState = None, size: int | None = None):
        gen = ensure_rng(rng)
        draws = [np.asarray(c.sample(gen, size=size)) for c in self.components]
        out = sum(draws)
        if size is None:
            return float(out)
        return out

    def cdf(self, t, grid_points: int = 4096):
        from .convolution import convolve_cdf

        return convolve_cdf(self.components, t, grid_points=grid_points)

    def pdf(self, t, grid_points: int = 4096):
        from .convolution import convolve_pdf

        return convolve_pdf(self.components, t, grid_points=grid_points)

    def sf(self, t, grid_points: int = 4096):
        return 1.0 - self.cdf(t, grid_points=grid_points)


def two_phase_latency(rate_onhold: float, rate_processing: float):
    """Overall latency ``L = L_o + L_p`` of a single task (§3.2).

    Returns the hypoexponential distribution, or the Erlang(2, λ) limit
    when the rates coincide (where the paper's closed form has a 0/0).
    """
    a = _validate_rate(rate_onhold, "rate_onhold")
    b = _validate_rate(rate_processing, "rate_processing")
    if math.isclose(a, b, rel_tol=_RATE_EQ_RTOL):
        return Erlang(2, a)
    return Hypoexponential(a, b)
