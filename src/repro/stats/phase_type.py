"""Exact cdf of sums of independent exponential phases (phase-type).

A task's full latency is a chain of exponential phases (one on-hold +
one processing phase per repetition).  Its distribution is a
hypoexponential / phase-type law; the textbook closed form (partial
fractions) is numerically catastrophic for repeated or nearly-equal
rates, so we evaluate the cdf by **uniformization** instead:

    S(t) = P(chain not absorbed by t)
         = Σ_{n>=0} e^{-qt} (qt)^n / n! · w_n

where ``q = max rate`` and ``w_n`` is the probability that the
discrete uniformized chain has not been absorbed after ``n`` steps.
The series is truncated when the Poisson tail is below ``tol``;
every term is non-negative, so there is no cancellation and the result
is accurate to the truncation tolerance for *any* rate multiset.

Two performance-relevant pieces are factored out so the batch engine
(:mod:`repro.perf.cache`) can reuse and memoize them:

* :class:`WeightLadder` — the ``w_n`` series for one rate profile,
  extensible in place (a longer grid only computes the *new* terms);
* :func:`_poisson_mix_windows` — the ``E[w_N], N ~ Poisson(qt)``
  accumulation, vectorized over all grid points in chunked windows
  instead of one python iteration per point.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..errors import ModelError

__all__ = [
    "WeightLadder",
    "batch_weight_ladders",
    "hypoexponential_cdf",
    "hypoexponential_sf",
    "hypoexponential_mean",
]

#: Upper bound on the element count of one window matrix in
#: :func:`_poisson_mix_windows` (float64 → ~32 MB per temporary).
_MIX_CHUNK_ELEMENTS = 4_000_000

#: The truncation tolerance the historical window constants (12σ half
#: width, +30/+25 slack) were sized for.
_DEFAULT_TOL = 1e-12


def _tail_width(tol: float) -> float:
    """Poisson-window half-width multiplier for truncation tolerance *tol*.

    The historical bound used a fixed ``12·√(qt+1)`` half-width, sized
    for the ``1e-12`` default; the window grows ~√log(1/tol), so the
    multiplier scales as ``12·√(log₁₀(1/tol)/12)``.  At the default the
    scale is **exactly** 1.0 (``-log10(1e-12)`` evaluates to 12.0 in
    IEEE double), keeping default results bit-identical to the
    historical constants.
    """
    if not 0.0 < tol < 1.0:
        raise ModelError(f"tol must be in (0, 1), got {tol}")
    return 12.0 * math.sqrt(max(-math.log10(tol), 1.0) / 12.0)


def _mix_terms(qt_max: float, tol: float = _DEFAULT_TOL) -> int:
    """Terms so the Poisson(qt_max) tail beyond the bound is < *tol*.

    Shared by :func:`_sf_from_ladder` and the deadline kernels' batch
    ladder warming, so both size ladders from the same formula.
    """
    return int(qt_max + _tail_width(tol) * math.sqrt(qt_max + 1.0) + 30.0)


class WeightLadder:
    """``w_n`` — non-absorption probabilities of one uniformized chain.

    State j = "currently in phase j" (0-based); absorption = all phases
    done.  One uniformized step moves phase j forward with probability
    ``rates[j]/q`` and stays put otherwise.  The recurrence is kept
    incremental: :meth:`get` extends the cached series in place, so a
    caller that later needs more terms (a wider grid, a larger ``qt``)
    only pays for the new ones.
    """

    def __init__(self, rates: Sequence[float], q: float | None = None) -> None:
        rates = [float(r) for r in rates]
        if not rates:
            raise ModelError("need at least one phase rate")
        if any(not math.isfinite(r) or r <= 0 for r in rates):
            raise ModelError(f"all rates must be positive and finite, got {rates}")
        self.q = float(q) if q is not None else max(rates)
        move = np.asarray(rates, dtype=float) / self.q
        self._move = move
        self._stay = 1.0 - move
        v = np.zeros(len(rates))
        v[0] = 1.0
        self._v = v
        self._w = np.empty(0)

    def get(self, n_terms: int) -> np.ndarray:
        """First *n_terms* weights ``w_0 .. w_{n_terms-1}`` (read-only view)."""
        done = len(self._w)
        if n_terms > done:
            w = np.empty(n_terms)
            w[:done] = self._w
            v, stay, move = self._v, self._stay, self._move
            for n in range(done, n_terms):
                w[n] = v.sum()
                nxt = v * stay
                nxt[1:] += v[:-1] * move[:-1]
                # mass v[m-1]*move[m-1] flows to absorption and is dropped
                v = nxt
            self._v = v
            self._w = w
        out = self._w[:n_terms]
        out.flags.writeable = False
        return out

    @property
    def n_computed(self) -> int:
        return len(self._w)


def _survival_weights(rates: Sequence[float], q: float, n_terms: int) -> np.ndarray:
    """One-shot ``w_n`` series (kept for tests / reference callers)."""
    return WeightLadder(rates, q).get(n_terms)


def batch_weight_ladders(
    rate_rows: Sequence[Sequence[float]], n_terms: int
) -> list[WeightLadder]:
    """Many profiles' weight ladders from one vectorized recurrence.

    The recurrence advances every row in lock-step as
    ``(n_rows, n_phases)`` matrix ops, so the python-level iteration
    count is ``n_terms`` instead of ``n_rows · n_terms``.  Rows with
    fewer phases are padded to the widest row with extra phases at the
    row's own uniformization rate ``q``: flow is strictly forward, so
    the padded tail receives mass but never feeds back — the real
    phases evolve bitwise as in the unpadded recurrence, and each
    row's weights/state are read from its real-phase prefix only.

    Each returned :class:`WeightLadder` is pre-filled with *n_terms*
    terms **bit-identical** to what its own scalar :meth:`get` would
    compute — the per-row ops are the same IEEE operations and numpy's
    last-axis reduction matches the 1-D ``v.sum()`` association — and
    carries the exact recurrence state, so later extension to more
    terms continues the same series.
    """
    if n_terms < 0:
        raise ModelError(f"n_terms must be >= 0, got {n_terms}")
    ladders = [WeightLadder(row) for row in rate_rows]
    if not ladders:
        return ladders
    widths = [len(ladder._move) for ladder in ladders]
    m_max = max(widths)
    q = np.array([ladder.q for ladder in ladders])
    rates = np.repeat(q[:, None], m_max, axis=1)
    for i, row in enumerate(rate_rows):
        rates[i, : widths[i]] = [float(r) for r in row]
    move = rates / q[:, None]
    stay = 1.0 - move
    move_head = move[:, :-1].copy()
    # All recurrence states are stacked and summed once at the end:
    # the last-axis reduction of the stack is bitwise the per-step
    # ``v.sum()``, and the loop body shrinks to three out= ufunc calls
    # on views hoisted out of the loop.
    states = np.empty((n_terms + 1, len(ladders), m_max))
    states[0] = 0.0
    states[0, :, 0] = 1.0
    rows = list(states)
    heads = [r[:, :-1] for r in rows]
    tails = [r[:, 1:] for r in rows]
    flow = np.empty_like(move_head)
    for n in range(n_terms):
        nxt = rows[n + 1]
        np.multiply(rows[n], stay, out=nxt)
        np.multiply(heads[n], move_head, out=flow)
        np.add(tails[n + 1], flow, out=tails[n + 1])
    for i, ladder in enumerate(ladders):
        m = widths[i]
        if n_terms:
            ladder._w = states[:n_terms, i, :m].sum(axis=1)
        else:
            ladder._w = np.empty(0)
        ladder._v = states[n_terms, i, :m].copy()
    return ladders


def _poisson_mix_windows(
    qt: np.ndarray, w: np.ndarray, tol: float = _DEFAULT_TOL
) -> np.ndarray:
    """``Σ_n pois(n; qt_i)·w_n = E[w_N], N ~ Poisson(qt_i)`` per point.

    The Poisson mass concentrates in ``qt ± O(√qt)``; accumulating only
    that window in log space avoids the ``exp(-qt)`` underflow of the
    naive recurrence.  The window half-width scales with *tol* (see
    :func:`_tail_width`); the 1e-12 default reproduces the historical
    constants exactly.  All windows are processed as chunked 2-D blocks
    so the grid sweep is a handful of numpy calls instead of one python
    iteration per grid point.
    """
    from scipy.special import gammaln

    n_terms = len(w) - 1
    qt = np.asarray(qt, dtype=float)
    half = (_tail_width(tol) * np.sqrt(qt + 1.0) + 25.0).astype(np.int64)
    base = qt.astype(np.int64)
    lo = np.maximum(0, base - half)
    hi = np.minimum(n_terms, base + half)

    acc = np.empty_like(qt)
    log_qt = np.log(qt)
    n_points = len(qt)
    # Greedy chunks of consecutive points sharing one *union* window
    # [lo_u, hi_u].  Within a chunk the Poisson factorials are a single
    # 1-D gammaln over the union, and the mixture is one matrix-vector
    # product.  Terms a point gains beyond its own window only *add*
    # Poisson mass below the truncation tolerance.  For a monotone grid
    # neighbouring windows almost coincide, so chunks stay dense; a
    # scrambled grid degrades gracefully toward one point per chunk.
    i = 0
    while i < n_points:
        lo_u = int(lo[i])
        hi_u = int(hi[i])
        j = i + 1
        while j < n_points:
            nl = min(lo_u, int(lo[j]))
            nh = max(hi_u, int(hi[j]))
            width_j = int(hi[j] - lo[j]) + 1
            # Cap the union at ~2× the joining row's own window (else
            # a wide-qt chunk pads every row to the full span) and the
            # chunk matrix at the element budget.
            if (nh - nl + 1) > 2 * width_j or (
                nh - nl + 1
            ) * (j - i + 1) > _MIX_CHUNK_ELEMENTS:
                break
            lo_u, hi_u = nl, nh
            j += 1
        blk = slice(i, j)
        ns = np.arange(lo_u, hi_u + 1, dtype=float)
        log_fact = gammaln(ns + 1.0)
        log_pmf = np.multiply.outer(log_qt[blk], ns)
        log_pmf -= qt[blk, None]
        log_pmf -= log_fact[None, :]
        np.exp(log_pmf, out=log_pmf)
        acc[blk] = log_pmf @ w[lo_u : hi_u + 1]
        i = j
    return acc


def _sf_rows_at(
    ladders: Sequence[WeightLadder], t, tol: float = _DEFAULT_TOL
) -> np.ndarray:
    """sf of many (rate profile, time) rows, one padded pass.

    *t* is a scalar shared by every row or an array with one entry per
    row (a deadline sweep batches every grid point's
    processing-ceiling term this way).  Row *i* is **bit-identical**
    to ``_sf_from_ladder(ladders[i], np.array([t_i]))[0]``: the
    per-row window bounds use the same formulas, the log-pmf
    construction applies the same elementwise operation sequence, and
    the final accumulation is the same ``(1, W) @ w`` product per row.
    The batching only amortizes the python/ufunc dispatch over rows —
    the deadline kernels use it to fill a whole block of candidate
    prices' completion terms per call.
    """
    from scipy.special import gammaln

    n_rows = len(ladders)
    out = np.ones(n_rows)
    t_arr = np.broadcast_to(
        np.asarray(t, dtype=float), (n_rows,)
    )
    qs = np.array([ladder.q for ladder in ladders])
    qt_all = qs * t_arr
    # A negative t has sf exactly 1 and a zero qt cannot enter the
    # log-space mixing — both match the scalar kernel's guards.
    idx = np.nonzero(qt_all > 0)[0]
    if idx.size == 0:
        return out

    width = _tail_width(tol)
    qt = qt_all[idx]
    n_terms = (qt + width * np.sqrt(qt + 1.0) + 30.0).astype(np.int64)
    half = (width * np.sqrt(qt + 1.0) + 25.0).astype(np.int64)
    base = qt.astype(np.int64)
    lo = np.maximum(0, base - half)
    hi = np.minimum(n_terms, base + half)
    weights = [
        ladders[int(i)].get(int(n) + 1) for i, n in zip(idx, n_terms)
    ]
    span = int((hi - lo).max()) + 1
    ns = (lo[:, None] + np.arange(span)[None, :]).astype(float)
    # gammaln over the union range once, gathered per row: the gathered
    # values are bitwise the per-row gammaln(ns + 1.0) (same float
    # inputs), at a fraction of the transcendental calls.
    lo_min = int(lo.min())
    union = np.arange(lo_min, int((lo + span - 1).max()) + 1, dtype=float)
    log_fact_union = gammaln(union + 1.0)
    log_fact = log_fact_union[
        (lo - lo_min)[:, None] + np.arange(span)[None, :]
    ]
    log_pmf = np.log(qt)[:, None] * ns
    log_pmf -= qt[:, None]
    log_pmf -= log_fact
    np.exp(log_pmf, out=log_pmf)
    acc = np.empty(idx.size)
    for r in range(idx.size):
        w = int(hi[r] - lo[r]) + 1
        acc[r] = (log_pmf[r : r + 1, :w] @ weights[r][lo[r] : hi[r] + 1])[0]
    out[idx] = np.clip(acc, 0.0, 1.0)
    return out


def hypoexponential_sf(rates: Sequence[float], t, tol: float = _DEFAULT_TOL):
    """Survival function ``P(Σ Exp(rates_i) > t)`` by uniformization.

    Parameters
    ----------
    rates:
        Positive phase rates (any multiplicities).
    t:
        Scalar or array of evaluation times.
    tol:
        Poisson-tail truncation tolerance: both the ``n_terms``
        truncation of the weight series and the per-point mixing
        windows are sized so the neglected Poisson mass is below
        *tol*.  The 1e-12 default is bit-identical to the historical
        fixed bound.
    """
    ladder = WeightLadder(rates)
    t_arr = np.atleast_1d(np.asarray(t, dtype=float))
    out = _sf_from_ladder(ladder, t_arr, tol=tol)
    return out if np.ndim(t) else float(out[0])


def _sf_from_ladder(
    ladder: WeightLadder, t_arr: np.ndarray, tol: float = _DEFAULT_TOL
) -> np.ndarray:
    """Shared sf kernel: evaluate one rate profile's sf on *t_arr*.

    Exposed (privately) so :mod:`repro.perf.cache` can run the same
    computation against a process-level, incrementally extended ladder.
    """
    out = np.ones_like(t_arr)
    q = ladder.q
    # Guard the q·t product, not t alone: a subnormal t can underflow
    # to q·t == 0, which the log-space accumulation cannot represent
    # (sf is exactly 1 there anyway).
    positive = (q * t_arr) > 0
    if not np.any(positive):
        return np.where(t_arr < 0, 1.0, out)

    qt = q * t_arr[positive]
    qt_max = float(qt.max())
    n_terms = _mix_terms(qt_max, tol)
    w = ladder.get(n_terms + 1)
    acc = _poisson_mix_windows(qt, w, tol=tol)
    out[positive] = np.clip(acc, 0.0, 1.0)
    out[t_arr < 0] = 1.0
    return out


def hypoexponential_cdf(rates: Sequence[float], t, tol: float = _DEFAULT_TOL):
    """cdf ``P(Σ Exp(rates_i) <= t)``; see :func:`hypoexponential_sf`."""
    sf = hypoexponential_sf(rates, t, tol=tol)
    return 1.0 - sf


def hypoexponential_mean(rates: Sequence[float]) -> float:
    """``E[Σ Exp(rates_i)] = Σ 1/rates_i`` (exact)."""
    rates = [float(r) for r in rates]
    if not rates:
        raise ModelError("need at least one phase rate")
    if any(r <= 0 for r in rates):
        raise ModelError(f"all rates must be positive, got {rates}")
    return sum(1.0 / r for r in rates)
