"""Exact cdf of sums of independent exponential phases (phase-type).

A task's full latency is a chain of exponential phases (one on-hold +
one processing phase per repetition).  Its distribution is a
hypoexponential / phase-type law; the textbook closed form (partial
fractions) is numerically catastrophic for repeated or nearly-equal
rates, so we evaluate the cdf by **uniformization** instead:

    S(t) = P(chain not absorbed by t)
         = Σ_{n>=0} e^{-qt} (qt)^n / n! · w_n

where ``q = max rate`` and ``w_n`` is the probability that the
discrete uniformized chain has not been absorbed after ``n`` steps.
The series is truncated when the Poisson tail is below ``tol``;
every term is non-negative, so there is no cancellation and the result
is accurate to the truncation tolerance for *any* rate multiset.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..errors import ModelError

__all__ = ["hypoexponential_cdf", "hypoexponential_sf", "hypoexponential_mean"]


def _survival_weights(rates: Sequence[float], q: float, n_terms: int) -> np.ndarray:
    """``w_n`` — non-absorption probabilities of the uniformized chain.

    State j = "currently in phase j" (0-based); absorption = all phases
    done.  One uniformized step moves phase j forward with probability
    ``rates[j]/q`` and stays put otherwise.
    """
    m = len(rates)
    move = np.asarray(rates, dtype=float) / q
    stay = 1.0 - move
    v = np.zeros(m)
    v[0] = 1.0
    w = np.empty(n_terms)
    for n in range(n_terms):
        w[n] = v.sum()
        nxt = v * stay
        nxt[1:] += v[:-1] * move[:-1]
        # mass v[m-1]*move[m-1] flows to absorption and is dropped
        v = nxt
    return w


def hypoexponential_sf(rates: Sequence[float], t, tol: float = 1e-12):
    """Survival function ``P(Σ Exp(rates_i) > t)`` by uniformization.

    Parameters
    ----------
    rates:
        Positive phase rates (any multiplicities).
    t:
        Scalar or array of evaluation times.
    tol:
        Poisson-tail truncation tolerance.
    """
    rates = [float(r) for r in rates]
    if not rates:
        raise ModelError("need at least one phase rate")
    if any(not math.isfinite(r) or r <= 0 for r in rates):
        raise ModelError(f"all rates must be positive and finite, got {rates}")
    t_arr = np.atleast_1d(np.asarray(t, dtype=float))
    out = np.ones_like(t_arr)
    q = max(rates)
    # Guard the q·t product, not t alone: a subnormal t can underflow
    # to q·t == 0, which the log-space accumulation cannot represent
    # (sf is exactly 1 there anyway).
    positive = (q * t_arr) > 0
    if not np.any(positive):
        result = np.where(t_arr < 0, 1.0, out)
        return result if np.ndim(t) else float(result[0])

    from scipy.special import gammaln

    qt = q * t_arr[positive]
    qt_max = float(qt.max())
    # Terms needed so the Poisson(qt_max) tail beyond n_terms is < tol.
    n_terms = int(qt_max + 12.0 * math.sqrt(qt_max + 1.0) + 30.0)
    w = _survival_weights(rates, q, n_terms + 1)

    # Σ_n pois(n; qt)·w_n = E[w_N], N ~ Poisson(qt).  The Poisson mass
    # concentrates in qt ± O(√qt); accumulating only that window in log
    # space avoids the exp(-qt) underflow of the naive recurrence.
    acc = np.empty_like(qt)
    for idx, value in enumerate(qt):
        half = int(12.0 * math.sqrt(value + 1.0) + 25.0)
        lo = max(0, int(value) - half)
        hi = min(n_terms, int(value) + half)
        ns = np.arange(lo, hi + 1)
        log_pmf = ns * math.log(value) - value - gammaln(ns + 1.0)
        acc[idx] = float(np.exp(log_pmf) @ w[lo : hi + 1])
    out[positive] = np.clip(acc, 0.0, 1.0)
    out[t_arr < 0] = 1.0
    return out if np.ndim(t) else float(out[0])


def hypoexponential_cdf(rates: Sequence[float], t, tol: float = 1e-12):
    """cdf ``P(Σ Exp(rates_i) <= t)``; see :func:`hypoexponential_sf`."""
    sf = hypoexponential_sf(rates, t, tol=tol)
    return 1.0 - sf


def hypoexponential_mean(rates: Sequence[float]) -> float:
    """``E[Σ Exp(rates_i)] = Σ 1/rates_i`` (exact)."""
    rates = [float(r) for r in rates]
    if not rates:
        raise ModelError("need at least one phase rate")
    if any(r <= 0 for r in rates):
        raise ModelError(f"all rates must be positive, got {rates}")
    return sum(1.0 / r for r in rates)
