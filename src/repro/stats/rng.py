"""Seeded random-number-generator utilities.

Every stochastic component in the library accepts either a seed, a
:class:`numpy.random.Generator`, or ``None`` and normalizes it through
:func:`ensure_rng`.  This keeps experiments reproducible end to end: a
single integer seed passed to an experiment fans out deterministically
to every substream via :func:`spawn`.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

__all__ = ["RandomState", "ensure_rng", "spawn", "replication_seeds"]

#: Anything acceptable as a source of randomness.
RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: RandomState = None) -> np.random.Generator:
    """Normalize *seed* into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an ``int`` seed, an existing
        ``Generator`` (returned unchanged), or a ``SeedSequence``.

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"seed must be None, int, Generator or SeedSequence, got {type(seed)!r}"
    )


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive *n* independent child generators from *rng*.

    The children are statistically independent of each other and of the
    parent's future output, which makes them safe to hand to parallel
    simulation replicas.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def replication_seeds(seed: RandomState, replications: int) -> list:
    """Per-replication seeds for a replicated experiment cell.

    The seeding protocol every replication fan-out in the library
    shares (figure cells, ``run_replications`` ensembles):

    * ``replications == 1`` returns ``[seed]`` unchanged — the
      single-replication run consumes exactly the stream the
      historical unreplicated experiment consumed, so R = 1 output is
      byte-identical to the pre-replication code path;
    * ``replications > 1`` spawns R independent substreams from
      *seed* via :func:`spawn`.

    The protocol is engine-independent: a figure's output is the same
    whichever replication engine executes the seeds.
    """
    from ..errors import ModelError

    if replications < 1:
        raise ModelError(
            f"replications must be >= 1, got {replications}"
        )
    if replications == 1:
        return [seed]
    return spawn(ensure_rng(seed), replications)
