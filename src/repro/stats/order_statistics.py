"""Expected maxima of latency collections (order statistics).

The H-Tuning objective is the expected latency of the *longest* task
(§4.2: ``L* = max_i L(t_i)``), so every tuning algorithm reduces to
evaluating expected maxima:

* ``E[max of n iid Exp(λ)] = H_n / λ`` — the harmonic-sum identity the
  paper derives for single-round groups (§4.3.1, "Group of Single
  Round": the spacings ``x_i`` are ``Exp(λ·(n-i+1))``).
* ``E[max(Exp(λ1), Exp(λ2))] = 1/λ1 + 1/λ2 − 1/(λ1+λ2)`` — Lemma 1's
  two-task expression.
* ``E[max of n iid Erlang(k, λ)]`` — no closed form for k > 1; the
  paper evaluates ``∫ n F^{n-1} f t dt`` numerically.  We integrate the
  equivalent survival form ``∫ (1 − F(t)^n) dt``, which is better
  conditioned, and keep an exact fast path for k = 1.

Results are cached because the RA/HA dynamic programs evaluate the same
(n, k, λ) triples thousands of times across the budget loop.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np
from scipy import integrate

from ..errors import ModelError
from .distributions import Erlang, Exponential

__all__ = [
    "harmonic_number",
    "expected_max_exponential_iid",
    "expected_max_exponential",
    "expected_max_erlang_iid",
    "expected_maximum_generic",
    "expected_min_exponential",
]


@lru_cache(maxsize=65536)
def harmonic_number(n: int) -> float:
    """``H_n = Σ_{i=1..n} 1/i`` (exact summation for small n, asymptotic
    expansion beyond 10^6 where summation would be slow)."""
    if n < 0:
        raise ModelError(f"harmonic number needs n >= 0, got {n}")
    if n == 0:
        return 0.0
    if n <= 1_000_000:
        return float(np.sum(1.0 / np.arange(1, n + 1)))
    # Euler–Maclaurin: H_n ≈ ln n + γ + 1/(2n) − 1/(12n²) + 1/(120n⁴)
    gamma = 0.5772156649015328606
    return math.log(n) + gamma + 1 / (2 * n) - 1 / (12 * n**2) + 1 / (120 * n**4)


def expected_max_exponential_iid(n: int, rate: float) -> float:
    """``E[max of n iid Exp(rate)] = H_n / rate``.

    This is the paper's single-round group latency: the i-th spacing of
    the order statistics is exponential with rate ``rate * (n - i + 1)``
    and the max is the sum of all spacings.
    """
    if n < 1:
        raise ModelError(f"need at least one variable, got n={n}")
    if rate <= 0:
        raise ModelError(f"rate must be positive, got {rate}")
    return harmonic_number(n) / rate


def expected_max_exponential(rates) -> float:
    """``E[max]`` of independent (not necessarily iid) exponentials.

    Uses inclusion–exclusion:
    ``E[max] = Σ_S (−1)^{|S|+1} / Σ_{i∈S} λ_i`` over non-empty subsets
    ``S``.  Exact but exponential in ``len(rates)``; intended for the
    motivating examples and tests (≤ ~20 rates).  Larger heterogeneous
    collections should use :func:`expected_maximum_generic`.
    """
    rates = [float(r) for r in rates]
    if not rates:
        raise ModelError("need at least one rate")
    if any(r <= 0 for r in rates):
        raise ModelError(f"all rates must be positive, got {rates}")
    n = len(rates)
    if n > 22:
        raise ModelError(
            f"inclusion-exclusion over {n} rates is intractable; "
            "use expected_maximum_generic instead"
        )
    total = 0.0
    for mask in range(1, 1 << n):
        s = 0.0
        bits = 0
        m = mask
        i = 0
        while m:
            if m & 1:
                s += rates[i]
                bits += 1
            m >>= 1
            i += 1
        total += (1.0 if bits % 2 == 1 else -1.0) / s
    return total


def expected_min_exponential(rates) -> float:
    """``E[min]`` of independent exponentials = ``1 / Σ λ_i``."""
    rates = [float(r) for r in rates]
    if not rates:
        raise ModelError("need at least one rate")
    if any(r <= 0 for r in rates):
        raise ModelError(f"all rates must be positive, got {rates}")
    return 1.0 / sum(rates)


@lru_cache(maxsize=262144)
def _expected_max_erlang_cached(n: int, shape: int, rate_key: float) -> float:
    rate = float(rate_key)
    if shape == 1:
        return expected_max_exponential_iid(n, rate)
    dist = Erlang(shape, rate)

    def survival(t: float) -> float:
        f = dist.cdf(t)
        # 1 - F^n, computed stably when F is close to 1.
        if f >= 1.0:
            return 0.0
        return -math.expm1(n * math.log(f)) if f > 0.0 else 1.0

    # The max of n Erlang(k, λ) concentrates below mean + ~wide spread;
    # integrate piecewise to help quad find the mass.
    mean = shape / rate
    std = math.sqrt(shape) / rate
    # Upper cut where survival is negligible even after the n-fold boost.
    upper = mean + (12.0 + 2.0 * math.log1p(n)) * std
    value, _err = integrate.quad(survival, 0.0, upper, limit=200)
    tail, _err2 = integrate.quad(survival, upper, np.inf, limit=200)
    return float(value + tail)


def expected_max_erlang_iid(n: int, shape: int, rate: float) -> float:
    """``E[max of n iid Erlang(shape, rate)]`` (§4.3.1 multi-round groups).

    Exact ``H_n / rate`` for shape 1, else adaptive quadrature of the
    survival function ``∫ (1 − F^n) dt``.  Cached: the DP in Algorithms
    2–3 re-evaluates the same triples at every budget step.
    """
    if n < 1:
        raise ModelError(f"need at least one task in the group, got n={n}")
    if shape < 1 or int(shape) != shape:
        raise ModelError(f"shape must be a positive integer, got {shape}")
    if rate <= 0 or not math.isfinite(rate):
        raise ModelError(f"rate must be positive and finite, got {rate}")
    return _expected_max_erlang_cached(int(n), int(shape), float(rate))


def expected_maximum_generic(components, upper: float | None = None) -> float:
    """``E[max]`` of arbitrary independent non-negative components.

    Integrates ``∫ (1 − Π_i F_i(t)) dt`` with quadrature.  Components
    need only expose ``cdf`` and ``mean`` (mean is used to choose the
    integration split point when *upper* is not given).
    """
    components = list(components)
    if not components:
        raise ModelError("need at least one component")

    def survival(t: float) -> float:
        prod = 1.0
        for comp in components:
            prod *= float(comp.cdf(t))
            if prod == 0.0:
                return 1.0
        return 1.0 - prod

    if upper is None:
        try:
            means = [float(c.mean()) for c in components]
        except NotImplementedError:
            means = [1.0]
        upper = max(means) * (8.0 + 2.0 * math.log1p(len(components))) + 1.0
    value, _err = integrate.quad(survival, 0.0, upper, limit=200)
    tail, _err2 = integrate.quad(survival, upper, np.inf, limit=200)
    return float(value + tail)
