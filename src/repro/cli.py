"""Command-line interface: a thin shell over the experiment registry.

Usage::

    python -m repro experiments [--json]   # registered experiments + schemas
    python -m repro run fig2 --param scenario=repe --param n_tasks=50 --json
    python -m repro run deadline-frontier --param confidences=[0.8,0.9]
    python -m repro serve --port 8765 --store ./results  # live service

    python -m repro list                 # legacy command names
    python -m repro table1               # motivation examples
    python -m repro fig2 --scenario homo --case a
    python -m repro fig3 | fig4 | fig5ab | fig5c
    python -m repro deadline --scenario repe --confidence 0.9 0.95
    python -m repro all                  # everything (slow)

Every command builds a :class:`repro.api.ExperimentSpec` plus a
:class:`repro.api.RunConfig` and executes through
:meth:`repro.api.Session.run` — the same path a serialized spec or a
batched ``run_many`` submission takes.  The generic ``run`` command
reaches any registered experiment by name with ``--param k=v`` pairs
(values parsed as JSON, falling back to strings); ``--json`` prints
the full :class:`~repro.api.session.RunResult` document (spec, config,
fingerprint, payload).  The legacy per-figure commands are kept as
ergonomic shorthands and print the same rows the figures plot.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable

from .api import (
    DeadlineFrontierSpec,
    Fig2Spec,
    Fig3Spec,
    Fig4Spec,
    Fig5abSpec,
    Fig5cSpec,
    RunConfig,
    Session,
    Table1Spec,
    available_experiments,
    get_experiment,
    make_spec,
)
from .errors import ModelError, ReproError
from .experiments.reporting import format_kv, format_series, format_table
from .workloads import PAPER_BUDGETS

__all__ = ["main", "USER_ERROR_EXIT", "EXECUTION_ERROR_EXIT"]

#: ``repro run`` exit codes: 2 = user error (bad experiment name,
#: parameter, or config), 3 = execution failure (the run itself died).
#: Legacy commands keep the historical blanket exit 1.
USER_ERROR_EXIT = 2
EXECUTION_ERROR_EXIT = 3


# ---------------------------------------------------------------------------
# the generic registry commands
# ---------------------------------------------------------------------------


def _parse_params(pairs: list[str]) -> dict:
    """``k=v`` pairs → params dict; values are JSON, else raw strings."""
    params: dict = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ModelError(
                f"bad --param {pair!r}: expected key=value (e.g. "
                "--param n_tasks=50 or --param confidences=[0.8,0.9])"
            )
        try:
            value = json.loads(raw)
        except json.JSONDecodeError:
            value = raw
        params[key] = value
    return params


def _cmd_experiments(args: argparse.Namespace) -> None:
    names = available_experiments()
    if args.json:
        print(
            json.dumps(
                {
                    name: get_experiment(name).describe()
                    for name in names
                },
                indent=2,
                sort_keys=True,
            )
        )
        return
    for name in names:
        spec_cls = get_experiment(name)
        doc = (spec_cls.__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        print(f"{name:20s} {summary}")
        for param, schema in spec_cls.describe().items():
            default = schema.get("default", "<required>")
            print(f"    --param {param}={json.dumps(default)}")


def _fail(
    args: argparse.Namespace, exc: ReproError, exit_code: int,
    spec=None, config=None,
) -> None:
    """Structured ``repro run`` failure: with ``--json`` the error
    document (code, spec/config, fingerprint, fault site, seed) goes to
    stdout; either way the process exits with *exit_code*."""
    from .resilience.document import ErrorDocument

    if getattr(args, "json", False):
        document = ErrorDocument.capture(exc, spec=spec, config=config)
        print(document.to_json(indent=2))
    else:
        print(f"error: {exc}", file=sys.stderr)
    raise SystemExit(exit_code)


def _cmd_run(args: argparse.Namespace) -> None:
    try:
        faults = None
        if args.faults:
            try:
                faults = json.loads(args.faults)
            except json.JSONDecodeError:
                faults = args.faults  # a registered plan name
            from .resilience.faults import resolve_fault_plan

            resolve_fault_plan(faults)  # unknown names are user errors
        spec = make_spec(args.experiment, **_parse_params(args.param))
        config = RunConfig(
            engine=args.engine,
            comparator=args.comparator,
            seed=args.seed,
            replications=args.replications,
            faults=faults,
        )
    except ReproError as exc:
        _fail(args, exc, USER_ERROR_EXIT)
    try:
        result = Session(config).run(spec, store=args.store)
    except ReproError as exc:
        _fail(args, exc, EXECUTION_ERROR_EXIT, spec=spec, config=config)
    if args.json:
        print(result.to_json(indent=2, include_timing=True))
        return
    print(f"experiment:  {result.experiment}")
    print(f"fingerprint: {result.fingerprint}")
    print(json.dumps(result.to_dict()["payload"], indent=2, sort_keys=True))


def _cmd_run_many(args: argparse.Namespace) -> None:
    """Batch execution with checkpointing and executor fan-out.

    Positional arguments are registered experiment names (default
    params) or inline spec JSON documents; the whole batch shares one
    config.  Exit contract matches ``run``: 2 for user errors (bad
    names, params, executor), 3 when any spec's execution failed.
    """
    try:
        faults = None
        if args.faults:
            try:
                faults = json.loads(args.faults)
            except json.JSONDecodeError:
                faults = args.faults
            from .resilience.faults import resolve_fault_plan

            resolve_fault_plan(faults)  # unknown names are user errors
        executor = args.executor
        if executor is not None:
            from .exec import ProcessExecutor, get_executor

            if executor == "process" and args.workers is not None:
                executor = ProcessExecutor(workers=args.workers)
            else:
                executor = get_executor(executor)
        specs = []
        for entry in args.experiment:
            if entry.lstrip().startswith("{"):
                specs.append(json.loads(entry))
            else:
                specs.append(make_spec(entry))
        config = RunConfig(
            engine=args.engine,
            comparator=args.comparator,
            seed=args.seed,
            replications=args.replications,
            faults=faults,
            retry=(
                {"attempts": args.attempts}
                if args.attempts is not None
                else None
            ),
            timeout=args.timeout,
        )
    except (ReproError, json.JSONDecodeError) as exc:
        if isinstance(exc, json.JSONDecodeError):
            exc = ModelError(f"bad inline spec document: {exc}")
        _fail(args, exc, USER_ERROR_EXIT)
    try:
        report = Session(config).run_many(
            specs,
            fail_fast=args.fail_fast,
            checkpoint=args.checkpoint,
            executor=executor,
            store=args.store,
        )
    except ReproError as exc:
        _fail(args, exc, EXECUTION_ERROR_EXIT, config=config)
    if args.json:
        print(
            json.dumps(
                report.to_dict(include_events=True, include_store=True),
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for outcome in report.outcomes:
            label = getattr(outcome.spec, "name", "?")
            marker = " "
            if outcome.restored:
                marker = "*"  # replayed from the checkpoint journal
            elif outcome.served:
                marker = "+"  # served from the result store
            print(f"{label:20s} {outcome.status}{marker}")
        print(
            f"total {len(report)}  succeeded {len(report.succeeded)}  "
            f"degraded {len(report.degraded)}  failed {len(report.failed)}"
        )
        if report.store is not None:
            tally = report.store
            print(
                f"store: hits {tally['hits']}  misses {tally['misses']}  "
                f"quarantined {tally['quarantined']}  "
                f"write failures {tally['write_failures']}"
            )
        if report.events:
            print(f"supervisor events: {len(report.events)}")
    if not report.ok:
        raise SystemExit(EXECUTION_ERROR_EXIT)


def _cmd_results(args: argparse.Namespace) -> None:
    """Inspect a persistent result store (see ``repro.store``).

    Default: list every stored entry.  ``--show FP`` prints one entry
    document, ``--verify`` walks the store quarantining corruption
    (always exits 0 — finding damage *is* the command working),
    ``--replay FP`` re-executes a stored run and compares documents
    byte-for-byte (mismatch exits 3).  Unknown fingerprints exit 2.
    """
    from .store import ResultStore

    store = ResultStore(args.store)

    if args.verify:
        report = store.verify()
        if args.json:
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            for token, code, message in report.quarantined:
                print(f"{token}  {code}  {message}")
            print(
                f"checked {report.checked}  intact {report.intact}  "
                f"quarantined {len(report.quarantined)}  "
                f"previously quarantined {report.previously_quarantined}"
            )
        return

    if args.show is not None:
        try:
            code, message, entry = store.inspect(args.show)
        except ReproError as exc:
            _fail(args, exc, USER_ERROR_EXIT)
        if code is not None:
            from .errors import StoreCorruptError

            exc = StoreCorruptError(f"entry {args.show}: {message}")
            _fail(args, exc, EXECUTION_ERROR_EXIT)
        print(json.dumps(entry, indent=2, sort_keys=True))
        return

    if args.replay is not None:
        try:
            code, message, entry = store.inspect(args.replay)
        except ReproError as exc:
            _fail(args, exc, USER_ERROR_EXIT)
        if code is not None:
            from .errors import StoreCorruptError

            exc = StoreCorruptError(f"entry {args.replay}: {message}")
            _fail(args, exc, EXECUTION_ERROR_EXIT)
        from .api.session import RunResult

        stored = RunResult.from_document(entry["result"])
        try:
            replayed = Session(stored.config).run(stored.spec)
        except ReproError as exc:
            _fail(args, exc, EXECUTION_ERROR_EXIT)
        match = replayed.to_dict() == entry["result"]
        if args.json:
            print(
                json.dumps(
                    {
                        "fingerprint": args.replay,
                        "experiment": stored.experiment,
                        "match": match,
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
        else:
            verdict = "matches" if match else "DIVERGES FROM"
            print(
                f"replayed {stored.experiment} ({args.replay}): "
                f"{verdict} the stored document"
            )
        if not match:
            raise SystemExit(EXECUTION_ERROR_EXIT)
        return

    entries = list(store.entries())
    if args.json:
        print(
            json.dumps(
                {
                    "root": str(store.root),
                    "entries": entries,
                    "quarantined": len(store.quarantined()),
                },
                indent=2,
                sort_keys=True,
            )
        )
        return
    for entry in entries:
        experiment = entry["experiment"] or "?"
        print(f"{entry['fingerprint']}  {experiment:20s} {entry['status']}")
    print(
        f"total {len(entries)}  "
        f"quarantined {len(store.quarantined())}"
    )


# ---------------------------------------------------------------------------
# legacy per-figure commands (ergonomic shorthands over the same path)
# ---------------------------------------------------------------------------


def _cmd_table1(args: argparse.Namespace) -> None:
    payload = Session(RunConfig(seed=args.seed)).run(Table1Spec()).payload
    ex1 = payload["example_1"]
    ex2 = payload["example_2"]
    print(
        format_kv(
            {
                "even ($3/$3)": ex1.even_latency,
                "load-sensitive ($2/$4)": ex1.load_sensitive_latency,
                "improvement": f"{ex1.improvement:.1%}",
            },
            title="Motivation Example 1",
        )
    )
    print()
    print(
        format_kv(
            {
                "even ($3/$3)": ex2.even_latency,
                "balanced ($4/$2)": ex2.load_sensitive_latency,
                "improvement": f"{ex2.improvement:.1%}",
            },
            title="Motivation Example 2",
        )
    )


def _cmd_fig2(args: argparse.Namespace) -> None:
    spec = Fig2Spec(
        scenario=args.scenario,
        case=args.case,
        budgets=PAPER_BUDGETS,
        n_tasks=args.tasks,
        scoring=args.scoring,
        n_samples=args.samples,
    )
    config = RunConfig(seed=args.seed, engine=args.engine)
    result = Session(config).run(spec).payload
    print(
        format_series(
            "budget",
            result.budgets,
            result.series,
            title=f"Fig 2 {args.scenario}({args.case})",
        )
    )


def _cmd_fig3(args: argparse.Namespace) -> None:
    config = RunConfig(
        seed=args.seed, replications=args.replications, engine=args.engine
    )
    result = Session(config).run(Fig3Spec(n_arrivals=args.arrivals)).payload
    rows = [
        (i + 1, e / 60.0, p1 / 60.0, p2 / 60.0)
        for i, (e, p1, p2) in enumerate(
            zip(
                result.arrival_epochs,
                result.phase1_latencies,
                result.phase2_latencies,
            )
        )
    ]
    print(
        format_table(
            ["order", "epoch/min", "phase1/min", "phase2/min"],
            rows,
            title=f"Fig 3 (R² = {result.linearity_r2:.3f})",
        )
    )


def _cmd_fig4(args: argparse.Namespace) -> None:
    config = RunConfig(
        seed=args.seed, replications=args.replications, engine=args.engine
    )
    result = Session(config).run(Fig4Spec()).payload
    rows = [
        (f"${p / 100:.2f}", result.inferred_rates[p])
        for p in result.prices
    ]
    print(
        format_table(
            ["reward", "inferred rate"],
            rows,
            title=f"Fig 4 (fit slope {result.fit.slope:.2e}, "
            f"R² {result.fit.r_squared:.2f})",
        )
    )


def _cmd_fig5ab(args: argparse.Namespace) -> None:
    config = RunConfig(
        seed=args.seed, replications=args.replications, engine=args.engine
    )
    result = Session(config).run(Fig5abSpec()).payload
    rows = []
    for votes in result.vote_counts:
        for price in result.prices:
            rows.append(
                (
                    f"{votes}v",
                    f"${price / 100:.2f}",
                    result.mean_phase1[(votes, price)] / 60.0,
                    result.mean_phase2[(votes, price)],
                )
            )
    print(
        format_table(
            ["difficulty", "reward", "phase1/min", "phase2/s"],
            rows,
            title="Fig 5(a)/(b)",
        )
    )


def _cmd_fig5c(args: argparse.Namespace) -> None:
    result = Session(RunConfig(seed=args.seed)).run(Fig5cSpec()).payload
    rows = []
    for bi, budget in enumerate(result.budgets):
        rows.append(
            (
                f"${budget / 100:.0f}",
                *(result.series[("opt", t)][bi] / 60.0 for t in range(3)),
                *(result.series[("heu", t)][bi] / 60.0 for t in range(3)),
            )
        )
    print(
        format_table(
            ["budget", "OPT t1", "OPT t2", "OPT t3", "HEU t1", "HEU t2",
             "HEU t3"],
            rows,
            title="Fig 5(c) — latencies in minutes",
        )
    )


def _cmd_deadline(args: argparse.Namespace) -> None:
    spec = DeadlineFrontierSpec(
        scenario=args.scenario,
        case=args.case,
        n_tasks=args.tasks,
        n_deadlines=args.points,
        confidences=args.confidence,
        max_price=args.max_price,
    )
    config = RunConfig(comparator=args.comparator)
    result = Session(config).run(spec).payload
    print(
        format_series(
            "deadline",
            [round(d, 4) for d in result.deadlines],
            result.series,
            title=f"Deadline–cost frontier {args.scenario}({args.case}) "
            f"[{result.comparator}]",
        )
    )


def _cmd_serve(args: argparse.Namespace) -> None:
    """Run the live service (see ``repro.serve`` / docs/service.md).

    Binds an asyncio HTTP server exposing the batch endpoints
    (``POST /runs``, ``GET /runs/<id>[/result]``) and the online
    market (``POST /market/allocate``, ``GET /market/state``).  Bad
    configuration (unknown executor/fault plan, malformed budget)
    exits 2; the server itself runs until interrupted.
    """
    import asyncio

    from .serve import DEFAULT_MARKET_BUDGET, ReproService, serve_forever

    try:
        faults = None
        if args.faults:
            try:
                faults = json.loads(args.faults)
            except json.JSONDecodeError:
                faults = args.faults  # a registered plan name
            from .resilience.faults import resolve_fault_plan

            resolve_fault_plan(faults)  # unknown names are user errors
        market_budget = (
            DEFAULT_MARKET_BUDGET
            if args.market_budget is None
            else args.market_budget
        )
        service = ReproService(
            store=args.store,
            executor=args.executor,
            workers=args.workers,
            faults=faults,
            market_budget=market_budget,
        )
    except ReproError as exc:
        _fail(args, exc, USER_ERROR_EXIT)
    try:
        asyncio.run(serve_forever(service, args.host, args.port))
    except KeyboardInterrupt:
        pass
    finally:
        service.close()


_COMMANDS: dict[str, Callable[[argparse.Namespace], None]] = {
    "table1": _cmd_table1,
    "fig2": _cmd_fig2,
    "fig3": _cmd_fig3,
    "fig4": _cmd_fig4,
    "fig5ab": _cmd_fig5ab,
    "fig5c": _cmd_fig5c,
    "deadline": _cmd_deadline,
    "run": _cmd_run,
    "run-many": _cmd_run_many,
    "results": _cmd_results,
    "experiments": _cmd_experiments,
    "serve": _cmd_serve,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate experiments from 'Tuning Crowdsourced "
        "Human Computation' (ICDE 2017).",
    )
    parser.add_argument("--seed", type=int, default=0)
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    sub.add_parser("all", help="run every experiment")

    from .perf.deadline import (
        DEFAULT_DEADLINE_COMPARATOR,
        available_deadline_comparators,
    )
    from .perf.engine import DEFAULT_ENGINE, available_engines

    experiments = sub.add_parser(
        "experiments",
        help="list registered experiments and their parameter schemas",
    )
    experiments.add_argument(
        "--json", action="store_true", help="machine-readable schema dump"
    )
    run = sub.add_parser(
        "run",
        help="run any registered experiment by name "
        "(repro run fig2 --param scenario=repe --json)",
    )
    run.add_argument(
        "experiment",
        metavar="EXPERIMENT",
        help="a registered name (see `repro experiments`)",
    )
    run.add_argument(
        "--param",
        "-p",
        action="append",
        default=[],
        metavar="K=V",
        help="spec parameter; value parsed as JSON, falling back to a "
        "bare string (repeatable)",
    )
    run.add_argument(
        "--engine",
        default=None,
        help="evaluation/replication engine name (registry-resolved; "
        f"registered: {', '.join(available_engines())})",
    )
    run.add_argument(
        "--comparator",
        default=None,
        help="deadline comparator name (registry-resolved; registered: "
        f"{', '.join(available_deadline_comparators())})",
    )
    run.add_argument(
        "--replications",
        type=int,
        default=1,
        help="independent seeded worlds per cell (experiments that "
        "support it)",
    )
    run.add_argument(
        "--faults",
        default=None,
        metavar="PLAN",
        help="deterministic fault plan: a registered plan name or an "
        'inline JSON document, e.g. \'{"rules": [{"site": '
        '"engine.sample", "at": [0]}]}\' (see docs/robustness.md)',
    )
    run.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="persistent result store: serve the run from a verified "
        "stored entry if present, execute and store it otherwise "
        "(see `repro results`)",
    )
    run.add_argument(
        "--json",
        action="store_true",
        help="print the full RunResult document (spec, config, "
        "fingerprint, payload, execution timing); on failure, the "
        "structured error document (exit 2 = bad spec/param, exit 3 = "
        "execution failure)",
    )

    from .exec import available_executors

    run_many = sub.add_parser(
        "run-many",
        help="run a batch of experiments with checkpointing and an "
        "optional parallel executor (repro run-many fig2 fig3 "
        "--checkpoint batch.jsonl --executor process)",
    )
    run_many.add_argument(
        "experiment",
        nargs="+",
        metavar="EXPERIMENT",
        help="registered experiment names (default params) and/or "
        "inline spec JSON documents",
    )
    run_many.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="JSONL journal: completed specs are recorded as they "
        "finish, and a rerun resumes from it byte-identically",
    )
    run_many.add_argument(
        "--executor",
        default=None,
        help="where the batch executes (registry-resolved; registered: "
        f"{', '.join(available_executors())}); default: inline serial "
        "loop",
    )
    run_many.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker-pool size for --executor process",
    )
    run_many.add_argument(
        "--engine",
        default=None,
        help="evaluation/replication engine name (registry-resolved)",
    )
    run_many.add_argument(
        "--comparator",
        default=None,
        help="deadline comparator name (registry-resolved)",
    )
    run_many.add_argument(
        "--replications",
        type=int,
        default=1,
        help="independent seeded worlds per cell",
    )
    run_many.add_argument(
        "--attempts",
        type=int,
        default=None,
        help="retry attempts per run (also the supervisor's per-task "
        "requeue budget under --executor process)",
    )
    run_many.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="cooperative per-attempt timeout in seconds (also the "
        "supervisor's straggler deadline under --executor process)",
    )
    run_many.add_argument(
        "--faults",
        default=None,
        metavar="PLAN",
        help="deterministic fault plan (registered name or inline JSON; "
        "worker.* sites drive the process supervisor)",
    )
    run_many.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="persistent result store: skip verified hits, execute and "
        "store misses, tally hit/miss/quarantine counts",
    )
    run_many.add_argument(
        "--fail-fast",
        action="store_true",
        help="stop at the first failing spec and exit 3",
    )
    run_many.add_argument(
        "--json",
        action="store_true",
        help="print the BatchReport document including supervisor "
        "events and the store tally",
    )

    results = sub.add_parser(
        "results",
        help="list / inspect / verify / replay a persistent result "
        "store (repro results ./results --verify)",
    )
    results.add_argument(
        "store",
        metavar="DIR",
        help="store directory (what `repro run --store` wrote)",
    )
    results_mode = results.add_mutually_exclusive_group()
    results_mode.add_argument(
        "--show",
        default=None,
        metavar="FINGERPRINT",
        help="print one stored entry document (exit 2 if absent, 3 if "
        "corrupt)",
    )
    results_mode.add_argument(
        "--verify",
        action="store_true",
        help="walk every entry, quarantine corruption/staleness with "
        "typed reason documents, and report the damage (always exits 0)",
    )
    results_mode.add_argument(
        "--replay",
        default=None,
        metavar="FINGERPRINT",
        help="re-execute a stored run from its own spec/config and "
        "compare documents byte-for-byte (exit 3 on divergence)",
    )
    results.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output",
    )

    serve = sub.add_parser(
        "serve",
        help="run the live crowd-market HTTP service (repro serve "
        "--port 8765 --store ./results --executor process)",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8765,
        help="bind port (default 8765; 0 picks a free port)",
    )
    serve.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="persistent result store: submissions are served from "
        "verified hits and computed results are written back",
    )
    serve.add_argument(
        "--executor",
        default="serial",
        help="compute backend for submitted runs (registry-resolved; "
        f"registered: {', '.join(available_executors())}); 'async' "
        "wraps its own inner executor",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="concurrent dispatch width for submitted runs",
    )
    serve.add_argument(
        "--faults",
        default=None,
        metavar="PLAN",
        help="deterministic fault plan (registered name or inline "
        "JSON; serve.request / serve.backend sites drive the service "
        "— see docs/robustness.md)",
    )
    serve.add_argument(
        "--market-budget",
        type=int,
        default=None,
        help="total ledger units for the online market (default "
        "100000)",
    )

    sub.add_parser("table1", help="motivation examples (Table 1 / Fig 1)")
    fig2 = sub.add_parser("fig2", help="synthetic budget sweeps")
    fig2.add_argument(
        "--scenario", choices=["homo", "repe", "heter"], default="homo"
    )
    fig2.add_argument("--case", choices=list("abcdef"), default="a")
    fig2.add_argument("--tasks", type=int, default=100)
    fig2.add_argument("--samples", type=int, default=1000)
    fig2.add_argument(
        "--scoring", choices=["mc", "numeric"], default="mc"
    )
    fig2.add_argument(
        "--engine",
        choices=list(available_engines()),
        default=DEFAULT_ENGINE,
        help="Monte-Carlo sampling engine (resolved through the "
        "repro.perf.engine registry; all engines produce the same "
        "curves seed-for-seed — they differ in speed and memory)",
    )
    deadline = sub.add_parser(
        "deadline",
        help="deadline–cost frontier (the [29] dual sweep)",
    )
    deadline.add_argument(
        "--scenario", choices=["homo", "repe", "heter"], default="repe"
    )
    deadline.add_argument("--case", choices=list("abcdef"), default="a")
    deadline.add_argument("--tasks", type=int, default=100)
    deadline.add_argument("--points", type=int, default=10)
    deadline.add_argument(
        "--confidence",
        type=float,
        nargs="+",
        default=[0.9],
        help="target completion probabilities (one cost curve each)",
    )
    deadline.add_argument("--max-price", type=int, default=50)
    deadline.add_argument(
        "--comparator",
        choices=list(available_deadline_comparators()),
        default=DEFAULT_DEADLINE_COMPARATOR,
        help="min-cost-for-deadline implementation (resolved through "
        "the repro.perf.deadline registry; all comparators produce "
        "identical curves — 'batched' shares kernels across the grid)",
    )
    fig3 = sub.add_parser("fig3", help="worker arrival moments")
    fig3.add_argument("--arrivals", type=int, default=20)
    fig3.add_argument(
        "--replications",
        type=int,
        default=1,
        help="independent seeded worlds averaged into the figure",
    )
    fig3.add_argument(
        "--engine",
        choices=list(available_engines()),
        default=None,
        help="replication engine (registry name; 'agent-batch' runs "
        "all replications in lock-step — figures are byte-identical "
        "for every engine)",
    )
    fig4 = sub.add_parser("fig4", help="reward vs latency")
    fig5ab = sub.add_parser("fig5ab", help="difficulty vs latency")
    for agent_figure in (fig4, fig5ab):
        agent_figure.add_argument(
            "--replications",
            type=int,
            default=1,
            help="independent agent-market worlds per cell (needs an "
            "agent engine)",
        )
        agent_figure.add_argument(
            "--engine",
            choices=["aggregate", *available_engines()],
            default=None,
            help="'aggregate' (default, the seed path) or a "
            "replication-engine name to run the cells on the agent "
            "market ('agent-batch' = lock-step)",
        )
    sub.add_parser("fig5c", help="OPT vs heuristic")
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        for name in sorted(
            set(_COMMANDS) - {"run", "run-many", "results", "experiments"}
        ):
            print(name)
        return 0
    if args.command == "all":
        defaults = build_parser()
        for name in ("table1", "fig3", "fig4", "fig5ab", "fig5c"):
            print(f"===== {name} =====")
            _COMMANDS[name](defaults.parse_args(["--seed", str(args.seed), name]))
            print()
        for scenario in ("homo", "repe", "heter"):
            print(f"===== fig2 {scenario}(a) =====")
            _COMMANDS["fig2"](
                defaults.parse_args(
                    ["--seed", str(args.seed), "fig2", "--scenario", scenario]
                )
            )
            print()
        return 0
    try:
        _COMMANDS[args.command](args)
    except ReproError as exc:
        # Registry/param mistakes surface as clean CLI errors, not
        # tracebacks (unknown experiment names are caught earlier with
        # the available list).
        raise SystemExit(f"error: {exc}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
