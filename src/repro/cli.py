"""Command-line interface: regenerate the paper's experiments.

Usage::

    python -m repro list                 # list available experiments
    python -m repro table1               # motivation examples
    python -m repro fig2 --scenario homo --case a
    python -m repro fig3 | fig4 | fig5ab | fig5c
    python -m repro deadline --scenario repe --confidence 0.9 0.95
    python -m repro all                  # everything (slow)

Each command prints the same rows the corresponding figure/table plots
(the benchmarks add timing and shape assertions on top of these).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from .experiments import (
    deadline_frontier_experiment,
    fig2_experiment,
    fig3_experiment,
    fig4_experiment,
    fig5ab_experiment,
    fig5c_experiment,
    format_kv,
    format_series,
    format_table,
    motivation_example_1,
    motivation_example_2,
)
from .workloads import PAPER_BUDGETS

__all__ = ["main"]


def _cmd_table1(args: argparse.Namespace) -> None:
    ex1 = motivation_example_1()
    ex2 = motivation_example_2()
    print(
        format_kv(
            {
                "even ($3/$3)": ex1.even_latency,
                "load-sensitive ($2/$4)": ex1.load_sensitive_latency,
                "improvement": f"{ex1.improvement:.1%}",
            },
            title="Motivation Example 1",
        )
    )
    print()
    print(
        format_kv(
            {
                "even ($3/$3)": ex2.even_latency,
                "balanced ($4/$2)": ex2.load_sensitive_latency,
                "improvement": f"{ex2.improvement:.1%}",
            },
            title="Motivation Example 2",
        )
    )


def _cmd_fig2(args: argparse.Namespace) -> None:
    result = fig2_experiment(
        args.scenario,
        case=args.case,
        budgets=PAPER_BUDGETS,
        n_tasks=args.tasks,
        scoring=args.scoring,
        n_samples=args.samples,
        seed=args.seed,
        engine=args.engine,
    )
    print(
        format_series(
            "budget",
            result.budgets,
            result.series,
            title=f"Fig 2 {args.scenario}({args.case})",
        )
    )


def _cmd_fig3(args: argparse.Namespace) -> None:
    result = fig3_experiment(
        n_arrivals=args.arrivals,
        seed=args.seed,
        replications=args.replications,
        engine=args.engine,
    )
    rows = [
        (i + 1, e / 60.0, p1 / 60.0, p2 / 60.0)
        for i, (e, p1, p2) in enumerate(
            zip(
                result.arrival_epochs,
                result.phase1_latencies,
                result.phase2_latencies,
            )
        )
    ]
    print(
        format_table(
            ["order", "epoch/min", "phase1/min", "phase2/min"],
            rows,
            title=f"Fig 3 (R² = {result.linearity_r2:.3f})",
        )
    )


def _cmd_fig4(args: argparse.Namespace) -> None:
    result = fig4_experiment(
        seed=args.seed,
        replications=args.replications,
        engine=args.engine,
    )
    rows = [
        (f"${p / 100:.2f}", result.inferred_rates[p])
        for p in result.prices
    ]
    print(
        format_table(
            ["reward", "inferred rate"],
            rows,
            title=f"Fig 4 (fit slope {result.fit.slope:.2e}, "
            f"R² {result.fit.r_squared:.2f})",
        )
    )


def _cmd_fig5ab(args: argparse.Namespace) -> None:
    result = fig5ab_experiment(
        seed=args.seed,
        replications=args.replications,
        engine=args.engine,
    )
    rows = []
    for votes in result.vote_counts:
        for price in result.prices:
            rows.append(
                (
                    f"{votes}v",
                    f"${price / 100:.2f}",
                    result.mean_phase1[(votes, price)] / 60.0,
                    result.mean_phase2[(votes, price)],
                )
            )
    print(
        format_table(
            ["difficulty", "reward", "phase1/min", "phase2/s"],
            rows,
            title="Fig 5(a)/(b)",
        )
    )


def _cmd_fig5c(args: argparse.Namespace) -> None:
    result = fig5c_experiment(seed=args.seed)
    rows = []
    for bi, budget in enumerate(result.budgets):
        rows.append(
            (
                f"${budget / 100:.0f}",
                *(result.series[("opt", t)][bi] / 60.0 for t in range(3)),
                *(result.series[("heu", t)][bi] / 60.0 for t in range(3)),
            )
        )
    print(
        format_table(
            ["budget", "OPT t1", "OPT t2", "OPT t3", "HEU t1", "HEU t2",
             "HEU t3"],
            rows,
            title="Fig 5(c) — latencies in minutes",
        )
    )


def _cmd_deadline(args: argparse.Namespace) -> None:
    result = deadline_frontier_experiment(
        scenario=args.scenario,
        case=args.case,
        n_tasks=args.tasks,
        n_deadlines=args.points,
        confidences=args.confidence,
        max_price=args.max_price,
        comparator=args.comparator,
    )
    print(
        format_series(
            "deadline",
            [round(d, 4) for d in result.deadlines],
            result.series,
            title=f"Deadline–cost frontier {args.scenario}({args.case}) "
            f"[{result.comparator}]",
        )
    )


_COMMANDS: dict[str, Callable[[argparse.Namespace], None]] = {
    "table1": _cmd_table1,
    "fig2": _cmd_fig2,
    "fig3": _cmd_fig3,
    "fig4": _cmd_fig4,
    "fig5ab": _cmd_fig5ab,
    "fig5c": _cmd_fig5c,
    "deadline": _cmd_deadline,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate experiments from 'Tuning Crowdsourced "
        "Human Computation' (ICDE 2017).",
    )
    parser.add_argument("--seed", type=int, default=0)
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    sub.add_parser("all", help="run every experiment")
    sub.add_parser("table1", help="motivation examples (Table 1 / Fig 1)")
    fig2 = sub.add_parser("fig2", help="synthetic budget sweeps")
    fig2.add_argument(
        "--scenario", choices=["homo", "repe", "heter"], default="homo"
    )
    fig2.add_argument("--case", choices=list("abcdef"), default="a")
    fig2.add_argument("--tasks", type=int, default=100)
    fig2.add_argument("--samples", type=int, default=1000)
    fig2.add_argument(
        "--scoring", choices=["mc", "numeric"], default="mc"
    )
    from .perf.engine import DEFAULT_ENGINE, available_engines

    fig2.add_argument(
        "--engine",
        choices=list(available_engines()),
        default=DEFAULT_ENGINE,
        help="Monte-Carlo sampling engine (resolved through the "
        "repro.perf.engine registry; all engines produce the same "
        "curves seed-for-seed — they differ in speed and memory)",
    )
    from .perf.deadline import (
        DEFAULT_DEADLINE_COMPARATOR,
        available_deadline_comparators,
    )

    deadline = sub.add_parser(
        "deadline",
        help="deadline–cost frontier (the [29] dual sweep)",
    )
    deadline.add_argument(
        "--scenario", choices=["homo", "repe", "heter"], default="repe"
    )
    deadline.add_argument("--case", choices=list("abcdef"), default="a")
    deadline.add_argument("--tasks", type=int, default=100)
    deadline.add_argument("--points", type=int, default=10)
    deadline.add_argument(
        "--confidence",
        type=float,
        nargs="+",
        default=[0.9],
        help="target completion probabilities (one cost curve each)",
    )
    deadline.add_argument("--max-price", type=int, default=50)
    deadline.add_argument(
        "--comparator",
        choices=list(available_deadline_comparators()),
        default=DEFAULT_DEADLINE_COMPARATOR,
        help="min-cost-for-deadline implementation (resolved through "
        "the repro.perf.deadline registry; all comparators produce "
        "identical curves — 'batched' shares kernels across the grid)",
    )
    fig3 = sub.add_parser("fig3", help="worker arrival moments")
    fig3.add_argument("--arrivals", type=int, default=20)
    fig3.add_argument(
        "--replications",
        type=int,
        default=1,
        help="independent seeded worlds averaged into the figure",
    )
    fig3.add_argument(
        "--engine",
        choices=list(available_engines()),
        default=None,
        help="replication engine (registry name; 'agent-batch' runs "
        "all replications in lock-step — figures are byte-identical "
        "for every engine)",
    )
    fig4 = sub.add_parser("fig4", help="reward vs latency")
    fig5ab = sub.add_parser("fig5ab", help="difficulty vs latency")
    for agent_figure in (fig4, fig5ab):
        agent_figure.add_argument(
            "--replications",
            type=int,
            default=1,
            help="independent agent-market worlds per cell (needs an "
            "agent engine)",
        )
        agent_figure.add_argument(
            "--engine",
            choices=["aggregate", *available_engines()],
            default=None,
            help="'aggregate' (default, the seed path) or a "
            "replication-engine name to run the cells on the agent "
            "market ('agent-batch' = lock-step)",
        )
    sub.add_parser("fig5c", help="OPT vs heuristic")
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        for name in sorted(_COMMANDS):
            print(name)
        return 0
    if args.command == "all":
        defaults = build_parser()
        for name in ("table1", "fig3", "fig4", "fig5ab", "fig5c"):
            print(f"===== {name} =====")
            _COMMANDS[name](defaults.parse_args(["--seed", str(args.seed), name]))
            print()
        for scenario in ("homo", "repe", "heter"):
            print(f"===== fig2 {scenario}(a) =====")
            _COMMANDS["fig2"](
                defaults.parse_args(
                    ["--seed", str(args.seed), "fig2", "--scenario", scenario]
                )
            )
            print()
        return 0
    _COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
