"""Linearity-Hypothesis fitting and diagnostics (paper §3.3.2, Fig. 4).

Hypothesis 1: within the operating price range, ``λ_o(c) = k·c + b``.
The paper supports this empirically with four AMT rate estimates
(λ = 0.0038, 0.0062, 0.0121, 0.0131 s⁻¹ at rewards $0.05–$0.12).

:func:`fit_linearity` performs weighted least squares on
``(price, λ̂)`` pairs (weights default to the estimates' Fisher
information ``T0²/N ≈ N/λ̂²``-style precision proxies when
:class:`~repro.inference.mle.RateEstimate` objects are given) and
reports R², residuals, and a calibrated
:class:`~repro.market.pricing.LinearPricing` model ready to hand to
the tuner.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import InferenceError
from ..market.pricing import LinearPricing
from .mle import RateEstimate

__all__ = ["LinearityFit", "fit_linearity", "paper_amt_rates"]


@dataclass(frozen=True)
class LinearityFit:
    """Result of fitting λ_o(c) = slope·c + intercept."""

    slope: float
    intercept: float
    r_squared: float
    residuals: tuple[float, ...]
    prices: tuple[float, ...]
    rates: tuple[float, ...]

    def predict(self, price: float) -> float:
        return self.slope * price + self.intercept

    def to_pricing_model(self) -> LinearPricing:
        """Calibrated pricing curve for the tuner.

        A negative fitted intercept would make low prices produce
        negative rates, which the HPU model forbids; in that case the
        curve is refit through the origin (least squares with
        ``intercept = 0``), which stays closest to the probed points
        while remaining valid at every positive price.  A non-positive
        curve (negative slope and intercept) is rejected outright.
        """
        slope = self.slope
        intercept = self.intercept
        if intercept < 0.0:
            prices = np.asarray(self.prices)
            rates = np.asarray(self.rates)
            denom = float((prices**2).sum())
            slope = float((prices * rates).sum() / denom) if denom > 0 else 0.0
            intercept = 0.0
        slope = max(slope, 0.0)
        if slope == 0.0 and intercept <= 0.0:
            raise InferenceError(
                "fitted curve is non-positive everywhere; cannot build a "
                "pricing model (probe more price points)"
            )
        return LinearPricing(slope=slope, intercept=intercept)

    @property
    def supports_hypothesis(self) -> bool:
        """Loose empirical check mirroring the paper's reading of
        Fig. 4: positive trend and R² above 0.8."""
        return self.slope > 0 and self.r_squared >= 0.8


def fit_linearity(
    prices: Sequence[float],
    rates: Sequence[float] | Sequence[RateEstimate],
    weights: Optional[Sequence[float]] = None,
) -> LinearityFit:
    """Weighted least-squares fit of the Linearity Hypothesis.

    Parameters
    ----------
    prices:
        Probed price points (at least two distinct values).
    rates:
        Rate estimates — floats or :class:`RateEstimate` objects (the
        latter contribute precision weights automatically from their
        observation counts).
    weights:
        Optional explicit weights (override automatic ones).
    """
    prices_arr = np.asarray([float(p) for p in prices], dtype=float)
    if prices_arr.size < 2:
        raise InferenceError("need at least two price points to fit a line")
    if np.unique(prices_arr).size < 2:
        raise InferenceError("need at least two *distinct* price points")

    rate_values = []
    auto_weights = []
    for r in rates:
        if isinstance(r, RateEstimate):
            rate_values.append(r.rate)
            # Poisson-count precision: Var(λ̂) ≈ λ/T0 = λ̂/T0 ⇒ weight T0/λ̂.
            if r.rate > 0:
                auto_weights.append(r.elapsed / r.rate)
            else:
                auto_weights.append(r.elapsed)
        else:
            rate_values.append(float(r))
            auto_weights.append(1.0)
    rates_arr = np.asarray(rate_values, dtype=float)
    if rates_arr.size != prices_arr.size:
        raise InferenceError(
            f"{prices_arr.size} prices but {rates_arr.size} rate estimates"
        )
    if np.any(rates_arr < 0):
        raise InferenceError("rates must be non-negative")

    if weights is not None:
        w = np.asarray([float(x) for x in weights], dtype=float)
        if w.size != prices_arr.size:
            raise InferenceError("weights length mismatch")
        if np.any(w <= 0):
            raise InferenceError("weights must be positive")
    else:
        w = np.asarray(auto_weights, dtype=float)
        if np.any(w <= 0):
            w = np.ones_like(prices_arr)

    # Weighted least squares: minimize Σ w (λ − (k c + b))².
    sw = w.sum()
    mx = float((w * prices_arr).sum() / sw)
    my = float((w * rates_arr).sum() / sw)
    sxx = float((w * (prices_arr - mx) ** 2).sum())
    if sxx <= 0:
        raise InferenceError("degenerate design: zero price variance")
    sxy = float((w * (prices_arr - mx) * (rates_arr - my)).sum())
    slope = sxy / sxx
    intercept = my - slope * mx

    fitted = slope * prices_arr + intercept
    residuals = rates_arr - fitted
    ss_res = float((w * residuals**2).sum())
    ss_tot = float((w * (rates_arr - my) ** 2).sum())
    r_squared = 1.0 if ss_tot == 0 else max(0.0, 1.0 - ss_res / ss_tot)

    return LinearityFit(
        slope=float(slope),
        intercept=float(intercept),
        r_squared=float(r_squared),
        residuals=tuple(float(r) for r in residuals),
        prices=tuple(float(p) for p in prices_arr),
        rates=tuple(float(r) for r in rates_arr),
    )


def paper_amt_rates() -> tuple[tuple[float, ...], tuple[float, ...]]:
    """The paper's Fig. 4 calibration points.

    Rewards $0.05, $0.08, $0.10, $0.12 (expressed in cents = payment
    units) with inferred on-hold rates λ (s⁻¹).  Returned as
    ``(prices_in_units, rates)`` for use with :func:`fit_linearity`.
    """
    prices = (5.0, 8.0, 10.0, 12.0)
    rates = (0.0038, 0.0062, 0.0121, 0.0131)
    return prices, rates
