"""Maximum-likelihood rate estimation (paper §3.3.1 and Appendix A).

Both probe methodologies yield the same estimator:

* **Fixed period** — publish sample tasks, observe ``N`` acceptances
  within a fixed window ``T0``; the Poisson-process likelihood is
  ``λ^N e^{-λ T0}`` and the MLE is ``λ̂ = N / T0``.
* **Random period** — publish tasks, stop after the ``N``-th
  acceptance at elapsed time ``T0``; same likelihood shape, same MLE,
  but biased — Appendix A's correction rescales by ``(N−1)/N``.

The paper writes the random-period correction as ``λ̃ = ((N−1)N)λ̂``
(an obvious typo for the standard ``(N−1)/N`` debiasing of the Gamma
waiting-time estimator: ``E[N/T0] = λ·N/(N−1)``); we implement the
mathematically correct form and note the deviation here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import stats as sps

from ..errors import InferenceError

__all__ = ["RateEstimate", "estimate_rate_fixed_period", "estimate_rate_random_period"]


@dataclass(frozen=True)
class RateEstimate:
    """A rate estimate with its provenance and confidence interval."""

    rate: float
    n_observations: int
    elapsed: float
    method: str
    ci_low: float
    ci_high: float
    confidence: float

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise InferenceError(f"estimated rate is negative: {self.rate}")

    @property
    def mean_interarrival(self) -> float:
        """1/λ̂ — the estimated expected acceptance time."""
        if self.rate == 0:
            return math.inf
        return 1.0 / self.rate


def _poisson_rate_ci(n: int, t0: float, confidence: float) -> tuple[float, float]:
    """Exact (Garwood) CI for a Poisson rate from ``n`` events in ``t0``."""
    alpha = 1.0 - confidence
    if n == 0:
        low = 0.0
    else:
        low = sps.chi2.ppf(alpha / 2.0, 2 * n) / (2.0 * t0)
    high = sps.chi2.ppf(1.0 - alpha / 2.0, 2 * (n + 1)) / (2.0 * t0)
    return float(low), float(high)


def estimate_rate_fixed_period(
    n_taken: int, period: float, confidence: float = 0.95
) -> RateEstimate:
    """Fixed-period MLE ``λ̂ = N / T0`` (unbiased; Appendix A).

    Parameters
    ----------
    n_taken:
        Number of probe tasks accepted within the window (>= 0).
    period:
        Window length ``T0`` (> 0).
    confidence:
        Level for the exact Poisson confidence interval.
    """
    if n_taken < 0 or int(n_taken) != n_taken:
        raise InferenceError(f"n_taken must be a non-negative integer, got {n_taken}")
    if not math.isfinite(period) or period <= 0:
        raise InferenceError(f"period must be positive, got {period}")
    if not 0.0 < confidence < 1.0:
        raise InferenceError(f"confidence must be in (0,1), got {confidence}")
    rate = n_taken / period
    low, high = _poisson_rate_ci(int(n_taken), period, confidence)
    return RateEstimate(
        rate=rate,
        n_observations=int(n_taken),
        elapsed=float(period),
        method="fixed_period",
        ci_low=low,
        ci_high=high,
        confidence=confidence,
    )


def estimate_rate_random_period(
    n_events: int,
    elapsed: float,
    confidence: float = 0.95,
    debias: bool = True,
) -> RateEstimate:
    """Random-period MLE: observe until the ``N``-th event at time ``T0``.

    The raw MLE ``N/T0`` overestimates λ because ``T0 ~ Gamma(N, λ)``
    gives ``E[N/T0] = λ N/(N−1)``; *debias* applies the ``(N−1)/N``
    correction (needs ``N >= 2``).
    """
    if n_events < 1 or int(n_events) != n_events:
        raise InferenceError(f"n_events must be a positive integer, got {n_events}")
    if not math.isfinite(elapsed) or elapsed <= 0:
        raise InferenceError(f"elapsed must be positive, got {elapsed}")
    if not 0.0 < confidence < 1.0:
        raise InferenceError(f"confidence must be in (0,1), got {confidence}")
    n = int(n_events)
    rate = n / elapsed
    if debias:
        if n < 2:
            raise InferenceError(
                "debiasing the random-period estimator needs at least 2 events"
            )
        rate = (n - 1) / elapsed
    # CI from the Gamma pivot: 2λT0 ~ chi2(2N).
    alpha = 1.0 - confidence
    low = sps.chi2.ppf(alpha / 2.0, 2 * n) / (2.0 * elapsed)
    high = sps.chi2.ppf(1.0 - alpha / 2.0, 2 * n) / (2.0 * elapsed)
    return RateEstimate(
        rate=float(rate),
        n_observations=n,
        elapsed=float(elapsed),
        method="random_period" + ("_debiased" if debias else ""),
        ci_low=float(low),
        ci_high=float(high),
        confidence=confidence,
    )
