"""Running-parameter inference for the HPU model (paper §3.3).

* :mod:`~repro.inference.mle` — fixed-period and random-period rate
  MLEs with exact confidence intervals and bias correction;
* :mod:`~repro.inference.probe` — probe programs that publish sample
  tasks against a market and drive the estimators;
* :mod:`~repro.inference.linearity` — Linearity-Hypothesis fitting,
  producing calibrated pricing models for the tuner.
"""

from .linearity import LinearityFit, fit_linearity, paper_amt_rates
from .mle import (
    RateEstimate,
    estimate_rate_fixed_period,
    estimate_rate_random_period,
)
from .probe import ProbeSession, RateProbe

__all__ = [
    "LinearityFit",
    "ProbeSession",
    "RateEstimate",
    "RateProbe",
    "estimate_rate_fixed_period",
    "estimate_rate_random_period",
    "fit_linearity",
    "paper_amt_rates",
]
