"""Probe programs for live rate inference (paper §3.3.1).

A probe publishes lightweight sample tasks at a chosen price and
watches acceptance epochs.  To make the epochs a Poisson process with
rate ``slots · λ_o`` the probe keeps a constant number of open task
slots: the moment a slot's task is accepted, a replacement is
published.  Two stopping rules map to the two estimators in
:mod:`repro.inference.mle`:

* :meth:`RateProbe.fixed_period` — watch for ``T0``, count takes;
* :meth:`RateProbe.random_period` — wait for the ``N``-th take,
  record the elapsed time.

``λ_p`` is estimated the same way from full submissions: the overall
rate λ is probed (tasks with real processing), then
``λ̂_p = 1/(1/λ̂ − 1/λ̂_o)``.  (The paper writes the overall estimate as
λ̂ = N/T0 and recovers λ_p "with similar manner"; subtracting *rates*
directly mixes units — we subtract expected *durations*, which is the
consistent reading and what our tests validate.)
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from ..errors import InferenceError
from ..market.simulator import MarketModel
from ..market.task import TaskType
from ..stats.rng import RandomState, ensure_rng
from .mle import RateEstimate, estimate_rate_fixed_period, estimate_rate_random_period

__all__ = ["RateProbe", "ProbeSession"]


class ProbeSession:
    """Acceptance-epoch stream from a bank of continuously refilled slots.

    The session exposes the merged acceptance process; with ``s`` slots
    each renewing with ``Exp(λ)`` acceptance clocks, the merged stream
    is Poisson with rate ``s·λ`` (superposition of renewals of
    exponential lifetimes).
    """

    def __init__(
        self,
        sample_delay: Callable[[], float],
        slots: int,
        rng: RandomState = None,
    ) -> None:
        if slots < 1:
            raise InferenceError(f"need at least one probe slot, got {slots}")
        self._sample_delay = sample_delay
        self.slots = int(slots)
        self._rng = ensure_rng(rng)
        # Next acceptance time of each slot, relative to session start.
        self._next = [self._sample_delay() for _ in range(self.slots)]
        self.now = 0.0
        self.accept_epochs: list[float] = []

    def step(self) -> float:
        """Advance to the next acceptance; returns its epoch."""
        idx = min(range(self.slots), key=lambda i: self._next[i])
        epoch = self._next[idx]
        if epoch < self.now:
            raise InferenceError("probe clock went backwards")
        self.now = epoch
        self.accept_epochs.append(epoch)
        self._next[idx] = epoch + self._sample_delay()
        return epoch

    def run_until(self, t0: float) -> int:
        """Advance until time *t0*; return the number of acceptances."""
        if t0 <= 0:
            raise InferenceError(f"period must be positive, got {t0}")
        count = 0
        while min(self._next) <= t0:
            self.step()
            count += 1
        self.now = t0
        return count

    def run_count(self, n: int) -> float:
        """Advance until the *n*-th acceptance; return the elapsed time."""
        if n < 1:
            raise InferenceError(f"need at least one event, got {n}")
        epoch = 0.0
        for _ in range(n):
            epoch = self.step()
        return epoch


class RateProbe:
    """Publishes probe tasks against a market and infers λ_o / λ_p.

    Parameters
    ----------
    market:
        Pricing environment to probe.
    task_type:
        The task difficulty class under study.
    slots:
        Parallel probe slots (more slots, faster inference; the
        estimator divides the merged rate back out).
    seed:
        Reproducibility seed.
    """

    def __init__(
        self,
        market: MarketModel,
        task_type: TaskType,
        slots: int = 1,
        seed: RandomState = None,
    ) -> None:
        if slots < 1:
            raise InferenceError(f"slots must be >= 1, got {slots}")
        self.market = market
        self.task_type = task_type
        self.slots = int(slots)
        self._rng = ensure_rng(seed)

    # -- samplers ------------------------------------------------------

    def _onhold_sampler(self, price: int) -> Callable[[], float]:
        rate = self.market.onhold_rate(self.task_type, price)
        return lambda: float(self._rng.exponential(1.0 / rate))

    def _overall_sampler(self, price: int) -> Callable[[], float]:
        rate_o = self.market.onhold_rate(self.task_type, price)
        rate_p = self.task_type.processing_rate
        return lambda: float(
            self._rng.exponential(1.0 / rate_o) + self._rng.exponential(1.0 / rate_p)
        )

    # -- probing λ_o ---------------------------------------------------

    def fixed_period(self, price: int, period: float) -> RateEstimate:
        """Probe λ_o with the fixed-period methodology."""
        session = ProbeSession(self._onhold_sampler(price), self.slots, self._rng)
        n = session.run_until(period)
        merged = estimate_rate_fixed_period(n, period)
        return RateEstimate(
            rate=merged.rate / self.slots,
            n_observations=merged.n_observations,
            elapsed=merged.elapsed,
            method=merged.method,
            ci_low=merged.ci_low / self.slots,
            ci_high=merged.ci_high / self.slots,
            confidence=merged.confidence,
        )

    def random_period(
        self, price: int, n_events: int, debias: bool = True
    ) -> RateEstimate:
        """Probe λ_o with the random-period methodology."""
        session = ProbeSession(self._onhold_sampler(price), self.slots, self._rng)
        elapsed = session.run_count(n_events)
        merged = estimate_rate_random_period(n_events, elapsed, debias=debias)
        return RateEstimate(
            rate=merged.rate / self.slots,
            n_observations=merged.n_observations,
            elapsed=merged.elapsed,
            method=merged.method,
            ci_low=merged.ci_low / self.slots,
            ci_high=merged.ci_high / self.slots,
            confidence=merged.confidence,
        )

    # -- probing λ_p ---------------------------------------------------

    def processing_rate(
        self, price: int, n_events: int = 50
    ) -> tuple[float, RateEstimate, RateEstimate]:
        """Estimate λ_p by probing the overall rate and subtracting the
        on-hold *duration* (see module docstring).

        Returns ``(λ̂_p, overall_estimate, onhold_estimate)``.
        """
        if n_events < 2:
            raise InferenceError("processing-rate probing needs n_events >= 2")
        onhold = self.random_period(price, n_events)
        session = ProbeSession(self._overall_sampler(price), self.slots, self._rng)
        elapsed = session.run_count(n_events)
        overall = estimate_rate_random_period(n_events, elapsed)
        overall = RateEstimate(
            rate=overall.rate / self.slots,
            n_observations=overall.n_observations,
            elapsed=overall.elapsed,
            method=overall.method,
            ci_low=overall.ci_low / self.slots,
            ci_high=overall.ci_high / self.slots,
            confidence=overall.confidence,
        )
        if overall.rate <= 0 or onhold.rate <= 0:
            raise InferenceError("degenerate probe: zero estimated rate")
        mean_processing = 1.0 / overall.rate - 1.0 / onhold.rate
        if mean_processing <= 0:
            raise InferenceError(
                "probe noise produced a non-positive processing time; "
                "increase n_events"
            )
        return 1.0 / mean_processing, overall, onhold
