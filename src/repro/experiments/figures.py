"""Per-figure experiment definitions (paper §1 + §5).

Each ``fig*_experiment`` function regenerates the data behind one
table/figure of the paper and returns a small result object the
benchmark harness prints.  The module is deliberately free of plotting
— the *numbers* are the reproduction; see EXPERIMENTS.md for the
paper-vs-measured comparison.

Since the :mod:`repro.api` redesign the public functions are thin,
byte-identical wrappers: each builds the experiment's registered
:class:`~repro.api.spec.ExperimentSpec` plus a
:class:`~repro.api.config.RunConfig` from its keyword arguments and
executes through :meth:`repro.api.Session.run`.  The implementations
(`_run_fig2`, `_run_fig3`, ...) take ``(spec, config)`` and are what
the specs dispatch to — one code path whether a figure is requested by
keyword call, serialized spec, CLI name, or batched session
submission.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

import numpy as np

from ..core.latency import sample_job_latencies, simulate_job_latency
from ..core.problem import Allocation, HTuningProblem, TaskSpec
from ..core.tuner import STRATEGIES
from ..errors import ModelError
from ..inference.linearity import LinearityFit, fit_linearity
from ..inference.mle import estimate_rate_fixed_period
from ..market.pricing import LinearPricing, PricingModel
from ..market.simulator import AtomicTaskOrder, AgentSimulator, MarketModel
from ..market.task import TaskType
from ..market.trace import TraceRecorder
from ..market.worker import WorkerPool
from ..stats.distributions import Erlang, Exponential, MaximumOf, SumOf
from ..stats.order_statistics import expected_maximum_generic
from ..stats.rng import RandomState, ensure_rng, replication_seeds
from ..workloads.amt import (
    AMT_VOTE_PROCESSING_SECONDS,
    amt_market,
    amt_pricing_model,
    amt_task_type,
    amt_worker_pool,
)
from ..workloads.families import ProblemFamily, scenario_family
from ..workloads.scenarios import PAPER_BUDGETS
from .runner import DeadlineSweepResult, SweepResult, run_budget_sweep

__all__ = [
    "motivation_example_1",
    "motivation_example_2",
    "MotivationResult",
    "fig2_experiment",
    "FIG2_STRATEGIES",
    "fig3_experiment",
    "Fig3Result",
    "fig4_experiment",
    "Fig4Result",
    "fig5ab_experiment",
    "Fig5abResult",
    "fig5c_experiment",
    "Fig5cResult",
    "deadline_frontier_experiment",
]


# ---------------------------------------------------------------------------
# Table 1 + Motivation Examples (Fig. 1)
# ---------------------------------------------------------------------------

#: Table 1 — acceptance rate by reward and task type.  (The paper's
#: table header says "processing rate" but the surrounding text uses
#: these values as the price-dependent uptake rates of the motivating
#: examples; processing is price-independent in the paper's own model,
#: so we read the table as λ_o(c).)
TABLE1_RATES: dict[str, dict[float, float]] = {
    "sorting-vote": {2.0: 2.0, 3.0: 3.0, 1.5: 1.5},
    "yes-no-vote": {2.0: 3.0, 3.0: 5.0, 1.5: 2.0},
}


def _table1_rate(task: str, reward: float) -> float:
    """Table 1 lookup with linear extension beyond the listed rewards."""
    table = TABLE1_RATES[task]
    if reward in table:
        return table[reward]
    # Fit the linearity hypothesis through the three listed points.
    prices = sorted(table)
    fit = fit_linearity(prices, [table[p] for p in prices])
    return max(fit.predict(reward), 1e-9)


@dataclass(frozen=True)
class MotivationResult:
    """Expected latencies of the two allocations of a motivation example."""

    even_latency: float
    load_sensitive_latency: float

    @property
    def load_sensitive_wins(self) -> bool:
        return self.load_sensitive_latency < self.even_latency

    @property
    def improvement(self) -> float:
        """Relative latency reduction of the load-sensitive allocation."""
        return 1.0 - self.load_sensitive_latency / self.even_latency


def motivation_example_1() -> MotivationResult:
    """Example 1: sort job, tasks {o1,o2}×1 and {o3,o4}×2, budget $6.

    Case 1 (even): $3 / $3 → λ₁ = λ(3), per-rep price $1.5 → λ = 1.5.
    Case 2 (load-sensitive): $2 / $4 → λ₁ = λ(2), per-rep $2 → λ = 2.
    Phase-1 only (both tasks are sorting votes with identical λ_p, so
    phase 2 shifts both cases equally).
    """
    def expected(case_prices: tuple[float, float]) -> float:
        p1, p2_per_rep = case_prices
        rate1 = _table1_rate("sorting-vote", p1)
        rate2 = _table1_rate("sorting-vote", p2_per_rep)
        dist = MaximumOf([Exponential(rate1), Erlang(2, rate2)])
        return dist.mean()

    even = expected((3.0, 1.5))
    load = expected((2.0, 2.0))
    return MotivationResult(even_latency=even, load_sensitive_latency=load)


def motivation_example_2(
    processing_rates: tuple[float, float] = (1.0, 2.0),
) -> MotivationResult:
    """Example 2: heterogeneous job — one sorting vote + one filter vote.

    Case 1 (even): $3 / $3.  Case 2 (difficulty-balanced): $4 / $2.
    Both phases counted; *processing_rates* are (sorting, yes/no) λ_p
    (harder sorting votes process more slowly).
    """
    proc_sort, proc_yn = processing_rates

    def expected(case_prices: tuple[float, float]) -> float:
        p_sort, p_yn = case_prices
        sort_latency = SumOf(
            [
                Exponential(_table1_rate("sorting-vote", p_sort)),
                Exponential(proc_sort),
            ]
        )
        yn_latency = SumOf(
            [
                Exponential(_table1_rate("yes-no-vote", p_yn)),
                Exponential(proc_yn),
            ]
        )
        return expected_maximum_generic([sort_latency, yn_latency])

    even = expected((3.0, 3.0))
    balanced = expected((4.0, 2.0))
    return MotivationResult(even_latency=even, load_sensitive_latency=balanced)


# ---------------------------------------------------------------------------
# Fig. 2 — the synthetic sweeps
# ---------------------------------------------------------------------------

#: Strategies plotted per scenario in Fig. 2.
FIG2_STRATEGIES: dict[str, tuple[str, ...]] = {
    "homo": ("ea", "bias_1", "bias_2"),
    "repe": ("ra", "te", "re"),
    "heter": ("ha", "te", "re"),
}

def fig2_experiment(
    scenario: str,
    case: str,
    budgets: Sequence[int] = PAPER_BUDGETS,
    n_tasks: int = 100,
    scoring: str = "mc",
    n_samples: int = 1500,
    seed: RandomState = 0,
    engine=None,
) -> SweepResult:
    """One Fig. 2 subplot: a (scenario, pricing-case) budget sweep.

    ``scenario`` in {'homo', 'repe', 'heter'}, ``case`` in 'a'..'f'.
    The sweep runs over one :class:`ProblemFamily` — specs and groups
    are built once and the DP strategies tune every budget in a single
    pass — with curves byte-identical to the historical per-budget
    rebuild.  ``engine`` picks the Monte-Carlo sampler (a registered
    name such as ``"batch"`` or ``"chunked-batch"``, or an
    :class:`~repro.perf.engine.EvaluationEngine`; the curves are
    identical seed-for-seed whichever engine runs).

    A byte-identical wrapper over ``Session.run(Fig2Spec(...))``.
    """
    from ..api import Fig2Spec, RunConfig, Session

    return Session(RunConfig(seed=seed, engine=engine)).run(
        Fig2Spec(
            scenario=scenario,
            case=case,
            budgets=budgets,
            n_tasks=n_tasks,
            scoring=scoring,
            n_samples=n_samples,
        )
    ).payload


def _run_fig2(spec, config) -> SweepResult:
    """Implementation behind :class:`repro.api.Fig2Spec`."""
    family = scenario_family(
        spec.scenario, case=spec.case, n_tasks=spec.n_tasks
    )
    return run_budget_sweep(
        family,
        budgets=spec.budgets,
        strategies=FIG2_STRATEGIES[spec.scenario],
        scoring=spec.scoring,
        n_samples=spec.n_samples,
        seed=config.seed,
        label=f"fig2-{spec.scenario}({spec.case})",
        engine=config.engine,
    )


# ---------------------------------------------------------------------------
# Deadline–cost frontier — the [29] comparator's dual sweep
# ---------------------------------------------------------------------------


def deadline_frontier_experiment(
    scenario: str = "repe",
    case: str = "a",
    n_tasks: int = 100,
    n_deadlines: int = 10,
    confidences: Sequence[float] = (0.9,),
    max_price: int = 50,
    deadlines: Optional[Sequence[float]] = None,
    comparator=None,
) -> DeadlineSweepResult:
    """Deadline–cost curves on a Fig. 2 workload (the [29] dual).

    Where Fig. 2 fixes budgets and plots tuned latency, this sweep
    fixes deadlines and plots the cheapest spend meeting each at the
    target confidence(s).  When *deadlines* is omitted the grid spans
    the workload's own latency range: from the quantile achievable at
    a generous uniform price (tight end) to the quantile at the
    one-unit floor (loose end), so every scenario/case lands on its
    interesting region automatically.  ``comparator`` resolves through
    the deadline-comparator registry exactly as engine strings do.

    A byte-identical wrapper over
    ``Session.run(DeadlineFrontierSpec(...))``.
    """
    from ..api import DeadlineFrontierSpec, RunConfig, Session

    return Session(RunConfig(comparator=comparator)).run(
        DeadlineFrontierSpec(
            scenario=scenario,
            case=case,
            n_tasks=n_tasks,
            n_deadlines=n_deadlines,
            confidences=confidences,
            max_price=max_price,
            deadlines=None if deadlines is None else tuple(deadlines),
        )
    ).payload


def _run_deadline_frontier(spec, config) -> DeadlineSweepResult:
    """Implementation behind :class:`repro.api.DeadlineFrontierSpec`."""
    from ..core.deadline import latency_quantile_batch
    from .runner import run_deadline_sweep

    family = scenario_family(
        spec.scenario, case=spec.case, n_tasks=spec.n_tasks
    )
    if not spec.confidences:
        raise ModelError("need at least one confidence")
    deadlines = spec.deadlines
    if deadlines is None:
        if spec.n_deadlines < 2:
            raise ModelError(f"need >= 2 deadlines, got {spec.n_deadlines}")
        conf = max(float(c) for c in spec.confidences)
        problem = family.problem_at(
            family.total_repetitions * max(int(spec.max_price), 1)
        )
        rich = {
            g.key: max(int(spec.max_price) // 2, 1) for g in problem.groups()
        }
        floor = {g.key: 1 for g in problem.groups()}
        tight = float(latency_quantile_batch(problem, rich, [conf])[0])
        loose = float(latency_quantile_batch(problem, floor, [conf])[0])
        deadlines = np.linspace(tight, loose, int(spec.n_deadlines))
    return run_deadline_sweep(
        family,
        deadlines=[float(d) for d in deadlines],
        confidences=spec.confidences,
        max_price=spec.max_price,
        comparator=config.comparator,
        label=f"deadline-{spec.scenario}({spec.case})",
    )


# ---------------------------------------------------------------------------
# Fig. 3 — worker arrival moments on the (simulated) platform
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig3Result:
    """First-N acceptance epochs and phase latencies at a fixed reward."""

    arrival_epochs: tuple[float, ...]
    phase1_latencies: tuple[float, ...]
    phase2_latencies: tuple[float, ...]
    linearity_r2: float

    @property
    def poisson_like(self) -> bool:
        """The paper's Fig. 3 reading: epochs grow linearly in order."""
        return self.linearity_r2 >= 0.9


#: Historical alias — the per-replication seeding protocol now lives in
#: :func:`repro.stats.rng.replication_seeds` (public, unit-tested);
#: every figure cell and the api layer share it.
_replication_seeds = replication_seeds


def fig3_experiment(
    n_arrivals: int = 20,
    price: int = 5,
    seed: RandomState = 0,
    replications: int = 1,
    engine=None,
) -> Fig3Result:
    """Issue dot-filter tasks at $0.05 and watch the first N takes.

    Uses the *agent* engine (a real worker stream) so the Poisson
    behaviour is emergent, not assumed: each of *n_arrivals* slots is a
    single-repetition task; we record acceptance epochs in order.

    ``replications`` fans the experiment out to R independent seeded
    worlds (epochs/latencies are averaged order-by-order — Fig. 3 with
    Monte-Carlo noise smoothed); the fan-out runs through
    ``AgentSimulator.run_replications`` with *engine* resolved from
    the :mod:`repro.perf.engine` registry (``"agent-batch"`` =
    lock-step), and every engine yields byte-identical figures.

    A byte-identical wrapper over ``Session.run(Fig3Spec(...))``.
    """
    from ..api import Fig3Spec, RunConfig, Session

    return Session(
        RunConfig(seed=seed, replications=replications, engine=engine)
    ).run(Fig3Spec(n_arrivals=n_arrivals, price=price)).payload


def _run_fig3(spec, config) -> Fig3Result:
    """Implementation behind :class:`repro.api.Fig3Spec`."""
    task_type = amt_task_type(votes=4)
    pool = amt_worker_pool()
    sim = AgentSimulator(pool, seed=config.seed, max_sim_time=1e9)
    orders = [
        AtomicTaskOrder(
            task_type=task_type,
            prices=(spec.price,),
            atomic_task_id=i,
        )
        for i in range(spec.n_arrivals)
    ]
    seeds = replication_seeds(config.seed, config.replications)
    recorders = [TraceRecorder(keep_events=True) for _ in seeds]
    sim.run_replications(
        orders, seeds=seeds, recorders=recorders, engine=config.engine
    )
    epoch_rows = []
    phase1_rows = []
    phase2_rows = []
    for recorder in recorders:
        records = sorted(recorder.records, key=lambda r: r.accepted_at)
        epoch_rows.append([r.accepted_at for r in records])
        phase1_rows.append([r.onhold_latency for r in records])
        phase2_rows.append([r.processing_latency for r in records])
    epochs = tuple(
        float(v) for v in np.asarray(epoch_rows, dtype=float).mean(axis=0)
    )
    phase1 = tuple(
        float(v) for v in np.asarray(phase1_rows, dtype=float).mean(axis=0)
    )
    phase2 = tuple(
        float(v) for v in np.asarray(phase2_rows, dtype=float).mean(axis=0)
    )
    # Linear regression of epoch against order index.
    x = np.arange(1, len(epochs) + 1, dtype=float)
    y = np.asarray(epochs)
    xc = x - x.mean()
    slope = float((xc * (y - y.mean())).sum() / (xc**2).sum())
    intercept = float(y.mean() - slope * x.mean())
    resid = y - (slope * x + intercept)
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 if ss_tot == 0 else 1.0 - float((resid**2).sum()) / ss_tot
    return Fig3Result(
        arrival_epochs=epochs,
        phase1_latencies=phase1,
        phase2_latencies=phase2,
        linearity_r2=max(0.0, r2),
    )


# ---------------------------------------------------------------------------
# Fig. 4 — reward vs latency + rate inference
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig4Result:
    """Per-reward latency orders and the inferred rate curve."""

    prices: tuple[int, ...]
    latency_orders: dict[int, tuple[float, ...]]
    inferred_rates: dict[int, float]
    fit: LinearityFit

    @property
    def monotone_in_price(self) -> bool:
        """Higher rewards should yield faster mean acceptance."""
        means = [float(np.mean(self.latency_orders[p])) for p in self.prices]
        return all(a >= b for a, b in zip(means, means[1:]))


def _cell_onhold_rows(results) -> np.ndarray:
    """Per-replication on-hold latencies in repetition order."""
    rows = []
    for result in results:
        records = sorted(
            result.trace.records, key=lambda r: r.repetition_index
        )
        rows.append([r.onhold_latency for r in records])
    return np.asarray(rows, dtype=float)


def fig4_experiment(
    prices: Sequence[int] = (5, 8, 10, 12),
    repetitions: int = 10,
    seed: RandomState = 0,
    replications: int = 1,
    engine=None,
) -> Fig4Result:
    """Vary the reward $0.05–$0.12 at 10 repetitions per task (§5.2.2).

    For each price we publish one 10-repetition dot-filter task on the
    calibrated market, record the per-order acceptance latencies, and
    infer λ_o with the fixed-period estimator over the observed span.

    ``engine=None`` (or ``"aggregate"``) is the historical path: the
    aggregate model sampled with one stream across the price cells,
    byte-identical to the seed figure.  Any registry engine name (or
    :class:`~repro.perf.engine.EvaluationEngine`) switches the cells
    to the *agent* market: each price's job runs as ``replications``
    independent worker-stream worlds through
    ``AgentSimulator.run_replications`` (latencies averaged
    order-by-order), and every engine — sequential or
    ``"agent-batch"`` lock-step — yields byte-identical figures.

    A byte-identical wrapper over ``Session.run(Fig4Spec(...))``.
    """
    from ..api import Fig4Spec, RunConfig, Session

    return Session(
        RunConfig(seed=seed, replications=replications, engine=engine)
    ).run(Fig4Spec(prices=prices, repetitions=repetitions)).payload


def _run_fig4(spec, config) -> Fig4Result:
    """Implementation behind :class:`repro.api.Fig4Spec`.

    Reads ``config.engine`` raw: ``None``/``"aggregate"`` select the
    historical aggregate path, anything else the replicated agent
    market — the historical contract of the keyword API.
    """
    prices = spec.prices
    repetitions = spec.repetitions
    engine = config.engine
    replications = config.replications
    market = amt_market()
    task_type = amt_task_type(votes=4)
    rng = ensure_rng(config.seed)
    agent_mode = engine is not None and engine != "aggregate"
    if not agent_mode and replications != 1:
        raise ModelError(
            "the aggregate fig4 path is single-realization; pass an agent "
            "engine (e.g. engine='agent-batch') to fan out replications"
        )
    latency_orders: dict[int, tuple[float, ...]] = {}
    inferred: dict[int, float] = {}
    for price in prices:
        order = AtomicTaskOrder(
            task_type=task_type,
            prices=tuple([int(price)] * repetitions),
            atomic_task_id=0,
        )
        if agent_mode:
            pool = amt_worker_pool()
            sim = AgentSimulator(pool, seed=rng, max_sim_time=1e9)
            seeds = replication_seeds(rng.integers(0, 2**62), replications)
            results = sim.run_replications(
                [order], seeds=seeds, engine=engine
            )
            onholds = tuple(
                float(v) for v in _cell_onhold_rows(results).mean(axis=0)
            )
        else:
            from ..market.simulator import AggregateSimulator

            sim = AggregateSimulator(market, seed=rng)
            recorder = TraceRecorder()
            sim.run_job([order], recorder=recorder)
            onholds = tuple(
                r.onhold_latency
                for r in sorted(
                    recorder.records, key=lambda r: r.repetition_index
                )
            )
        latency_orders[int(price)] = onholds
        span = sum(onholds)
        estimate = estimate_rate_fixed_period(len(onholds), span)
        inferred[int(price)] = estimate.rate
    fit = fit_linearity(
        [float(p) for p in prices], [inferred[int(p)] for p in prices]
    )
    return Fig4Result(
        prices=tuple(int(p) for p in prices),
        latency_orders=latency_orders,
        inferred_rates=inferred,
        fit=fit,
    )


# ---------------------------------------------------------------------------
# Fig. 5(a)/(b) — difficulty vs latency
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig5abResult:
    """Mean phase latencies per (vote count, price) combination."""

    vote_counts: tuple[int, ...]
    prices: tuple[int, ...]
    mean_phase1: dict[tuple[int, int], float]
    mean_phase2: dict[tuple[int, int], float]

    def phase1_increases_with_difficulty(self, price: int) -> bool:
        series = [self.mean_phase1[(v, price)] for v in self.vote_counts]
        return all(a <= b for a, b in zip(series, series[1:]))

    def phase2_increases_with_difficulty(self, price: int) -> bool:
        series = [self.mean_phase2[(v, price)] for v in self.vote_counts]
        return all(a <= b for a, b in zip(series, series[1:]))


def fig5ab_experiment(
    vote_counts: Sequence[int] = (4, 6, 8),
    prices: Sequence[int] = (5, 8),
    repetitions: int = 10,
    n_tasks: int = 20,
    seed: RandomState = 0,
    replications: int = 1,
    engine=None,
) -> Fig5abResult:
    """Vary task difficulty (internal vote count) at two rewards.

    Harder tasks must show slower acceptance (Fig. 5(a)) and longer
    processing (Fig. 5(b)).

    ``engine=None`` (or ``"aggregate"``) is the historical aggregate
    path, byte-identical to the seed figure.  Any registry engine
    switches each (difficulty, reward) cell to the agent market:
    ``replications`` independent worker-stream worlds per cell run
    through ``AgentSimulator.run_replications`` (phase means pooled
    over every record of every replication), identical for every
    engine — ``"agent-batch"`` just gets there in lock-step.

    A byte-identical wrapper over ``Session.run(Fig5abSpec(...))``.
    """
    from ..api import Fig5abSpec, RunConfig, Session

    return Session(
        RunConfig(seed=seed, replications=replications, engine=engine)
    ).run(
        Fig5abSpec(
            vote_counts=vote_counts,
            prices=prices,
            repetitions=repetitions,
            n_tasks=n_tasks,
        )
    ).payload


def _run_fig5ab(spec, config) -> Fig5abResult:
    """Implementation behind :class:`repro.api.Fig5abSpec`.

    Like :func:`_run_fig4`, reads ``config.engine`` raw —
    ``None``/``"aggregate"`` is the seed aggregate path.
    """
    from statistics import fmean

    vote_counts = spec.vote_counts
    prices = spec.prices
    repetitions = spec.repetitions
    n_tasks = spec.n_tasks
    engine = config.engine
    replications = config.replications
    market = amt_market()
    rng = ensure_rng(config.seed)
    agent_mode = engine is not None and engine != "aggregate"
    if not agent_mode and replications != 1:
        raise ModelError(
            "the aggregate fig5ab path is single-realization; pass an "
            "agent engine (e.g. engine='agent-batch') to fan out "
            "replications"
        )
    mean_p1: dict[tuple[int, int], float] = {}
    mean_p2: dict[tuple[int, int], float] = {}
    for votes in vote_counts:
        task_type = amt_task_type(votes=votes)
        for price in prices:
            orders = [
                AtomicTaskOrder(
                    task_type=task_type,
                    prices=tuple([int(price)] * repetitions),
                    atomic_task_id=i,
                )
                for i in range(n_tasks)
            ]
            if agent_mode:
                pool = amt_worker_pool()
                sim = AgentSimulator(pool, seed=rng, max_sim_time=1e9)
                seeds = replication_seeds(
                    rng.integers(0, 2**62), replications
                )
                results = sim.run_replications(
                    orders, seeds=seeds, engine=engine
                )
                records = [
                    r for res in results for r in res.trace.records
                ]
                mean_p1[(int(votes), int(price))] = fmean(
                    r.onhold_latency for r in records
                )
                mean_p2[(int(votes), int(price))] = fmean(
                    r.processing_latency for r in records
                )
            else:
                from ..market.simulator import AggregateSimulator

                sim = AggregateSimulator(market, seed=rng)
                recorder = TraceRecorder()
                sim.run_job(orders, recorder=recorder)
                summary = recorder.summary()
                mean_p1[(int(votes), int(price))] = summary.mean_onhold
                mean_p2[(int(votes), int(price))] = summary.mean_processing
    return Fig5abResult(
        vote_counts=tuple(int(v) for v in vote_counts),
        prices=tuple(int(p) for p in prices),
        mean_phase1=mean_p1,
        mean_phase2=mean_p2,
    )


# ---------------------------------------------------------------------------
# Fig. 5(c) — OPT vs the equal-payment heuristic on the AMT workload
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig5cResult:
    """Per-budget, per-task-type expected latencies for OPT and HEU."""

    budgets: tuple[int, ...]
    # (strategy, type index) -> latency series over budgets
    series: dict[tuple[str, int], tuple[float, ...]]

    def overall(self, strategy: str) -> tuple[float, ...]:
        """Job latency = max across the three types, per budget."""
        out = []
        for bi in range(len(self.budgets)):
            out.append(
                max(self.series[(strategy, t)][bi] for t in range(3))
            )
        return tuple(out)

    @property
    def opt_beats_heuristic(self) -> bool:
        opt = self.overall("opt")
        heu = self.overall("heu")
        return all(o <= h * 1.02 for o, h in zip(opt, heu))


def fig5c_experiment(
    budgets: Sequence[int] = (600, 700, 800, 900, 1000),
    repetitions: tuple[int, int, int] = (10, 15, 20),
    n_samples: int = 800,
    seed: RandomState = 0,
) -> Fig5cResult:
    """Three task types (reps 10/15/20), budgets $6–$10 in cents.

    OPT = Algorithm 3 (the instance is Scenario III: the vote counts
    4/6/8 give the types different processing rates); HEU = the
    equal-payment-per-type heuristic.  Latency is per-type completion
    (the paper plots OPT(t1..t3)/HEU(t1..t3) separately).

    A byte-identical wrapper over ``Session.run(Fig5cSpec(...))``.
    """
    from ..api import Fig5cSpec, RunConfig, Session

    return Session(RunConfig(seed=seed)).run(
        Fig5cSpec(
            budgets=budgets, repetitions=repetitions, n_samples=n_samples
        )
    ).payload


def _run_fig5c(spec, config) -> Fig5cResult:
    """Implementation behind :class:`repro.api.Fig5cSpec`."""
    from ..core.heterogeneous import heterogeneous_algorithm_sweep

    budgets = spec.budgets
    repetitions = spec.repetitions
    n_samples = spec.n_samples
    rng = ensure_rng(config.seed)
    base_pricing = amt_pricing_model()
    vote_counts = (4, 6, 8)
    types = [amt_task_type(votes=v) for v in vote_counts]
    pricings = [
        LinearPricing(
            slope=base_pricing.slope * t.attractiveness,
            intercept=base_pricing.intercept * t.attractiveness
            if base_pricing.intercept > 0
            else 0.0,
        )
        if base_pricing.intercept >= 0
        else base_pricing
        for t in types
    ]

    # One family for the whole sweep: the specs (and their pricing
    # objects) are budget-independent, so they are built exactly once.
    specs = [
        TaskSpec(
            task_id=idx,
            repetitions=reps,
            pricing=pricing,
            processing_rate=ttype.processing_rate,
            type_name=ttype.name,
        )
        for idx, (ttype, reps, pricing) in enumerate(
            zip(types, repetitions, pricings)
        )
    ]
    family = ProblemFamily(specs, label="fig5c")
    budgets = [int(b) for b in budgets]
    # OPT (Algorithm 3) for every budget in one pass — HA consumes no
    # randomness, so hoisting it out of the loop leaves the RNG stream
    # (and therefore every simulated latency) bit-identical.
    opt_allocations = heterogeneous_algorithm_sweep(family, budgets)

    # Per-type single-task sub-families, hoisted out of the budget loop
    # (the per-budget sub-problems differ only in their budget).
    sub_families = [
        ProblemFamily(
            [
                TaskSpec(
                    task_id=0,
                    repetitions=task.repetitions,
                    pricing=task.pricing,
                    processing_rate=task.processing_rate,
                    type_name=task.type_name,
                )
            ],
            label=f"fig5c-{task.type_name}",
        )
        for task in family.tasks
    ]

    series: dict[tuple[str, int], list[float]] = {
        (s, t): [] for s in ("opt", "heu") for t in range(3)
    }
    for budget in budgets:
        problem = family.problem_at(budget)
        allocations = {
            "opt": opt_allocations[budget],
            "heu": STRATEGIES["uniform"](problem, rng),
        }
        for name, allocation in allocations.items():
            for t_index, task in enumerate(problem.tasks):
                # Per-type latency: simulate just that task's chain.
                sub_problem = sub_families[t_index].problem_at(
                    sum(allocation[task.task_id])
                )
                sub_alloc = Allocation({0: list(allocation[task.task_id])})
                latency = simulate_job_latency(
                    sub_problem,
                    sub_alloc,
                    n_samples=n_samples,
                    rng=rng,
                )
                series[(name, t_index)].append(latency)
    return Fig5cResult(
        budgets=tuple(int(b) for b in budgets),
        series={k: tuple(v) for k, v in series.items()},
    )
