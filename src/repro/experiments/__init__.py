"""Experiment harness regenerating every table/figure of the paper."""

from .figures import (
    FIG2_STRATEGIES,
    Fig3Result,
    Fig4Result,
    Fig5abResult,
    Fig5cResult,
    MotivationResult,
    fig2_experiment,
    fig3_experiment,
    fig4_experiment,
    fig5ab_experiment,
    fig5c_experiment,
    motivation_example_1,
    motivation_example_2,
)
from .pareto import (
    BudgetLatencyFrontier,
    FrontierPoint,
    budget_latency_frontier,
    min_budget_for_latency,
)
from .reporting import format_kv, format_series, format_table
from .runner import (
    SweepResult,
    evaluate_allocation,
    evaluate_allocation_with_ci,
    run_budget_sweep,
)

__all__ = [
    "BudgetLatencyFrontier",
    "FIG2_STRATEGIES",
    "FrontierPoint",
    "Fig3Result",
    "Fig4Result",
    "Fig5abResult",
    "Fig5cResult",
    "MotivationResult",
    "SweepResult",
    "evaluate_allocation",
    "evaluate_allocation_with_ci",
    "fig2_experiment",
    "fig3_experiment",
    "fig4_experiment",
    "fig5ab_experiment",
    "fig5c_experiment",
    "budget_latency_frontier",
    "format_kv",
    "format_series",
    "format_table",
    "min_budget_for_latency",
    "motivation_example_1",
    "motivation_example_2",
    "run_budget_sweep",
]
