"""Budget–latency trade-off exploration (both directions).

The H-Tuning problem fixes the budget and minimizes latency; a
requester deciding *how much* to spend needs the whole frontier.
:func:`budget_latency_frontier` sweeps budgets, tunes each, and scores
the expected job latency, producing the curve a practitioner reads off
before committing money — plus the "knee" heuristic (max curvature
point) that marks where extra spend stops paying.

The deadline-constrained relative [29] asks the dual question:
:func:`deadline_cost_frontier` sweeps a deadline grid and reports the
cheapest spend meeting each deadline at a target confidence — the
curve [29]'s requester reads before committing to an SLA.  The sweep
resolves its comparator through the
:mod:`repro.perf.deadline` registry (``"batched"`` shares ladders and
profile tables across the whole grid; ``"reference"`` is the preserved
seed comparator) and both produce identical curves.

:func:`min_budget_for_latency` bridges the two framings: the cheapest
budget whose *tuned expected latency* meets a target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

from ..core.latency import expected_job_latency
from ..core.problem import Allocation, HTuningProblem, TaskSpec
from ..core.tuner import Tuner, tune_budget_sweep
from ..errors import ModelError
from ..stats.rng import RandomState
from ..workloads.families import ProblemFamily, as_problem_family

__all__ = [
    "FrontierPoint",
    "BudgetLatencyFrontier",
    "budget_latency_frontier",
    "DeadlineFrontierPoint",
    "DeadlineCostFrontier",
    "deadline_cost_frontier",
    "min_budget_for_latency",
]


@dataclass(frozen=True)
class FrontierPoint:
    """One (budget, tuned expected latency) point."""

    budget: int
    latency: float
    strategy: str


@dataclass(frozen=True)
class BudgetLatencyFrontier:
    """A swept budget–latency curve."""

    points: tuple[FrontierPoint, ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise ModelError("frontier needs at least one point")

    @property
    def budgets(self) -> tuple[int, ...]:
        return tuple(p.budget for p in self.points)

    @property
    def latencies(self) -> tuple[float, ...]:
        return tuple(p.latency for p in self.points)

    def is_monotone(self, tolerance: float = 1e-9) -> bool:
        """Latency should never increase with budget."""
        lats = self.latencies
        return all(a >= b - tolerance for a, b in zip(lats, lats[1:]))

    def knee(self) -> FrontierPoint:
        """Heuristic diminishing-returns point (max distance to the
        chord between the endpoints, the classic 'kneedle' shape)."""
        if len(self.points) < 3:
            return self.points[-1]
        x = np.asarray(self.budgets, dtype=float)
        y = np.asarray(self.latencies, dtype=float)
        x_n = (x - x[0]) / max(x[-1] - x[0], 1e-12)
        y_n = (y - y[-1]) / max(y[0] - y[-1], 1e-12)
        # Max vertical distance below the chord between the endpoints.
        chord = y_n[0] + (y_n[-1] - y_n[0]) * x_n
        idx = int(np.argmax(chord - y_n))
        return self.points[idx]


def budget_latency_frontier(
    workload: Union[ProblemFamily, Callable[[int], HTuningProblem]],
    budgets: Sequence[int],
    tuner: Optional[Tuner] = None,
    include_processing: bool = True,
    shared_grid: bool = False,
) -> BudgetLatencyFrontier:
    """Tune each budget and score the exact expected job latency.

    *workload* is a :class:`~repro.workloads.families.ProblemFamily`
    or a legacy ``budget -> HTuningProblem`` closure.  With a family,
    the tuner's strategy is resolved once and — when it is one of the
    rng-free DP strategies (``ra``/``ha``) — every budget is tuned in
    a single DP pass, with allocations bit-identical to per-budget
    tuning.

    ``shared_grid=True`` scores all tuned allocations through
    :func:`repro.perf.batch.evaluate_allocations` on one shared
    integration grid (family workloads only): the process-level cdf
    cache then collapses repeated rate profiles across the whole
    frontier.  Shared-grid values can differ from the default
    per-budget :func:`~repro.core.latency.expected_job_latency` calls
    by integration error (same kernel, different grid), so the default
    stays per-budget.
    """
    if not budgets:
        raise ModelError("need at least one budget")
    builder, family = as_problem_family(workload)
    if shared_grid and family is None:
        raise ModelError(
            "shared_grid scoring needs a ProblemFamily workload (one "
            "problem shape across budgets)"
        )
    budgets = sorted(int(b) for b in budgets)
    tuner = tuner or Tuner(seed=0)

    swept: Optional[dict[int, Allocation]] = None
    if family is not None:
        resolved = tuner.resolve_strategy(family.problem_at(budgets[0]))
        if tuner.strategy != "auto" or resolved in ("ra", "ha"):
            # Same tasks at every budget -> same resolved strategy.
            swept = tune_budget_sweep(family, budgets, resolved)

    entries: list[tuple[int, HTuningProblem, Allocation, str]] = []
    for budget in budgets:
        problem = builder(budget)
        if swept is not None:
            allocation = swept[budget]
            problem.validate_allocation(allocation)
        else:
            allocation = tuner.tune(problem)
        entries.append(
            (budget, problem, allocation, tuner.resolve_strategy(problem))
        )

    if shared_grid:
        from ..perf.batch import evaluate_allocations

        # One problem instance covers every budget: latency depends on
        # the allocation only, and sharing the instance lets the batch
        # scorer put every candidate on one grid.
        base = family.problem_at(budgets[-1])
        latencies = evaluate_allocations(
            base,
            [allocation for _, _, allocation, _ in entries],
            scoring="numeric",
            include_processing=include_processing,
        )
    else:
        latencies = [
            expected_job_latency(
                problem, allocation, include_processing=include_processing
            )
            for _, problem, allocation, _ in entries
        ]

    points = [
        FrontierPoint(budget=budget, latency=float(latency), strategy=strategy)
        for (budget, _, _, strategy), latency in zip(entries, latencies)
    ]
    return BudgetLatencyFrontier(points=tuple(points))


@dataclass(frozen=True)
class DeadlineFrontierPoint:
    """One (deadline, cheapest cost) point of the dual frontier."""

    deadline: float
    cost: int
    achieved_probability: float
    feasible: bool
    group_prices: dict = None


@dataclass(frozen=True)
class DeadlineCostFrontier:
    """A swept deadline–cost curve (the [29] dual of the budget curve)."""

    points: tuple[DeadlineFrontierPoint, ...]
    confidence: float

    def __post_init__(self) -> None:
        if not self.points:
            raise ModelError("frontier needs at least one point")

    @property
    def deadlines(self) -> tuple[float, ...]:
        return tuple(p.deadline for p in self.points)

    @property
    def costs(self) -> tuple[int, ...]:
        return tuple(p.cost for p in self.points)

    def feasible_points(self) -> tuple[DeadlineFrontierPoint, ...]:
        return tuple(p for p in self.points if p.feasible)

    def is_monotone(self) -> bool:
        """Cost should never increase with a looser deadline (checked
        over the feasible region — infeasible points report the
        floor allocation, not a price)."""
        costs = [p.cost for p in self.feasible_points()]
        return all(a >= b for a, b in zip(costs, costs[1:]))

    def cheapest_feasible(self) -> Optional[DeadlineFrontierPoint]:
        """The tightest deadline worth buying: the first feasible point."""
        feasible = self.feasible_points()
        return feasible[0] if feasible else None

    def knee(self) -> DeadlineFrontierPoint:
        """Diminishing-returns deadline (same chord heuristic as the
        budget frontier, on the feasible region)."""
        feasible = self.feasible_points()
        if len(feasible) < 3:
            return feasible[-1] if feasible else self.points[-1]
        x = np.asarray([p.deadline for p in feasible], dtype=float)
        y = np.asarray([p.cost for p in feasible], dtype=float)
        x_n = (x - x[0]) / max(x[-1] - x[0], 1e-12)
        y_n = (y - y[-1]) / max(y[0] - y[-1], 1e-12)
        chord = y_n[0] + (y_n[-1] - y_n[0]) * x_n
        idx = int(np.argmax(chord - y_n))
        return feasible[idx]


def deadline_cost_frontier(
    workload: Union[ProblemFamily, Iterable[TaskSpec]],
    deadlines: Sequence[float],
    confidence: float = 0.9,
    max_price: int = 1_000,
    include_processing: bool = True,
    comparator: Union[str, Callable, None] = None,
) -> DeadlineCostFrontier:
    """Cheapest spend per deadline — the dual of the budget frontier.

    *workload* is a :class:`~repro.workloads.families.ProblemFamily`
    (its task set is used; the budget axis is the output here) or any
    iterable of :class:`~repro.core.problem.TaskSpec`.

    ``comparator`` resolves through the
    :func:`repro.perf.deadline.get_deadline_comparator` registry — a
    registered name (``"batched"``, ``"reference"``, or anything added
    via :func:`~repro.perf.deadline.register_deadline_comparator`) or
    a callable with the :func:`~repro.core.deadline.min_cost_for_deadline`
    signature.  A comparator carrying a ``deadline_sweep`` attribute
    (the default batched one does) tunes the whole grid in one sweep
    with shared ladders and profile tables; results are identical to
    per-deadline calls either way.
    """
    from ..perf.deadline import get_deadline_comparator

    if len(deadlines) == 0:
        raise ModelError("need at least one deadline")
    tasks = (
        workload.tasks
        if isinstance(workload, ProblemFamily)
        else tuple(workload)
    )
    grid = sorted(float(d) for d in deadlines)
    fn = get_deadline_comparator(comparator)
    sweep = getattr(fn, "deadline_sweep", None)
    if sweep is not None:
        by_deadline = sweep(
            tasks,
            grid,
            confidence=confidence,
            max_price=max_price,
            include_processing=include_processing,
        )
        results = [by_deadline[d] for d in grid]
    else:
        results = [
            fn(
                tasks,
                deadline=d,
                confidence=confidence,
                max_price=max_price,
                include_processing=include_processing,
            )
            for d in grid
        ]
    points = tuple(
        DeadlineFrontierPoint(
            deadline=d,
            cost=result.cost,
            achieved_probability=result.achieved_probability,
            feasible=result.feasible,
            group_prices=result.group_prices,
        )
        for d, result in zip(grid, results)
    )
    return DeadlineCostFrontier(points=points, confidence=confidence)


def min_budget_for_latency(
    workload_factory: Callable[[int], HTuningProblem],
    target_latency: float,
    budget_lo: int,
    budget_hi: int,
    tuner: Optional[Tuner] = None,
    include_processing: bool = True,
) -> Optional[int]:
    """Cheapest budget in [lo, hi] whose tuned latency <= target.

    Binary search — valid because the tuned latency is non-increasing
    in the budget (more money never hurts an optimal tuner; certified
    by tests).  Returns ``None`` when even *budget_hi* misses the
    target.
    """
    if target_latency <= 0:
        raise ModelError(f"target_latency must be positive, got {target_latency}")
    if budget_lo > budget_hi:
        raise ModelError("budget_lo must be <= budget_hi")
    tuner = tuner or Tuner(seed=0)

    def latency_at(budget: int) -> float:
        problem = workload_factory(budget)
        allocation = tuner.tune(problem)
        return expected_job_latency(
            problem, allocation, include_processing=include_processing
        )

    if latency_at(budget_hi) > target_latency:
        return None
    lo, hi = budget_lo, budget_hi
    while lo < hi:
        mid = (lo + hi) // 2
        try:
            ok = latency_at(mid) <= target_latency
        except Exception:
            ok = False  # infeasible mid (below the one-unit floor)
        if ok:
            hi = mid
        else:
            lo = mid + 1
    return hi
