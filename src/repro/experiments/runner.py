"""Experiment runner: evaluate allocation strategies over budget sweeps.

The Fig. 2 experiments all have the same shape — for each budget in a
sweep, build the workload, run each strategy, and score the resulting
allocation's expected job latency.  Two scoring backends:

* ``"mc"`` — Monte-Carlo sampling from the aggregate model (what the
  paper's simulation does), with a seed per (budget, strategy) cell so
  curves are smooth and reproducible;
* ``"numeric"`` — the exact numeric expectation
  (:func:`repro.core.latency.expected_job_latency`); noise-free, used
  by tests to check orderings without Monte-Carlo tolerance.

Sweeps take their workload either as a
:class:`~repro.workloads.families.ProblemFamily` (preferred — specs,
pricing and groups are shared across budgets, and rng-free DP
strategies are tuned for *all* budgets in one DP pass) or as a legacy
``budget -> HTuningProblem`` closure (kept for workloads whose task
set genuinely varies with the budget).  Both paths produce
byte-identical results; the family path is just faster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Optional, Sequence, Union

import numpy as np

from ..core.latency import expected_job_latency, simulate_job_latency
from ..core.problem import Allocation, HTuningProblem
from ..core.tuner import STRATEGIES, tune_budget_sweep
from ..errors import ModelError
from ..stats.rng import RandomState, ensure_rng
from ..workloads.families import ProblemFamily, as_problem_family

__all__ = [
    "SweepResult",
    "DeadlineSweepResult",
    "run_budget_sweep",
    "run_deadline_sweep",
    "evaluate_allocation",
    "evaluate_allocation_with_ci",
]


@dataclass
class SweepResult:
    """Latency series per strategy over a budget sweep."""

    budgets: tuple[int, ...]
    series: dict[str, tuple[float, ...]]
    scoring: str
    label: str = ""

    def best_strategy_at(self, budget: int) -> str:
        """Strategy with the lowest latency at *budget*."""
        idx = self.budgets.index(budget)
        return min(self.series, key=lambda s: self.series[s][idx])

    def dominates(self, winner: str, loser: str, slack: float = 0.0) -> bool:
        """True if *winner*'s curve is <= *loser*'s at every budget
        (within additive *slack*, to absorb Monte-Carlo noise)."""
        w = self.series[winner]
        l = self.series[loser]
        return all(wv <= lv + slack for wv, lv in zip(w, l))

    def as_rows(self) -> list[tuple]:
        """Rows (budget, latency-per-strategy...) for reporting."""
        names = sorted(self.series)
        rows = []
        for i, b in enumerate(self.budgets):
            rows.append((b, *(self.series[n][i] for n in names)))
        return rows


@dataclass
class DeadlineSweepResult:
    """Cost series per confidence over a deadline sweep (the [29] dual).

    ``series`` maps a confidence label (``f"p{confidence:g}"``) to the
    per-deadline cheapest costs; ``feasible`` carries the matching
    feasibility flags (an infeasible cell reports the floor allocation
    cost, not an attainable price).
    """

    deadlines: tuple[float, ...]
    series: dict[str, tuple[int, ...]]
    feasible: dict[str, tuple[bool, ...]]
    comparator: str
    label: str = ""

    def best_deadline_at(self, budget: int, confidence_label: str) -> float:
        """Tightest feasible deadline affordable within *budget*."""
        for deadline, cost, ok in zip(
            self.deadlines,
            self.series[confidence_label],
            self.feasible[confidence_label],
        ):
            if ok and cost <= budget:
                return deadline
        raise ModelError(
            f"no feasible deadline within budget {budget} for "
            f"{confidence_label}"
        )

    def as_rows(self) -> list[tuple]:
        """Rows (deadline, cost-per-confidence...) for reporting."""
        names = sorted(self.series)
        rows = []
        for i, d in enumerate(self.deadlines):
            rows.append((d, *(self.series[n][i] for n in names)))
        return rows


def run_deadline_sweep(
    workload,
    deadlines: Sequence[float],
    confidences: Sequence[float] = (0.9,),
    max_price: int = 1_000,
    include_processing: bool = True,
    comparator=None,
    label: str = "",
) -> DeadlineSweepResult:
    """Run the deadline–cost comparator over a deadline grid.

    The dual of :func:`run_budget_sweep`: instead of tuning strategies
    at fixed budgets and scoring latency, it fixes deadlines (one
    curve per target *confidence*) and reports the cheapest spend
    meeting each ([29]'s problem).  ``comparator`` is a registered
    deadline-comparator name or callable, resolved exactly as engine
    strings are (see
    :func:`repro.perf.deadline.get_deadline_comparator`); the batched
    default shares kernels across the whole grid.
    """
    from ..perf.deadline import (
        deadline_comparator_name,
        get_deadline_comparator,
    )
    from .pareto import deadline_cost_frontier

    if not deadlines:
        raise ModelError("deadline sweep needs at least one deadline")
    if not confidences:
        raise ModelError("deadline sweep needs at least one confidence")
    get_deadline_comparator(comparator)  # fail fast on unknown names
    comparator_name = deadline_comparator_name(comparator)
    grid = tuple(sorted(float(d) for d in deadlines))
    series: dict[str, tuple[int, ...]] = {}
    feasible: dict[str, tuple[bool, ...]] = {}
    for confidence in confidences:
        name = f"p{float(confidence):g}"
        if name in series:
            raise ModelError(
                f"duplicate confidence label {name!r}: confidences must "
                "be distinct at %g precision"
            )
        frontier = deadline_cost_frontier(
            workload,
            grid,
            confidence=float(confidence),
            max_price=max_price,
            include_processing=include_processing,
            comparator=comparator,
        )
        series[name] = frontier.costs
        feasible[name] = tuple(p.feasible for p in frontier.points)
    return DeadlineSweepResult(
        deadlines=grid,
        series=series,
        feasible=feasible,
        comparator=comparator_name,
        label=label,
    )


def evaluate_allocation(
    problem: HTuningProblem,
    allocation: Allocation,
    scoring: str = "mc",
    n_samples: int = 2000,
    rng: RandomState = None,
    include_processing: bool = True,
    engine=None,
) -> float:
    """Score one allocation's expected job latency.

    ``engine`` selects the Monte-Carlo sampler — a registered name
    (``"scalar"``, ``"batch"``, ``"chunked-batch"``) or an
    :class:`repro.perf.engine.EvaluationEngine` instance.  All
    registered engines consume the RNG stream identically, so the
    score is the same whichever is picked — they differ in speed and
    memory shape.  Numeric scoring ignores the engine (it is already
    kernel-cached).
    """
    if scoring == "mc":
        return simulate_job_latency(
            problem,
            allocation,
            n_samples=n_samples,
            rng=rng,
            include_processing=include_processing,
            engine=engine,
        )
    if scoring == "numeric":
        return expected_job_latency(
            problem, allocation, include_processing=include_processing
        )
    raise ModelError(f"unknown scoring {scoring!r}; expected 'mc' or 'numeric'")


def evaluate_allocation_with_ci(
    problem: HTuningProblem,
    allocation: Allocation,
    n_samples: int = 2000,
    rng: RandomState = None,
    include_processing: bool = True,
    confidence: float = 0.95,
    engine=None,
) -> tuple[float, float, float]:
    """Monte-Carlo latency estimate with a normal-approximation CI.

    Returns ``(mean, ci_low, ci_high)``.  The CLT applies comfortably
    at the default sample counts (job latencies are light-tailed
    maxima of phase-type sums).  The replication fan-out goes through
    the engine registry: ``engine`` is a registered name or an
    :class:`~repro.perf.engine.EvaluationEngine`, and every engine
    consumes the stream identically, so the interval is byte-identical
    whichever is picked.
    """
    from scipy import stats as sps

    from ..core.latency import sample_job_latencies

    if not 0.0 < confidence < 1.0:
        raise ModelError(f"confidence must be in (0,1), got {confidence}")
    draws = sample_job_latencies(
        problem, allocation, n_samples, rng, include_processing,
        engine=engine,
    )
    mean = float(draws.mean())
    sem = float(draws.std(ddof=1) / np.sqrt(len(draws)))
    z = float(sps.norm.ppf(0.5 + confidence / 2.0))
    return mean, mean - z * sem, mean + z * sem


def run_budget_sweep(
    workload: Union[ProblemFamily, Callable[[int], HTuningProblem]],
    budgets: Sequence[int],
    strategies: Sequence[str],
    scoring: str = "mc",
    n_samples: int = 2000,
    seed: RandomState = 0,
    include_processing: bool = True,
    label: str = "",
    engine=None,
) -> SweepResult:
    """Run *strategies* over *budgets* and collect latency curves.

    Parameters
    ----------
    workload:
        A :class:`~repro.workloads.families.ProblemFamily` (preferred)
        or a legacy ``budget -> HTuningProblem`` closure.  With a
        family, specs/pricing/groups are shared across budgets and the
        rng-free DP strategies (``ra``, ``ha``) are tuned for every
        budget in **one** DP pass
        (:func:`repro.core.tuner.tune_budget_sweep`); the curves are
        byte-identical to the per-budget closure path either way.
    strategies:
        Names from :data:`repro.core.tuner.STRATEGIES`.
    scoring / n_samples:
        Latency scoring backend; ``n_samples`` only applies to ``mc``.
    seed:
        Base seed; each (budget, strategy) cell gets a derived
        substream so curves are independent yet reproducible.
    engine:
        Monte-Carlo sampling engine — a registered name or an
        :class:`~repro.perf.engine.EvaluationEngine`; see
        :func:`evaluate_allocation`.  Curves are identical for every
        engine.
    """
    unknown = [s for s in strategies if s not in STRATEGIES]
    if unknown:
        from ..errors import RegistryError

        raise RegistryError(
            f"unknown strategies: {unknown}; expected a subset of "
            f"{sorted(STRATEGIES)}"
        )
    if not budgets:
        raise ModelError("budget sweep needs at least one budget")
    builder, family = as_problem_family(workload)
    base = ensure_rng(seed)
    cell_seed = base.integers(0, 2**62)

    # One-pass tuning: strategies whose allocation is a pure function
    # of (groups, budget) get all budgets from a single DP sweep.  The
    # rng-consuming strategies keep their per-cell generator below, so
    # the cell RNG protocol (and hence every curve) is unchanged.
    swept: dict[str, dict[int, Allocation]] = {}
    if family is not None:
        for name in strategies:
            allocations = tune_budget_sweep(
                family, [int(b) for b in budgets], name
            )
            if allocations is not None:
                swept[name] = allocations

    series: dict[str, list[float]] = {s: [] for s in strategies}
    for bi, budget in enumerate(budgets):
        problem = builder(int(budget))
        for si, name in enumerate(strategies):
            strat_rng = np.random.default_rng(
                int(cell_seed) + 1_000_003 * bi + 7919 * si
            )
            if name in swept:
                allocation = swept[name][int(budget)]
            else:
                allocation = STRATEGIES[name](problem, strat_rng)
            latency = evaluate_allocation(
                problem,
                allocation,
                scoring=scoring,
                n_samples=n_samples,
                rng=strat_rng,
                include_processing=include_processing,
                engine=engine,
            )
            series[name].append(latency)
    return SweepResult(
        budgets=tuple(int(b) for b in budgets),
        series={k: tuple(v) for k, v in series.items()},
        scoring=scoring,
        label=label,
    )
