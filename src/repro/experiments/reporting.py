"""Textual reporting of experiment results.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep the formatting consistent and dependency-free
(plain ASCII, no plotting libraries needed offline).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_series", "format_kv"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
    float_fmt: str = "{:.4g}",
) -> str:
    """Render an ASCII table with aligned columns."""
    str_rows = []
    for row in rows:
        str_rows.append(
            [
                float_fmt.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence,
    series: Mapping[str, Sequence[float]],
    title: str = "",
) -> str:
    """Render named series against a shared x-axis as a table."""
    names = sorted(series)
    headers = [x_label, *names]
    rows = []
    for i, x in enumerate(x_values):
        rows.append((x, *(float(series[n][i]) for n in names)))
    return format_table(headers, rows, title=title)


def format_kv(pairs: Mapping[str, object], title: str = "") -> str:
    """Render key/value diagnostics."""
    width = max((len(k) for k in pairs), default=0)
    lines = [title] if title else []
    for key, value in pairs.items():
        if isinstance(value, float):
            value = f"{value:.6g}"
        lines.append(f"{key.ljust(width)} : {value}")
    return "\n".join(lines)
