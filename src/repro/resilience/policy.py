"""Retry / timeout policies and the per-run execution record.

Policies are frozen serializable values carried on
:class:`~repro.api.config.RunConfig`; the resilient executor in
:meth:`repro.api.Session.run` interprets them.  Two hard rules keep
results deterministic:

* backoff delays follow the fixed schedule
  ``min(backoff * 2**k, backoff_cap)`` — no jitter, no wall-clock
  randomness, and (with the default ``backoff=0``) no sleeping at all,
  so retried runs produce byte-identical payloads;
* timeouts are *cooperative*: the deadline is only checked at the
  named fault sites (:func:`repro.resilience.faults.site_check`), so
  a timed-out attempt never leaves partial state behind.

:class:`ExecutionRecord` is the durable account of what the executor
actually did — which engine produced the payload, whether the run was
degraded onto a fallback engine, and every failed attempt along the
way.  It is attached to the :class:`~repro.api.session.RunResult` only
when something non-default happened, so default-path result documents
are byte-identical to the pre-resilience layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..errors import ModelError

__all__ = ["RetryPolicy", "TimeoutPolicy", "ExecutionRecord", "DEFAULT_RETRY"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many attempts each engine gets, and what to fall back to.

    The executor tries the configured engine ``attempts`` times, then
    walks ``fallback_engines`` in order, giving each ``attempts``
    tries.  ``backoff``/``backoff_cap`` define the deterministic
    capped-exponential delay (seconds) between attempts — delay *k* is
    ``min(backoff * 2**k, backoff_cap)``; the default ``backoff=0``
    retries immediately.
    """

    attempts: int = 1
    backoff: float = 0.0
    backoff_cap: float = 60.0
    fallback_engines: tuple = ()

    def __post_init__(self) -> None:
        if not isinstance(self.attempts, int) or isinstance(
            self.attempts, bool
        ) or self.attempts < 1:
            raise ModelError(
                f"attempts must be an int >= 1, got {self.attempts!r}"
            )
        if float(self.backoff) < 0 or float(self.backoff_cap) < 0:
            raise ModelError(
                "backoff and backoff_cap must be >= 0, got "
                f"{self.backoff!r}/{self.backoff_cap!r}"
            )
        object.__setattr__(self, "backoff", float(self.backoff))
        object.__setattr__(self, "backoff_cap", float(self.backoff_cap))
        engines = self.fallback_engines
        if isinstance(engines, str):
            engines = (engines,)
        engines = tuple(engines)
        if not all(isinstance(e, str) and e for e in engines):
            raise ModelError(
                f"fallback_engines must be registered engine names, got "
                f"{self.fallback_engines!r}"
            )
        object.__setattr__(self, "fallback_engines", engines)

    def delay(self, attempt: int) -> float:
        """Deterministic backoff before retry *attempt* (0-based)."""
        if self.backoff == 0.0:
            return 0.0
        return min(self.backoff * 2.0**attempt, self.backoff_cap)

    def to_dict(self) -> dict:
        return {
            "attempts": self.attempts,
            "backoff": self.backoff,
            "backoff_cap": self.backoff_cap,
            "fallback_engines": list(self.fallback_engines),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RetryPolicy":
        known = {"attempts", "backoff", "backoff_cap", "fallback_engines"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ModelError(
                f"unknown RetryPolicy keys {unknown}; expected a subset of "
                f"{sorted(known)}"
            )
        data = dict(payload)
        if "fallback_engines" in data:
            data["fallback_engines"] = tuple(data["fallback_engines"])
        return cls(**data)


#: The policy in force when a config carries none: one attempt, no
#: fallback — failures propagate exactly as they did pre-resilience.
DEFAULT_RETRY = RetryPolicy()


@dataclass(frozen=True)
class TimeoutPolicy:
    """Cooperative per-attempt wall-clock budget (seconds)."""

    seconds: float

    def __post_init__(self) -> None:
        try:
            seconds = float(self.seconds)
        except (TypeError, ValueError):
            raise ModelError(
                f"timeout seconds must be a number, got {self.seconds!r}"
            ) from None
        if not seconds > 0:
            raise ModelError(
                f"timeout seconds must be > 0, got {self.seconds!r}"
            )
        object.__setattr__(self, "seconds", seconds)

    def to_dict(self) -> dict:
        return {"seconds": self.seconds}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "TimeoutPolicy":
        unknown = sorted(set(payload) - {"seconds"})
        if unknown:
            raise ModelError(
                f"unknown TimeoutPolicy keys {unknown}; expected ['seconds']"
            )
        return cls(seconds=payload["seconds"])


@dataclass(frozen=True)
class ExecutionRecord:
    """What the resilient executor did to produce a payload.

    ``engine`` is the registry name of the engine that succeeded
    (``None`` means the configured engine — the primary); ``degraded``
    marks a payload produced by a fallback engine; ``attempts`` lists
    every failed attempt as a small dict (engine label, attempt index,
    error code/message, fault site/replication, backoff applied).

    ``started_at`` / ``elapsed`` are wall-clock observability — the
    ``time.time()`` instant the run began and its ``time.monotonic()``
    duration in seconds.  Every :meth:`repro.api.Session.run` attaches
    them, but they never enter the default serialized form: a record is
    :attr:`significant` only when the *resilience* fields are
    non-default, and :meth:`to_dict` omits timing unless
    ``include_timing=True`` (the ``repro run --json`` path), so result
    documents — and therefore checkpoints, fingerprint goldens, and
    serial-vs-parallel merges — stay byte-identical across runs.
    """

    engine: Optional[str] = None
    degraded: bool = False
    attempts: tuple = ()
    started_at: Optional[float] = None
    elapsed: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "attempts", tuple(self.attempts))

    @property
    def significant(self) -> bool:
        """True when something non-default happened (timing excluded)."""
        return (
            self.engine is not None
            or self.degraded
            or bool(self.attempts)
        )

    def to_dict(self, include_timing: bool = False) -> dict:
        out = {
            "engine": self.engine,
            "degraded": bool(self.degraded),
            "attempts": [dict(entry) for entry in self.attempts],
        }
        if include_timing:
            out["started_at"] = self.started_at
            out["elapsed"] = self.elapsed
        return out

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ExecutionRecord":
        return cls(
            engine=payload.get("engine"),
            degraded=bool(payload.get("degraded", False)),
            attempts=tuple(payload.get("attempts", ())),
            started_at=payload.get("started_at"),
            elapsed=payload.get("elapsed"),
        )
