"""Structured, replayable error documents.

Every failure the resilient executor sees is captured into an
:class:`ErrorDocument` — a frozen JSON-serializable record carrying
the stable error code, the serialized ``(spec, config)`` pair and its
fingerprint, the seed, and (for simulator/fault failures) the fault
site and replication index.  Because the config embeds the fault plan
and policies, a failed run is reproducible from its document alone:
:meth:`ErrorDocument.replay` rebuilds the spec and config and re-runs
them, returning the document of the failure it reproduces.

The executor attaches the document to the exception it re-raises (as
``exc.error_document``), which is what the CLI serializes for
``repro run --json`` failures and what :class:`~repro.resilience.batch.
BatchReport` files per-spec failures under.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping, Optional

from ..errors import ReproError, error_code

__all__ = ["ErrorDocument"]


def _try(fn):
    try:
        return fn()
    except Exception:
        return None


@dataclass(frozen=True)
class ErrorDocument:
    """One failure, fully addressed.

    ``spec``/``config`` are the serialized documents (``None`` when the
    failing value cannot serialize, e.g. a live generator seed);
    ``fingerprint`` is the run address when both serialized.  ``site``,
    ``replication`` and ``occurrence`` are present for fault-injected
    and per-replication failures.
    """

    code: str
    error: str
    message: str
    experiment: Optional[str] = None
    spec: Optional[dict] = None
    config: Optional[dict] = None
    fingerprint: Optional[str] = None
    seed: Optional[int] = None
    site: Optional[str] = None
    replication: Optional[int] = None
    occurrence: Optional[int] = None

    @classmethod
    def capture(
        cls, exc: BaseException, spec=None, config=None
    ) -> "ErrorDocument":
        """Build the document for *exc* raised running ``(spec, config)``.

        Reuses the document the executor already attached when present
        (so CLI and batch reporting agree byte-for-byte with the
        executor's own account).
        """
        attached = getattr(exc, "error_document", None)
        if isinstance(attached, cls):
            return attached
        spec_doc = _try(spec.to_dict) if spec is not None else None
        config_doc = _try(config.to_dict) if config is not None else None
        fingerprint_token = None
        if spec_doc is not None and config_doc is not None:
            from ..api.config import fingerprint

            fingerprint_token = fingerprint(
                {"spec": spec_doc, "config": config_doc}
            )
        replication = getattr(exc, "replication", None)
        return cls(
            code=error_code(exc),
            error=type(exc).__name__,
            message=str(exc),
            experiment=getattr(spec, "name", None),
            spec=spec_doc,
            config=config_doc,
            fingerprint=fingerprint_token,
            seed=config_doc.get("seed") if config_doc else None,
            site=getattr(exc, "site", None),
            replication=(
                int(replication) if replication is not None else None
            ),
            occurrence=getattr(exc, "occurrence", None),
        )

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "error": self.error,
            "message": self.message,
            "experiment": self.experiment,
            "spec": self.spec,
            "config": self.config,
            "fingerprint": self.fingerprint,
            "seed": self.seed,
            "site": self.site,
            "replication": self.replication,
            "occurrence": self.occurrence,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ErrorDocument":
        from ..errors import ModelError

        known = {f for f in cls.__dataclass_fields__}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ModelError(
                f"unknown ErrorDocument keys {unknown}; expected a subset "
                f"of {sorted(known)}"
            )
        return cls(**dict(payload))

    @classmethod
    def from_json(cls, text: str) -> "ErrorDocument":
        return cls.from_dict(json.loads(text))

    # -- replay --------------------------------------------------------

    def replay(self) -> "ErrorDocument":
        """Re-run the failed ``(spec, config)`` pair and return the
        reproduced failure's document.

        Raises :class:`~repro.errors.ReproError` if the document lacks
        a serialized spec/config, or if the re-run *succeeds* (the
        stored failure was not deterministic — e.g. a wall-clock
        timeout on a faster machine).
        """
        from ..api.config import RunConfig
        from ..api.session import Session
        from ..api.spec import ExperimentSpec
        from ..errors import ModelError

        if self.spec is None or self.config is None:
            raise ModelError(
                "error document carries no serialized spec/config; only "
                "documents captured from serializable runs can replay"
            )
        spec = ExperimentSpec.from_dict(self.spec)
        config = RunConfig.from_dict(self.config)
        try:
            Session(config).run(spec)
        except ReproError as exc:
            return ErrorDocument.capture(exc, spec=spec, config=config)
        raise ModelError(
            f"replay of {self.fingerprint or self.experiment} did not "
            "reproduce the failure (the run succeeded)"
        )
