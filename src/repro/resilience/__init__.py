"""repro.resilience — deterministic fault injection + recovery.

The execution layer's failure model (see ``docs/robustness.md``):

* :mod:`~repro.resilience.faults` — seeded :class:`FaultPlan` /
  :class:`FaultRule` injection at named sites, with a name registry
  mirroring the engine/comparator registries;
* :mod:`~repro.resilience.policy` — :class:`RetryPolicy` /
  :class:`TimeoutPolicy` carried on :class:`~repro.api.RunConfig`, and
  the :class:`ExecutionRecord` of what the executor actually did;
* :mod:`~repro.resilience.document` — replayable
  :class:`ErrorDocument` failure records;
* :mod:`~repro.resilience.checkpoint` — the append-only
  :class:`CheckpointJournal` behind resumable ``run_many`` batches;
* :mod:`~repro.resilience.batch` — :class:`BatchReport` /
  :class:`SpecOutcome`, the per-spec outcome view ``run_many``
  returns.

With no fault plan and default policies every run is byte-identical
to the pre-resilience stack; the overhead of the wrapping is measured
by the ``session_resilience`` section of
``benchmarks/bench_perf_engine.py``.
"""

from .batch import BatchReport, SpecOutcome
from .checkpoint import CheckpointJournal
from .document import ErrorDocument
from .faults import (
    FAULT_SITES,
    FaultPlan,
    FaultRule,
    abandonment_hook,
    active_fault_state,
    available_fault_plans,
    get_fault_plan,
    register_fault_plan,
    resolve_fault_plan,
    runtime_scope,
    site_check,
)
from .policy import DEFAULT_RETRY, ExecutionRecord, RetryPolicy, TimeoutPolicy

__all__ = [
    "BatchReport",
    "SpecOutcome",
    "CheckpointJournal",
    "ErrorDocument",
    "FAULT_SITES",
    "FaultPlan",
    "FaultRule",
    "abandonment_hook",
    "active_fault_state",
    "available_fault_plans",
    "get_fault_plan",
    "register_fault_plan",
    "resolve_fault_plan",
    "runtime_scope",
    "site_check",
    "DEFAULT_RETRY",
    "ExecutionRecord",
    "RetryPolicy",
    "TimeoutPolicy",
]
