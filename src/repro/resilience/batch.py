"""Per-spec batch outcomes: ``SpecOutcome`` and ``BatchReport``.

``Session.run_many`` returns a :class:`BatchReport` instead of raising
on the first failing spec: every spec gets a :class:`SpecOutcome` with
status ``succeeded``, ``degraded`` (completed on a fallback engine),
or ``failed`` (carrying the :class:`~repro.resilience.document.
ErrorDocument`).  Iterating the report yields the completed
:class:`~repro.api.session.RunResult` objects in submission order, so
existing ``[r.payload for r in session.run_many(...)]`` callers are
unaffected when nothing fails.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = ["SpecOutcome", "BatchReport"]


@dataclass(frozen=True)
class SpecOutcome:
    """One spec's fate inside a batch.

    ``restored`` marks outcomes replayed from a checkpoint journal
    instead of executed; ``served`` marks outcomes served from a
    verified :class:`~repro.store.ResultStore` entry.  Both are
    bookkeeping only and deliberately excluded from :meth:`to_dict`,
    so resumed / memoized and uninterrupted batches serialize
    byte-identically.
    """

    spec: object
    status: str  # "succeeded" | "degraded" | "failed"
    result: Optional[object] = None
    error: Optional[object] = None
    restored: bool = False
    served: bool = False

    @property
    def ok(self) -> bool:
        return self.status != "failed"

    def to_dict(self) -> dict:
        return {
            "experiment": getattr(self.spec, "name", None),
            "status": self.status,
            "result": self.result.to_dict() if self.result is not None else None,
            "error": self.error.to_dict() if self.error is not None else None,
        }


@dataclass(frozen=True)
class BatchReport:
    """All outcomes of one ``run_many`` batch, in submission order.

    ``events`` is the supervisor's observability stream — worker
    crashes, straggler requeues, respawns, degradation to serial — as
    plain dicts in occurrence order.  Serial batches leave it empty.
    Like :attr:`SpecOutcome.restored`, events are bookkeeping only and
    excluded from :meth:`to_dict` unless ``include_events=True``, so
    serial and parallel reports of the same batch serialize
    byte-identically.

    ``store`` is the result-store tally of a memoized batch
    (``run_many(store=...)``): hits / misses / quarantined /
    write_failures counts, ``None`` for unmemoized batches.  Also
    bookkeeping: opt in with ``to_dict(include_store=True)``.
    """

    outcomes: tuple = field(default_factory=tuple)
    events: tuple = field(default_factory=tuple)
    store: Optional[dict] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "outcomes", tuple(self.outcomes))
        object.__setattr__(self, "events", tuple(self.events))

    # -- views ---------------------------------------------------------

    @property
    def succeeded(self) -> tuple:
        return tuple(o for o in self.outcomes if o.status == "succeeded")

    @property
    def degraded(self) -> tuple:
        return tuple(o for o in self.outcomes if o.status == "degraded")

    @property
    def failed(self) -> tuple:
        return tuple(o for o in self.outcomes if o.status == "failed")

    @property
    def served(self) -> tuple:
        """Outcomes served from the result store instead of executed."""
        return tuple(o for o in self.outcomes if o.served)

    @property
    def results(self) -> list:
        """Completed :class:`RunResult` objects (succeeded + degraded)."""
        return [o.result for o in self.outcomes if o.result is not None]

    def __iter__(self) -> Iterator:
        """Yield completed results — the pre-resilience list contract."""
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.outcomes)

    @property
    def ok(self) -> bool:
        return not self.failed

    # -- serialization -------------------------------------------------

    def to_dict(
        self, include_events: bool = False, include_store: bool = False
    ) -> dict:
        out = {
            "total": len(self.outcomes),
            "succeeded": len(self.succeeded),
            "degraded": len(self.degraded),
            "failed": len(self.failed),
            "outcomes": [o.to_dict() for o in self.outcomes],
        }
        if include_events:
            out["events"] = [dict(event) for event in self.events]
        if include_store and self.store is not None:
            out["store"] = dict(self.store)
        return out

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BatchReport(total={len(self.outcomes)}, "
            f"succeeded={len(self.succeeded)}, "
            f"degraded={len(self.degraded)}, failed={len(self.failed)})"
        )
