"""Deterministic fault injection at named sites (``FaultPlan``).

A :class:`FaultPlan` is a frozen, serializable value describing *which*
failures to inject *where*: each :class:`FaultRule` names a site (one
of :data:`FAULT_SITES`), and fires either on explicit occurrence
indexes (``at=(0, 2)`` — the 1st and 3rd time the site is reached) or
with a seeded pseudo-random ``rate`` hashed from
``(plan seed, rule, replication, occurrence)`` — never from wall-clock
or global RNG state, so a plan produces the *same* failures on every
run, every engine, and every replay of an error document.

Plans resolve through a name registry exactly like engines
(:func:`repro.perf.engine.get_engine`) and comparators: a
:class:`~repro.api.config.RunConfig` can carry a registered plan name,
an inline plan object, or its dict form.

Instrumented sites call :func:`site_check` — a module-global check
that is a single ``None`` test when no plan (and no timeout) is
active, which is what keeps the no-fault overhead of the resilient
execution path under the bench budget (``session_resilience`` section
of ``benchmarks/bench_perf_engine.py``).

The ``market.abandon`` site is special: instead of raising, it makes
an arriving worker *abandon* a task they just chose — the task stays
open for a later worker, no processing time is drawn, no worker id is
consumed.  Both the scalar :class:`~repro.market.simulator.AgentSimulator`
event loop and the lock-step ``agent-batch`` engine consult the same
per-replication acceptance counters, so an abandonment plan produces
bit-identical trajectories on every engine.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Union

from ..errors import (
    FaultInjectedError,
    ModelError,
    RegistryError,
    RunTimeoutError,
)

__all__ = [
    "FAULT_SITES",
    "FaultRule",
    "FaultPlan",
    "FaultState",
    "register_fault_plan",
    "get_fault_plan",
    "available_fault_plans",
    "resolve_fault_plan",
    "runtime_scope",
    "site_check",
    "active_fault_state",
    "abandonment_hook",
]

#: The named injection points threaded through the library.
#:
#: * ``run.start`` — top of every :meth:`repro.api.Session.run` attempt
#:   (reached by every experiment);
#: * ``engine.sample`` — entry of every registered engine's Monte-Carlo
#:   ``sample`` (context: engine name);
#: * ``comparator.min_cost`` — entry of the registered deadline
#:   comparators (context: comparator name);
#: * ``market.replication`` — before each market-simulator replication
#:   (context: replication index), on the sequential and lock-step
#:   fan-outs alike;
#: * ``market.abandon`` — worker abandonment in the agent market (does
#:   not raise; see module docstring);
#: * ``worker.spawn`` / ``worker.task`` / ``worker.hang`` — the
#:   **process-level** sites, evaluated by the
#:   :class:`repro.exec.ProcessExecutor` supervisor (which owns the
#:   single deterministic counter stream for the whole pool) and acted
#:   out by real subprocesses: a firing ``worker.spawn`` rule makes the
#:   freshly spawned pool member die immediately (occurrence = spawn
#:   index), ``worker.task`` makes the assigned worker crash
#:   (``os._exit``) on receipt of the task (occurrence = dispatch
#:   index), and ``worker.hang`` wedges it — heartbeats stop and the
#:   main thread sleeps — so straggler detection has something real to
#:   kill.  None of the three is reachable from the in-run
#:   :func:`site_check` hook; they exist for the supervisor.
#: * ``store.read`` / ``store.write`` / ``store.corrupt`` — the
#:   **result-store** sites, evaluated by
#:   :class:`repro.store.ResultStore` against an explicitly passed
#:   state (the same pattern as the ``worker.*`` sites: not reachable
#:   from the in-run :func:`site_check` hook).  A firing ``store.read``
#:   rule makes a lookup treat the entry as unreadable — it is
#:   quarantined and the run recomputes (occurrence = lookup index); a
#:   firing ``store.write`` rule makes the atomic write fail with a
#:   :class:`~repro.errors.StoreWriteError` after the result is
#:   computed (the run still returns it); a firing ``store.corrupt``
#:   rule deterministically bit-flips one byte of the entry *as it is
#:   written*, so the next read's checksum verification must catch it.
#: * ``serve.request`` / ``serve.backend`` — the **service-layer**
#:   sites, evaluated by :class:`repro.serve.ReproService` against an
#:   explicitly passed state (same pattern as ``worker.*`` /
#:   ``store.*``: not reachable from the in-run :func:`site_check`
#:   hook).  A firing ``serve.request`` rule fails one HTTP request
#:   before it is handled — the client sees a 500 with a replayable
#:   :class:`~repro.resilience.document.ErrorDocument` and the service
#:   keeps serving (occurrence = request index); a firing
#:   ``serve.backend`` rule kills one dispatched run as it reaches the
#:   backend — the run record goes ``failed`` with the injected error
#:   while the service, store and ledger stay consistent, so a
#:   resubmission recovers (occurrence = dispatch index).
FAULT_SITES = (
    "run.start",
    "engine.sample",
    "comparator.min_cost",
    "market.replication",
    "market.abandon",
    "worker.spawn",
    "worker.task",
    "worker.hang",
    "store.read",
    "store.write",
    "store.corrupt",
    "serve.request",
    "serve.backend",
)


def _unit_draw(seed: int, rule_index: int, replication, occurrence: int):
    """Deterministic uniform in [0, 1) for a fault coordinate."""
    key = f"{seed}:{rule_index}:{replication}:{occurrence}"
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: *where* (site + filters) and *when* it fires.

    ``at`` lists explicit occurrence indexes (0-based, counted per
    replication for market sites); ``rate`` adds seeded pseudo-random
    firing on the remaining occurrences.  ``replication`` / ``engine``
    / ``comparator`` restrict the rule to matching contexts, and
    ``on_attempts`` restricts it to specific retry attempts (0-based
    across the whole fallback chain) — the lever that makes
    retry-then-succeed and fallback-chain recovery testable
    deterministically.
    """

    site: str
    at: tuple = ()
    rate: float = 0.0
    replication: Optional[int] = None
    engine: Optional[str] = None
    comparator: Optional[str] = None
    on_attempts: Optional[tuple] = None
    detail: str = ""

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ModelError(
                f"unknown fault site {self.site!r}; expected one of "
                f"{list(FAULT_SITES)}"
            )
        object.__setattr__(
            self, "at", tuple(int(k) for k in _as_seq(self.at, "at"))
        )
        if any(k < 0 for k in self.at):
            raise ModelError(f"at indexes must be >= 0, got {self.at}")
        if not 0.0 <= float(self.rate) <= 1.0:
            raise ModelError(f"rate must be in [0, 1], got {self.rate}")
        object.__setattr__(self, "rate", float(self.rate))
        if self.on_attempts is not None:
            object.__setattr__(
                self,
                "on_attempts",
                tuple(int(k) for k in _as_seq(self.on_attempts, "on_attempts")),
            )
        if not self.at and self.rate == 0.0:
            raise ModelError(
                "a FaultRule needs at least one trigger: a non-empty `at` "
                "tuple or a rate > 0"
            )

    def to_dict(self) -> dict:
        out: dict = {"site": self.site}
        if self.at:
            out["at"] = list(self.at)
        if self.rate:
            out["rate"] = self.rate
        if self.replication is not None:
            out["replication"] = int(self.replication)
        if self.engine is not None:
            out["engine"] = self.engine
        if self.comparator is not None:
            out["comparator"] = self.comparator
        if self.on_attempts is not None:
            out["on_attempts"] = list(self.on_attempts)
        if self.detail:
            out["detail"] = self.detail
        return out

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FaultRule":
        known = {
            "site", "at", "rate", "replication", "engine", "comparator",
            "on_attempts", "detail",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ModelError(
                f"unknown FaultRule keys {unknown}; expected a subset of "
                f"{sorted(known)}"
            )
        data = dict(payload)
        if "at" in data:
            data["at"] = tuple(data["at"])
        if "on_attempts" in data and data["on_attempts"] is not None:
            data["on_attempts"] = tuple(data["on_attempts"])
        return cls(**data)


def _as_seq(value, name: str):
    if isinstance(value, (list, tuple)):
        return value
    if isinstance(value, int) and not isinstance(value, bool):
        return (value,)
    raise ModelError(f"{name} must be a tuple of ints, got {value!r}")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serializable set of :class:`FaultRule` entries.

    ``activate(attempt=k)`` mints fresh per-attempt counter state
    (:class:`FaultState`) — every attempt of a retried run sees the
    same deterministic fault sequence unless a rule's ``on_attempts``
    says otherwise.
    """

    rules: tuple = ()
    seed: int = 0

    def __post_init__(self) -> None:
        rules = tuple(
            r if isinstance(r, FaultRule) else FaultRule.from_dict(r)
            for r in self.rules
        )
        object.__setattr__(self, "rules", rules)
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ModelError(f"plan seed must be an int, got {self.seed!r}")

    def activate(self, attempt: int = 0) -> "FaultState":
        return FaultState(self, attempt)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FaultPlan":
        unknown = sorted(set(payload) - {"seed", "rules"})
        if unknown:
            raise ModelError(
                f"unknown FaultPlan keys {unknown}; expected a subset of "
                "['rules', 'seed']"
            )
        return cls(
            rules=tuple(payload.get("rules", ())),
            seed=int(payload.get("seed", 0)),
        )


class FaultState:
    """Mutable per-attempt occurrence counters of an activated plan.

    Counters key on ``(rule index, replication)`` so the per-replication
    occurrence streams are identical whether replications run
    sequentially (scalar engines) or interleaved (the lock-step
    ``agent-batch`` engine).
    """

    __slots__ = (
        "plan", "attempt", "current_replication", "has_abandon",
        "_site_rules", "_counters",
    )

    def __init__(self, plan: FaultPlan, attempt: int = 0) -> None:
        self.plan = plan
        self.attempt = int(attempt)
        self.current_replication = 0
        site_rules: dict = {}
        for index, rule in enumerate(plan.rules):
            site_rules.setdefault(rule.site, []).append((index, rule))
        self._site_rules = site_rules
        self._counters: dict = {}
        self.has_abandon = "market.abandon" in site_rules

    def enter_replication(self, replication: int) -> None:
        self.current_replication = replication

    def _fires(self, index: int, rule: FaultRule, replication, context):
        if rule.on_attempts is not None and self.attempt not in rule.on_attempts:
            return None
        if rule.replication is not None and replication != rule.replication:
            return None
        for attr in ("engine", "comparator"):
            want = getattr(rule, attr)
            if want is not None and context.get(attr) != want:
                return None
        key = (index, replication)
        occurrence = self._counters.get(key, 0)
        self._counters[key] = occurrence + 1
        if occurrence in rule.at:
            return occurrence
        if rule.rate > 0.0 and (
            _unit_draw(self.plan.seed, index, replication, occurrence)
            < rule.rate
        ):
            return occurrence
        return None

    def fires(
        self, site: str, replication=None, engine=None, comparator=None
    ):
        """First firing ``(occurrence, rule)`` at *site*, else ``None``.

        The non-raising twin of :meth:`check`, advancing the same
        counters — the :class:`repro.exec.ProcessExecutor` supervisor
        consults it for the ``worker.*`` sites, where the reaction is
        killing/wedging a subprocess rather than raising in-line.
        """
        rules = self._site_rules.get(site)
        if not rules:
            return None
        context = {"engine": engine, "comparator": comparator}
        for index, rule in rules:
            occurrence = self._fires(index, rule, replication, context)
            if occurrence is not None:
                return occurrence, rule
        return None

    def check(self, site: str, replication=None, engine=None, comparator=None):
        fired = self.fires(
            site, replication=replication, engine=engine, comparator=comparator
        )
        if fired is not None:
            occurrence, rule = fired
            raise FaultInjectedError(
                site=site,
                replication=replication,
                occurrence=occurrence,
                detail=rule.detail,
            )

    def abandon_fires(self, replication: int) -> bool:
        """Whether the next acceptance in *replication* is abandoned.

        The boolean twin of :meth:`check` for the ``market.abandon``
        site; called once per would-be acceptance by both market
        engines, advancing the same per-replication counters.
        """
        rules = self._site_rules.get("market.abandon")
        if not rules:
            return False
        fired = False
        for index, rule in rules:
            if self._fires(index, rule, replication, _NO_CONTEXT) is not None:
                fired = True
        return fired


_NO_CONTEXT: Mapping = {"engine": None, "comparator": None}


# ---------------------------------------------------------------------------
# fault-plan registry (mirrors the engine / comparator registries)
# ---------------------------------------------------------------------------

_PLANS: dict[str, FaultPlan] = {}


def register_fault_plan(
    name: str, plan: FaultPlan, replace: bool = False
) -> FaultPlan:
    """Register *plan* under *name* (what ``RunConfig(faults=...)``
    accepts as a string)."""
    if not name:
        raise ModelError("a fault plan needs a non-empty name")
    if not isinstance(plan, FaultPlan):
        raise ModelError(f"expected a FaultPlan, got {plan!r}")
    if name in _PLANS and not replace:
        raise ModelError(
            f"fault plan {name!r} is already registered; pass replace=True "
            "to override"
        )
    _PLANS[name] = plan
    return plan


def get_fault_plan(name: str) -> FaultPlan:
    """Resolve a registered fault-plan name."""
    plan = _PLANS.get(name)
    if plan is None:
        raise RegistryError.unknown(
            "fault plan", name, _PLANS, hint="or an inline FaultPlan"
        )
    return plan


def available_fault_plans() -> tuple:
    """Registered fault-plan names, sorted."""
    return tuple(sorted(_PLANS))


def resolve_fault_plan(
    faults: Union[str, FaultPlan, Mapping, None],
) -> Optional[FaultPlan]:
    """The single place ``faults=`` resolution happens.

    ``None`` stays ``None`` (no injection); strings resolve through the
    registry; mappings are inline plan documents.
    """
    if faults is None or isinstance(faults, FaultPlan):
        return faults
    if isinstance(faults, str):
        return get_fault_plan(faults)
    if isinstance(faults, Mapping):
        return FaultPlan.from_dict(faults)
    raise ModelError(
        f"cannot resolve fault plan from {faults!r}; expected a registered "
        "name, a FaultPlan, its dict form, or None"
    )


# ---------------------------------------------------------------------------
# runtime: the module-global active scope the hot paths consult
# ---------------------------------------------------------------------------


class _Runtime:
    __slots__ = ("state", "deadline", "timeout_seconds")

    def __init__(self, state, deadline, timeout_seconds) -> None:
        self.state = state
        self.deadline = deadline
        self.timeout_seconds = timeout_seconds


#: The active scope, or ``None`` (the common case — one global load and
#: one ``is None`` test per instrumented call).
_RUNTIME: Optional[_Runtime] = None


class runtime_scope:
    """Context manager installing a fault state and/or timeout deadline.

    ``runtime_scope(None, None)`` is a no-op (nothing installed, the
    hot-path checks stay single-comparison cheap).  Scopes nest: the
    previous runtime is restored on exit, so a resilient run inside
    another resilient run keeps its own fault coordinates.
    """

    __slots__ = ("state", "timeout_seconds", "_previous", "_installed")

    def __init__(
        self,
        state: Optional[FaultState],
        timeout_seconds: Optional[float] = None,
    ) -> None:
        self.state = state
        self.timeout_seconds = timeout_seconds
        self._previous = None
        self._installed = False

    def __enter__(self) -> "runtime_scope":
        global _RUNTIME
        if self.state is None and self.timeout_seconds is None:
            return self
        deadline = (
            time.monotonic() + self.timeout_seconds
            if self.timeout_seconds is not None
            else None
        )
        self._previous = _RUNTIME
        _RUNTIME = _Runtime(self.state, deadline, self.timeout_seconds)
        self._installed = True
        return self

    def __exit__(self, *exc_info) -> None:
        global _RUNTIME
        if self._installed:
            _RUNTIME = self._previous
            self._installed = False


def site_check(
    site: str, replication=None, engine=None, comparator=None
) -> None:
    """Hot-path hook: raise if the active plan/timeout says this site
    fails.  A no-op costing one global load + ``None`` test when no
    resilience scope is active."""
    runtime = _RUNTIME
    if runtime is None:
        return
    if (
        runtime.deadline is not None
        and time.monotonic() > runtime.deadline
    ):
        raise RunTimeoutError(runtime.timeout_seconds, site=site)
    if runtime.state is not None:
        runtime.state.check(
            site, replication=replication, engine=engine, comparator=comparator
        )


def active_fault_state() -> Optional[FaultState]:
    """The installed :class:`FaultState`, or ``None`` outside a scope."""
    runtime = _RUNTIME
    return runtime.state if runtime is not None else None


def abandonment_hook() -> Optional[Callable[[], bool]]:
    """A zero-arg abandonment test bound to the current replication.

    Fetched once per market run; ``None`` (the common case) unless the
    active plan has ``market.abandon`` rules, so the per-acceptance
    cost in the no-fault path is zero.
    """
    runtime = _RUNTIME
    if runtime is None:
        return None
    state = runtime.state
    if state is None or not state.has_abandon:
        return None
    replication = state.current_replication
    return lambda: state.abandon_fires(replication)
