"""Append-only JSONL checkpoint journal for ``Session.run_many``.

One line per completed spec::

    {"fingerprint": "<16 hex>", "status": "succeeded", "result": {...}}

``result`` is the full :meth:`~repro.api.session.RunResult.to_dict`
document and ``status`` the batch outcome (``succeeded`` or
``degraded``), so a resumed batch can reconstruct *exactly* the report
entry the uninterrupted run would have produced — the golden test in
``tests/resilience/test_checkpoint.py`` asserts the two serialize
byte-identically.

Lines are flushed and fsynced as they are appended; a process killed
mid-write leaves at most one partial trailing line, which
:meth:`CheckpointJournal.load` tolerates (everything before it is
kept).  Any other malformed content raises
:class:`~repro.errors.CheckpointError` rather than silently skipping
completed work.

Supervisor *events* (worker crashes, requeues, respawns — see
:class:`repro.exec.ProcessExecutor`) may be interleaved as
``{"event": {...}}`` lines by :meth:`CheckpointJournal.append_event`.
They are an audit trail only: :meth:`load` skips them, so a resumed
batch replays completed work identically whether or not the previous
attempt suffered worker failures.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Mapping, Union

from ..errors import CheckpointError

__all__ = ["CheckpointJournal"]

_REQUIRED_KEYS = {"fingerprint", "status", "result"}


class CheckpointJournal:
    """The journal file behind ``Session.run_many(checkpoint=...)``."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def load(self) -> dict:
        """Completed entries keyed by fingerprint (``{}`` if absent).

        Tolerates exactly one partial trailing line (a mid-write
        kill); earlier corruption raises :class:`CheckpointError`.
        """
        if not self.path.exists():
            return {}
        entries: dict = {}
        lines = self.path.read_text(encoding="utf-8").splitlines()
        last = len(lines) - 1
        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                if index == last:
                    break  # partial trailing line from a killed writer
                raise CheckpointError(
                    f"checkpoint {self.path}: malformed journal line "
                    f"{index + 1} (not trailing — refusing to guess)"
                ) from None
            if isinstance(entry, Mapping) and set(entry) == {"event"}:
                continue  # supervisor audit line, not completed work
            if not isinstance(entry, Mapping) or not _REQUIRED_KEYS <= set(
                entry
            ):
                raise CheckpointError(
                    f"checkpoint {self.path}: line {index + 1} is not a "
                    f"journal entry (need keys {sorted(_REQUIRED_KEYS)})"
                )
            entries[entry["fingerprint"]] = dict(entry)
        return entries

    def load_events(self) -> list:
        """The journaled supervisor events, in append order."""
        if not self.path.exists():
            return []
        events = []
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # load() polices corruption; events are best-effort
            if isinstance(entry, Mapping) and set(entry) == {"event"}:
                events.append(dict(entry["event"]))
        return events

    def append(self, fingerprint: str, status: str, result: dict) -> None:
        """Durably journal one completed spec."""
        self._write_line(
            {"fingerprint": fingerprint, "status": status, "result": result}
        )

    def append_event(self, event: Mapping) -> None:
        """Durably journal one supervisor event (audit trail only)."""
        self._write_line({"event": dict(event)})

    def _write_line(self, document: dict) -> None:
        line = json.dumps(document, sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
