"""Crowd-market simulators — the repo's Amazon-Mechanical-Turk substitute.

Two engines share one job description and one trace format:

* :class:`AggregateSimulator` implements the paper's stochastic model
  directly: each repetition's on-hold phase is ``Exp(λ_o(price))`` and
  its processing phase ``Exp(λ_p)``, independent (§3.2).  It is the
  ground truth against which the tuning theory's predictions are exact.
* :class:`AgentSimulator` simulates individual workers: a Poisson
  arrival stream (§3.1.1), a task-preference choice model (§3.1.2), and
  busy/free worker states.  Its aggregate behaviour converges to the
  exponential model — reproducing the paper's empirical claim that AMT
  acceptance is a Poisson process — and tests verify the agreement.

Repetitions of one atomic task are *sequential* (a repetition is
published only after the previous one completes; §2: "submitted one
after another"), while distinct atomic tasks run in parallel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

import numpy as np

from ..errors import ModelError, SimulationError
from ..resilience.faults import abandonment_hook
from ..stats.rng import RandomState, ensure_rng, spawn
from .events import Event, EventKind, EventQueue
from .pricing import PricingModel
from .task import PublishedTask, TaskState, TaskType
from .trace import TraceRecorder
from .worker import WorkerPool

__all__ = [
    "AtomicTaskOrder",
    "JobResult",
    "MarketModel",
    "AggregateSimulator",
    "AgentSimulator",
]


@dataclass(frozen=True)
class AtomicTaskOrder:
    """One atomic task to run on the market: a type, per-repetition
    prices (sequential repetitions), and an optional payload.

    If ``payload`` exposes ``sample_answer(rng, accuracy)`` the
    simulator uses it to draw each repetition's (possibly wrong)
    answer; otherwise answers are ``None`` and only latency matters.
    """

    task_type: TaskType
    prices: tuple[int, ...]
    atomic_task_id: int
    payload: Any = None

    def __post_init__(self) -> None:
        if not self.prices:
            raise ModelError("an atomic task needs at least one repetition price")
        for p in self.prices:
            if int(p) != p or p < 1:
                raise ModelError(f"prices must be positive integers, got {self.prices}")
        object.__setattr__(self, "prices", tuple(int(p) for p in self.prices))

    @property
    def repetitions(self) -> int:
        return len(self.prices)


@dataclass
class JobResult:
    """Outcome of running a job on a simulator."""

    trace: TraceRecorder
    makespan: float
    per_atomic_completion: dict[int, float]
    answers: dict[int, list[Any]]
    total_paid: int

    @property
    def latency(self) -> float:
        """Job latency — the paper's L* = completion time of the
        longest atomic task (all tasks are published at time 0)."""
        return self.makespan


class MarketModel:
    """Market-wide parameters shared by both engines.

    Parameters
    ----------
    pricing:
        Either one :class:`PricingModel` applied to every task type, or
        a mapping ``type name -> PricingModel`` (heterogeneous
        difficulty changes the uptake rate; Fig. 5(a)).
    default_pricing:
        Fallback model when ``pricing`` is a mapping without the type.
    """

    def __init__(
        self,
        pricing: PricingModel | Mapping[str, PricingModel],
        default_pricing: Optional[PricingModel] = None,
    ) -> None:
        if isinstance(pricing, PricingModel):
            self._table: dict[str, PricingModel] = {}
            self._default: Optional[PricingModel] = pricing
        elif isinstance(pricing, Mapping):
            for model in pricing.values():
                if not isinstance(model, PricingModel):
                    raise ModelError(f"not a PricingModel: {model!r}")
            self._table = dict(pricing)
            self._default = default_pricing
        else:
            raise ModelError(
                "pricing must be a PricingModel or a mapping of type name to model"
            )

    def onhold_rate(self, task_type: TaskType, price: int) -> float:
        """λ_o for *task_type* at unit *price*.

        When the type has no dedicated curve, the default curve is
        scaled by the type's attractiveness, so harder (less
        attractive) tasks are accepted more slowly, matching Fig. 5(a).
        """
        model = self._table.get(task_type.name)
        if model is not None:
            return model(price)
        if self._default is None:
            raise ModelError(
                f"no pricing model for task type {task_type.name!r} "
                "and no default provided"
            )
        return self._default(price) * task_type.attractiveness


def _draw_answer(order: AtomicTaskOrder, rng: np.random.Generator, accuracy: float):
    payload = order.payload
    if payload is not None and hasattr(payload, "sample_answer"):
        return payload.sample_answer(rng, accuracy)
    return None


def _resolve_replication_seeds(
    rng: np.random.Generator,
    n_replications: Optional[int],
    seeds,
) -> list:
    """Normalize a ``run_replications`` seed specification.

    ``seeds=None`` derives one independent substream per replication
    from the simulator's own generator (:func:`repro.stats.rng.spawn`)
    — the same protocol for every engine, so swapping engines never
    changes which streams the replications consume.
    """
    if seeds is None:
        if n_replications is None:
            raise SimulationError(
                "run_replications needs n_replications or an explicit "
                "seeds sequence"
            )
        if n_replications < 1:
            raise SimulationError(
                f"n_replications must be >= 1, got {n_replications}"
            )
        return spawn(rng, int(n_replications))
    seeds = list(seeds)
    if not seeds:
        raise SimulationError("run_replications needs at least one seed")
    if n_replications is not None and int(n_replications) != len(seeds):
        raise SimulationError(
            f"n_replications={n_replications} does not match "
            f"{len(seeds)} seeds"
        )
    return seeds


def _resolve_replication_recorders(recorders, n: int) -> list:
    """Normalize a ``run_replications`` recorder specification.

    ``None`` gives every replication its own fresh
    :class:`~repro.market.trace.TraceRecorder`; a single null recorder
    (``is_null``) is shared by all replications (it is stateless); a
    sequence supplies one recorder per replication.  Sharing one
    *stateful* recorder between replications is rejected: engines may
    process replications in different orders, so an interleaved trace
    would depend on the engine and break the byte-identity contract.
    """
    if recorders is None:
        return [None] * n
    if getattr(recorders, "is_null", False):
        return [recorders] * n
    if isinstance(recorders, TraceRecorder):
        raise SimulationError(
            "run_replications needs one recorder per replication (or a "
            "shared null recorder such as NULL_RECORDER); got a single "
            "stateful TraceRecorder"
        )
    recorders = list(recorders)
    if len(recorders) != n:
        raise SimulationError(
            f"got {len(recorders)} recorders for {n} replications"
        )
    seen: dict[int, int] = {}
    for rec in recorders:
        if rec is None or getattr(rec, "is_null", False):
            continue
        key = id(rec)
        if key in seen:
            raise SimulationError(
                "the same stateful recorder appears for multiple "
                "replications; replication traces must not share a "
                "recorder (engine execution order would leak into it)"
            )
        seen[key] = 1
    return recorders


class AggregateSimulator:
    """Engine sampling each phase directly from the HPU model.

    This is an exact sampler of the paper's generative process, so the
    analytic expected latencies in :mod:`repro.core.latency` are its
    ground-truth means.
    """

    def __init__(self, market: MarketModel, seed: RandomState = None) -> None:
        self.market = market
        self._rng = ensure_rng(seed)

    def run_job(
        self,
        orders: Sequence[AtomicTaskOrder],
        recorder: Optional[TraceRecorder] = None,
        start_time: float = 0.0,
        repetition_mode: str = "sequential",
    ) -> JobResult:
        """Run all *orders* in parallel.

        ``repetition_mode`` selects how one atomic task's repetitions
        run (§2): ``"sequential"`` — the paper's default, answers
        submitted one after another — or ``"parallel"`` — all
        repetitions published at once (AMT's multi-assignment HITs);
        the task completes when its last repetition does.
        """
        return self._run_job_with_rng(
            orders, self._rng, recorder, start_time, repetition_mode
        )

    def run_replications(
        self,
        orders: Sequence[AtomicTaskOrder],
        n_replications: Optional[int] = None,
        *,
        seeds=None,
        recorders=None,
        start_time: float = 0.0,
        repetition_mode: str = "sequential",
        engine=None,
    ) -> list[JobResult]:
        """Run *orders* as R independent seeded replications.

        ``seeds`` gives one :data:`~repro.stats.rng.RandomState` per
        replication; when omitted, ``n_replications`` substreams are
        spawned from the simulator's own generator.  ``engine``
        resolves through the :mod:`repro.perf.engine` registry; every
        registered engine produces replication-for-replication
        identical results — the aggregate model has no lock-step fast
        path, so all engines run the sequential reference here.
        """
        from ..perf.engine import resolve_engine

        seeds = _resolve_replication_seeds(self._rng, n_replications, seeds)
        recorders = _resolve_replication_recorders(recorders, len(seeds))
        return resolve_engine(engine).run_replications(
            self, orders, seeds, recorders, start_time,
            repetition_mode=repetition_mode,
        )

    def _run_job_with_rng(
        self,
        orders: Sequence[AtomicTaskOrder],
        rng: np.random.Generator,
        recorder: Optional[TraceRecorder] = None,
        start_time: float = 0.0,
        repetition_mode: str = "sequential",
    ) -> JobResult:
        """The :meth:`run_job` body against an explicit generator."""
        if repetition_mode not in ("sequential", "parallel"):
            raise SimulationError(
                f"repetition_mode must be 'sequential' or 'parallel', got "
                f"{repetition_mode!r}"
            )
        orders = list(orders)
        if not orders:
            raise SimulationError("job must contain at least one atomic task")
        trace = recorder if recorder is not None else TraceRecorder()
        record = not getattr(trace, "is_null", False)
        per_atomic: dict[int, float] = {}
        answers: dict[int, list[Any]] = {}
        total_paid = 0
        for order in orders:
            collected: list[Any] = []
            if repetition_mode == "sequential":
                clock = float(start_time)
                for rep_index, price in enumerate(order.prices):
                    clock = self._run_repetition(
                        order, rep_index, price, clock, rng,
                        trace if record else None, collected,
                    )
                    total_paid += price
                per_atomic[order.atomic_task_id] = clock
            else:
                finish = float(start_time)
                for rep_index, price in enumerate(order.prices):
                    done = self._run_repetition(
                        order, rep_index, price, float(start_time), rng,
                        trace if record else None, collected,
                    )
                    finish = max(finish, done)
                    total_paid += price
                per_atomic[order.atomic_task_id] = finish
            answers[order.atomic_task_id] = collected
        makespan = max(per_atomic.values()) - float(start_time)
        return JobResult(
            trace=trace,
            makespan=makespan,
            per_atomic_completion=per_atomic,
            answers=answers,
            total_paid=total_paid,
        )

    def _run_repetition(
        self,
        order: AtomicTaskOrder,
        rep_index: int,
        price: int,
        publish_at: float,
        rng: np.random.Generator,
        trace: Optional[TraceRecorder],
        collected: list,
    ) -> float:
        """Sample one repetition's two phases; returns its finish time.

        ``trace=None`` is the null-recorder fast path: the phase draws
        and the answer draw are identical, but no
        :class:`~repro.market.task.PublishedTask` is materialized.
        """
        rate_o = self.market.onhold_rate(order.task_type, price)
        rate_p = order.task_type.processing_rate
        onhold = float(rng.exponential(1.0 / rate_o))
        processing = float(rng.exponential(1.0 / rate_p))
        answer_at = publish_at + onhold + processing
        if trace is None:
            answer = _draw_answer(order, rng, order.task_type.accuracy)
            collected.append(answer)
            return answer_at
        task = PublishedTask(
            task_type=order.task_type,
            price=price,
            atomic_task_id=order.atomic_task_id,
            repetition_index=rep_index,
            payload=order.payload,
        )
        task.mark_published(publish_at)
        task.mark_accepted(publish_at + onhold)
        answer = _draw_answer(order, rng, order.task_type.accuracy)
        task.mark_completed(answer_at, answer=answer)
        trace.on_task_done(task)
        collected.append(answer)
        return answer_at


class AgentSimulator:
    """Engine with explicit workers arriving by a Poisson process.

    Every arriving worker inspects the open repetitions and picks one
    according to the pool's choice model (or leaves).  A worker who
    takes a task is busy for an ``Exp(λ_p)`` processing time, then the
    next repetition of that atomic task (if any) is published.

    The market's pricing model is *not* used to clock acceptances here
    — acceptance timing is an emergent property of arrivals + choices —
    which is exactly what makes engine agreement a meaningful check of
    the paper's modelling assumption.
    """

    def __init__(
        self,
        pool: WorkerPool,
        seed: RandomState = None,
        max_sim_time: float = 1e7,
    ) -> None:
        if max_sim_time <= 0:
            raise ModelError(f"max_sim_time must be positive, got {max_sim_time}")
        self.pool = pool
        self._rng = ensure_rng(seed)
        self.max_sim_time = float(max_sim_time)

    def run_job(
        self,
        orders: Sequence[AtomicTaskOrder],
        recorder: Optional[TraceRecorder] = None,
        start_time: float = 0.0,
    ) -> JobResult:
        return self._run_job_with_rng(orders, self._rng, recorder, start_time)

    def run_replications(
        self,
        orders: Sequence[AtomicTaskOrder],
        n_replications: Optional[int] = None,
        *,
        seeds=None,
        recorders=None,
        start_time: float = 0.0,
        engine=None,
    ) -> list[JobResult]:
        """Run *orders* as R independent seeded replications.

        Replication ensembles are the agent engine's hot path
        (figure experiments, engine-agreement checks, CI estimation):
        R independent worlds of the same job, one RNG stream each.

        Parameters
        ----------
        n_replications / seeds:
            Either a replication count (one substream per replication
            is spawned from the simulator's own generator) or an
            explicit sequence with one
            :data:`~repro.stats.rng.RandomState` per replication —
            e.g. integers, ``SeedSequence`` children, or counter-based
            ``Philox`` generators for reproducible distributed splits.
        recorders:
            ``None`` (fresh :class:`~repro.market.trace.TraceRecorder`
            per replication), a shared null recorder
            (:data:`~repro.market.trace.NULL_RECORDER` — skips all
            event/record construction), or one recorder per
            replication.
        engine:
            An :class:`~repro.perf.engine.EvaluationEngine` or
            registered name.  ``"agent-batch"`` advances every
            replication in lock-step through the structure-of-arrays
            engine (:mod:`repro.perf.market`); the default runs them
            sequentially.  Every engine produces bit-identical
            trajectories for the same seeds, so the choice only
            affects speed.

        Worker ids keep incrementing across replications (exactly as
        sequential :meth:`run_job` calls against one pool would), and
        each replication's generator is advanced past every draw its
        trajectory consumed.
        """
        from ..perf.engine import resolve_engine

        seeds = _resolve_replication_seeds(self._rng, n_replications, seeds)
        recorders = _resolve_replication_recorders(recorders, len(seeds))
        return resolve_engine(engine).run_replications(
            self, orders, seeds, recorders, start_time
        )

    def _run_job_with_rng(
        self,
        orders: Sequence[AtomicTaskOrder],
        rng: np.random.Generator,
        recorder: Optional[TraceRecorder] = None,
        start_time: float = 0.0,
    ) -> JobResult:
        """The :meth:`run_job` event loop against an explicit generator."""
        orders = list(orders)
        if not orders:
            raise SimulationError("job must contain at least one atomic task")
        # Resolved once per run: None (zero per-acceptance cost) unless
        # an active fault plan injects worker abandonment.
        abandon = abandonment_hook()
        trace = recorder if recorder is not None else TraceRecorder()
        record = not getattr(trace, "is_null", False)
        queue = EventQueue()
        # Incremental open-task index: the choice model keeps its own
        # structure (a Fenwick weight tree for the built-in weighted
        # models, a heap for greedy) in sync with publishes/removals,
        # so an arrival costs O(log n) instead of materializing and
        # scanning the whole open-task list.  Custom models without an
        # index fall back to the insertion-ordered linear pool, which
        # sees tasks exactly as the historical list did.
        open_tasks = self.pool.choice_model.make_index()
        order_by_id = {o.atomic_task_id: o for o in orders}
        next_rep: dict[int, int] = {o.atomic_task_id: 0 for o in orders}
        answers: dict[int, list[Any]] = {o.atomic_task_id: [] for o in orders}
        per_atomic: dict[int, float] = {}
        total_paid = 0
        remaining = sum(o.repetitions for o in orders)

        def publish(order: AtomicTaskOrder, now: float) -> None:
            rep = next_rep[order.atomic_task_id]
            task = PublishedTask(
                task_type=order.task_type,
                price=order.prices[rep],
                atomic_task_id=order.atomic_task_id,
                repetition_index=rep,
                payload=order.payload,
            )
            task.mark_published(now)
            next_rep[order.atomic_task_id] += 1
            open_tasks.add(task)
            if record:
                trace.on_event(
                    Event(now, EventKind.TASK_PUBLISHED, payload=task)
                )

        for order in orders:
            publish(order, float(start_time))

        queue.push(
            Event(
                float(start_time) + self.pool.next_arrival_delay(rng),
                EventKind.WORKER_ARRIVED,
            )
        )

        while remaining > 0:
            if not queue:
                raise SimulationError("event queue drained before job completion")
            event = queue.pop()
            now = event.time
            if now > self.max_sim_time:
                raise SimulationError(
                    f"simulation exceeded max_sim_time={self.max_sim_time}; "
                    "the market is too slow for this job (rates too small?)"
                )
            if event.kind is EventKind.WORKER_ARRIVED:
                if record:
                    trace.on_event(event)
                # Schedule the next arrival regardless of what this
                # worker does — the stream is exogenous.
                queue.push(
                    Event(
                        now + self.pool.next_arrival_delay(rng),
                        EventKind.WORKER_ARRIVED,
                    )
                )
                chosen = open_tasks.choose(rng)
                if chosen is None:
                    continue
                if abandon is not None and abandon():
                    # Injected abandonment (the ``market.abandon``
                    # fault site): the worker walks away from the task
                    # they chose.  The task stays open for a later
                    # arrival; no worker id is consumed and no
                    # processing time is drawn, so the remaining RNG
                    # stream is untouched — the lock-step engine skips
                    # its acceptance identically.
                    continue
                open_tasks.discard(chosen)
                worker_id = self.pool.new_worker_id()
                chosen.mark_accepted(now, worker_id=worker_id)
                processing = float(
                    rng.exponential(1.0 / chosen.task_type.processing_rate)
                )
                queue.push(
                    Event(now + processing, EventKind.TASK_COMPLETED, payload=chosen)
                )
            elif event.kind is EventKind.TASK_COMPLETED:
                task: PublishedTask = event.payload
                order = order_by_id[task.atomic_task_id]
                accuracy = self.pool.worker_accuracy(
                    task.task_type.accuracy, rng
                )
                answer = _draw_answer(order, rng, accuracy)
                task.mark_completed(now, answer=answer)
                if record:
                    trace.on_event(event)
                    trace.on_task_done(task)
                answers[task.atomic_task_id].append(answer)
                total_paid += task.price
                remaining -= 1
                if next_rep[task.atomic_task_id] < order.repetitions:
                    publish(order, now)
                else:
                    per_atomic[task.atomic_task_id] = now
            else:  # pragma: no cover - no other kinds are scheduled
                raise SimulationError(f"unexpected event kind {event.kind}")

        makespan = max(per_atomic.values()) - float(start_time)
        return JobResult(
            trace=trace,
            makespan=makespan,
            per_atomic_completion=per_atomic,
            answers=answers,
            total_paid=total_paid,
        )
