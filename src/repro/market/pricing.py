"""Price → on-hold clock-rate response models (paper §3.3.2 and §5.1).

The on-hold rate λ_o is the joint acceptance rate ``λ · p(c)``: the
market's worker-arrival rate times the probability an arriving worker
picks the task at price ``c``.  The paper's **Linearity Hypothesis**
says λ_o(c) = k·c + b within normal price ranges; its synthetic
evaluation (Fig. 2) uses four linear curves and two nonlinear ones to
probe robustness.  All six are provided here, plus a calibrated model
fit from probe observations (see :mod:`repro.inference.linearity`).

Prices are *discrete unit payments* (AMT granularity $0.01): models
accept any positive float but the tuning algorithms only evaluate them
at integers >= 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from ..errors import ModelError

__all__ = [
    "PricingModel",
    "LinearPricing",
    "QuadraticPricing",
    "LogPricing",
    "CallablePricing",
    "PAPER_FIG2_MODELS",
    "fig2_model",
]


class PricingModel:
    """Base class: maps a unit price to the on-hold rate λ_o(c)."""

    #: short identifier used in experiment reports
    name: str = "pricing"

    def rate(self, price: float) -> float:
        """On-hold clock rate λ_o at unit price *price* (must be > 0)."""
        raise NotImplementedError

    def __call__(self, price: float) -> float:
        value = self.rate(self._check_price(price))
        if not math.isfinite(value) or value <= 0:
            raise ModelError(
                f"{self.name}: rate at price {price} is {value}; the HPU model "
                "requires a positive finite on-hold rate"
            )
        return float(value)

    @staticmethod
    def _check_price(price: float) -> float:
        price = float(price)
        if not math.isfinite(price) or price <= 0:
            raise ModelError(f"price must be a positive finite number, got {price}")
        return price

    def is_linear(self) -> bool:
        """Whether this model satisfies the Linearity Hypothesis exactly."""
        return False


@dataclass(frozen=True)
class LinearPricing(PricingModel):
    """λ_o(c) = slope·c + intercept — Hypothesis 1 of the paper."""

    slope: float
    intercept: float = 0.0

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"linear({self.slope:g}p+{self.intercept:g})"

    def __post_init__(self) -> None:
        if self.slope < 0:
            raise ModelError(f"slope must be >= 0, got {self.slope}")
        if self.slope == 0 and self.intercept <= 0:
            raise ModelError("a flat pricing model needs a positive intercept")

    def rate(self, price: float) -> float:
        return self.slope * price + self.intercept

    def is_linear(self) -> bool:
        return True


@dataclass(frozen=True)
class QuadraticPricing(PricingModel):
    """λ_o(c) = intercept + coeff·c² — Fig. 2's nonlinear case (e)."""

    coeff: float = 1.0
    intercept: float = 1.0

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"quadratic({self.intercept:g}+{self.coeff:g}p^2)"

    def __post_init__(self) -> None:
        if self.coeff <= 0:
            raise ModelError(f"coeff must be > 0, got {self.coeff}")

    def rate(self, price: float) -> float:
        return self.intercept + self.coeff * price * price


@dataclass(frozen=True)
class LogPricing(PricingModel):
    """λ_o(c) = scale·log(1 + c) — Fig. 2's nonlinear case (f)."""

    scale: float = 1.0

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"log({self.scale:g}*log(1+p))"

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ModelError(f"scale must be > 0, got {self.scale}")

    def rate(self, price: float) -> float:
        return self.scale * math.log1p(price)


class CallablePricing(PricingModel):
    """Adapter wrapping an arbitrary ``price -> rate`` function."""

    def __init__(self, fn: Callable[[float], float], name: str = "custom") -> None:
        if not callable(fn):
            raise ModelError("fn must be callable")
        self._fn = fn
        self.name = name

    def rate(self, price: float) -> float:
        return float(self._fn(price))


#: The six λ_o(c) response curves of the paper's Fig. 2, keyed by the
#: subplot letter used in §5.1.1.
PAPER_FIG2_MODELS: dict[str, PricingModel] = {
    "a": LinearPricing(slope=1.0, intercept=1.0),    # λ = 1 + p
    "b": LinearPricing(slope=10.0, intercept=1.0),   # λ = 10p + 1
    "c": LinearPricing(slope=0.1, intercept=10.0),   # λ = 0.1p + 10
    "d": LinearPricing(slope=3.0, intercept=3.0),    # λ = 3p + 3
    "e": QuadraticPricing(coeff=1.0, intercept=1.0), # λ = 1 + p²
    "f": LogPricing(scale=1.0),                      # λ = log(1 + p)
}


def fig2_model(case: str) -> PricingModel:
    """Look up one of the paper's six Fig. 2 pricing curves by letter."""
    try:
        return PAPER_FIG2_MODELS[case.lower()]
    except KeyError:
        raise ModelError(
            f"unknown Fig. 2 case {case!r}; expected one of "
            f"{sorted(PAPER_FIG2_MODELS)}"
        ) from None
