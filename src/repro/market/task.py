"""Task objects as seen by the crowd market.

A :class:`PublishedTask` is one *repetition* of one atomic task offered
on the platform at a concrete unit price — the market-level "HPU
instruction".  It moves through the lifecycle

    OPEN --(worker accepts)--> IN_PROGRESS --(answer returned)--> DONE

matching the paper's on-hold and processing phases.  The task carries
its :class:`TaskType` (difficulty class), which determines the
processing rate λ_p and the worker answer accuracy.
"""

from __future__ import annotations

import enum
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Optional

from ..errors import ModelError, SimulationError

__all__ = ["TaskState", "TaskType", "PublishedTask"]

_task_uid = itertools.count()


class TaskState(enum.Enum):
    """Lifecycle states of a published task repetition."""

    OPEN = "open"
    IN_PROGRESS = "in_progress"
    DONE = "done"
    CANCELLED = "cancelled"


@dataclass(frozen=True)
class TaskType:
    """A difficulty class of atomic tasks (paper's "type").

    Parameters
    ----------
    name:
        Human-readable label, e.g. ``"sort-vote"`` or ``"yes-no-vote"``.
    processing_rate:
        λ_p — the price-independent clock rate of the processing phase.
    accuracy:
        Probability a worker's answer equals the latent truth.  The
        paper's HPU characterization (ii) says results are error-prone;
        1.0 reproduces an idealized errorless crowd.
    attractiveness:
        Relative base appeal of this type to arriving workers in the
        agent-level simulator; harder tasks are typically less
        attractive (Fig. 5(a)).
    """

    name: str
    processing_rate: float
    accuracy: float = 1.0
    attractiveness: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("TaskType needs a non-empty name")
        if not math.isfinite(self.processing_rate) or self.processing_rate <= 0:
            raise ModelError(
                f"processing_rate must be positive, got {self.processing_rate}"
            )
        if not 0.0 < self.accuracy <= 1.0:
            raise ModelError(f"accuracy must be in (0, 1], got {self.accuracy}")
        if self.attractiveness <= 0:
            raise ModelError(
                f"attractiveness must be positive, got {self.attractiveness}"
            )


@dataclass
class PublishedTask:
    """One task repetition live on the market.

    Records the timestamps of each lifecycle transition so traces can
    reconstruct the on-hold latency (``accepted_at - published_at``) and
    the processing latency (``completed_at - accepted_at``).
    """

    task_type: TaskType
    price: int
    atomic_task_id: int
    repetition_index: int
    payload: Any = None
    uid: int = field(default_factory=lambda: next(_task_uid))
    state: TaskState = TaskState.OPEN
    published_at: Optional[float] = None
    accepted_at: Optional[float] = None
    completed_at: Optional[float] = None
    worker_id: Optional[int] = None
    answer: Any = None

    def __post_init__(self) -> None:
        if int(self.price) != self.price or self.price < 1:
            raise ModelError(
                f"price must be a positive integer unit payment, got {self.price}"
            )
        self.price = int(self.price)
        if self.repetition_index < 0:
            raise ModelError(
                f"repetition_index must be >= 0, got {self.repetition_index}"
            )

    # -- lifecycle ---------------------------------------------------

    def mark_published(self, now: float) -> None:
        if self.published_at is not None:
            raise SimulationError(f"task {self.uid} already published")
        self.published_at = float(now)

    def mark_accepted(self, now: float, worker_id: int | None = None) -> None:
        if self.state is not TaskState.OPEN:
            raise SimulationError(
                f"task {self.uid} cannot be accepted from state {self.state}"
            )
        if self.published_at is None:
            raise SimulationError(f"task {self.uid} accepted before publication")
        if now < self.published_at:
            raise SimulationError(
                f"task {self.uid}: acceptance time {now} precedes publication "
                f"{self.published_at}"
            )
        self.state = TaskState.IN_PROGRESS
        self.accepted_at = float(now)
        self.worker_id = worker_id

    def mark_completed(self, now: float, answer: Any = None) -> None:
        if self.state is not TaskState.IN_PROGRESS:
            raise SimulationError(
                f"task {self.uid} cannot complete from state {self.state}"
            )
        assert self.accepted_at is not None
        if now < self.accepted_at:
            raise SimulationError(
                f"task {self.uid}: completion time {now} precedes acceptance "
                f"{self.accepted_at}"
            )
        self.state = TaskState.DONE
        self.completed_at = float(now)
        self.answer = answer

    def cancel(self) -> None:
        if self.state is TaskState.DONE:
            raise SimulationError(f"task {self.uid} already completed")
        self.state = TaskState.CANCELLED

    # -- measurements ------------------------------------------------

    @property
    def onhold_latency(self) -> float:
        """Phase-1 latency; raises if the task was never accepted."""
        if self.accepted_at is None or self.published_at is None:
            raise SimulationError(f"task {self.uid} has no on-hold measurement yet")
        return self.accepted_at - self.published_at

    @property
    def processing_latency(self) -> float:
        """Phase-2 latency; raises if the task never completed."""
        if self.completed_at is None or self.accepted_at is None:
            raise SimulationError(f"task {self.uid} has no processing measurement yet")
        return self.completed_at - self.accepted_at

    @property
    def overall_latency(self) -> float:
        """Phase-1 + Phase-2 latency."""
        return self.onhold_latency + self.processing_latency

    @property
    def is_done(self) -> bool:
        return self.state is TaskState.DONE
