"""High-level crowdsourcing platform facade.

:class:`CrowdPlatform` is the requester-facing API: publish a batch of
atomic tasks with an allocation of unit payments, wait for completion,
collect answers and latency measurements.  It hides which engine
(aggregate or agent) backs the market, which is how the rest of the
library stays engine-agnostic — the crowd-DB operators and the
experiment harness both talk only to this class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from ..errors import ModelError, SimulationError
from ..stats.rng import RandomState, ensure_rng
from .pricing import PricingModel
from .simulator import (
    AggregateSimulator,
    AgentSimulator,
    AtomicTaskOrder,
    JobResult,
    MarketModel,
)
from .task import TaskType
from .trace import TraceRecorder
from .worker import WorkerPool

__all__ = ["CrowdPlatform", "PublishRequest"]


@dataclass(frozen=True)
class PublishRequest:
    """A requester's description of one atomic task to publish.

    ``prices`` must contain one positive integer unit payment per
    repetition; the platform enforces the total against the requester's
    remaining budget if one was configured.
    """

    task_type: TaskType
    prices: Sequence[int]
    payload: Any = None


class CrowdPlatform:
    """Requester-facing entry point to the simulated market.

    Parameters
    ----------
    market:
        Pricing environment (used by the aggregate and batch engines).
    engine:
        ``"aggregate"`` (default — the paper's model sampled exactly),
        ``"agent"`` (explicit worker stream; requires *pool*), or
        ``"batch"`` (:class:`repro.perf.batch.BatchAggregateSimulator`
        — the aggregate model with every phase drawn as one vector;
        answers included, so crowd-DB queries can leave the scalar
        event loop.  Deterministic per seed but not stream-compatible
        with ``"aggregate"``).
    pool:
        Worker pool for the agent engine.
    budget:
        Optional hard budget in payment units; publishing beyond it
        raises.  ``None`` disables enforcement.
    seed:
        Reproducibility seed for everything the platform samples.
    """

    def __init__(
        self,
        market: MarketModel,
        engine: str = "aggregate",
        pool: Optional[WorkerPool] = None,
        budget: Optional[int] = None,
        seed: RandomState = None,
    ) -> None:
        if engine not in ("aggregate", "agent", "batch"):
            raise ModelError(
                f"engine must be 'aggregate', 'agent' or 'batch', got {engine!r}"
            )
        if engine == "agent" and pool is None:
            raise ModelError("the agent engine requires a WorkerPool")
        if budget is not None and (int(budget) != budget or budget < 0):
            raise ModelError(f"budget must be a non-negative integer, got {budget}")
        self.market = market
        self.engine_name = engine
        self._rng = ensure_rng(seed)
        self._pool = pool
        self.budget = None if budget is None else int(budget)
        self.spent = 0
        self._next_atomic_id = 0
        if engine == "aggregate":
            self._engine: Any = AggregateSimulator(market, seed=self._rng)
        elif engine == "batch":
            from ..perf.batch import BatchAggregateSimulator

            self._engine = BatchAggregateSimulator(market, seed=self._rng)
        else:
            self._engine = AgentSimulator(pool, seed=self._rng)

    # -- budget accounting -------------------------------------------

    @property
    def remaining_budget(self) -> Optional[int]:
        if self.budget is None:
            return None
        return self.budget - self.spent

    def _charge(self, amount: int) -> None:
        if self.budget is not None and self.spent + amount > self.budget:
            raise SimulationError(
                f"publishing would spend {self.spent + amount} of a "
                f"{self.budget}-unit budget"
            )
        self.spent += amount

    # -- publishing ---------------------------------------------------

    def _to_order(self, request: PublishRequest) -> AtomicTaskOrder:
        atomic_id = self._next_atomic_id
        self._next_atomic_id += 1
        return AtomicTaskOrder(
            task_type=request.task_type,
            prices=tuple(int(p) for p in request.prices),
            atomic_task_id=atomic_id,
            payload=request.payload,
        )

    def run_batch(
        self,
        requests: Sequence[PublishRequest],
        recorder: Optional[TraceRecorder] = None,
    ) -> JobResult:
        """Publish all *requests* simultaneously and run to completion.

        Returns the engine's :class:`JobResult`; its ``answers`` dict is
        keyed by the order the requests were given (atomic task ids are
        assigned sequentially).
        """
        if not requests:
            raise SimulationError("run_batch needs at least one request")
        orders = [self._to_order(r) for r in requests]
        cost = sum(sum(o.prices) for o in orders)
        self._charge(cost)
        return self._engine.run_job(orders, recorder=recorder)

    def run_replications(
        self,
        requests: Sequence[PublishRequest],
        n_replications: Optional[int] = None,
        *,
        seeds=None,
        recorders=None,
        engine=None,
    ) -> list[JobResult]:
        """Run one batch of *requests* as R independent replications.

        A measurement fan-out, not R separate purchases: the batch is
        published once (one set of atomic task ids, one budget charge)
        and simulated in R independent worlds — the shape of every
        replication study (latency CIs, engine-agreement checks, the
        figure harnesses).  ``seeds``/``recorders``/``engine`` are the
        :meth:`AgentSimulator.run_replications
        <repro.market.simulator.AgentSimulator.run_replications>`
        parameters; ``engine="agent-batch"`` advances agent-market
        replications in lock-step, and every engine returns
        replication-for-replication identical results.
        """
        if not requests:
            raise SimulationError("run_replications needs at least one request")
        orders = [self._to_order(r) for r in requests]
        cost = sum(sum(o.prices) for o in orders)
        self._charge(cost)
        return self._engine.run_replications(
            orders,
            n_replications,
            seeds=seeds,
            recorders=recorders,
            engine=engine,
        )

    # -- convenience --------------------------------------------------

    @classmethod
    def with_linear_market(
        cls,
        slope: float,
        intercept: float,
        engine: str = "aggregate",
        arrival_rate: float | None = None,
        budget: Optional[int] = None,
        seed: RandomState = None,
    ) -> "CrowdPlatform":
        """Build a platform over a single linear pricing curve.

        For the agent engine, *arrival_rate* sets the Poisson worker
        stream rate Λ.
        """
        from .pricing import LinearPricing

        market = MarketModel(LinearPricing(slope=slope, intercept=intercept))
        pool = None
        if engine == "agent":
            if arrival_rate is None:
                raise ModelError("agent engine needs arrival_rate")
            pool = WorkerPool(arrival_rate=arrival_rate)
        return cls(market, engine=engine, pool=pool, budget=budget, seed=seed)
