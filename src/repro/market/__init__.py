"""Crowd-market simulator — the library's AMT substitute (paper §3, §5.2).

Layers, bottom-up:

* :mod:`~repro.market.events` — deterministic discrete-event queue;
* :mod:`~repro.market.task` — task lifecycle and measurements;
* :mod:`~repro.market.worker` — Poisson worker stream + choice models;
* :mod:`~repro.market.pricing` — λ_o(c) response curves (all six curves
  of the paper's Fig. 2);
* :mod:`~repro.market.simulator` — aggregate and agent engines;
* :mod:`~repro.market.trace` — per-task measurements and summaries;
* :mod:`~repro.market.platform` — requester-facing facade.
"""

from .dynamics import (
    ConstantRate,
    NonstationaryWorkerPool,
    PiecewiseRate,
    RateProfile,
    SinusoidalRate,
    sample_arrival_times,
)
from .events import Event, EventKind, EventQueue
from .persistence import (
    TRACE_COLUMNS,
    read_records_csv,
    recorder_from_csv,
    write_records_csv,
)
from .platform import CrowdPlatform, PublishRequest
from .pricing import (
    PAPER_FIG2_MODELS,
    CallablePricing,
    LinearPricing,
    LogPricing,
    PricingModel,
    QuadraticPricing,
    fig2_model,
)
from .retainer import RetainerCostModel, RetainerSimulator
from .simulator import (
    AgentSimulator,
    AggregateSimulator,
    AtomicTaskOrder,
    JobResult,
    MarketModel,
)
from .task import PublishedTask, TaskState, TaskType
from .trace import (
    NULL_RECORDER,
    LatencySummary,
    NullTraceRecorder,
    TaskRecord,
    TraceRecorder,
)
from .worker import (
    ChoiceModel,
    GreedyPriceChoice,
    PriceProportionalChoice,
    SoftmaxChoice,
    WorkerPool,
)

__all__ = [
    "AgentSimulator",
    "AggregateSimulator",
    "AtomicTaskOrder",
    "CallablePricing",
    "ChoiceModel",
    "ConstantRate",
    "CrowdPlatform",
    "Event",
    "EventKind",
    "EventQueue",
    "GreedyPriceChoice",
    "JobResult",
    "LatencySummary",
    "LinearPricing",
    "LogPricing",
    "MarketModel",
    "NULL_RECORDER",
    "NonstationaryWorkerPool",
    "NullTraceRecorder",
    "PAPER_FIG2_MODELS",
    "PriceProportionalChoice",
    "PricingModel",
    "PiecewiseRate",
    "RateProfile",
    "PublishRequest",
    "PublishedTask",
    "RetainerCostModel",
    "RetainerSimulator",
    "QuadraticPricing",
    "SinusoidalRate",
    "SoftmaxChoice",
    "TRACE_COLUMNS",
    "TaskRecord",
    "TaskState",
    "TaskType",
    "TraceRecorder",
    "WorkerPool",
    "fig2_model",
    "read_records_csv",
    "recorder_from_csv",
    "sample_arrival_times",
    "write_records_csv",
]
