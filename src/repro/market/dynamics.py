"""Time-varying market dynamics (paper §3, "Worker" definition).

The paper notes that AMT worker activity "observes fluctuation along
both a daily and a weekly basis" but argues a constant-rate model
suffices for micro-task batches, *provided the parameters are inferred
close to run time*.  This module makes that argument testable: it
provides non-stationary arrival processes so experiments can quantify
how badly a stationary-model tuner degrades under drift and how much
adaptive re-tuning (:mod:`repro.core.adaptive`) recovers.

Rate profiles are intensity functions ``λ(t)``; sampling uses Lewis &
Shedler thinning, which is exact for any bounded intensity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..errors import ModelError
from ..stats.rng import RandomState, ensure_rng
from .worker import ChoiceModel, PriceProportionalChoice, WorkerPool

__all__ = [
    "RateProfile",
    "ConstantRate",
    "SinusoidalRate",
    "PiecewiseRate",
    "sample_arrival_times",
    "NonstationaryWorkerPool",
]


class RateProfile:
    """An arrival intensity λ(t) with a known upper bound."""

    def rate(self, t: float) -> float:
        """Intensity at time *t* (must be >= 0)."""
        raise NotImplementedError

    def max_rate(self) -> float:
        """A bound ``λ_max >= λ(t)`` for all t (thinning envelope)."""
        raise NotImplementedError

    def mean_rate(self, horizon: float, samples: int = 1024) -> float:
        """Average intensity over [0, horizon] (numeric)."""
        if horizon <= 0:
            raise ModelError(f"horizon must be positive, got {horizon}")
        ts = np.linspace(0.0, horizon, samples)
        return float(np.mean([self.rate(float(t)) for t in ts]))


@dataclass(frozen=True)
class ConstantRate(RateProfile):
    """The paper's stationary model: λ(t) = value."""

    value: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.value) or self.value <= 0:
            raise ModelError(f"rate must be positive, got {self.value}")

    def rate(self, t: float) -> float:
        return self.value

    def max_rate(self) -> float:
        return self.value


@dataclass(frozen=True)
class SinusoidalRate(RateProfile):
    """Daily-cycle fluctuation: λ(t) = base·(1 + amplitude·sin(2πt/period + phase)).

    ``amplitude`` in [0, 1) keeps the intensity strictly positive.
    """

    base: float
    amplitude: float
    period: float
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ModelError(f"base rate must be positive, got {self.base}")
        if not 0.0 <= self.amplitude < 1.0:
            raise ModelError(
                f"amplitude must be in [0, 1), got {self.amplitude}"
            )
        if self.period <= 0:
            raise ModelError(f"period must be positive, got {self.period}")

    def rate(self, t: float) -> float:
        return self.base * (
            1.0 + self.amplitude * math.sin(2.0 * math.pi * t / self.period + self.phase)
        )

    def max_rate(self) -> float:
        return self.base * (1.0 + self.amplitude)


class PiecewiseRate(RateProfile):
    """Step-function intensity: rate r_i on [t_i, t_{i+1}).

    The last segment extends to infinity.  Models regime shifts like
    "the US workforce wakes up at t = 100".
    """

    def __init__(self, breakpoints: Sequence[float], rates: Sequence[float]) -> None:
        breakpoints = [float(b) for b in breakpoints]
        rates = [float(r) for r in rates]
        if len(rates) != len(breakpoints) + 1:
            raise ModelError(
                f"need len(rates) == len(breakpoints)+1, got {len(rates)} rates "
                f"and {len(breakpoints)} breakpoints"
            )
        if any(b2 <= b1 for b1, b2 in zip(breakpoints, breakpoints[1:])):
            raise ModelError("breakpoints must be strictly increasing")
        if any(b < 0 for b in breakpoints):
            raise ModelError("breakpoints must be >= 0")
        if any(r <= 0 or not math.isfinite(r) for r in rates):
            raise ModelError(f"all rates must be positive, got {rates}")
        self.breakpoints = breakpoints
        self.rates = rates

    def rate(self, t: float) -> float:
        idx = 0
        for b in self.breakpoints:
            if t < b:
                break
            idx += 1
        return self.rates[idx]

    def max_rate(self) -> float:
        return max(self.rates)


def sample_arrival_times(
    profile: RateProfile,
    horizon: float,
    rng: RandomState = None,
    start: float = 0.0,
) -> list[float]:
    """Exact non-homogeneous Poisson arrivals on [start, start+horizon].

    Lewis–Shedler thinning: candidate arrivals from a homogeneous
    Poisson(λ_max) stream are kept with probability λ(t)/λ_max.
    """
    if horizon <= 0:
        raise ModelError(f"horizon must be positive, got {horizon}")
    gen = ensure_rng(rng)
    lam_max = profile.max_rate()
    if lam_max <= 0 or not math.isfinite(lam_max):
        raise ModelError(f"profile max_rate must be positive finite, got {lam_max}")
    times: list[float] = []
    t = float(start)
    end = start + horizon
    while True:
        t += float(gen.exponential(1.0 / lam_max))
        if t > end:
            break
        if gen.random() <= profile.rate(t) / lam_max:
            times.append(t)
    return times


class NonstationaryWorkerPool(WorkerPool):
    """Worker pool whose Poisson stream follows a :class:`RateProfile`.

    Drop-in replacement for :class:`~repro.market.worker.WorkerPool` in
    the agent simulator: ``next_arrival_delay`` performs per-arrival
    thinning against the envelope rate, conditioned on the pool's own
    running clock (the simulator consumes delays sequentially, so the
    internal clock tracks simulation time exactly as long as a single
    simulator owns the pool).
    """

    def __init__(
        self,
        profile: RateProfile,
        choice_model: ChoiceModel | None = None,
        accuracy_jitter: float = 0.0,
    ) -> None:
        super().__init__(
            arrival_rate=profile.max_rate(),
            choice_model=choice_model or PriceProportionalChoice(),
            accuracy_jitter=accuracy_jitter,
        )
        self.profile = profile
        self._clock = 0.0

    def reset_clock(self, now: float = 0.0) -> None:
        """Re-anchor the pool's internal clock (new simulation run)."""
        if now < 0:
            raise ModelError(f"clock must be >= 0, got {now}")
        self._clock = float(now)

    def next_arrival_delay(self, rng: RandomState = None) -> float:
        gen = ensure_rng(rng)
        lam_max = self.profile.max_rate()
        t = self._clock
        while True:
            t += float(gen.exponential(1.0 / lam_max))
            if gen.random() <= self.profile.rate(t) / lam_max:
                delay = t - self._clock
                self._clock = t
                return delay
