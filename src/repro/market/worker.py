"""Worker model for the agent-level market simulator (paper §3.1).

Workers arrive by a Poisson process with market rate Λ.  An arriving
worker inspects the open tasks and either picks one (utility-driven
choice) or leaves.  The probability that a particular task at price
``c`` is taken by an arriving worker is the paper's ``p(c)``; the joint
acceptance rate is then λ_o = Λ·p(c), which is what the aggregate
simulator and the tuning theory use directly.

The default :class:`PriceProportionalChoice` makes ``p(c)``
proportional to ``price · attractiveness`` with a leave option, so
aggregated per-task acceptance remains (approximately) exponential with
a price-increasing rate — the regime the Linearity Hypothesis covers.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import ModelError
from ..stats.rng import RandomState, ensure_rng
from .task import PublishedTask

__all__ = [
    "ChoiceModel",
    "OpenTaskIndex",
    "PriceProportionalChoice",
    "SoftmaxChoice",
    "GreedyPriceChoice",
    "WorkerPool",
]


class ChoiceModel:
    """Strategy interface: which open task does an arriving worker take?"""

    def choose(
        self,
        open_tasks: Sequence[PublishedTask],
        rng: np.random.Generator,
    ) -> Optional[PublishedTask]:
        """Return the chosen task or ``None`` if the worker walks away."""
        raise NotImplementedError

    def make_index(self) -> "OpenTaskIndex":
        """An incremental chooser over the open-task pool.

        The agent simulator maintains one index per job instead of
        materializing the open-task list on every arrival; the built-in
        models return weight-tree indexes with ``O(log n)`` arrivals.
        The default wraps :meth:`choose` over an insertion-ordered pool
        (``O(n)`` per arrival), so custom subclasses keep working
        unchanged.
        """
        return _LinearTaskIndex(self)


class OpenTaskIndex:
    """Incremental open-task pool a choice model selects from.

    ``add``/``discard`` keep the pool in sync with the simulator's
    publishes and acceptances; ``choose`` picks the arriving worker's
    task (or ``None`` for walking away) and must consume the RNG
    exactly as the owning model's :meth:`ChoiceModel.choose` does, so
    seeded trajectories are independent of which path runs.
    """

    def add(self, task: PublishedTask) -> None:
        raise NotImplementedError

    def discard(self, task: PublishedTask) -> None:
        raise NotImplementedError

    def choose(self, rng: np.random.Generator) -> Optional[PublishedTask]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class _LinearTaskIndex(OpenTaskIndex):
    """Fallback index: delegate to the model's list-based ``choose``."""

    def __init__(self, model: ChoiceModel) -> None:
        self._model = model
        self._tasks: dict[int, PublishedTask] = {}

    def add(self, task: PublishedTask) -> None:
        self._tasks[task.uid] = task

    def discard(self, task: PublishedTask) -> None:
        self._tasks.pop(task.uid, None)

    def choose(self, rng: np.random.Generator) -> Optional[PublishedTask]:
        return self._model.choose(list(self._tasks.values()), rng)

    def __len__(self) -> int:
        return len(self._tasks)


class _FenwickTree:
    """Growable Fenwick (binary-indexed) tree over non-negative weights.

    Supports ``O(log n)`` point updates, total sums, and
    lower-bound descent (first index whose prefix sum exceeds a
    threshold) — the three operations weighted task choice needs.
    """

    def __init__(self) -> None:
        self._tree: list[float] = [0.0]  # 1-indexed; slot 0 unused
        self._weights: list[float] = []

    def __len__(self) -> int:
        return len(self._weights)

    def append(self, weight: float) -> int:
        """Add a new slot with *weight*; returns its index."""
        self._weights.append(float(weight))
        i = len(self._weights)  # 1-indexed position
        # A new tree node aggregates the trailing block ending at i.
        total = self._weights[i - 1]
        k = 1
        while i % (k << 1) == 0:
            total += self._tree[i - k]
            k <<= 1
        self._tree.append(total)
        return i - 1

    def update(self, index: int, weight: float) -> None:
        """Set slot *index* (0-based) to *weight*."""
        delta = float(weight) - self._weights[index]
        self._weights[index] = float(weight)
        i = index + 1
        n = len(self._weights)
        while i <= n:
            self._tree[i] += delta
            i += i & (-i)

    def total(self) -> float:
        """Sum of all weights (tree association order)."""
        n = len(self._weights)
        acc = 0.0
        i = n
        while i > 0:
            acc += self._tree[i]
            i -= i & (-i)
        return acc

    def search(self, threshold: float) -> int:
        """Smallest 0-based index whose prefix sum exceeds *threshold*.

        Mirrors ``np.searchsorted(np.cumsum(w), u, side="right")`` up
        to summation association; callers clamp the result like the
        linear implementations do.
        """
        n = len(self._weights)
        pos = 0
        remaining = float(threshold)
        bit = 1
        while (bit << 1) <= n:
            bit <<= 1
        while bit > 0:
            nxt = pos + bit
            if nxt <= n and self._tree[nxt] <= remaining:
                remaining -= self._tree[nxt]
                pos = nxt
            bit >>= 1
        return pos  # 0-based: prefix through pos is <= threshold


class _WeightedTaskIndex(OpenTaskIndex):
    """Fenwick-tree index for proportional-weight choice models.

    Selection draws one variate exactly like the linear implementation
    (``uniform(0, total)``), then descends the tree in ``O(log n)``
    instead of materializing a cumulative-sum array over the whole
    pool.  Weight totals are accumulated in tree order rather than
    numpy's pairwise order, which can differ in the last ulp — the
    chosen *task* is the same almost surely, and the RNG stream
    position is identical by construction, so seeded trajectories are
    preserved (certified against the linear fallback in
    ``tests/market/test_open_task_index.py``).

    Slots are append-only with tombstoned (zero-weight) removals; a
    job's slot count is bounded by its total repetitions.
    """

    def __init__(self, weight_fn, leave_weight: float = 0.0) -> None:
        self._weight_fn = weight_fn
        self._leave_weight = float(leave_weight)
        self._tree = _FenwickTree()
        self._slot_of: dict[int, int] = {}  # task uid -> slot
        self._task_at: dict[int, PublishedTask] = {}  # slot -> task (live)

    def add(self, task: PublishedTask) -> None:
        slot = self._tree.append(self._weight_fn(task))
        self._slot_of[task.uid] = slot
        self._task_at[slot] = task

    def discard(self, task: PublishedTask) -> None:
        slot = self._slot_of.pop(task.uid, None)
        if slot is None:
            return
        del self._task_at[slot]
        self._tree.update(slot, 0.0)

    def __len__(self) -> int:
        return len(self._task_at)

    def choose(self, rng: np.random.Generator) -> Optional[PublishedTask]:
        if not self._task_at:
            return None
        task_total = self._tree.total()
        total = task_total + self._leave_weight
        if total <= 0:
            return None
        u = float(rng.uniform(0.0, total))
        if u >= task_total:
            return None
        slot = self._tree.search(u)
        if slot not in self._task_at:
            # Clamp like the linear paths' min(idx, len-1): a
            # floating-point edge can land past the last live slot.
            slot = next(reversed(self._task_at))
        return self._task_at[slot]


class _SoftmaxTaskIndex(OpenTaskIndex):
    """Weight-tree index for logit choice, with max-shift stabilization.

    Logit selection is proportional selection over ``exp(utility)``,
    but raw ``exp`` overflows for large β·log(price·attract.) and
    underflows for very negative ones — the linear path avoids both by
    shifting every utility by the pool max before exponentiating.
    This index keeps the same protection incrementally: tree weights
    are ``exp(u_i − ref)`` against a reference ``ref`` that tracks
    ``max(max live utility, leave_utility)``; whenever the live max
    drifts more than :data:`_REBASE_MARGIN` from ``ref``, the tree is
    rebuilt against the new reference.  Shifted exponents are thus
    bounded above by the margin (no overflow), and the best task's
    weight never underflows, exactly matching the linear model's
    numerics.  Rebuilds cost one O(n log n) pass and only fire when
    the pool's utility range moves by more than the margin — the
    worst case degrades to the seed's linear behaviour, never below.
    """

    _REBASE_MARGIN = 1.0

    def __init__(self, beta: float, leave_utility: float) -> None:
        self._beta = float(beta)
        self._leave_utility = float(leave_utility)
        self._ref = float(leave_utility)
        self._tree = _FenwickTree()
        self._slot_of: dict[int, int] = {}  # task uid -> slot
        self._task_at: dict[int, PublishedTask] = {}  # slot -> task (live)
        self._utility_of: dict[int, float] = {}  # task uid -> utility
        self._util_heap: list[tuple[float, int]] = []  # (-utility, uid)
        # Per-(type, price) memo tables.  A job publishes many
        # repetitions of few task types at few prices, so β·log(p·a)
        # and the powered weight (p·a)^β·e^{-ref} repeat heavily.
        # Utilities depend only on (attractiveness, price) — cached for
        # the index's lifetime; the powered weights also depend on the
        # shift reference, so that table is invalidated whenever the
        # pool's composition moves the reference (see _rebuild).
        self._util_cache: dict[tuple[float, int], float] = {}
        self._weight_cache: dict[tuple[float, int], float] = {}

    def _utility(self, task: PublishedTask) -> float:
        key = (task.task_type.attractiveness, task.price)
        utility = self._util_cache.get(key)
        if utility is None:
            utility = self._beta * math.log(
                task.price * task.task_type.attractiveness
            )
            self._util_cache[key] = utility
        return utility

    def _live_max_utility(self) -> float:
        while self._util_heap:
            neg_u, uid = self._util_heap[0]
            if uid in self._slot_of:
                return -neg_u
            heapq.heappop(self._util_heap)  # stale entry
        return -math.inf

    def _append(self, task: PublishedTask, utility: float) -> None:
        key = (task.task_type.attractiveness, task.price)
        weight = self._weight_cache.get(key)
        if weight is None:
            weight = math.exp(min(utility - self._ref, 700.0))
            self._weight_cache[key] = weight
        slot = self._tree.append(weight)
        self._slot_of[task.uid] = slot
        self._task_at[slot] = task

    def _rebuild(self, ref: float) -> None:
        self._ref = ref
        # The cached powered weights embed the old reference shift;
        # a pool-composition change that moves the reference must
        # invalidate them (the ref-independent utility cache survives).
        self._weight_cache.clear()
        tasks = list(self._task_at.values())
        self._tree = _FenwickTree()
        self._slot_of.clear()
        self._task_at.clear()
        for task in tasks:
            self._append(task, self._utility_of[task.uid])

    def add(self, task: PublishedTask) -> None:
        utility = self._utility(task)
        self._utility_of[task.uid] = utility
        if utility - self._ref > self._REBASE_MARGIN:
            # A new pool maximum: re-shift before the exponent grows.
            # (Downward drift — the old max leaving — is handled at
            # choose() time, where the weights actually matter.)
            self._rebuild(max(utility, self._leave_utility))
        self._append(task, utility)
        heapq.heappush(self._util_heap, (-utility, task.uid))

    def discard(self, task: PublishedTask) -> None:
        slot = self._slot_of.pop(task.uid, None)
        if slot is None:
            return
        del self._task_at[slot]
        del self._utility_of[task.uid]
        self._tree.update(slot, 0.0)

    def __len__(self) -> int:
        return len(self._task_at)

    def choose(self, rng: np.random.Generator) -> Optional[PublishedTask]:
        if not self._task_at:
            return None
        target = max(self._live_max_utility(), self._leave_utility)
        if abs(target - self._ref) > self._REBASE_MARGIN:
            self._rebuild(target)
        task_total = self._tree.total()
        total = task_total + math.exp(
            min(self._leave_utility - self._ref, 700.0)
        )
        # One standard uniform — the exact stream consumption of
        # Generator.choice(p=...) in the linear path.
        u = float(rng.random()) * total
        if u >= task_total:
            return None
        slot = self._tree.search(u)
        if slot not in self._task_at:
            slot = next(reversed(self._task_at))
        return self._task_at[slot]


@dataclass
class PriceProportionalChoice(ChoiceModel):
    """Pick task i with probability ∝ price_i · attractiveness_i.

    ``leave_weight`` is the pseudo-weight of the walk-away option: with
    weight L and task weights w_i, the worker leaves with probability
    ``L / (L + Σ w_i)``.  Larger prices therefore raise both the chance
    the worker stays and the chance this particular task is the one
    taken — the two effects the paper folds into p(c).
    """

    leave_weight: float = 0.0

    def __post_init__(self) -> None:
        if self.leave_weight < 0:
            raise ModelError(f"leave_weight must be >= 0, got {self.leave_weight}")

    def choose(self, open_tasks, rng):
        if not open_tasks:
            return None
        weights = np.array(
            [t.price * t.task_type.attractiveness for t in open_tasks], dtype=float
        )
        total = float(weights.sum()) + self.leave_weight
        if total <= 0:
            return None
        u = rng.uniform(0.0, total)
        if u >= weights.sum():
            return None
        idx = int(np.searchsorted(np.cumsum(weights), u, side="right"))
        return open_tasks[min(idx, len(open_tasks) - 1)]

    def make_index(self) -> OpenTaskIndex:
        return _WeightedTaskIndex(
            lambda t: t.price * t.task_type.attractiveness,
            leave_weight=self.leave_weight,
        )


@dataclass
class SoftmaxChoice(ChoiceModel):
    """Multinomial-logit choice over utility = β·log(price·attract.).

    A standard discrete-choice model; ``leave_utility`` is the utility
    of the outside option.
    """

    beta: float = 1.0
    leave_utility: float = 0.0

    def __post_init__(self) -> None:
        if self.beta <= 0:
            raise ModelError(f"beta must be > 0, got {self.beta}")

    def choose(self, open_tasks, rng):
        if not open_tasks:
            return None
        utils = np.array(
            [
                self.beta * math.log(t.price * t.task_type.attractiveness)
                for t in open_tasks
            ],
            dtype=float,
        )
        utils = np.append(utils, self.leave_utility)
        utils -= utils.max()
        probs = np.exp(utils)
        probs /= probs.sum()
        idx = int(rng.choice(len(probs), p=probs))
        if idx == len(open_tasks):
            return None
        return open_tasks[idx]

    def make_index(self) -> OpenTaskIndex:
        # Logit choice is proportional choice over exp(utility); the
        # index keeps the linear path's max-shift stabilization
        # incrementally (see _SoftmaxTaskIndex), so extreme β or
        # utilities neither overflow nor underflow.
        return _SoftmaxTaskIndex(self.beta, self.leave_utility)


@dataclass
class GreedyPriceChoice(ChoiceModel):
    """Always take the highest-paying open task (ties by publish order).

    The utility-maximization extreme; useful as a stress test for the
    tuning algorithms because it breaks the independence the aggregate
    model assumes.
    """

    def choose(self, open_tasks, rng):
        if not open_tasks:
            return None
        return max(open_tasks, key=lambda t: (t.price, -t.uid))

    def make_index(self) -> OpenTaskIndex:
        return _GreedyTaskIndex()


class _GreedyTaskIndex(OpenTaskIndex):
    """Lazy-deletion heap over (price, -uid): O(log n) arrivals.

    Exactly reproduces :class:`GreedyPriceChoice`'s ``max`` (highest
    price, ties to the earliest-published task); consumes no RNG.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int]] = []  # (-price, uid)
        self._live: dict[int, PublishedTask] = {}

    def add(self, task: PublishedTask) -> None:
        self._live[task.uid] = task
        heapq.heappush(self._heap, (-task.price, task.uid))

    def discard(self, task: PublishedTask) -> None:
        self._live.pop(task.uid, None)

    def __len__(self) -> int:
        return len(self._live)

    def choose(self, rng: np.random.Generator) -> Optional[PublishedTask]:
        while self._heap:
            _, uid = self._heap[0]
            task = self._live.get(uid)
            if task is None:
                heapq.heappop(self._heap)  # stale entry
                continue
            return task
        return None


class WorkerPool:
    """Poisson stream of workers with a shared choice model.

    Parameters
    ----------
    arrival_rate:
        Λ — expected number of worker arrivals per unit time.
    choice_model:
        How an arriving worker selects among open tasks.
    accuracy_jitter:
        Std-dev of a per-worker perturbation of the task-type accuracy
        (clipped to (0, 1]); models worker-skill heterogeneity
        reported in the demographics studies the paper cites.
    """

    def __init__(
        self,
        arrival_rate: float,
        choice_model: ChoiceModel | None = None,
        accuracy_jitter: float = 0.0,
    ) -> None:
        if not math.isfinite(arrival_rate) or arrival_rate <= 0:
            raise ModelError(f"arrival_rate must be positive, got {arrival_rate}")
        if accuracy_jitter < 0:
            raise ModelError(f"accuracy_jitter must be >= 0, got {accuracy_jitter}")
        self.arrival_rate = float(arrival_rate)
        self.choice_model = choice_model or PriceProportionalChoice()
        self.accuracy_jitter = float(accuracy_jitter)
        self._next_worker_id = 0

    def next_arrival_delay(self, rng: RandomState = None) -> float:
        """Sample the time until the next worker arrives: Exp(Λ)."""
        gen = ensure_rng(rng)
        return float(gen.exponential(scale=1.0 / self.arrival_rate))

    def new_worker_id(self) -> int:
        wid = self._next_worker_id
        self._next_worker_id += 1
        return wid

    def worker_accuracy(self, base_accuracy: float, rng: RandomState = None) -> float:
        """Per-worker effective accuracy for a task type."""
        if self.accuracy_jitter == 0.0:
            return base_accuracy
        gen = ensure_rng(rng)
        acc = base_accuracy + gen.normal(0.0, self.accuracy_jitter)
        return float(min(1.0, max(1e-6, acc)))
