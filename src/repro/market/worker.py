"""Worker model for the agent-level market simulator (paper §3.1).

Workers arrive by a Poisson process with market rate Λ.  An arriving
worker inspects the open tasks and either picks one (utility-driven
choice) or leaves.  The probability that a particular task at price
``c`` is taken by an arriving worker is the paper's ``p(c)``; the joint
acceptance rate is then λ_o = Λ·p(c), which is what the aggregate
simulator and the tuning theory use directly.

The default :class:`PriceProportionalChoice` makes ``p(c)``
proportional to ``price · attractiveness`` with a leave option, so
aggregated per-task acceptance remains (approximately) exponential with
a price-increasing rate — the regime the Linearity Hypothesis covers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import ModelError
from ..stats.rng import RandomState, ensure_rng
from .task import PublishedTask

__all__ = [
    "ChoiceModel",
    "PriceProportionalChoice",
    "SoftmaxChoice",
    "GreedyPriceChoice",
    "WorkerPool",
]


class ChoiceModel:
    """Strategy interface: which open task does an arriving worker take?"""

    def choose(
        self,
        open_tasks: Sequence[PublishedTask],
        rng: np.random.Generator,
    ) -> Optional[PublishedTask]:
        """Return the chosen task or ``None`` if the worker walks away."""
        raise NotImplementedError


@dataclass
class PriceProportionalChoice(ChoiceModel):
    """Pick task i with probability ∝ price_i · attractiveness_i.

    ``leave_weight`` is the pseudo-weight of the walk-away option: with
    weight L and task weights w_i, the worker leaves with probability
    ``L / (L + Σ w_i)``.  Larger prices therefore raise both the chance
    the worker stays and the chance this particular task is the one
    taken — the two effects the paper folds into p(c).
    """

    leave_weight: float = 0.0

    def __post_init__(self) -> None:
        if self.leave_weight < 0:
            raise ModelError(f"leave_weight must be >= 0, got {self.leave_weight}")

    def choose(self, open_tasks, rng):
        if not open_tasks:
            return None
        weights = np.array(
            [t.price * t.task_type.attractiveness for t in open_tasks], dtype=float
        )
        total = float(weights.sum()) + self.leave_weight
        if total <= 0:
            return None
        u = rng.uniform(0.0, total)
        if u >= weights.sum():
            return None
        idx = int(np.searchsorted(np.cumsum(weights), u, side="right"))
        return open_tasks[min(idx, len(open_tasks) - 1)]


@dataclass
class SoftmaxChoice(ChoiceModel):
    """Multinomial-logit choice over utility = β·log(price·attract.).

    A standard discrete-choice model; ``leave_utility`` is the utility
    of the outside option.
    """

    beta: float = 1.0
    leave_utility: float = 0.0

    def __post_init__(self) -> None:
        if self.beta <= 0:
            raise ModelError(f"beta must be > 0, got {self.beta}")

    def choose(self, open_tasks, rng):
        if not open_tasks:
            return None
        utils = np.array(
            [
                self.beta * math.log(t.price * t.task_type.attractiveness)
                for t in open_tasks
            ],
            dtype=float,
        )
        utils = np.append(utils, self.leave_utility)
        utils -= utils.max()
        probs = np.exp(utils)
        probs /= probs.sum()
        idx = int(rng.choice(len(probs), p=probs))
        if idx == len(open_tasks):
            return None
        return open_tasks[idx]


@dataclass
class GreedyPriceChoice(ChoiceModel):
    """Always take the highest-paying open task (ties by publish order).

    The utility-maximization extreme; useful as a stress test for the
    tuning algorithms because it breaks the independence the aggregate
    model assumes.
    """

    def choose(self, open_tasks, rng):
        if not open_tasks:
            return None
        return max(open_tasks, key=lambda t: (t.price, -t.uid))


class WorkerPool:
    """Poisson stream of workers with a shared choice model.

    Parameters
    ----------
    arrival_rate:
        Λ — expected number of worker arrivals per unit time.
    choice_model:
        How an arriving worker selects among open tasks.
    accuracy_jitter:
        Std-dev of a per-worker perturbation of the task-type accuracy
        (clipped to (0, 1]); models worker-skill heterogeneity
        reported in the demographics studies the paper cites.
    """

    def __init__(
        self,
        arrival_rate: float,
        choice_model: ChoiceModel | None = None,
        accuracy_jitter: float = 0.0,
    ) -> None:
        if not math.isfinite(arrival_rate) or arrival_rate <= 0:
            raise ModelError(f"arrival_rate must be positive, got {arrival_rate}")
        if accuracy_jitter < 0:
            raise ModelError(f"accuracy_jitter must be >= 0, got {accuracy_jitter}")
        self.arrival_rate = float(arrival_rate)
        self.choice_model = choice_model or PriceProportionalChoice()
        self.accuracy_jitter = float(accuracy_jitter)
        self._next_worker_id = 0

    def next_arrival_delay(self, rng: RandomState = None) -> float:
        """Sample the time until the next worker arrives: Exp(Λ)."""
        gen = ensure_rng(rng)
        return float(gen.exponential(scale=1.0 / self.arrival_rate))

    def new_worker_id(self) -> int:
        wid = self._next_worker_id
        self._next_worker_id += 1
        return wid

    def worker_accuracy(self, base_accuracy: float, rng: RandomState = None) -> float:
        """Per-worker effective accuracy for a task type."""
        if self.accuracy_jitter == 0.0:
            return base_accuracy
        gen = ensure_rng(rng)
        acc = base_accuracy + gen.normal(0.0, self.accuracy_jitter)
        return float(min(1.0, max(1e-6, acc)))
