"""Event traces and latency measurements recorded during simulation.

The paper's AMT experiments (Figs. 3–5) are all reconstructions from
per-task timestamps: arrival epochs, phase-1 and phase-2 latencies per
price/difficulty.  :class:`TraceRecorder` captures the same raw
material from the simulator so the experiment harness can rebuild every
figure from a trace, exactly as the authors did from their AMT logs.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..errors import SimulationError
from .events import Event, EventKind
from .task import PublishedTask

__all__ = [
    "TaskRecord",
    "TraceRecorder",
    "NullTraceRecorder",
    "NULL_RECORDER",
    "LatencySummary",
]


@dataclass(frozen=True)
class TaskRecord:
    """Immutable per-repetition measurement extracted from a task."""

    uid: int
    atomic_task_id: int
    repetition_index: int
    type_name: str
    price: int
    published_at: float
    accepted_at: float
    completed_at: float

    @property
    def onhold_latency(self) -> float:
        return self.accepted_at - self.published_at

    @property
    def processing_latency(self) -> float:
        return self.completed_at - self.accepted_at

    @property
    def overall_latency(self) -> float:
        return self.completed_at - self.published_at

    @classmethod
    def from_task(cls, task: PublishedTask) -> "TaskRecord":
        if not task.is_done:
            raise SimulationError(f"task {task.uid} has not completed")
        assert task.published_at is not None
        assert task.accepted_at is not None
        assert task.completed_at is not None
        return cls(
            uid=task.uid,
            atomic_task_id=task.atomic_task_id,
            repetition_index=task.repetition_index,
            type_name=task.task_type.name,
            price=task.price,
            published_at=task.published_at,
            accepted_at=task.accepted_at,
            completed_at=task.completed_at,
        )


@dataclass(frozen=True)
class LatencySummary:
    """Aggregate latency statistics over a set of task records."""

    count: int
    mean_onhold: float
    mean_processing: float
    mean_overall: float
    max_overall: float

    @classmethod
    def from_records(cls, records: Iterable[TaskRecord]) -> "LatencySummary":
        records = list(records)
        if not records:
            raise SimulationError("cannot summarize an empty record set")
        return cls(
            count=len(records),
            mean_onhold=statistics.fmean(r.onhold_latency for r in records),
            mean_processing=statistics.fmean(r.processing_latency for r in records),
            mean_overall=statistics.fmean(r.overall_latency for r in records),
            max_overall=max(r.overall_latency for r in records),
        )


class TraceRecorder:
    """Collects events and completed-task records during a simulation."""

    def __init__(self, keep_events: bool = False) -> None:
        self.keep_events = keep_events
        self.events: list[Event] = []
        self.records: list[TaskRecord] = []
        self.worker_arrival_times: list[float] = []

    def on_event(self, event: Event) -> None:
        """Engine hook: called for every processed event."""
        if event.kind is EventKind.WORKER_ARRIVED:
            self.worker_arrival_times.append(event.time)
        if self.keep_events:
            self.events.append(event)

    def on_task_done(self, task: PublishedTask) -> None:
        """Engine hook: called when a repetition completes."""
        self.records.append(TaskRecord.from_task(task))

    # -- queries used by the experiment harness ----------------------

    def records_for_type(self, type_name: str) -> list[TaskRecord]:
        return [r for r in self.records if r.type_name == type_name]

    def records_for_price(self, price: int) -> list[TaskRecord]:
        return [r for r in self.records if r.price == price]

    def records_for_atomic_task(self, atomic_task_id: int) -> list[TaskRecord]:
        return [r for r in self.records if r.atomic_task_id == atomic_task_id]

    def job_completion_time(self) -> float:
        """Completion time of the whole job = max completion timestamp."""
        if not self.records:
            raise SimulationError("no completed tasks recorded")
        return max(r.completed_at for r in self.records)

    def atomic_task_completion_time(self, atomic_task_id: int) -> float:
        """Completion time of one atomic task (its last repetition)."""
        records = self.records_for_atomic_task(atomic_task_id)
        if not records:
            raise SimulationError(f"no records for atomic task {atomic_task_id}")
        return max(r.completed_at for r in records)

    def summary(self, type_name: Optional[str] = None) -> LatencySummary:
        records = self.records_for_type(type_name) if type_name else self.records
        return LatencySummary.from_records(records)


class NullTraceRecorder(TraceRecorder):
    """A no-op recorder: the engines skip event/record construction.

    Passing this sentinel (or :data:`NULL_RECORDER`) to ``run_job`` /
    ``run_replications`` tells an engine that nothing will read the
    trace, so it may skip building :class:`~repro.market.events.Event`
    and :class:`TaskRecord` objects entirely.  Trajectories (RNG
    stream, event order, makespan, answers, payments) are unchanged —
    only the bookkeeping that exists purely for the trace is elided.
    The recorder still satisfies the :class:`TraceRecorder` interface,
    so custom engines that call the hooks keep working; the hooks just
    discard their arguments.
    """

    #: Engines check this flag instead of the concrete type, so
    #: subclasses (or duck-typed recorders) can opt in too.
    is_null = True

    def on_event(self, event) -> None:  # noqa: D102 - no-op hook
        pass

    def on_task_done(self, task) -> None:  # noqa: D102 - no-op hook
        pass


#: Shared stateless sentinel — recommended over constructing a fresh
#: :class:`NullTraceRecorder` per run (one instance can serve every
#: replication of a fan-out).
NULL_RECORDER = NullTraceRecorder()
