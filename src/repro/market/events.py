"""Discrete-event machinery for the crowd-market simulator.

A tiny, dependency-free event queue: events are ``(time, seq, Event)``
triples in a heap; ``seq`` breaks ties deterministically in insertion
order so simulations are exactly reproducible for a fixed seed.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Optional

from ..errors import SimulationError

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(enum.Enum):
    """Kinds of events the simulators schedule."""

    TASK_PUBLISHED = "task_published"
    TASK_ACCEPTED = "task_accepted"
    TASK_COMPLETED = "task_completed"
    WORKER_ARRIVED = "worker_arrived"
    WORKER_FINISHED = "worker_finished"
    PROBE_TICK = "probe_tick"


@dataclass(frozen=True, order=False)
class Event:
    """A scheduled simulator event.

    ``payload`` is interpreted by the engine that scheduled the event
    (typically a :class:`~repro.market.task.PublishedTask` or a worker
    id); the queue itself never inspects it.
    """

    time: float
    kind: EventKind
    payload: Any = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not math.isfinite(self.time) or self.time < 0:
            raise SimulationError(f"event time must be finite and >= 0, got {self.time}")


class EventQueue:
    """Min-heap of events ordered by (time, insertion sequence)."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._now = 0.0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def now(self) -> float:
        """Time of the most recently popped event (0 before any pop)."""
        return self._now

    def push(self, event: Event) -> None:
        """Schedule *event*; it must not be in the engine's past."""
        if event.time < self._now:
            raise SimulationError(
                f"cannot schedule event at {event.time} before current time {self._now}"
            )
        heapq.heappush(self._heap, (event.time, next(self._seq), event))

    def pop(self) -> Event:
        """Remove and return the earliest event, advancing ``now``."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        time, _seq, event = heapq.heappop(self._heap)
        self._now = time
        return event

    def peek_time(self) -> Optional[float]:
        """Time of the next event, or ``None`` when empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def clear(self) -> None:
        """Drop all pending events (keeps the clock)."""
        self._heap.clear()
