"""Trace persistence: CSV export/import of task records.

The paper's AMT experiments are offline analyses of collected logs;
this module gives the simulator the same workflow — run once, save the
trace, re-analyze later (or feed a real platform's log into the same
analysis/figure code).  Plain CSV, no dependencies, stable columns.
"""

from __future__ import annotations

import csv
import io
import pathlib
from typing import Iterable, Union

from ..errors import SimulationError
from .trace import TaskRecord, TraceRecorder

__all__ = ["TRACE_COLUMNS", "write_records_csv", "read_records_csv",
           "recorder_from_csv"]

#: Column order of the CSV schema (version 1).
TRACE_COLUMNS: tuple[str, ...] = (
    "uid",
    "atomic_task_id",
    "repetition_index",
    "type_name",
    "price",
    "published_at",
    "accepted_at",
    "completed_at",
)

PathLike = Union[str, pathlib.Path]


def write_records_csv(
    records: Iterable[TaskRecord], path: PathLike
) -> int:
    """Write *records* to *path*; returns the number of rows written."""
    records = list(records)
    path = pathlib.Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(TRACE_COLUMNS)
        for r in records:
            writer.writerow(
                [
                    r.uid,
                    r.atomic_task_id,
                    r.repetition_index,
                    r.type_name,
                    r.price,
                    repr(r.published_at),
                    repr(r.accepted_at),
                    repr(r.completed_at),
                ]
            )
    return len(records)


def read_records_csv(path: PathLike) -> list[TaskRecord]:
    """Read task records back from a CSV written by
    :func:`write_records_csv` (or any file with the same schema)."""
    path = pathlib.Path(path)
    if not path.exists():
        raise SimulationError(f"trace file not found: {path}")
    records: list[TaskRecord] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SimulationError(f"trace file is empty: {path}") from None
        if tuple(header) != TRACE_COLUMNS:
            raise SimulationError(
                f"unexpected trace schema {header}; expected "
                f"{list(TRACE_COLUMNS)}"
            )
        for line_no, row in enumerate(reader, start=2):
            if len(row) != len(TRACE_COLUMNS):
                raise SimulationError(
                    f"{path}:{line_no}: expected {len(TRACE_COLUMNS)} "
                    f"columns, got {len(row)}"
                )
            try:
                record = TaskRecord(
                    uid=int(row[0]),
                    atomic_task_id=int(row[1]),
                    repetition_index=int(row[2]),
                    type_name=row[3],
                    price=int(row[4]),
                    published_at=float(row[5]),
                    accepted_at=float(row[6]),
                    completed_at=float(row[7]),
                )
            except ValueError as exc:
                raise SimulationError(
                    f"{path}:{line_no}: malformed value ({exc})"
                ) from exc
            if not (
                record.published_at
                <= record.accepted_at
                <= record.completed_at
            ):
                raise SimulationError(
                    f"{path}:{line_no}: inconsistent timestamps"
                )
            records.append(record)
    return records


def recorder_from_csv(path: PathLike) -> TraceRecorder:
    """Load a trace file into a fresh :class:`TraceRecorder` so the
    summary/query API works on persisted data."""
    recorder = TraceRecorder()
    recorder.records = read_records_csv(path)
    return recorder
