"""Retainer-model crowdsourcing (related work [26–28], paper §2).

Bernstein et al.'s retainer model pre-pays a pool of workers to wait
online, so tasks start within seconds instead of waiting for organic
uptake.  The paper contrasts it with posted-price tuning: retainers
buy *instantaneity* at a standing cost, H-Tuning buys *throughput* per
dollar.  This module implements the retainer substrate so the
comparison is runnable:

* :class:`RetainerSimulator` — R pre-paid workers; a published
  repetition is grabbed immediately by an idle worker (plus a small
  reaction delay), otherwise it queues FIFO.  Processing is the same
  ``Exp(λ_p)`` as the posted-price market (the work itself doesn't
  change, only the recruitment does).
* :class:`RetainerCostModel` — total cost = retainer wage × pool size
  × wall-clock span + per-answer payment.

The job description (:class:`~repro.market.simulator.AtomicTaskOrder`)
and trace format are shared with the posted-price engines, so the same
workload runs on both and the outputs are directly comparable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from ..errors import ModelError, SimulationError
from ..stats.rng import RandomState, ensure_rng
from .events import Event, EventKind, EventQueue
from .simulator import AtomicTaskOrder, JobResult, _draw_answer
from .task import PublishedTask
from .trace import TraceRecorder

__all__ = ["RetainerCostModel", "RetainerSimulator"]


@dataclass(frozen=True)
class RetainerCostModel:
    """Pricing of a retainer pool.

    Parameters
    ----------
    wage_per_time:
        What one retained worker is paid per unit of wall-clock time
        (paid whether idle or busy — that is the point of a retainer).
    payment_per_answer:
        Additional per-completed-repetition payment (units).
    """

    wage_per_time: float
    payment_per_answer: int = 1

    def __post_init__(self) -> None:
        if not math.isfinite(self.wage_per_time) or self.wage_per_time < 0:
            raise ModelError(
                f"wage_per_time must be >= 0, got {self.wage_per_time}"
            )
        if self.payment_per_answer < 0 or int(self.payment_per_answer) != (
            self.payment_per_answer
        ):
            raise ModelError(
                "payment_per_answer must be a non-negative integer, got "
                f"{self.payment_per_answer}"
            )

    def total_cost(self, pool_size: int, span: float, answers: int) -> float:
        """Cost of keeping *pool_size* workers for *span* time while
        collecting *answers* repetitions."""
        if pool_size < 1:
            raise ModelError(f"pool_size must be >= 1, got {pool_size}")
        if span < 0:
            raise ModelError(f"span must be >= 0, got {span}")
        return (
            self.wage_per_time * pool_size * span
            + self.payment_per_answer * answers
        )


class RetainerSimulator:
    """Event-driven simulator of an R-worker retainer pool.

    Parameters
    ----------
    pool_size:
        Number of retained workers R.
    reaction_mean:
        Mean of the (exponential) alert-reaction delay before a
        retained worker starts a task — the "crowds in two seconds"
        latency of [26]; small relative to processing.
    seed:
        Reproducibility seed.
    """

    def __init__(
        self,
        pool_size: int,
        reaction_mean: float = 0.01,
        seed: RandomState = None,
    ) -> None:
        if pool_size < 1 or int(pool_size) != pool_size:
            raise ModelError(f"pool_size must be a positive integer, got {pool_size}")
        if reaction_mean < 0 or not math.isfinite(reaction_mean):
            raise ModelError(f"reaction_mean must be >= 0, got {reaction_mean}")
        self.pool_size = int(pool_size)
        self.reaction_mean = float(reaction_mean)
        self._rng = ensure_rng(seed)

    def _reaction_delay(self) -> float:
        if self.reaction_mean == 0:
            return 0.0
        return float(self._rng.exponential(self.reaction_mean))

    def run_job(
        self,
        orders: Sequence[AtomicTaskOrder],
        recorder: Optional[TraceRecorder] = None,
        start_time: float = 0.0,
    ) -> JobResult:
        """Run *orders* on the retainer pool (repetitions sequential
        per atomic task, atomic tasks parallel, R workers shared)."""
        orders = list(orders)
        if not orders:
            raise SimulationError("job must contain at least one atomic task")
        trace = recorder if recorder is not None else TraceRecorder()
        queue = EventQueue()
        waiting: list[PublishedTask] = []  # FIFO queue of open tasks
        idle_workers = self.pool_size
        order_by_id = {o.atomic_task_id: o for o in orders}
        next_rep: dict[int, int] = {o.atomic_task_id: 0 for o in orders}
        answers: dict[int, list[Any]] = {o.atomic_task_id: [] for o in orders}
        per_atomic: dict[int, float] = {}
        total_paid = 0
        remaining = sum(o.repetitions for o in orders)

        def publish(order: AtomicTaskOrder, now: float) -> None:
            rep = next_rep[order.atomic_task_id]
            task = PublishedTask(
                task_type=order.task_type,
                price=order.prices[rep],
                atomic_task_id=order.atomic_task_id,
                repetition_index=rep,
                payload=order.payload,
            )
            task.mark_published(now)
            next_rep[order.atomic_task_id] += 1
            waiting.append(task)
            trace.on_event(Event(now, EventKind.TASK_PUBLISHED, payload=task))

        def dispatch(now: float) -> None:
            nonlocal idle_workers
            while idle_workers > 0 and waiting:
                task = waiting.pop(0)
                idle_workers -= 1
                accept_at = now + self._reaction_delay()
                task.mark_accepted(accept_at)
                processing = float(
                    self._rng.exponential(1.0 / task.task_type.processing_rate)
                )
                queue.push(
                    Event(
                        accept_at + processing,
                        EventKind.TASK_COMPLETED,
                        payload=task,
                    )
                )

        for order in orders:
            publish(order, float(start_time))
        dispatch(float(start_time))

        while remaining > 0:
            if not queue:
                raise SimulationError(
                    "retainer queue drained before job completion"
                )
            event = queue.pop()
            now = event.time
            if event.kind is not EventKind.TASK_COMPLETED:
                raise SimulationError(f"unexpected event {event.kind}")
            task: PublishedTask = event.payload
            order = order_by_id[task.atomic_task_id]
            answer = _draw_answer(order, self._rng, task.task_type.accuracy)
            task.mark_completed(now, answer=answer)
            trace.on_event(event)
            trace.on_task_done(task)
            answers[task.atomic_task_id].append(answer)
            total_paid += task.price
            remaining -= 1
            idle_workers += 1
            if next_rep[task.atomic_task_id] < order.repetitions:
                publish(order, now)
            else:
                per_atomic[task.atomic_task_id] = now
            dispatch(now)

        makespan = max(per_atomic.values()) - float(start_time)
        return JobResult(
            trace=trace,
            makespan=makespan,
            per_atomic_completion=per_atomic,
            answers=answers,
            total_paid=total_paid,
        )
