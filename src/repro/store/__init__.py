"""Crash-safe persistent result store (content-addressed, verified).

The serving layer of the reproduction: every completed
:class:`~repro.api.session.RunResult` can be filed under its
fingerprint and served back byte-identically without re-executing the
engines — "compute once, serve millions of identical queries".
:class:`ResultStore` owns durability (atomic temp-file + fsync +
rename writes) and integrity (sha256 checksums, validity envelopes,
verify-before-serve with quarantine); :class:`~repro.api.Session`
threads it through ``run(store=...)`` / ``run_many(store=...)``; the
``repro results`` CLI lists, inspects, verifies, and replays what is
stored.  See ``docs/robustness.md`` ("Result store failure modes")
for the failure-mode contract.
"""

from .envelope import SCHEMA_VERSION, current_envelope, registry_contents_hash
from .store import ResultStore, StoreLookup, VerifyReport, resolve_store

__all__ = [
    "ResultStore",
    "StoreLookup",
    "VerifyReport",
    "resolve_store",
    "SCHEMA_VERSION",
    "current_envelope",
    "registry_contents_hash",
]
