"""Validity envelope for stored result entries.

A stored :class:`~repro.api.session.RunResult` document is only
servable while the process reading it would have computed the same
bytes.  The envelope captures everything the fingerprint does *not*
cover but correctness depends on:

* ``schema`` — the store's own entry-layout version; bumped whenever
  the entry shape changes incompatibly;
* ``package`` — ``repro.__version__`` at write time (result semantics
  may shift between releases even for identical specs);
* ``registries`` — a digest of the engine and deadline-comparator
  registry *contents*.  A config naming ``engine="batch"`` fingerprints
  identically whatever ``"batch"`` currently resolves to, so a process
  that registered different engines must not serve entries written
  under the old registry.

An intact entry whose envelope mismatches is **stale**, not corrupt:
it is quarantined with the :class:`~repro.errors.StoreStaleError` code
and the run falls through to recompute — the entry was valid once and
stays inspectable, it just cannot be trusted here.
"""

from __future__ import annotations

from typing import Mapping

from ..api.config import fingerprint

__all__ = ["SCHEMA_VERSION", "current_envelope", "registry_contents_hash"]

#: Store entry-layout version.  Bump on incompatible entry changes;
#: entries written under another schema quarantine as stale.
SCHEMA_VERSION = 1


def registry_contents_hash() -> str:
    """Digest of what the engine/comparator registries currently hold."""
    from ..perf.deadline import available_deadline_comparators
    from ..perf.engine import available_engines

    return fingerprint(
        {
            "engines": list(available_engines()),
            "comparators": list(available_deadline_comparators()),
        }
    )


def current_envelope() -> dict:
    """The envelope this process stamps on (and requires of) entries."""
    from .. import __version__

    return {
        "schema": SCHEMA_VERSION,
        "package": __version__,
        "registries": registry_contents_hash(),
    }


def envelope_mismatch(envelope: object) -> str:
    """Human-readable diff against the current envelope, or ``""``.

    Returns an empty string when *envelope* matches this process;
    otherwise names every differing field (the quarantine reason).
    """
    expected = current_envelope()
    if not isinstance(envelope, Mapping):
        return f"envelope is {envelope!r}, expected a mapping"
    differences = []
    for key, want in expected.items():
        got = envelope.get(key)
        if got != want:
            differences.append(f"{key}: entry has {got!r}, process has {want!r}")
    unknown = sorted(set(envelope) - set(expected))
    if unknown:
        differences.append(f"unknown envelope fields {unknown}")
    return "; ".join(differences)
