"""Content-addressed, crash-safe persistent result store.

``ResultStore`` files :class:`~repro.api.session.RunResult` documents
under their fingerprint (the ``(spec, config)`` digest from
:func:`repro.api.config.fingerprint`) in a **sharded JSON directory**::

    <root>/objects/<fp[:2]>/<fingerprint>.json   one entry per key
    <root>/quarantine/<fingerprint>-<n>.json     corrupt bytes, verbatim
    <root>/quarantine/<fingerprint>-<n>.reason.json

A document directory was chosen over sqlite deliberately: entries are
already canonical JSON documents (the same shape the checkpoint
journal stores), POSIX ``os.replace`` gives lock-free last-writer-wins
atomicity for concurrent cross-process writers (results are
deterministic, so racing writers of the same key carry identical
bytes), quarantining is a rename that preserves the corrupt bytes for
forensics, and the read path is one ``open`` + one ``json.loads`` with
no connection state and no new dependency.

Durability and integrity are the contracts, not performance:

* **Atomic writes** — entries are written to a temp file in the final
  shard directory, flushed, fsynced, then ``os.replace``-d into place;
  a crash at any point leaves either the old entry or the new one,
  never a torn file (stray temp files are invisible to readers).
* **Verify-before-serve** — every read re-derives the sha256 checksum
  of the entry's result document and compares the validity envelope
  (:mod:`repro.store.envelope`); any mismatch quarantines the entry
  with a typed :class:`~repro.errors.StoreError` code and reports a
  miss, so the caller recomputes.  A corrupt store degrades to a cold
  cache — it never serves a wrong answer and never crashes a run.
* **Deterministic failure drill** — the ``store.read`` /
  ``store.write`` / ``store.corrupt`` fault sites
  (:data:`repro.resilience.faults.FAULT_SITES`) are consulted against
  an explicitly passed :class:`~repro.resilience.faults.FaultState`,
  exactly like the ``worker.*`` sites, so every recovery path above is
  drivable from a serialized :class:`FaultPlan`.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping, Optional, Union

from ..errors import (
    ModelError,
    StoreCorruptError,
    StoreError,
    StoreStaleError,
    StoreWriteError,
)
from .envelope import current_envelope, envelope_mismatch

__all__ = ["ResultStore", "StoreLookup", "VerifyReport", "resolve_store"]

#: Keys every intact entry document must carry.
_ENTRY_KEYS = frozenset(
    {"fingerprint", "status", "result", "checksum", "envelope"}
)

#: Batch outcome statuses an entry may legitimately store.
_SERVABLE_STATUSES = frozenset({"succeeded", "degraded"})

_tmp_counter = itertools.count()


def _canonical(document) -> bytes:
    """Canonical bytes of a JSON document (checksum + write format)."""
    return json.dumps(
        document, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def _checksum(result_document) -> str:
    """sha256 hex of the canonical result document."""
    return hashlib.sha256(_canonical(result_document)).hexdigest()


@dataclass(frozen=True)
class StoreLookup:
    """One lookup's fate: served, absent, or quarantined-and-missed.

    ``hit`` is the only field a caller needs to branch on — every
    non-hit (absent entry, injected read failure, corruption,
    staleness) means "recompute".  ``quarantined`` + ``code`` record
    *why* an existing entry could not be served.
    """

    fingerprint: str
    hit: bool
    status: Optional[str] = None
    result: Optional[dict] = None
    quarantined: bool = False
    code: Optional[str] = None


@dataclass(frozen=True)
class VerifyReport:
    """Outcome of :meth:`ResultStore.verify` — the integrity walk."""

    checked: int
    intact: int
    quarantined: tuple = field(default_factory=tuple)
    previously_quarantined: int = 0

    @property
    def ok(self) -> bool:
        return not self.quarantined

    def to_dict(self) -> dict:
        return {
            "checked": self.checked,
            "intact": self.intact,
            "quarantined": [
                {"fingerprint": f, "code": c, "message": m}
                for f, c, m in self.quarantined
            ],
            "previously_quarantined": self.previously_quarantined,
        }


class ResultStore:
    """The disk-backed result store behind ``Session.run(store=...)``.

    Parameters
    ----------
    root:
        Directory holding the store (created on first write).
    envelope:
        Override of the validity envelope stamped on written entries —
        testing hook only; the default (``None``) stamps
        :func:`repro.store.envelope.current_envelope` at each write, so
        entries always record the registries that actually produced
        them.
    """

    def __init__(
        self,
        root: Union[str, Path],
        envelope: Optional[Mapping] = None,
    ) -> None:
        self.root = Path(root)
        self._envelope_override = (
            dict(envelope) if envelope is not None else None
        )
        self._counters = {
            "hits": 0,
            "misses": 0,
            "quarantined": 0,
            "writes": 0,
            "write_failures": 0,
        }

    # -- layout --------------------------------------------------------

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def path_for(self, token: str) -> Path:
        """The entry file a fingerprint is stored at."""
        token = _check_token(token)
        return self.objects_dir / token[:2] / f"{token}.json"

    def envelope(self) -> dict:
        """The envelope stamped on the next write."""
        if self._envelope_override is not None:
            return dict(self._envelope_override)
        return current_envelope()

    # -- write path ----------------------------------------------------

    def put(
        self,
        token: str,
        result_document: Mapping,
        status: str = "succeeded",
        fault_state=None,
    ) -> Path:
        """Atomically store *result_document* under *token*.

        *result_document* is a :meth:`RunResult.to_dict` document;
        *status* the batch outcome it completed with.  Raises
        :class:`~repro.errors.StoreWriteError` when the entry cannot be
        written durably (callers treat that as "memoization lost", not
        as a run failure).
        """
        token = _check_token(token)
        if status not in _SERVABLE_STATUSES:
            raise ModelError(
                f"cannot store status {status!r}; expected one of "
                f"{sorted(_SERVABLE_STATUSES)}"
            )
        if fault_state is not None:
            fired = fault_state.fires("store.write")
            if fired is not None:
                occurrence, rule = fired
                self._counters["write_failures"] += 1
                raise StoreWriteError(
                    f"injected fault at site 'store.write' "
                    f"(occurrence {occurrence}) for entry {token}"
                    + (f": {rule.detail}" if rule.detail else "")
                )
        entry = {
            "fingerprint": token,
            "status": status,
            "result": result_document,
            "checksum": _checksum(result_document),
            "envelope": self.envelope(),
        }
        blob = _canonical(entry)
        if fault_state is not None:
            fired = fault_state.fires("store.corrupt")
            if fired is not None:
                # Deterministic single-byte flip: the write "succeeds",
                # and the next read's checksum verification must catch
                # it — the drill for real at-rest corruption.
                mutable = bytearray(blob)
                mutable[len(mutable) // 2] ^= 0x01
                blob = bytes(mutable)
        path = self.path_for(token)
        try:
            self._write_atomic(path, blob)
        except OSError as exc:
            self._counters["write_failures"] += 1
            raise StoreWriteError(
                f"could not write store entry {token} at {path}: {exc}"
            ) from exc
        self._counters["writes"] += 1
        return path

    def _write_atomic(self, path: Path, blob: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / (
            f".tmp-{path.stem}-{os.getpid()}-{next(_tmp_counter)}"
        )
        try:
            with open(tmp, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            raise
        self._fsync_dir(path.parent)

    @staticmethod
    def _fsync_dir(directory: Path) -> None:
        # Durability of the rename itself; best-effort on platforms
        # without directory fds.
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    # -- read path -----------------------------------------------------

    def lookup(self, token: str, fault_state=None) -> StoreLookup:
        """Verify-before-serve lookup of *token*.

        Absent entries are plain misses.  Existing entries are served
        only after the checksum and validity envelope pass; any failure
        quarantines the entry (bytes preserved verbatim, reason
        document alongside) and reports a miss so the caller
        recomputes.  Never raises for entry-level problems.
        """
        token = _check_token(token)
        path = self.path_for(token)
        if not path.exists():
            self._counters["misses"] += 1
            return StoreLookup(fingerprint=token, hit=False)
        if fault_state is not None:
            fired = fault_state.fires("store.read")
            if fired is not None:
                occurrence, rule = fired
                return self._miss_quarantined(
                    token,
                    path,
                    StoreCorruptError.code,
                    f"injected fault at site 'store.read' "
                    f"(occurrence {occurrence})"
                    + (f": {rule.detail}" if rule.detail else ""),
                )
        try:
            code, message, entry = self._verify_entry(token, path)
        except OSError as exc:
            code, message, entry = (
                StoreCorruptError.code,
                f"unreadable entry file: {exc}",
                None,
            )
        if code is not None:
            return self._miss_quarantined(token, path, code, message)
        self._counters["hits"] += 1
        return StoreLookup(
            fingerprint=token,
            hit=True,
            status=entry["status"],
            result=entry["result"],
        )

    def _verify_entry(self, token: str, path: Path):
        """``(code, message, entry)`` — code ``None`` when servable."""
        blob = path.read_bytes()
        try:
            entry = json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return (
                StoreCorruptError.code,
                f"entry is not valid JSON: {exc}",
                None,
            )
        if not isinstance(entry, Mapping) or not _ENTRY_KEYS <= set(entry):
            return (
                StoreCorruptError.code,
                f"entry document is missing required keys "
                f"(need {sorted(_ENTRY_KEYS)})",
                None,
            )
        if entry["fingerprint"] != token:
            return (
                StoreCorruptError.code,
                f"entry claims fingerprint {entry['fingerprint']!r} but is "
                f"filed under {token!r}",
                None,
            )
        if entry["status"] not in _SERVABLE_STATUSES:
            return (
                StoreCorruptError.code,
                f"entry status {entry['status']!r} is not servable",
                None,
            )
        expected = _checksum(entry["result"])
        if entry["checksum"] != expected:
            return (
                StoreCorruptError.code,
                f"checksum mismatch: entry records {entry['checksum']!r}, "
                f"payload hashes to {expected!r}",
                None,
            )
        stale = envelope_mismatch(entry["envelope"])
        if stale:
            return (StoreStaleError.code, f"stale envelope: {stale}", None)
        return None, None, entry

    def get(self, token: str, fault_state=None) -> Optional[dict]:
        """The stored result document for *token*, or ``None``."""
        return self.lookup(token, fault_state=fault_state).result

    def inspect(self, token: str):
        """Non-destructive verification of one entry.

        Returns ``(code, message, entry)``: ``(None, None, entry)``
        for an intact entry, a typed store-error code and message
        (entry ``None``) otherwise — without quarantining anything
        (that is :meth:`lookup`/:meth:`verify`'s job) and without
        touching the counters.  Raises :class:`~repro.errors.StoreError`
        only for an absent fingerprint.
        """
        token = _check_token(token)
        path = self.path_for(token)
        if not path.exists():
            raise StoreError(
                f"no stored entry for fingerprint {token!r} in {self.root}"
            )
        try:
            return self._verify_entry(token, path)
        except OSError as exc:
            return (
                StoreCorruptError.code,
                f"unreadable entry file: {exc}",
                None,
            )

    def __contains__(self, token: str) -> bool:
        """Existence only — no verification, no counters."""
        return self.path_for(token).exists()

    # -- quarantine ----------------------------------------------------

    def _miss_quarantined(
        self, token: str, path: Path, code: str, message: str
    ) -> StoreLookup:
        self.quarantine(token, path, code, message)
        self._counters["misses"] += 1
        self._counters["quarantined"] += 1
        return StoreLookup(
            fingerprint=token, hit=False, quarantined=True, code=code
        )

    def quarantine(
        self, token: str, path: Path, code: str, message: str
    ) -> Path:
        """Move the entry at *path* aside and record why.

        The offending bytes move verbatim to
        ``quarantine/<token>-<n>.json``; the reason lands next to them
        as an :class:`~repro.resilience.document.ErrorDocument`-style
        ``.reason.json``.  Returns the reason path.
        """
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        for n in itertools.count():
            dest = self.quarantine_dir / f"{token}-{n}.json"
            reason_path = self.quarantine_dir / f"{token}-{n}.reason.json"
            if not dest.exists() and not reason_path.exists():
                break
        try:
            os.replace(path, dest)
        except OSError:
            pass  # a racing reader already moved it; keep our reason
        reason = {
            "code": code,
            "error": _ERROR_NAMES.get(code, StoreError.__name__),
            "message": message,
            "fingerprint": token,
            "quarantined_file": dest.name,
            "envelope_expected": current_envelope(),
        }
        reason_path.write_text(
            json.dumps(reason, sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )
        return reason_path

    def quarantined(self) -> list:
        """The recorded quarantine reason documents, sorted by name."""
        if not self.quarantine_dir.is_dir():
            return []
        reasons = []
        for reason_path in sorted(
            self.quarantine_dir.glob("*.reason.json")
        ):
            try:
                reasons.append(
                    json.loads(reason_path.read_text(encoding="utf-8"))
                )
            except (OSError, json.JSONDecodeError):
                reasons.append(
                    {
                        "code": StoreCorruptError.code,
                        "message": f"unreadable reason file {reason_path.name}",
                        "fingerprint": reason_path.name.split("-")[0],
                    }
                )
        return reasons

    # -- enumeration / verification ------------------------------------

    def fingerprints(self) -> list:
        """Stored fingerprints, sorted (existence only)."""
        if not self.objects_dir.is_dir():
            return []
        return sorted(
            path.stem
            for path in self.objects_dir.glob("*/*.json")
            if not path.name.startswith(".")
        )

    def entries(self) -> Iterator[dict]:
        """Best-effort summaries of every stored entry, sorted.

        Non-destructive (nothing is quarantined — that is
        :meth:`verify`'s job): unreadable entries are reported with
        ``intact=False`` instead.
        """
        for token in self.fingerprints():
            path = self.path_for(token)
            try:
                code, _, entry = self._verify_entry(token, path)
            except OSError:
                code, entry = StoreCorruptError.code, None
            if code is None:
                yield {
                    "fingerprint": token,
                    "experiment": entry["result"].get("experiment"),
                    "status": entry["status"],
                    "intact": True,
                }
            else:
                yield {
                    "fingerprint": token,
                    "experiment": None,
                    "status": code,
                    "intact": False,
                }

    def verify(self, fault_state=None) -> VerifyReport:
        """Walk every entry, quarantine the bad, report the damage."""
        quarantined = []
        intact = 0
        tokens = self.fingerprints()
        for token in tokens:
            path = self.path_for(token)
            if fault_state is not None:
                fired = fault_state.fires("store.read")
                if fired is not None:
                    occurrence, rule = fired
                    message = (
                        f"injected fault at site 'store.read' "
                        f"(occurrence {occurrence})"
                    )
                    self.quarantine(
                        token, path, StoreCorruptError.code, message
                    )
                    self._counters["quarantined"] += 1
                    quarantined.append(
                        (token, StoreCorruptError.code, message)
                    )
                    continue
            try:
                code, message, _ = self._verify_entry(token, path)
            except OSError as exc:
                code, message = (
                    StoreCorruptError.code,
                    f"unreadable entry file: {exc}",
                )
            if code is None:
                intact += 1
                continue
            self.quarantine(token, path, code, message)
            self._counters["quarantined"] += 1
            quarantined.append((token, code, message))
        return VerifyReport(
            checked=len(tokens),
            intact=intact,
            quarantined=tuple(quarantined),
            previously_quarantined=len(self.quarantined())
            - len(quarantined),
        )

    # -- bookkeeping ---------------------------------------------------

    def stats(self) -> dict:
        """Lifetime counters of this store object (not persisted)."""
        return dict(self._counters)

    def __len__(self) -> int:
        return len(self.fingerprints())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore({str(self.root)!r}, entries={len(self)})"


_ERROR_NAMES = {
    StoreCorruptError.code: StoreCorruptError.__name__,
    StoreStaleError.code: StoreStaleError.__name__,
    StoreWriteError.code: StoreWriteError.__name__,
    StoreError.code: StoreError.__name__,
}


def _check_token(token) -> str:
    if not isinstance(token, str) or not token or "/" in token or "." in token:
        raise ModelError(
            f"store fingerprints are non-empty hex strings, got {token!r}"
        )
    return token


def resolve_store(
    store: Union[None, str, Path, ResultStore],
) -> Optional[ResultStore]:
    """The single place ``store=`` resolution happens.

    ``None`` stays ``None`` (no memoization); paths open a
    :class:`ResultStore` rooted there; store objects pass through.
    """
    if store is None or isinstance(store, ResultStore):
        return store
    if isinstance(store, (str, Path)):
        return ResultStore(store)
    raise ModelError(
        f"cannot resolve result store from {store!r}; expected a "
        "ResultStore, a directory path, or None"
    )
