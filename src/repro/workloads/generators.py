"""Randomized workload generators for stress tests and ablations.

Beyond the paper's fixed Fig. 2 settings, property-based tests and the
ablation benches need instance families with controllable shape:
random repetition profiles, random difficulty mixes, adversarial
"one giant group" / "many tiny groups" extremes.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.problem import HTuningProblem, TaskSpec
from ..errors import ModelError
from ..market.pricing import LinearPricing, PricingModel
from ..stats.rng import RandomState, ensure_rng

__all__ = [
    "random_problem",
    "skewed_repetition_problem",
    "many_groups_problem",
]


def random_problem(
    n_tasks: int,
    budget_per_repetition: float = 10.0,
    max_repetitions: int = 6,
    n_types: int = 2,
    seed: RandomState = None,
    pricing_models: Optional[Sequence[PricingModel]] = None,
) -> HTuningProblem:
    """A random H-Tuning instance.

    Repetitions uniform in [1, max_repetitions]; task types uniform
    over *n_types* difficulty classes with λ_p log-uniform in [0.5, 4];
    budget scaled to ``budget_per_repetition`` × total repetitions so
    instances are comfortably feasible.
    """
    if n_tasks < 1:
        raise ModelError(f"n_tasks must be >= 1, got {n_tasks}")
    if max_repetitions < 1:
        raise ModelError(f"max_repetitions must be >= 1, got {max_repetitions}")
    if n_types < 1:
        raise ModelError(f"n_types must be >= 1, got {n_types}")
    if budget_per_repetition < 1.0:
        raise ModelError(
            f"budget_per_repetition must be >= 1, got {budget_per_repetition}"
        )
    gen = ensure_rng(seed)
    if pricing_models is None:
        pricing_models = [
            LinearPricing(
                slope=float(gen.uniform(0.5, 5.0)),
                intercept=float(gen.uniform(0.5, 3.0)),
            )
            for _ in range(n_types)
        ]
    elif len(pricing_models) < n_types:
        raise ModelError("need one pricing model per type")
    proc_rates = np.exp(gen.uniform(np.log(0.5), np.log(4.0), size=n_types))
    tasks = []
    for i in range(n_tasks):
        which = int(gen.integers(0, n_types))
        reps = int(gen.integers(1, max_repetitions + 1))
        tasks.append(
            TaskSpec(
                task_id=i,
                repetitions=reps,
                pricing=pricing_models[which],
                processing_rate=float(proc_rates[which]),
                type_name=f"type-{which}",
            )
        )
    total_reps = sum(t.repetitions for t in tasks)
    budget = int(budget_per_repetition * total_reps)
    return HTuningProblem(tasks, budget)


def skewed_repetition_problem(
    n_tasks: int,
    budget: int,
    heavy_fraction: float = 0.1,
    heavy_repetitions: int = 20,
    light_repetitions: int = 2,
    slope: float = 1.0,
    intercept: float = 1.0,
    processing_rate: float = 2.0,
) -> HTuningProblem:
    """Scenario II stressor: a few very repetition-heavy tasks.

    The optimal allocation must starve the light group relative to a
    rep-even split; this family exposes strategies that ignore group
    structure.
    """
    if not 0.0 < heavy_fraction < 1.0:
        raise ModelError(f"heavy_fraction must be in (0,1), got {heavy_fraction}")
    pricing = LinearPricing(slope=slope, intercept=intercept)
    n_heavy = max(1, int(n_tasks * heavy_fraction))
    tasks = []
    for i in range(n_tasks):
        reps = heavy_repetitions if i < n_heavy else light_repetitions
        tasks.append(
            TaskSpec(
                task_id=i,
                repetitions=reps,
                pricing=pricing,
                processing_rate=processing_rate,
                type_name="skewed",
            )
        )
    return HTuningProblem(tasks, budget)


def many_groups_problem(
    n_groups: int,
    tasks_per_group: int,
    budget_per_repetition: float = 8.0,
    seed: RandomState = None,
) -> HTuningProblem:
    """Scenario III stressor: many small groups of distinct difficulty.

    Exercises the DP's O(nB′) loop with large n.
    """
    if n_groups < 1 or tasks_per_group < 1:
        raise ModelError("n_groups and tasks_per_group must be >= 1")
    gen = ensure_rng(seed)
    tasks = []
    tid = 0
    for g in range(n_groups):
        pricing = LinearPricing(
            slope=float(gen.uniform(0.5, 4.0)),
            intercept=float(gen.uniform(0.5, 2.0)),
        )
        reps = int(gen.integers(1, 6))
        proc = float(gen.uniform(0.5, 4.0))
        for _ in range(tasks_per_group):
            tasks.append(
                TaskSpec(
                    task_id=tid,
                    repetitions=reps,
                    pricing=pricing,
                    processing_rate=proc,
                    type_name=f"group-{g}",
                )
            )
            tid += 1
    total_reps = sum(t.repetitions for t in tasks)
    return HTuningProblem(tasks, int(budget_per_repetition * total_reps))
