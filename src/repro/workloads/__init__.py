"""Workload factories: the paper's §5 settings and stress families."""

from .amt import (
    AMT_VOTE_ATTRACTIVENESS,
    AMT_VOTE_PROCESSING_SECONDS,
    amt_market,
    amt_pricing_model,
    amt_task_type,
    amt_worker_pool,
)
from .families import (
    ProblemFamily,
    as_problem_family,
    available_families,
    get_family_builder,
    heterogeneous_family,
    homogeneity_family,
    register_family,
    repetition_family,
    scenario_family,
)
from .generators import many_groups_problem, random_problem, skewed_repetition_problem
from .scenarios import (
    PAPER_BUDGETS,
    heterogeneous_tasks,
    heterogeneous_workload,
    homogeneity_tasks,
    homogeneity_workload,
    repetition_tasks,
    repetition_workload,
    scenario_workload,
)

__all__ = [
    "AMT_VOTE_ATTRACTIVENESS",
    "AMT_VOTE_PROCESSING_SECONDS",
    "PAPER_BUDGETS",
    "ProblemFamily",
    "amt_market",
    "amt_pricing_model",
    "amt_task_type",
    "amt_worker_pool",
    "as_problem_family",
    "available_families",
    "get_family_builder",
    "heterogeneous_family",
    "heterogeneous_tasks",
    "heterogeneous_workload",
    "homogeneity_family",
    "homogeneity_tasks",
    "homogeneity_workload",
    "many_groups_problem",
    "random_problem",
    "register_family",
    "repetition_family",
    "repetition_tasks",
    "repetition_workload",
    "scenario_family",
    "scenario_workload",
    "skewed_repetition_problem",
]
