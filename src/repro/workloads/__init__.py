"""Workload factories: the paper's §5 settings and stress families."""

from .amt import (
    AMT_VOTE_ATTRACTIVENESS,
    AMT_VOTE_PROCESSING_SECONDS,
    amt_market,
    amt_pricing_model,
    amt_task_type,
    amt_worker_pool,
)
from .generators import many_groups_problem, random_problem, skewed_repetition_problem
from .scenarios import (
    PAPER_BUDGETS,
    heterogeneous_workload,
    homogeneity_workload,
    repetition_workload,
    scenario_workload,
)

__all__ = [
    "AMT_VOTE_ATTRACTIVENESS",
    "AMT_VOTE_PROCESSING_SECONDS",
    "PAPER_BUDGETS",
    "amt_market",
    "amt_pricing_model",
    "amt_task_type",
    "amt_worker_pool",
    "heterogeneous_workload",
    "homogeneity_workload",
    "many_groups_problem",
    "random_problem",
    "repetition_workload",
    "scenario_workload",
    "skewed_repetition_problem",
]
