"""Budget-indexed problem families.

Every headline sweep in the paper — Fig. 2's budget curves, Fig. 5(c),
the budget–latency frontier — evaluates *one fixed task set* at many
budgets.  The historical harness shape (a ``budget -> HTuningProblem``
closure called once per budget) rebuilt the specs, pricing objects and
groups from scratch at every budget, which both wasted work and hid
the structure the one-pass DP sweep
(:func:`repro.perf.dp.budget_indexed_dp_sweep`) needs: the *same*
group objects across every budget.

:class:`ProblemFamily` is the budget-indexed builder that fixes this:
it owns the immutable :class:`~repro.core.problem.TaskSpec` tuple and
the (lazily computed, then shared) group partition, and mints cheap
per-budget :class:`~repro.core.problem.HTuningProblem` views onto
them.  A family is itself callable as ``family(budget)``, so it is a
drop-in replacement anywhere a workload factory was accepted — but
sweep harnesses that *know* they hold a family can route rng-free DP
strategies through the one-pass budget sweep (see
:data:`repro.core.tuner.SWEEP_STRATEGIES`).

Sharing is safe because every shared object is immutable: ``TaskSpec``
and ``TaskGroup`` are frozen dataclasses and the task/group tuples are
never mutated, so tuning one budget's problem cannot leak state into
another budget's view (``tests/workloads/test_families.py`` certifies
this invariant).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional, Sequence, Union

from ..core.problem import HTuningProblem, TaskGroup, TaskSpec
from ..errors import ModelError
from .scenarios import (
    heterogeneous_tasks,
    homogeneity_tasks,
    repetition_tasks,
)

__all__ = [
    "ProblemFamily",
    "scenario_family",
    "homogeneity_family",
    "repetition_family",
    "heterogeneous_family",
    "as_problem_family",
    "register_family",
    "get_family_builder",
    "available_families",
]


class ProblemFamily:
    """A budget-indexed :class:`HTuningProblem` builder with shared parts.

    Parameters
    ----------
    tasks:
        The task set every budget shares.  Stored as an immutable
        tuple; the same ``TaskSpec`` (and hence pricing) objects back
        every problem the family mints.
    label:
        Optional display label for reports and sweep results.
    """

    def __init__(self, tasks: Iterable[TaskSpec], label: str = "") -> None:
        self._tasks: tuple[TaskSpec, ...] = tuple(tasks)
        if not self._tasks:
            raise ModelError("a problem family needs at least one task")
        self.label = label
        self._groups: Optional[tuple[TaskGroup, ...]] = None

    # -- shared structure ---------------------------------------------

    @property
    def tasks(self) -> tuple[TaskSpec, ...]:
        return self._tasks

    @property
    def num_tasks(self) -> int:
        return len(self._tasks)

    @property
    def total_repetitions(self) -> int:
        return sum(t.repetitions for t in self._tasks)

    @property
    def min_feasible_budget(self) -> int:
        """One unit per repetition — smallest budget any member allows."""
        return self.total_repetitions

    @property
    def groups(self) -> tuple[TaskGroup, ...]:
        """The (type, repetitions) partition, computed once and shared
        by every problem the family builds."""
        if self._groups is None:
            probe = HTuningProblem(self._tasks, self.min_feasible_budget)
            self._groups = probe.groups()
        return self._groups

    # -- problem construction -----------------------------------------

    def problem_at(self, budget: int) -> HTuningProblem:
        """The family member at *budget* (shared specs and groups)."""
        return HTuningProblem(self._tasks, budget, groups=self.groups)

    def problems(self, budgets: Sequence[int]) -> Iterator[HTuningProblem]:
        """Family members for each budget, in order."""
        for budget in budgets:
            yield self.problem_at(int(budget))

    def __call__(self, budget: int) -> HTuningProblem:
        """Families are drop-in workload factories: ``family(budget)``."""
        return self.problem_at(budget)

    def __repr__(self) -> str:
        label = f", label={self.label!r}" if self.label else ""
        return (
            f"ProblemFamily({self.num_tasks} tasks, "
            f"{len(self.groups)} groups{label})"
        )

    # -- adapters ------------------------------------------------------

    @classmethod
    def from_factory(
        cls,
        factory: Callable[[int], HTuningProblem],
        probe_budget: Optional[int] = None,
        label: str = "",
    ) -> "ProblemFamily":
        """Adapt a legacy ``budget -> HTuningProblem`` closure.

        The factory is called **once** (at *probe_budget*, or at the
        probe problem's own minimum feasible budget when omitted) and
        its task set is assumed budget-independent — true of every
        factory in :mod:`repro.workloads`.  Factories whose *tasks*
        genuinely vary with the budget cannot be adapted; keep calling
        them per budget instead.
        """
        if probe_budget is None:
            # Any feasible budget works: tasks must not depend on it.
            # Walk down from a generous guess only if the factory
            # rejects; in practice the min-feasible probe succeeds.
            probe = factory(_probe_min_budget(factory))
        else:
            probe = factory(int(probe_budget))
        return cls(probe.tasks, label=label)


def _probe_min_budget(factory: Callable[[int], HTuningProblem]) -> int:
    """Find a feasible probe budget by doubling from 1."""
    budget = 1
    while True:
        try:
            factory(budget)
        except Exception:
            budget *= 2
            if budget > 2**31:
                raise ModelError(
                    "could not find a feasible probe budget for the factory; "
                    "pass probe_budget explicitly"
                )
            continue
        return budget


def homogeneity_family(
    case: str = "a",
    n_tasks: int = 100,
    repetitions: int = 5,
    processing_rate: float = 2.0,
) -> ProblemFamily:
    """Scenario I family (see :func:`~repro.workloads.scenarios.homogeneity_tasks`)."""
    return ProblemFamily(
        homogeneity_tasks(case, n_tasks, repetitions, processing_rate),
        label=f"homo({case})",
    )


def repetition_family(
    case: str = "a",
    n_tasks: int = 100,
    repetition_split: tuple[int, int] = (3, 5),
    processing_rate: float = 2.0,
) -> ProblemFamily:
    """Scenario II family (see :func:`~repro.workloads.scenarios.repetition_tasks`)."""
    return ProblemFamily(
        repetition_tasks(case, n_tasks, repetition_split, processing_rate),
        label=f"repe({case})",
    )


def heterogeneous_family(
    case: str = "a",
    n_tasks: int = 100,
    repetition_split: tuple[int, int] = (3, 5),
    processing_rates: tuple[float, float] = (2.0, 3.0),
) -> ProblemFamily:
    """Scenario III family (see :func:`~repro.workloads.scenarios.heterogeneous_tasks`)."""
    return ProblemFamily(
        heterogeneous_tasks(case, n_tasks, repetition_split, processing_rates),
        label=f"heter({case})",
    )


#: Name -> family builder.  The registry behind every spec or sweep
#: that references a workload *by name* (``repro.api`` experiment
#: specs, the CLI): a registered name is a serializable address for a
#: :class:`ProblemFamily`, the same contract the engine and comparator
#: registries provide for execution strategies.
_FAMILY_REGISTRY: dict[str, Callable[..., ProblemFamily]] = {
    "homo": homogeneity_family,
    "repe": repetition_family,
    "heter": heterogeneous_family,
}


def register_family(
    name: str,
    builder: Callable[..., ProblemFamily],
    replace: bool = False,
) -> Callable[..., ProblemFamily]:
    """Register a family *builder* under *name*.

    ``builder(**kwargs)`` must return a :class:`ProblemFamily`; all
    built-in builders accept at least ``case=`` and ``n_tasks=``.
    Registered names are what :class:`repro.api.specs.BudgetSweepSpec`
    (and any other spec holding a ``family`` field) resolve at run
    time, so registering a family makes it addressable from serialized
    specs and the generic CLI.
    """
    if not name:
        raise ModelError("a problem family needs a non-empty name")
    if name in _FAMILY_REGISTRY and not replace:
        raise ModelError(
            f"family {name!r} is already registered; pass replace=True "
            "to override"
        )
    _FAMILY_REGISTRY[name] = builder
    return builder


def get_family_builder(name: str) -> Callable[..., ProblemFamily]:
    """Resolve a registered family name to its builder."""
    builder = _FAMILY_REGISTRY.get(name)
    if builder is None:
        from ..errors import RegistryError

        raise RegistryError.unknown("family", name, _FAMILY_REGISTRY)
    return builder


def available_families() -> tuple[str, ...]:
    """Registered family names, sorted (spec/CLI choices come from here)."""
    return tuple(sorted(_FAMILY_REGISTRY))


def scenario_family(scenario: str, case: str = "a", **kwargs) -> ProblemFamily:
    """Dispatch by registered family name: 'homo' | 'repe' | 'heter' | ...

    Historical name kept for the Fig. 2 harness; equivalent to
    ``get_family_builder(scenario)(case=case, **kwargs)``.
    """
    if scenario not in _FAMILY_REGISTRY:
        raise ModelError(
            f"unknown scenario {scenario!r}; expected one of "
            f"{sorted(_FAMILY_REGISTRY)}"
        )
    return _FAMILY_REGISTRY[scenario](case=case, **kwargs)


def as_problem_family(
    workload: Union[ProblemFamily, Callable[[int], HTuningProblem]],
) -> tuple[Callable[[int], HTuningProblem], Optional[ProblemFamily]]:
    """Normalize a sweep's workload argument.

    Returns ``(builder, family)`` where ``builder(budget)`` constructs
    the per-budget problem and ``family`` is the
    :class:`ProblemFamily` when one was passed (``None`` for a legacy
    closure — legacy factories may legitimately vary their task set
    with the budget, so they are *not* auto-adapted; call
    :meth:`ProblemFamily.from_factory` explicitly when the task set is
    known to be fixed).
    """
    if isinstance(workload, ProblemFamily):
        return workload.problem_at, workload
    if callable(workload):
        return workload, None
    raise ModelError(
        f"workload must be a ProblemFamily or a budget -> HTuningProblem "
        f"callable, got {workload!r}"
    )
