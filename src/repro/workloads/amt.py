"""Synthetic AMT workload — the paper's live deployment, simulated (§5.2).

The paper ran dot-counting image-filter tasks on Amazon Mechanical
Turk.  We cannot run AMT offline, so this module builds a market whose
parameters are *calibrated to the paper's reported measurements*:

* rewards $0.05/$0.08/$0.10/$0.12 → on-hold rates 0.0038/0.0062/
  0.0121/0.0131 s⁻¹ (Fig. 4) — we fit the Linearity Hypothesis through
  those four points to get the market's λ_o(c);
* processing latencies of a few minutes, growing with the number of
  internal votes (Fig. 5(b)): 4-vote ≈ 90 s, 6-vote ≈ 150 s, 8-vote
  ≈ 240 s mean processing time;
* harder tasks are accepted more slowly (Fig. 5(a)): attractiveness
  scales down with vote count.

Prices are in cents, so "1 unit" = $0.01 exactly like AMT's minimum
granularity; the $6–$10 budgets of Fig. 5(c) are 600–1000 units.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..inference.linearity import fit_linearity, paper_amt_rates
from ..market.pricing import LinearPricing, PricingModel
from ..market.simulator import MarketModel
from ..market.task import TaskType
from ..market.worker import PriceProportionalChoice, WorkerPool

__all__ = [
    "amt_pricing_model",
    "amt_task_type",
    "amt_market",
    "amt_worker_pool",
    "AMT_VOTE_PROCESSING_SECONDS",
    "AMT_VOTE_ATTRACTIVENESS",
]

#: Mean processing seconds by internal-vote count (Fig. 5(b) shape).
AMT_VOTE_PROCESSING_SECONDS: dict[int, float] = {4: 90.0, 6: 150.0, 8: 240.0}

#: Relative acceptance appeal by vote count (Fig. 5(a) shape: harder
#: tasks come in more slowly).
AMT_VOTE_ATTRACTIVENESS: dict[int, float] = {4: 1.0, 6: 0.75, 8: 0.55}


def amt_pricing_model() -> LinearPricing:
    """λ_o(c) fitted through the paper's four Fig. 4 measurements.

    Price unit = 1 cent; rates in s⁻¹.
    """
    prices, rates = paper_amt_rates()
    fit = fit_linearity(prices, rates)
    return fit.to_pricing_model()


def amt_task_type(votes: int = 4, accuracy: float = 0.9) -> TaskType:
    """Dot-counting filter task with *votes* internal binary votes."""
    if votes not in AMT_VOTE_PROCESSING_SECONDS:
        raise KeyError(
            f"votes must be one of {sorted(AMT_VOTE_PROCESSING_SECONDS)}, got {votes}"
        )
    return TaskType(
        name=f"dot-filter-{votes}v",
        processing_rate=1.0 / AMT_VOTE_PROCESSING_SECONDS[votes],
        accuracy=accuracy,
        attractiveness=AMT_VOTE_ATTRACTIVENESS[votes],
    )


def amt_market() -> MarketModel:
    """Market calibrated to the paper's AMT measurements.

    One base pricing curve; per-type attractiveness handles difficulty
    (the default-curve scaling in :class:`MarketModel`).
    """
    return MarketModel(amt_pricing_model())


def amt_worker_pool(arrival_rate: float | None = None) -> WorkerPool:
    """Worker pool whose arrival rate matches the calibrated market.

    By default Λ is set so that a single open task at $0.05 is accepted
    at the paper's measured 0.0038 s⁻¹ when it is the only task on the
    board (choice probability 1).
    """
    if arrival_rate is None:
        arrival_rate = amt_pricing_model()(5)
    return WorkerPool(
        arrival_rate=arrival_rate,
        choice_model=PriceProportionalChoice(leave_weight=0.0),
    )
