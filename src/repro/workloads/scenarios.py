"""The paper's synthetic workloads (§5.1.1) as reusable factories.

Fig. 2's grid: three scenarios × six λ_o(c) curves, 100 tasks, budgets
1000–5000.

* **Homogeneity** — 100 identical tasks × 5 repetitions, λ_p = 2.0.
* **Repetition** — 50 tasks × 3 reps + 50 tasks × 5 reps, λ_p = 2.0.
* **Heterogeneous** — 50 tasks × 3 reps (λ_p = 2.0) + 50 tasks × 5
  reps (λ_p = 3.0).

Two layers:

* ``*_tasks`` builders return the budget-independent
  :class:`~repro.core.problem.TaskSpec` lists — the inputs a
  :class:`~repro.workloads.families.ProblemFamily` shares across a
  whole budget sweep;
* ``*_workload`` factories wrap them into a single-budget
  :class:`~repro.core.problem.HTuningProblem` (the historical per-call
  API, now routed through the family layer so both paths build the
  exact same specs).
"""

from __future__ import annotations

from typing import Sequence

from ..core.problem import HTuningProblem, TaskSpec
from ..errors import ModelError
from ..market.pricing import PricingModel, fig2_model

__all__ = [
    "PAPER_BUDGETS",
    "homogeneity_tasks",
    "repetition_tasks",
    "heterogeneous_tasks",
    "homogeneity_workload",
    "repetition_workload",
    "heterogeneous_workload",
    "scenario_workload",
]

#: The budget sweep of Fig. 2 (x-axis).
PAPER_BUDGETS: tuple[int, ...] = tuple(range(1000, 5001, 500))


def homogeneity_tasks(
    case: str = "a",
    n_tasks: int = 100,
    repetitions: int = 5,
    processing_rate: float = 2.0,
) -> list[TaskSpec]:
    """Scenario I task set: *n_tasks* identical tasks × *repetitions*."""
    pricing = fig2_model(case)
    return [
        TaskSpec(
            task_id=i,
            repetitions=repetitions,
            pricing=pricing,
            processing_rate=processing_rate,
            type_name="homo",
        )
        for i in range(n_tasks)
    ]


def repetition_tasks(
    case: str = "a",
    n_tasks: int = 100,
    repetition_split: tuple[int, int] = (3, 5),
    processing_rate: float = 2.0,
) -> list[TaskSpec]:
    """Scenario II task set: half the tasks at each repetition count."""
    if len(repetition_split) != 2:
        raise ModelError("repetition_split must have two entries")
    pricing = fig2_model(case)
    half = n_tasks // 2
    tasks = []
    for i in range(n_tasks):
        reps = repetition_split[0] if i < half else repetition_split[1]
        tasks.append(
            TaskSpec(
                task_id=i,
                repetitions=reps,
                pricing=pricing,
                processing_rate=processing_rate,
                type_name="repe",
            )
        )
    return tasks


def heterogeneous_tasks(
    case: str = "a",
    n_tasks: int = 100,
    repetition_split: tuple[int, int] = (3, 5),
    processing_rates: tuple[float, float] = (2.0, 3.0),
) -> list[TaskSpec]:
    """Scenario III task set: two groups differing in reps *and* λ_p."""
    if len(repetition_split) != 2 or len(processing_rates) != 2:
        raise ModelError("repetition_split and processing_rates need two entries")
    pricing = fig2_model(case)
    half = n_tasks // 2
    tasks = []
    for i in range(n_tasks):
        which = 0 if i < half else 1
        tasks.append(
            TaskSpec(
                task_id=i,
                repetitions=repetition_split[which],
                pricing=pricing,
                processing_rate=processing_rates[which],
                type_name=f"heter-{which}",
            )
        )
    return tasks


def homogeneity_workload(
    budget: int,
    case: str = "a",
    n_tasks: int = 100,
    repetitions: int = 5,
    processing_rate: float = 2.0,
) -> HTuningProblem:
    """Scenario I instance: *n_tasks* identical tasks × *repetitions*."""
    return HTuningProblem(
        homogeneity_tasks(case, n_tasks, repetitions, processing_rate), budget
    )


def repetition_workload(
    budget: int,
    case: str = "a",
    n_tasks: int = 100,
    repetition_split: tuple[int, int] = (3, 5),
    processing_rate: float = 2.0,
) -> HTuningProblem:
    """Scenario II instance: half the tasks at each repetition count."""
    return HTuningProblem(
        repetition_tasks(case, n_tasks, repetition_split, processing_rate),
        budget,
    )


def heterogeneous_workload(
    budget: int,
    case: str = "a",
    n_tasks: int = 100,
    repetition_split: tuple[int, int] = (3, 5),
    processing_rates: tuple[float, float] = (2.0, 3.0),
) -> HTuningProblem:
    """Scenario III instance: two groups differing in reps *and* λ_p."""
    return HTuningProblem(
        heterogeneous_tasks(case, n_tasks, repetition_split, processing_rates),
        budget,
    )


def scenario_workload(scenario: str, budget: int, case: str = "a", **kwargs):
    """Dispatch by scenario name: 'homo' | 'repe' | 'heter'.

    Builds the single-budget problem through the scenario's
    :class:`~repro.workloads.families.ProblemFamily`, so ad-hoc calls
    and budget sweeps share one spec-construction path.
    """
    from .families import scenario_family

    return scenario_family(scenario, case=case, **kwargs).problem_at(budget)
