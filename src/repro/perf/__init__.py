"""Batched, cache-aware evaluation engine.

Every headline experiment in the paper reduces to evaluating thousands
of (allocation → expected/simulated latency) pairs.  This subsystem
makes those sweeps array-shaped:

* :mod:`~repro.perf.batch` — batched Monte-Carlo sampling
  (:func:`sample_job_latencies_batch`, :class:`BatchAggregateSimulator`)
  and multi-allocation scoring (:func:`evaluate_allocations`).  The
  batch samplers are stream-compatible with their scalar counterparts:
  same seed, bit-identical draws.
* :mod:`~repro.perf.cache` — process-level memo caches for the
  phase-type latency kernels (uniformization weight ladders and full
  cdf grids), shared by every numeric-latency caller.
* :mod:`~repro.perf.dp` — array-backed budget-indexed dynamic programs:
  dense per-group cost tables, a single-pass multi-budget sweep, and
  the Algorithm-3 closeness scan.  Outputs are bit-identical to the
  seed implementations (kept in :mod:`~repro.perf.reference`).
* :mod:`~repro.perf.engine` — the :class:`EvaluationEngine` registry:
  scalar / batch / chunked-batch Monte-Carlo samplers behind one
  interface, resolvable by name everywhere an ``engine=`` parameter is
  accepted (CLI included).
* :mod:`~repro.perf.deadline` — batched kernels for the
  deadline-constrained comparator: memoized per-(group, price)
  completion terms over the shared ladders, a one-array-op greedy
  candidate scan, array-bisection quantiles, and the deadline
  comparator registry (``"batched"`` / ``"reference"``) consumed by
  ``deadline_cost_frontier`` and the CLI.

See ``docs/performance.md`` for when to pick which engine and how to
size the caches, and ``docs/architecture.md`` for how the engine
registry and :class:`~repro.workloads.families.ProblemFamily` layer
fit together.
"""

from .batch import (
    BatchAggregateSimulator,
    evaluate_allocations,
    sample_job_latencies_batch,
)
from .cache import (
    cached_hypoexponential_cdf,
    cached_hypoexponential_sf,
    clear_phase_caches,
    configure_phase_cache,
    phase_cache_stats,
    shared_ladder_sf,
    survival_weights,
)
from .deadline import (
    DeadlineKernel,
    available_deadline_comparators,
    deadline_comparator_name,
    deadline_quantile_bisection,
    get_deadline_comparator,
    register_deadline_comparator,
)
from .dp import (
    budget_indexed_dp_fast,
    budget_indexed_dp_sweep,
    group_cost_table,
    heterogeneous_closeness_sweep,
    heterogeneous_price_scan,
)
from .engine import (
    BatchEngine,
    ChunkedBatchEngine,
    EvaluationEngine,
    ScalarEngine,
    available_engines,
    get_engine,
    register_engine,
    resolve_engine,
)
from .market import AgentBatchEngine, batch_agent_run_replications

__all__ = [
    "AgentBatchEngine",
    "BatchAggregateSimulator",
    "BatchEngine",
    "ChunkedBatchEngine",
    "DeadlineKernel",
    "EvaluationEngine",
    "ScalarEngine",
    "available_deadline_comparators",
    "available_engines",
    "batch_agent_run_replications",
    "budget_indexed_dp_fast",
    "budget_indexed_dp_sweep",
    "cached_hypoexponential_cdf",
    "cached_hypoexponential_sf",
    "clear_phase_caches",
    "configure_phase_cache",
    "deadline_comparator_name",
    "deadline_quantile_bisection",
    "evaluate_allocations",
    "get_deadline_comparator",
    "get_engine",
    "group_cost_table",
    "heterogeneous_closeness_sweep",
    "heterogeneous_price_scan",
    "phase_cache_stats",
    "register_deadline_comparator",
    "register_engine",
    "resolve_engine",
    "sample_job_latencies_batch",
    "shared_ladder_sf",
    "survival_weights",
]
