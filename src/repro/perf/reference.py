"""Seed (pre-vectorization) implementations kept as baselines.

These are verbatim copies of the scalar hot paths this subsystem
replaced.  They exist so equivalence tests can certify that the
array-based engines return *bit-identical* optimizer outputs, and so
``benchmarks/bench_perf_engine.py`` can measure the speedup against the
true seed code rather than against a strawman.  Nothing in the library
itself should call them.
"""

from __future__ import annotations

from typing import Callable

from ..errors import InfeasibleAllocationError, ModelError

__all__ = ["reference_budget_indexed_dp", "reference_heterogeneous_prices"]


def reference_budget_indexed_dp(
    groups,
    budget: int,
    group_cost_fn: Callable,
) -> dict[tuple, int]:
    """Seed ``budget_indexed_dp``: lazily grown ladders, per-state scan."""
    if not groups:
        raise ModelError("need at least one group")
    unit_costs = tuple(g.unit_cost for g in groups)
    start_cost = sum(unit_costs)
    if budget < start_cost:
        raise InfeasibleAllocationError(budget, start_cost)

    n = len(groups)
    residual = budget - start_cost

    cost_cache: list[list[float]] = [[group_cost_fn(g, 1)] for g in groups]

    def cost(i: int, price: int) -> float:
        ladder = cost_cache[i]
        while len(ladder) < price:
            ladder.append(group_cost_fn(groups[i], len(ladder) + 1))
        return ladder[price - 1]

    base_prices = tuple([1] * n)
    base_value = sum(cost(i, 1) for i in range(n))
    values: list[float] = [base_value]
    prices_at: list[tuple[int, ...]] = [base_prices]

    for x in range(1, residual + 1):
        best_value = values[x - 1]
        best_prices = prices_at[x - 1]
        for i in range(n):
            u = unit_costs[i]
            if u > x:
                continue
            prev_prices = prices_at[x - u]
            p = prev_prices[i]
            candidate = values[x - u] - (cost(i, p) - cost(i, p + 1))
            if candidate < best_value - 1e-15:
                best_value = candidate
                lst = list(prev_prices)
                lst[i] = p + 1
                best_prices = tuple(lst)
        values.append(best_value)
        prices_at.append(best_prices)

    final = prices_at[residual]
    return {g.key: final[i] for i, g in enumerate(groups)}


def reference_heterogeneous_prices(problem) -> dict[tuple, int]:
    """Seed Algorithm-3 price computation (ladder-based closeness scan)."""
    from ..core.latency import group_onhold_latency, group_processing_latency
    from ..core.objectives import utopia_point

    groups = problem.groups()
    unit_costs = tuple(g.unit_cost for g in groups)
    start_cost = sum(unit_costs)
    if problem.budget < start_cost:
        raise InfeasibleAllocationError(problem.budget, start_cost)

    utopia = utopia_point(problem)
    n = len(groups)
    phase2 = tuple(group_processing_latency(g) for g in groups)
    ladders: list[list[float]] = [[group_onhold_latency(g, 1)] for g in groups]

    def phase1(i: int, price: int) -> float:
        ladder = ladders[i]
        while len(ladder) < price:
            ladder.append(group_onhold_latency(groups[i], len(ladder) + 1))
        return ladder[price - 1]

    def cl_of(prices: tuple[int, ...]) -> float:
        p1 = [phase1(i, prices[i]) for i in range(n)]
        o1 = sum(p1)
        o2 = max(p1[i] + phase2[i] for i in range(n))
        return abs(o1 - utopia.o1) + abs(o2 - utopia.o2)

    residual = problem.budget - start_cost
    base_prices = tuple([1] * n)
    values: list[float] = [cl_of(base_prices)]
    prices_at: list[tuple[int, ...]] = [base_prices]

    for x in range(1, residual + 1):
        best_value = values[x - 1]
        best_prices = prices_at[x - 1]
        for i in range(n):
            u = unit_costs[i]
            if u > x:
                continue
            prev = prices_at[x - u]
            lst = list(prev)
            lst[i] = prev[i] + 1
            candidate_prices = tuple(lst)
            candidate = cl_of(candidate_prices)
            if candidate < best_value - 1e-15:
                best_value = candidate
                best_prices = candidate_prices
        values.append(best_value)
        prices_at.append(best_prices)

    final = prices_at[residual]
    return {g.key: final[i] for i, g in enumerate(groups)}
