"""Seed (pre-vectorization) implementations kept as baselines.

These are verbatim copies of the scalar hot paths this subsystem
replaced.  They exist so equivalence tests can certify that the
array-based engines return *bit-identical* optimizer outputs, and so
``benchmarks/bench_perf_engine.py`` can measure the speedup against the
true seed code rather than against a strawman.  Nothing in the library
itself should call them.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from ..errors import InfeasibleAllocationError, ModelError, SimulationError

__all__ = [
    "reference_budget_indexed_dp",
    "reference_heterogeneous_prices",
    "reference_completion_probability",
    "reference_latency_quantile",
    "reference_min_cost_for_deadline",
    "reference_agent_run_job",
]


def reference_agent_run_job(
    simulator,
    orders,
    recorder=None,
    start_time: float = 0.0,
    rng=None,
):
    """Seed ``AgentSimulator.run_job``: one event-queue Python loop.

    Verbatim copy of the scalar agent-market loop the lock-step
    ``"agent-batch"`` engine (:mod:`repro.perf.market`) replaced as the
    replication fan-out path.  ``rng`` defaults to the simulator's own
    generator (exactly the seed method); certification tests pass one
    explicit seeded generator per replication.
    """
    from ..market.events import Event, EventKind, EventQueue
    from ..market.simulator import AtomicTaskOrder, _draw_answer
    from ..market.task import PublishedTask
    from ..market.trace import TraceRecorder
    from ..stats.rng import ensure_rng

    rng = simulator._rng if rng is None else ensure_rng(rng)
    orders = list(orders)
    if not orders:
        raise SimulationError("job must contain at least one atomic task")
    trace = recorder if recorder is not None else TraceRecorder()
    queue = EventQueue()
    open_tasks = simulator.pool.choice_model.make_index()
    order_by_id = {o.atomic_task_id: o for o in orders}
    next_rep = {o.atomic_task_id: 0 for o in orders}
    answers = {o.atomic_task_id: [] for o in orders}
    per_atomic = {}
    total_paid = 0
    remaining = sum(o.repetitions for o in orders)

    def publish(order: "AtomicTaskOrder", now: float) -> None:
        rep = next_rep[order.atomic_task_id]
        task = PublishedTask(
            task_type=order.task_type,
            price=order.prices[rep],
            atomic_task_id=order.atomic_task_id,
            repetition_index=rep,
            payload=order.payload,
        )
        task.mark_published(now)
        next_rep[order.atomic_task_id] += 1
        open_tasks.add(task)
        trace.on_event(Event(now, EventKind.TASK_PUBLISHED, payload=task))

    for order in orders:
        publish(order, float(start_time))

    queue.push(
        Event(
            float(start_time) + simulator.pool.next_arrival_delay(rng),
            EventKind.WORKER_ARRIVED,
        )
    )

    while remaining > 0:
        if not queue:
            raise SimulationError("event queue drained before job completion")
        event = queue.pop()
        now = event.time
        if now > simulator.max_sim_time:
            raise SimulationError(
                f"simulation exceeded max_sim_time={simulator.max_sim_time}; "
                "the market is too slow for this job (rates too small?)"
            )
        if event.kind is EventKind.WORKER_ARRIVED:
            trace.on_event(event)
            queue.push(
                Event(
                    now + simulator.pool.next_arrival_delay(rng),
                    EventKind.WORKER_ARRIVED,
                )
            )
            chosen = open_tasks.choose(rng)
            if chosen is None:
                continue
            open_tasks.discard(chosen)
            worker_id = simulator.pool.new_worker_id()
            chosen.mark_accepted(now, worker_id=worker_id)
            processing = float(
                rng.exponential(1.0 / chosen.task_type.processing_rate)
            )
            queue.push(
                Event(now + processing, EventKind.TASK_COMPLETED, payload=chosen)
            )
        elif event.kind is EventKind.TASK_COMPLETED:
            task = event.payload
            order = order_by_id[task.atomic_task_id]
            accuracy = simulator.pool.worker_accuracy(
                task.task_type.accuracy, rng
            )
            answer = _draw_answer(order, rng, accuracy)
            task.mark_completed(now, answer=answer)
            trace.on_event(event)
            trace.on_task_done(task)
            answers[task.atomic_task_id].append(answer)
            total_paid += task.price
            remaining -= 1
            if next_rep[task.atomic_task_id] < order.repetitions:
                publish(order, now)
            else:
                per_atomic[task.atomic_task_id] = now
        else:  # pragma: no cover - no other kinds are scheduled
            raise SimulationError(f"unexpected event kind {event.kind}")

    from ..market.simulator import JobResult

    makespan = max(per_atomic.values()) - float(start_time)
    return JobResult(
        trace=trace,
        makespan=makespan,
        per_atomic_completion=per_atomic,
        answers=answers,
        total_paid=total_paid,
    )


def reference_budget_indexed_dp(
    groups,
    budget: int,
    group_cost_fn: Callable,
) -> dict[tuple, int]:
    """Seed ``budget_indexed_dp``: lazily grown ladders, per-state scan."""
    if not groups:
        raise ModelError("need at least one group")
    unit_costs = tuple(g.unit_cost for g in groups)
    start_cost = sum(unit_costs)
    if budget < start_cost:
        raise InfeasibleAllocationError(budget, start_cost)

    n = len(groups)
    residual = budget - start_cost

    cost_cache: list[list[float]] = [[group_cost_fn(g, 1)] for g in groups]

    def cost(i: int, price: int) -> float:
        ladder = cost_cache[i]
        while len(ladder) < price:
            ladder.append(group_cost_fn(groups[i], len(ladder) + 1))
        return ladder[price - 1]

    base_prices = tuple([1] * n)
    base_value = sum(cost(i, 1) for i in range(n))
    values: list[float] = [base_value]
    prices_at: list[tuple[int, ...]] = [base_prices]

    for x in range(1, residual + 1):
        best_value = values[x - 1]
        best_prices = prices_at[x - 1]
        for i in range(n):
            u = unit_costs[i]
            if u > x:
                continue
            prev_prices = prices_at[x - u]
            p = prev_prices[i]
            candidate = values[x - u] - (cost(i, p) - cost(i, p + 1))
            if candidate < best_value - 1e-15:
                best_value = candidate
                lst = list(prev_prices)
                lst[i] = p + 1
                best_prices = tuple(lst)
        values.append(best_value)
        prices_at.append(best_prices)

    final = prices_at[residual]
    return {g.key: final[i] for i, g in enumerate(groups)}


# ---------------------------------------------------------------------------
# seed deadline comparator (pre repro.perf.deadline)
# ---------------------------------------------------------------------------


def _reference_safe_log(x: float) -> float:
    if x <= 0.0:
        return -1e30
    return math.log(x)


def _reference_group_cdf_at(
    group, price: int, deadline: float, include_processing: bool = True
) -> float:
    """Seed ``_group_cdf_at``: fresh scalar kernel per probe."""
    from ..stats.phase_type import hypoexponential_cdf

    rates = [group.onhold_rate(price)] * group.repetitions
    if include_processing:
        rates += [group.processing_rate] * group.repetitions
    member = float(hypoexponential_cdf(rates, deadline))
    if member <= 0.0:
        return 0.0
    return member**group.size


def reference_completion_probability(
    problem,
    group_prices: dict[tuple, int],
    deadline: float,
    include_processing: bool = True,
) -> float:
    """Seed ``completion_probability``: per-group scalar cdf product."""
    if deadline < 0:
        raise ModelError(f"deadline must be >= 0, got {deadline}")
    prob = 1.0
    for group in problem.groups():
        prob *= _reference_group_cdf_at(
            group, group_prices[group.key], deadline, include_processing
        )
        if prob == 0.0:
            return 0.0
    return prob


def reference_latency_quantile(
    problem,
    group_prices: dict[tuple, int],
    confidence: float,
    include_processing: bool = True,
) -> float:
    """Seed ``latency_quantile``: scalar bracketing + 80-step bisection."""
    from ..core.latency import group_onhold_latency, group_processing_latency

    if not 0.0 < confidence < 1.0:
        raise ModelError(f"confidence must be in (0,1), got {confidence}")
    hi = sum(
        group_onhold_latency(g, group_prices[g.key])
        + (group_processing_latency(g) if include_processing else 0.0)
        for g in problem.groups()
    )
    hi = max(hi, 1e-9)
    while (
        reference_completion_probability(
            problem, group_prices, hi, include_processing
        )
        < confidence
    ):
        hi *= 2.0
        if hi > 1e12:
            raise ModelError("quantile search diverged; rates too small?")
    lo = 0.0
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if (
            reference_completion_probability(
                problem, group_prices, mid, include_processing
            )
            >= confidence
        ):
            hi = mid
        else:
            lo = mid
    return hi


def reference_min_cost_for_deadline(
    problem_tasks,
    deadline: float,
    confidence: float = 0.9,
    max_price: int = 1_000,
    include_processing: bool = True,
):
    """Seed ``min_cost_for_deadline``: scalar greedy ascent + trim.

    Every probe builds a fresh scalar kernel; the candidate scan and
    the minimality trim re-derive identical ``(group, price)`` terms
    exactly as the pre-kernel implementation did.  The kernel-backed
    comparator is certified bit-identical against this function.
    """
    from ..core.deadline import DeadlineResult
    from ..core.problem import Allocation, HTuningProblem
    from ..resilience.faults import site_check
    from ..stats.phase_type import hypoexponential_cdf

    site_check("comparator.min_cost", comparator="reference")
    if deadline <= 0:
        raise ModelError(f"deadline must be positive, got {deadline}")
    if not 0.0 < confidence < 1.0:
        raise ModelError(f"confidence must be in (0,1), got {confidence}")
    tasks = list(problem_tasks)
    if not tasks:
        raise ModelError("need at least one task")
    total_reps = sum(t.repetitions for t in tasks)
    problem = HTuningProblem(tasks, budget=total_reps * max_price)
    groups = problem.groups()

    prices = {g.key: 1 for g in groups}

    if include_processing:
        ceiling = 1.0
        for g in groups:
            member = float(
                hypoexponential_cdf(
                    [g.processing_rate] * g.repetitions, deadline
                )
            )
            ceiling *= member**g.size if member > 0 else 0.0
        if ceiling < confidence:
            achieved = reference_completion_probability(
                problem, prices, deadline, include_processing
            )
            allocation = Allocation.from_group_prices(problem, prices)
            return DeadlineResult(
                allocation=allocation,
                group_prices=prices,
                cost=allocation.total_cost,
                achieved_probability=achieved,
                deadline=deadline,
                confidence=confidence,
            )
    log_terms = {
        g.key: _reference_safe_log(
            _reference_group_cdf_at(g, 1, deadline, include_processing)
        )
        for g in groups
    }
    target_log = math.log(confidence)

    def total_log() -> float:
        return sum(log_terms.values())

    while total_log() < target_log:
        best_gain = -math.inf
        best_group = None
        best_new = 0.0
        for g in groups:
            p = prices[g.key]
            if p >= max_price:
                continue
            new_term = _reference_safe_log(
                _reference_group_cdf_at(g, p + 1, deadline, include_processing)
            )
            gain = (new_term - log_terms[g.key]) / g.unit_cost
            if gain > best_gain:
                best_gain = gain
                best_group = g
                best_new = new_term
        if best_group is None or best_gain <= 1e-15:
            break
        prices[best_group.key] += 1
        log_terms[best_group.key] = best_new

    improved = True
    while improved:
        improved = False
        for g in groups:
            p = prices[g.key]
            if p <= 1:
                continue
            trial = dict(prices)
            trial[g.key] = p - 1
            if (
                reference_completion_probability(
                    problem, trial, deadline, include_processing
                )
                >= confidence
            ):
                prices[g.key] = p - 1
                log_terms[g.key] = _reference_safe_log(
                    _reference_group_cdf_at(
                        g, p - 1, deadline, include_processing
                    )
                )
                improved = True

    achieved = reference_completion_probability(
        problem, prices, deadline, include_processing
    )
    allocation = Allocation.from_group_prices(problem, prices)
    return DeadlineResult(
        allocation=allocation,
        group_prices=prices,
        cost=allocation.total_cost,
        achieved_probability=achieved,
        deadline=deadline,
        confidence=confidence,
    )


def reference_heterogeneous_prices(problem) -> dict[tuple, int]:
    """Seed Algorithm-3 price computation (ladder-based closeness scan)."""
    from ..core.latency import group_onhold_latency, group_processing_latency
    from ..core.objectives import utopia_point

    groups = problem.groups()
    unit_costs = tuple(g.unit_cost for g in groups)
    start_cost = sum(unit_costs)
    if problem.budget < start_cost:
        raise InfeasibleAllocationError(problem.budget, start_cost)

    utopia = utopia_point(problem)
    n = len(groups)
    phase2 = tuple(group_processing_latency(g) for g in groups)
    ladders: list[list[float]] = [[group_onhold_latency(g, 1)] for g in groups]

    def phase1(i: int, price: int) -> float:
        ladder = ladders[i]
        while len(ladder) < price:
            ladder.append(group_onhold_latency(groups[i], len(ladder) + 1))
        return ladder[price - 1]

    def cl_of(prices: tuple[int, ...]) -> float:
        p1 = [phase1(i, prices[i]) for i in range(n)]
        o1 = sum(p1)
        o2 = max(p1[i] + phase2[i] for i in range(n))
        return abs(o1 - utopia.o1) + abs(o2 - utopia.o2)

    residual = problem.budget - start_cost
    base_prices = tuple([1] * n)
    values: list[float] = [cl_of(base_prices)]
    prices_at: list[tuple[int, ...]] = [base_prices]

    for x in range(1, residual + 1):
        best_value = values[x - 1]
        best_prices = prices_at[x - 1]
        for i in range(n):
            u = unit_costs[i]
            if u > x:
                continue
            prev = prices_at[x - u]
            lst = list(prev)
            lst[i] = prev[i] + 1
            candidate_prices = tuple(lst)
            candidate = cl_of(candidate_prices)
            if candidate < best_value - 1e-15:
                best_value = candidate
                best_prices = candidate_prices
        values.append(best_value)
        prices_at.append(best_prices)

    final = prices_at[residual]
    return {g.key: final[i] for i, g in enumerate(groups)}
