"""Process-level memo caches for phase-type latency kernels.

The paper's sweeps (Fig. 2 budget curves, Pareto fronts, exhaustive
reference searches) evaluate :func:`repro.core.latency.expected_job_latency`
thousands of times, and most of those evaluations share work at two
levels:

* **Uniformization weights** depend only on the *rate profile* — not on
  the evaluation grid.  One :class:`~repro.stats.phase_type.WeightLadder`
  per profile, extended in place as wider grids appear, removes the
  dominant O(n_terms · n_phases) recurrence from every repeat call.
* **Full cdf arrays** depend on (rate profile, grid).  Sweeps that
  re-score the same allocation (Pareto fronts, repeated budgets,
  :func:`repro.perf.batch.evaluate_allocations` with a shared grid) hit
  this second layer and skip the kernel entirely.

Both caches are process-global, bounded LRU, and safe to clear at any
time (:func:`clear_phase_caches`); entries are returned as read-only
arrays so a hit can never be corrupted by a caller.
"""

from __future__ import annotations

from collections import OrderedDict
from threading import Lock
from typing import Sequence

import numpy as np

from ..errors import ModelError
from ..stats.phase_type import (
    WeightLadder,
    _sf_from_ladder,
    _sf_rows_at,
    batch_weight_ladders,
)

__all__ = [
    "cached_hypoexponential_sf",
    "cached_hypoexponential_cdf",
    "shared_ladder_sf",
    "shared_ladder_sf_batch",
    "survival_weights",
    "phase_cache_stats",
    "clear_phase_caches",
    "configure_phase_cache",
    "export_ladder_state",
    "warm_ladders",
]

_lock = Lock()

#: rate profile -> WeightLadder (unbounded: one small entry per profile)
_ladders: "OrderedDict[tuple, WeightLadder]" = OrderedDict()

#: (rate profile, grid signature) -> sf array (bounded LRU)
_sf_cache: "OrderedDict[tuple, np.ndarray]" = OrderedDict()

_max_sf_entries = 2048
_max_ladders = 65536

_stats = {"sf_hits": 0, "sf_misses": 0, "ladder_hits": 0, "ladder_misses": 0}


def _rates_key(rates: Sequence[float]) -> tuple:
    if type(rates) is tuple:
        # Fast path for pre-normalized profiles (the deadline sweep
        # tables).  Tuples of np.float64 are fine too: they hash and
        # compare equal to the float tuples they mirror.
        key = rates
    else:
        key = tuple(float(r) for r in rates)
    if not key:
        raise ModelError("need at least one phase rate")
    return key


def _grid_key(grid: np.ndarray) -> tuple:
    # tobytes() makes the key exact for arbitrary grids; the (len,
    # first, last) prefix keeps hash collisions between similar
    # linspace grids from costing full-byte comparisons.
    return (grid.shape[0], float(grid[0]), float(grid[-1]), grid.tobytes())


def _ladder_for(key: tuple) -> WeightLadder:
    ladder = _ladders.get(key)
    if ladder is None:
        _stats["ladder_misses"] += 1
        ladder = WeightLadder(key)
        _ladders[key] = ladder
        while len(_ladders) > _max_ladders:
            _ladders.popitem(last=False)
    else:
        _stats["ladder_hits"] += 1
        _ladders.move_to_end(key)
    return ladder


def survival_weights(rates: Sequence[float], n_terms: int) -> np.ndarray:
    """Cached uniformization weights ``w_0 .. w_{n_terms-1}``.

    Keyed by the rate profile alone, so the same profile evaluated on
    ever-wider grids keeps extending one ladder instead of recomputing
    it from scratch.
    """
    with _lock:
        return _ladder_for(_rates_key(rates)).get(n_terms)


def cached_hypoexponential_sf(rates: Sequence[float], grid: np.ndarray) -> np.ndarray:
    """Memoized ``P(Σ Exp(rates_i) > t)`` on *grid* (read-only array)."""
    grid = np.asarray(grid, dtype=float)
    rkey = _rates_key(rates)
    key = (rkey, _grid_key(grid))
    with _lock:
        hit = _sf_cache.get(key)
        if hit is not None:
            _stats["sf_hits"] += 1
            _sf_cache.move_to_end(key)
            return hit
        _stats["sf_misses"] += 1
        ladder = _ladder_for(rkey)
        # Computed under the lock: _sf_from_ladder extends the shared
        # ladder in place, and WeightLadder is not itself thread-safe.
        sf = _sf_from_ladder(ladder, grid)
        sf.flags.writeable = False
        _sf_cache[key] = sf
        while len(_sf_cache) > _max_sf_entries:
            _sf_cache.popitem(last=False)
    return sf


def cached_hypoexponential_cdf(rates: Sequence[float], grid: np.ndarray) -> np.ndarray:
    """Memoized cdf on *grid*; complements :func:`cached_hypoexponential_sf`."""
    return 1.0 - cached_hypoexponential_sf(rates, grid)


def shared_ladder_sf(rates: Sequence[float], grid: np.ndarray) -> np.ndarray:
    """sf on *grid* through the shared ladder, without the grid LRU.

    The deadline kernels (:mod:`repro.perf.deadline`) probe one rate
    profile at thousands of *distinct* scalar deadlines (greedy price
    ascent, quantile bisection midpoints).  Those grids never repeat,
    so storing each in the bounded cdf LRU would only evict useful
    entries; what *does* pay is reusing the profile's weight ladder,
    the dominant per-probe cost.  This entry point shares the ladder
    (extending it in place like every other caller) and skips the grid
    cache.  Values are bit-identical to :func:`hypoexponential_sf` on
    the same points — the ladder recurrence is deterministic and
    per-call term counts depend only on the grid.
    """
    grid = np.asarray(grid, dtype=float)
    with _lock:
        ladder = _ladder_for(_rates_key(rates))
        # Under the lock: _sf_from_ladder extends the shared ladder in
        # place, and WeightLadder is not itself thread-safe.
        return _sf_from_ladder(ladder, grid)


def _build_for_t(keys, ts, _mix_terms) -> int:
    """Build missing/short ladders for *keys* at times *ts* (lock held).

    Each key's requirement is sized from its own ``q·t`` — the exact
    bound the sf evaluation will request — so a ladder already long
    enough is never touched.  A too-short ladder is rebuilt rather
    than extended: the recurrence is deterministic, so the rebuild's
    prefix is bitwise the ladder it replaces, and one batched rebuild
    (:func:`~repro.stats.phase_type.batch_weight_ladders`) beats the
    per-term scalar extension it avoids.
    """
    needs: dict[tuple, int] = {}
    for key, t in zip(keys, ts):
        if t <= 0:
            continue
        ladder = _ladders.get(key)
        need = _mix_terms(max(key) * t) + 1
        if ladder is None or ladder.n_computed < need:
            if needs.get(key, 0) < need:
                needs[key] = need
    if needs:
        build = list(needs)
        for key, ladder in zip(
            build, batch_weight_ladders(build, max(needs.values()))
        ):
            _stats["ladder_misses"] += 1
            _ladders[key] = ladder
        while len(_ladders) > _max_ladders:
            _ladders.popitem(last=False)
    return len(needs)


def shared_ladder_sf_batch(
    profiles: Sequence[Sequence[float]],
    t,
    warm: bool = False,
) -> np.ndarray:
    """sf of many (profile, time) rows through the shared ladders.

    One padded-window pass (:func:`repro.stats.phase_type._sf_rows_at`)
    instead of one :func:`shared_ladder_sf` call per profile; row *i*
    is bit-identical to ``shared_ladder_sf(profiles[i], [t_i])[0]``.
    *t* is a scalar shared by all rows or an array with one entry per
    profile (a deadline sweep's ceiling terms batch the whole grid
    this way).

    ``warm=True`` batch-builds missing (or too-short) ladders first in
    one lock-step recurrence — how the deadline kernels fill whole
    candidate-price blocks with one lock acquisition and one key pass.
    Each ladder's requirement is sized from its **own** ``q·t`` (the
    same bound the sf evaluation will request), so a ladder already
    long enough for this *t* is never rebuilt just because it shares a
    batch with a hotter profile.
    """
    from ..stats.phase_type import _mix_terms

    keys = [_rates_key(p) for p in profiles]
    t_arr = np.broadcast_to(np.asarray(t, dtype=float), (len(keys),))
    with _lock:
        if warm:
            _build_for_t(keys, t_arr.tolist(), _mix_terms)
        ladders = [_ladder_for(k) for k in keys]
        return _sf_rows_at(ladders, t_arr)


def phase_cache_stats() -> dict:
    """Counters + sizes of the process-level phase-kernel caches."""
    with _lock:
        return {
            **_stats,
            "sf_entries": len(_sf_cache),
            "ladder_entries": len(_ladders),
            "max_sf_entries": _max_sf_entries,
        }


def clear_phase_caches() -> None:
    """Drop all cached kernels and reset the hit/miss counters."""
    with _lock:
        _ladders.clear()
        _sf_cache.clear()
        for k in _stats:
            _stats[k] = 0


def export_ladder_state(limit: int | None = 256) -> list:
    """JSON-able snapshot of the warm weight ladders, most recent last.

    Each entry is ``[rate profile, n_computed]`` — everything needed to
    rebuild the ladder bit-identically elsewhere (the recurrence is
    deterministic).  ``limit`` keeps the snapshot wire-friendly by
    dropping the least recently used profiles first; ``None`` exports
    everything.  This is what the process executor ships to freshly
    spawned pool workers so small batches don't pay per-worker cold
    ladder builds (see :meth:`repro.exec.ProcessExecutor`).
    """
    with _lock:
        entries = [
            [[float(r) for r in key], int(ladder.n_computed)]
            for key, ladder in _ladders.items()
        ]
    if limit is not None and len(entries) > limit:
        entries = entries[-int(limit):]
    return entries


def warm_ladders(state) -> int:
    """Rebuild the ladders described by an :func:`export_ladder_state`
    snapshot; returns how many were built.

    The inverse half of the warm-up handshake, run inside a pool
    worker.  Tolerant of malformed entries (a bad snapshot must never
    kill a worker — it just stays cold for that profile); ladders
    already at least as long as requested are left untouched.  Rebuilt
    ladders are bitwise what the exporting process holds: the
    uniformization recurrence is deterministic in (profile, n_terms).
    """
    needs: dict[tuple, int] = {}
    for entry in state or ():
        try:
            rates, n_computed = entry
            key = tuple(float(r) for r in rates)
            need = int(n_computed)
        except (TypeError, ValueError):
            continue
        if not key or need < 1:
            continue
        if needs.get(key, 0) < need:
            needs[key] = need
    if not needs:
        return 0
    with _lock:
        for key in [k for k in needs]:
            ladder = _ladders.get(key)
            if ladder is not None and ladder.n_computed >= needs[key]:
                del needs[key]
        if not needs:
            return 0
        build = list(needs)
        for key, ladder in zip(
            build, batch_weight_ladders(build, max(needs.values()))
        ):
            _stats["ladder_misses"] += 1
            _ladders[key] = ladder
        while len(_ladders) > _max_ladders:
            _ladders.popitem(last=False)
    return len(build)


def configure_phase_cache(max_sf_entries: int | None = None) -> None:
    """Resize the cdf LRU (each entry holds one grid-sized float array)."""
    global _max_sf_entries
    if max_sf_entries is not None:
        if max_sf_entries < 1:
            raise ModelError(
                f"max_sf_entries must be >= 1, got {max_sf_entries}"
            )
        with _lock:
            _max_sf_entries = int(max_sf_entries)
            while len(_sf_cache) > _max_sf_entries:
                _sf_cache.popitem(last=False)
