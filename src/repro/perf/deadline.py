"""Batched kernels for the deadline-constrained comparator ([29]).

:mod:`repro.core.deadline` answers the dual question — cheapest spend
meeting a deadline — by a greedy price ascent whose every probe is a
phase-type cdf at one scalar deadline.  The seed implementation rebuilt
a :class:`~repro.stats.phase_type.WeightLadder` per probe and re-probed
the same ``(group, price)`` pairs many times (the candidate scan
touches every group at every step; the minimality trim re-evaluates
the whole price vector per candidate decrement).  This module makes
those probes array-shaped and memoized while staying **bit-identical**
to the seed comparator:

* :class:`DeadlineKernel` — per-(group, price) completion terms at one
  deadline, computed once through the process-level shared ladders
  (:func:`repro.perf.cache.shared_ladder_sf`) and reused by the greedy
  ascent, the trim loop, and the achieved-probability report.  The
  candidate scan scores **all** groups' +1 increments in one array op.
* :func:`deadline_quantile_bisection` — array bisection for
  :func:`repro.core.deadline.latency_quantile`: one vector of
  midpoints (one per requested confidence) per iteration, each group's
  sf evaluated on the whole midpoint vector via the
  :func:`~repro.stats.phase_type._sf_from_ladder` array path.  A
  single confidence degenerates to length-1 vectors, which follow the
  exact float path of the scalar bisection — results are bit-identical.
* a **comparator registry** (:func:`get_deadline_comparator`) mirroring
  the evaluation-engine registry: ``"batched"`` resolves to the
  kernel-backed :func:`repro.core.deadline.min_cost_for_deadline`,
  ``"reference"`` to the preserved seed implementation in
  :mod:`repro.perf.reference`; custom comparators are registrable and
  immediately usable by the frontier sweep and the CLI.

Bit-identity rests on two facts certified by tests: a shared ladder's
weights are independent of its extension history, and a length-1 grid
through :func:`~repro.stats.phase_type._sf_from_ladder` performs the
same float operations as the scalar one-shot evaluation.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence, Union

import numpy as np

from ..errors import ModelError
from .cache import shared_ladder_sf, shared_ladder_sf_batch

__all__ = [
    "DeadlineKernel",
    "deadline_quantile_bisection",
    "processing_ceilings",
    "register_deadline_comparator",
    "get_deadline_comparator",
    "deadline_comparator_name",
    "available_deadline_comparators",
    "DEFAULT_DEADLINE_COMPARATOR",
]

#: Log value standing in for log(0) — matches the seed comparator's
#: ``_safe_log`` sentinel so greedy gains compare identically.
_LOG_ZERO = -1e30


def _safe_log(x: float) -> float:
    if x <= 0.0:
        return _LOG_ZERO
    return math.log(x)


class DeadlineKernel:
    """Memoized per-(group, price) completion terms at one deadline.

    One kernel serves one ``(groups, deadline, include_processing)``
    triple.  Every term is computed at most once, through the
    process-level shared weight ladders — so a frontier sweeping many
    deadlines over the same groups re-derives *no* ladder, only the
    cheap Poisson mixing per new ``(price, deadline)`` pair — and every
    value is bit-identical to the seed's fresh-ladder scalar
    evaluation.
    """

    #: Smallest price block warmed at once; blocks then double so the
    #: total over-warming stays within ~2× of the visited price range.
    _WARM_CHUNK = 8

    def __init__(
        self,
        groups: Sequence,
        deadline: float,
        include_processing: bool = True,
        price_cap: Optional[int] = None,
        profile_table: Optional[dict] = None,
        ceiling: Optional[float] = None,
    ) -> None:
        if not groups:
            raise ModelError("need at least one task group")
        if deadline < 0:
            raise ModelError(f"deadline must be >= 0, got {deadline}")
        self.groups = tuple(groups)
        self.deadline = float(deadline)
        self.include_processing = bool(include_processing)
        self.price_cap = None if price_cap is None else int(price_cap)
        self._grid = np.array([self.deadline], dtype=float)
        self.unit_costs = np.array(
            [g.unit_cost for g in self.groups], dtype=float
        )
        self._group_cdf: dict[tuple[int, int], float] = {}
        self._log_term: dict[tuple[int, int], float] = {}
        self._warm_hi = [0] * len(self.groups)
        # A sweep precomputes every deadline's ceiling in one batched
        # pass (bit-identical to the per-kernel evaluation) and hands
        # it in; a standalone kernel computes its own on first use.
        self._ceiling: Optional[float] = ceiling
        self._next_buf: Optional[np.ndarray] = None
        self._gain_buf: Optional[np.ndarray] = None
        # (group index, price) -> normalized rate tuple.  Deadline
        # sweeps pass one shared dict so the pricing-curve evaluations
        # and profile normalization happen once per sweep, not once
        # per deadline (completion terms stay per-kernel — they depend
        # on the deadline; the rate profiles do not).
        self._profiles: dict = {} if profile_table is None else profile_table

    def _rates_at(self, gi: int, price: int) -> tuple:
        key = (gi, int(price))
        row = self._profiles.get(key)
        if row is None:
            g = self.groups[gi]
            rates = [g.onhold_rate(int(price))] * g.repetitions
            if self.include_processing:
                rates += [g.processing_rate] * g.repetitions
            row = tuple(float(r) for r in rates)
            self._profiles[key] = row
        return row

    def _warm(self, gi: int, price: int) -> None:
        """Fill the completion-term tables for one group's price block."""
        self._warm_multi([(gi, int(price))])

    def _warm_multi(self, targets: Sequence[tuple[int, int]]) -> None:
        """Fill the completion-term tables for several groups at once.

        The greedy ascent visits prices in +1 steps and advances every
        group together, so warming doubling blocks for **all** lagging
        groups in one call turns the two per-probe python costs into
        one batched call each: the ladder recurrences run as a single
        lock-step matrix recurrence (phase counts padded inside
        :func:`repro.stats.phase_type.batch_weight_ladders`) and the
        Poisson mixing as one padded-window pass
        (:func:`repro.perf.cache.shared_ladder_sf_batch`).  Every term
        lands in the (group, price) memo, so the candidate scan and
        the trim loop read pure table lookups.
        """
        rows: list[tuple] = []
        spans: list[tuple[int, int, int]] = []
        for gi, price in targets:
            if price <= self._warm_hi[gi]:
                continue
            lo = self._warm_hi[gi] + 1
            hi = max(lo + self._WARM_CHUNK - 1, 2 * self._warm_hi[gi])
            if self.price_cap is not None:
                # The doubling growth never crosses the cap; only an
                # explicit beyond-cap probe (an external caller — the
                # greedy stays within it) may push past.
                hi = min(hi, self.price_cap)
            hi = max(hi, int(price))
            if hi < lo:
                continue
            spans.append((gi, lo, hi))
            rows.extend(self._rates_at(gi, p) for p in range(lo, hi + 1))
            self._warm_hi[gi] = hi
        if not rows:
            return
        sfs = shared_ladder_sf_batch(rows, self.deadline, warm=True)
        pos = 0
        for gi, lo, hi in spans:
            size = self.groups[gi].size
            for p in range(lo, hi + 1):
                member = 1.0 - float(sfs[pos])
                value = 0.0 if member <= 0.0 else member**size
                self._group_cdf[(gi, p)] = value
                self._log_term[(gi, p)] = _safe_log(value)
                pos += 1

    def prewarm(self, prices: Sequence[int]) -> None:
        """Warm every group's table through its current price at once.

        Called by the greedy driver before the ascent so the first
        block of every group shares one batched build/mix, and by any
        caller about to probe a whole price vector.
        """
        self._warm_multi(
            [(gi, int(p)) for gi, p in enumerate(prices)]
        )

    def group_cdf(self, gi: int, price: int) -> float:
        """``P(every task of group gi finishes by the deadline)``.

        Memoized; bit-identical to the seed ``_group_cdf_at``.
        """
        key = (gi, int(price))
        hit = self._group_cdf.get(key)
        if hit is not None:
            return hit
        if price > self._warm_hi[gi]:
            self._warm(gi, int(price))
            hit = self._group_cdf.get(key)
            if hit is not None:
                return hit
        rates = self._rates_at(gi, int(price))
        member = 1.0 - float(shared_ladder_sf(rates, self._grid)[0])
        value = 0.0 if member <= 0.0 else member**self.groups[gi].size
        self._group_cdf[key] = value
        return value

    def log_term(self, gi: int, price: int) -> float:
        """``log`` of :meth:`group_cdf` with the seed's log(0) sentinel."""
        key = (gi, int(price))
        hit = self._log_term.get(key)
        if hit is not None:
            return hit
        value = _safe_log(self.group_cdf(gi, price))
        self._log_term[key] = value
        return value

    def log_terms(self, prices: np.ndarray) -> np.ndarray:
        """Current per-group log completion terms as one array."""
        return np.array(
            [self.log_term(i, int(p)) for i, p in enumerate(prices)],
            dtype=float,
        )

    def best_increment(
        self, prices: np.ndarray, cur_terms: np.ndarray, max_price: int
    ) -> tuple[int, float, float]:
        """Score all groups' +1 price increments in one array op.

        Returns ``(group index, gain, new log term)`` of the group
        whose increment buys the largest probability gain per budget
        unit, with the seed's first-wins tie-breaking (``np.argmax``
        keeps the first maximum, like the scalar scan's strict ``>``).
        ``(-1, -inf, 0.0)`` when every group sits at *max_price*.

        The scratch buffers are kernel-owned: a greedy ascent calls
        this once per price increment, and reallocating three small
        arrays per step would dominate the (table-lookup) scan itself.
        """
        if self._next_buf is None:
            self._next_buf = np.empty(len(self.groups))
            self._gain_buf = np.empty(len(self.groups))
        next_terms, gains = self._next_buf, self._gain_buf
        if any(
            p < max_price and p + 1 > self._warm_hi[i]
            for i, p in enumerate(prices)
        ):
            # One group crossed its warmed range.  Groups within a
            # chunk of their own boundary ride along (the greedy
            # raises every group's price at a similar pace, so their
            # next blocks would open within a few steps anyway) —
            # merging keeps the ladder builds in one lock-step batch.
            # Ride-along targets are clamped to max_price so a group
            # already warmed to the cap never probes a price the cap
            # excluded.
            self._warm_multi(
                [
                    (i, min(max(int(p) + 1, self._warm_hi[i] + 1), max_price))
                    for i, p in enumerate(prices)
                    if p < max_price
                    and self._warm_hi[i] < max_price
                    and p + self._WARM_CHUNK > self._warm_hi[i]
                ]
            )
        capped = False
        for i, p in enumerate(prices):
            if p < max_price:
                next_terms[i] = self.log_term(i, int(p) + 1)
            else:
                next_terms[i] = 0.0
                capped = True
        np.subtract(next_terms, cur_terms, out=gains)
        gains /= self.unit_costs
        if capped:
            gains[prices >= max_price] = -np.inf
        best = int(np.argmax(gains))
        best_gain = float(gains[best])
        if best_gain == -np.inf:
            return -1, best_gain, 0.0
        return best, best_gain, float(next_terms[best])

    def completion_probability(
        self,
        prices: np.ndarray,
        override: Optional[tuple[int, int]] = None,
    ) -> float:
        """Product of group cdfs at *prices*, all terms memo lookups.

        ``override=(gi, price)`` substitutes one group's price — the
        trim loop's candidate decrement — without copying the vector.
        Multiplication order and the early exit at 0.0 match the seed
        ``completion_probability`` exactly.
        """
        prob = 1.0
        for gi in range(len(self.groups)):
            price = int(prices[gi])
            if override is not None and override[0] == gi:
                price = int(override[1])
            prob *= self.group_cdf(gi, price)
            if prob == 0.0:
                return 0.0
        return prob

    def processing_ceiling(self) -> float:
        """Completion probability with instant acceptance (price → ∞).

        The price-independent feasibility ceiling: only the processing
        phases remain.  Matches the seed's ceiling product term for
        term (no early exit, same member-power guard).
        """
        if not self.include_processing:
            raise ModelError(
                "the processing ceiling is undefined when processing "
                "phases are excluded"
            )
        if self._ceiling is None:
            rows = [
                tuple([g.processing_rate] * g.repetitions)
                for g in self.groups
            ]
            # One mixing pass for all groups; the ladders themselves
            # build (once per sweep) inside the shared cache — mixed
            # repetition counts are fine, only the warm path needs
            # lock-step rows.
            sfs = shared_ladder_sf_batch(rows, self.deadline).tolist()
            ceiling = 1.0
            for g, sf in zip(self.groups, sfs):
                member = 1.0 - sf
                ceiling *= member**g.size if member > 0 else 0.0
            self._ceiling = ceiling
        return self._ceiling

    def cache_stats(self) -> dict:
        """Memo sizes — how many (group, price) terms this kernel holds."""
        return {
            "group_cdf_entries": len(self._group_cdf),
            "log_term_entries": len(self._log_term),
            "warmed_prices": list(self._warm_hi),
        }


def processing_ceilings(
    groups: Sequence, deadlines: Sequence[float]
) -> dict[float, float]:
    """Every deadline's feasibility ceiling in one batched pass.

    The per-(group, deadline) sf terms go through a single
    :func:`~repro.perf.cache.shared_ladder_sf_batch` call (per-row
    times), and each deadline's product is accumulated exactly like
    :meth:`DeadlineKernel.processing_ceiling` — values are
    bit-identical to the per-kernel evaluation, which is what lets a
    sweep hand them to its kernels.
    """
    groups = tuple(groups)
    if not groups:
        raise ModelError("need at least one task group")
    deadlines = [float(d) for d in deadlines]
    rows = [
        tuple([g.processing_rate] * g.repetitions) for g in groups
    ]
    sfs = shared_ladder_sf_batch(
        rows * len(deadlines),
        np.repeat(np.asarray(deadlines, dtype=float), len(rows))
        if deadlines
        else 0.0,
    )
    ceilings: dict[float, float] = {}
    pos = 0
    for deadline in deadlines:
        ceiling = 1.0
        for g in groups:
            member = 1.0 - float(sfs[pos])
            ceiling *= member**g.size if member > 0 else 0.0
            pos += 1
        ceilings[deadline] = ceiling
    return ceilings


def deadline_quantile_bisection(
    groups: Sequence,
    group_prices: dict,
    confidences: np.ndarray,
    include_processing: bool = True,
    n_iterations: int = 80,
    window_mode: str = "per-point",
) -> np.ndarray:
    """Array bisection for latency quantiles at several confidences.

    For each requested confidence the bisection maintains its own
    ``(lo, hi)`` bracket; every iteration evaluates each group's sf on
    the **whole midpoint vector** (one midpoint per confidence), so
    the per-iteration cost is one array kernel call per group instead
    of one fresh scalar kernel per (group, confidence).

    ``window_mode`` selects how the Poisson mixing windows are sized:

    * ``"per-point"`` (default) — each midpoint's sf is accumulated
      over exactly its own truncation window
      (:func:`~repro.stats.phase_type._sf_rows_at` semantics), so
      every entry is **bitwise** what the scalar per-confidence
      bisection computes: multi-confidence batches equal per-point
      evaluation exactly, not just to tolerance.
    * ``"chunked"`` — the historical grid path
      (:func:`~repro.perf.cache.shared_ladder_sf`), which unions
      neighbouring midpoints' windows into shared chunks; entries can
      differ from per-point evaluation at the truncation-tolerance
      level (~1e-13).  Kept for callers that batch very long
      confidence vectors where chunking amortizes better.

    With a single confidence both modes follow the exact float path of
    the scalar bisection — bit-identical to the seed
    ``latency_quantile``.
    """
    from ..core.latency import group_onhold_latency, group_processing_latency

    confidences = np.atleast_1d(np.asarray(confidences, dtype=float))
    if confidences.size == 0:
        raise ModelError("need at least one confidence")
    if np.any((confidences <= 0.0) | (confidences >= 1.0)):
        raise ModelError(
            f"confidences must be in (0,1), got {confidences.tolist()}"
        )
    if window_mode not in ("per-point", "chunked"):
        raise ModelError(
            f"window_mode must be 'per-point' or 'chunked', got "
            f"{window_mode!r}"
        )
    per_point = window_mode == "per-point"
    groups = tuple(groups)
    profiles = []
    for g in groups:
        rates = [g.onhold_rate(int(group_prices[g.key]))] * g.repetitions
        if include_processing:
            rates += [g.processing_rate] * g.repetitions
        profiles.append((tuple(float(r) for r in rates), g.size))

    def completion(t_vec: np.ndarray) -> np.ndarray:
        # Product over groups in group order with the member-power
        # guard — the same accumulation the scalar path performs (its
        # early exit at 0.0 only skips multiplications by zero).  The
        # n-th power runs through python's float pow: numpy's
        # vectorized pow differs from libm in the last ulp, which
        # would break the bit-identity contract at knife-edge
        # midpoints; the vector is one midpoint per confidence, so the
        # python loop is negligible next to the sf kernel.
        prob = np.ones_like(t_vec)
        for rates, size in profiles:
            if per_point:
                # One padded-window row per midpoint, each sized from
                # its own q·t — row i is bitwise
                # shared_ladder_sf(rates, [t_i])[0].
                sf = shared_ladder_sf_batch([rates] * t_vec.size, t_vec)
            else:
                sf = shared_ladder_sf(rates, t_vec)
            member = 1.0 - sf
            powered = np.fromiter(
                ((m**size if m > 0.0 else 0.0) for m in member.tolist()),
                dtype=float,
                count=member.size,
            )
            prob = prob * powered
        return prob

    # Bracket: sum of group means, doubled until every confidence is
    # cleared (the scalar path's loop, vectorized over confidences).
    start = sum(
        group_onhold_latency(g, group_prices[g.key])
        + (group_processing_latency(g) if include_processing else 0.0)
        for g in groups
    )
    hi = np.full_like(confidences, max(start, 1e-9))
    while True:
        unmet = completion(hi) < confidences
        if not np.any(unmet):
            break
        hi = np.where(unmet, hi * 2.0, hi)
        if np.any(hi > 1e12):
            raise ModelError("quantile search diverged; rates too small?")
    lo = np.zeros_like(hi)
    for _ in range(n_iterations):
        mid = 0.5 * (lo + hi)
        meets = completion(mid) >= confidences
        hi = np.where(meets, mid, hi)
        lo = np.where(meets, lo, mid)
    return hi


# ---------------------------------------------------------------------------
# comparator registry
# ---------------------------------------------------------------------------

#: Name resolved when callers pass ``comparator=None``.
DEFAULT_DEADLINE_COMPARATOR = "batched"

_COMPARATORS: dict[str, Callable] = {}


def _builtin_comparator(name: str) -> Optional[Callable]:
    # Lazy so perf.deadline imports no core/experiment module at import
    # time (the core comparator itself routes back through this module).
    if name == "batched":
        from ..core.deadline import min_cost_for_deadline

        return min_cost_for_deadline
    if name == "reference":
        from .reference import reference_min_cost_for_deadline

        return reference_min_cost_for_deadline
    return None


def register_deadline_comparator(
    name: str, comparator: Callable, replace: bool = False
) -> Callable:
    """Register a min-cost-for-deadline implementation under *name*.

    Registered names are accepted wherever a ``comparator=`` parameter
    appears (``deadline_cost_frontier``, ``run_deadline_sweep``, the
    CLI ``deadline`` command) — the same string-resolution contract as
    the evaluation-engine registry.
    """
    if not name:
        raise ModelError("a deadline comparator needs a non-empty name")
    if not replace and (
        name in _COMPARATORS or _builtin_comparator(name) is not None
    ):
        raise ModelError(
            f"deadline comparator {name!r} is already registered; pass "
            "replace=True to override"
        )
    _COMPARATORS[name] = comparator
    return comparator


_MISSING = object()


def _unwrap_comparator(comparator):
    """Pull the ``comparator`` field out of a config-like object.

    Mirrors :func:`repro.perf.engine._unwrap_engine`: strings, ``None``
    and callables pass through; an object exposing a ``comparator``
    attribute (:class:`repro.api.RunConfig`) contributes that attribute
    instead, so every ``comparator=`` parameter accepts a run config.
    """
    if comparator is None or isinstance(comparator, str) or callable(comparator):
        return comparator
    inner = getattr(comparator, "comparator", _MISSING)
    if inner is not _MISSING:
        return inner
    return comparator


def get_deadline_comparator(
    comparator: Union[str, Callable, None, object],
) -> Callable:
    """Resolve a ``comparator=`` argument to a callable.

    Accepts a callable (returned as-is), a registered name, ``None``
    (the ``"batched"`` default), or a config object exposing a
    ``comparator`` attribute (:class:`repro.api.RunConfig`).  Every
    comparator has the
    :func:`repro.core.deadline.min_cost_for_deadline` signature.  This
    is the single place comparator defaulting happens — the dual of
    :func:`repro.perf.engine.resolve_engine`.
    """
    comparator = _unwrap_comparator(comparator)
    if comparator is None:
        comparator = DEFAULT_DEADLINE_COMPARATOR
    if callable(comparator):
        return comparator
    resolved = _COMPARATORS.get(comparator)
    if resolved is None:
        resolved = _builtin_comparator(comparator)
    if resolved is None:
        from ..errors import RegistryError

        raise RegistryError.unknown(
            "deadline comparator",
            comparator,
            available_deadline_comparators(),
            hint="or a callable",
        )
    return resolved


def deadline_comparator_name(
    comparator: Union[str, Callable, None, object],
) -> str:
    """Display name of a ``comparator=`` argument.

    The name reported in sweep results and CLI titles: a registered
    name is itself, ``None`` is the default's name, and a bare callable
    falls back to its ``__name__`` (or ``"custom"``).  Accepts config
    objects exactly as :func:`get_deadline_comparator` does.
    """
    comparator = _unwrap_comparator(comparator)
    if comparator is None:
        return DEFAULT_DEADLINE_COMPARATOR
    if isinstance(comparator, str):
        return comparator
    return getattr(comparator, "__name__", "custom")


def available_deadline_comparators() -> tuple[str, ...]:
    """Registered comparator names (CLI choices come from here)."""
    return tuple(sorted({"batched", "reference", *_COMPARATORS}))
