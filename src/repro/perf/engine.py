"""First-class Monte-Carlo evaluation engines + a name registry.

The experiment stack used to thread a stringly ``engine="scalar"``
parameter from the CLI through the runner and figure harnesses down to
:mod:`repro.core.latency`, where an ``if engine == ...`` chain picked
the sampler.  Engines are now objects:

* :class:`ScalarEngine` — the seed's task-by-task streaming sampler;
  smallest memory footprint, the default.
* :class:`BatchEngine` — one ``(n_phases, n_samples)`` matrix draw
  (:func:`repro.perf.batch.sample_job_latencies_batch`); bit-identical
  to scalar seed-for-seed.
* :class:`ChunkedBatchEngine` — the batch draw streamed in phase-row
  blocks, capping memory at ``chunk_rows × n_samples`` while staying
  bit-identical to the unchunked batch (and therefore to scalar) for
  every chunk size.

String names keep working everywhere an ``engine=`` parameter is
accepted — they resolve through :func:`get_engine`, so the CLI and any
existing caller passing ``"scalar"``/``"batch"`` is unaffected, and
new engines become available to every sweep path at once via
:func:`register_engine`.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..errors import ModelError, RegistryError
from ..resilience.faults import active_fault_state, site_check
from ..stats.rng import RandomState
from ..stats.rng import ensure_rng as _ensure_rng

__all__ = [
    "EvaluationEngine",
    "ScalarEngine",
    "BatchEngine",
    "ChunkedBatchEngine",
    "register_engine",
    "get_engine",
    "resolve_engine",
    "available_engines",
    "DEFAULT_ENGINE",
]


class EvaluationEngine:
    """Strategy interface: draw job-latency realizations of an allocation.

    Concrete engines differ only in *how* the phase exponentials are
    drawn (streaming loop vs matrix vs chunked matrix); all registered
    engines consume the RNG stream in the same order, so swapping
    engines never changes an experiment's numbers.
    """

    #: Registry name; subclasses must set it.
    name: str = ""

    def sample(
        self,
        problem,
        allocation,
        n_samples: int,
        rng: RandomState = None,
        include_processing: bool = True,
    ) -> np.ndarray:
        """Return *n_samples* iid job-latency draws."""
        raise NotImplementedError

    def mean_latency(
        self,
        problem,
        allocation,
        n_samples: int,
        rng: RandomState = None,
        include_processing: bool = True,
    ) -> float:
        """Monte-Carlo mean of :meth:`sample`."""
        return float(
            self.sample(
                problem, allocation, n_samples, rng, include_processing
            ).mean()
        )

    def run_replications(
        self,
        simulator,
        orders,
        seeds,
        recorders=None,
        start_time: float = 0.0,
        replication_offset: int = 0,
        **run_kwargs,
    ) -> list:
        """Run R independent market-simulator replications.

        The reference fan-out: one sequential seeded run per
        replication against any simulator exposing the
        ``_run_job_with_rng`` protocol
        (:class:`~repro.market.simulator.AgentSimulator`,
        :class:`~repro.market.simulator.AggregateSimulator`).  Engines
        with a lock-step fast path (``"agent-batch"``) override this;
        every engine must produce bit-identical trajectories for the
        same seeds, so — as with :meth:`sample` — swapping engines
        never changes an experiment's numbers.

        ``replication_offset`` is the global index of ``seeds[0]`` when
        the caller hands this engine a *shard* of a larger ensemble
        (:func:`repro.exec.sharded_run_replications`): fault-site
        coordinates, recorder bookkeeping and error labels all use the
        global index ``offset + k``, so an injected fault or a timeout
        lands on the same replication no matter how the ensemble was
        split across executors.

        A :class:`~repro.errors.SimulationError` raised inside one
        replication (e.g. ``max_sim_time`` exceeded) is re-raised with
        its replication index prefixed (and set as ``.replication``),
        so callers can tell *which* world failed regardless of the
        engine's execution order.
        """
        from ..errors import SimulationError

        if recorders is None:
            recorders = [None] * len(seeds)
        offset = int(replication_offset)
        fault_state = active_fault_state()
        results = []
        for k, (seed, rec) in enumerate(zip(seeds, recorders)):
            site_check("market.replication", replication=offset + k)
            if fault_state is not None:
                fault_state.enter_replication(offset + k)
            try:
                results.append(
                    simulator._run_job_with_rng(
                        orders, _ensure_rng(seed), rec, start_time,
                        **run_kwargs,
                    )
                )
            except SimulationError as exc:
                wrapped = SimulationError(
                    f"replication {offset + k}: {exc}"
                )
                wrapped.replication = offset + k
                raise wrapped from exc
        return results

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class ScalarEngine(EvaluationEngine):
    """The seed sampler: stream task by task, O(n_samples) memory."""

    name = "scalar"

    def sample(
        self, problem, allocation, n_samples, rng=None, include_processing=True
    ) -> np.ndarray:
        from ..core.latency import _sample_job_latencies_scalar

        site_check("engine.sample", engine=self.name)
        return _sample_job_latencies_scalar(
            problem, allocation, n_samples, rng, include_processing
        )


class BatchEngine(EvaluationEngine):
    """One phase-matrix draw per call; bit-identical to scalar.

    ``chunk_rows`` streams the matrix in row blocks (see
    :func:`repro.perf.batch.sample_job_latencies_batch`); ``None``
    materializes the full matrix.
    """

    name = "batch"

    def __init__(self, chunk_rows: Optional[int] = None) -> None:
        if chunk_rows is not None and chunk_rows < 1:
            raise ModelError(f"chunk_rows must be >= 1, got {chunk_rows}")
        self.chunk_rows = chunk_rows

    def sample(
        self, problem, allocation, n_samples, rng=None, include_processing=True
    ) -> np.ndarray:
        from .batch import sample_job_latencies_batch

        site_check("engine.sample", engine=self.name)
        return sample_job_latencies_batch(
            problem,
            allocation,
            n_samples,
            rng,
            include_processing,
            chunk_rows=self.chunk_rows,
        )


class ChunkedBatchEngine(BatchEngine):
    """Batch sampling with bounded memory (default 64 phase rows).

    Peak extra memory is ``chunk_rows × n_samples`` doubles instead of
    ``n_phases × n_samples`` — the engine to pick when the full phase
    matrix would not fit.  Results are bit-identical to ``batch`` (and
    ``scalar``) for every chunk size.
    """

    name = "chunked-batch"

    def __init__(self, chunk_rows: int = 64) -> None:
        super().__init__(chunk_rows=chunk_rows)
        if self.chunk_rows is None:
            raise ModelError("ChunkedBatchEngine needs a chunk_rows value")


#: Resolution order shown in CLI help / error messages.
_REGISTRY: dict[str, EvaluationEngine] = {}

#: Name of the engine used when callers pass nothing.
DEFAULT_ENGINE = "scalar"


def register_engine(
    engine: EvaluationEngine, name: Optional[str] = None, replace: bool = False
) -> EvaluationEngine:
    """Add *engine* to the registry under *name* (default: its own).

    Registered names are what ``--engine`` on the CLI and every
    ``engine=`` parameter accept.  Pass ``replace=True`` to override an
    existing binding (e.g. to re-tune the default chunk size).
    """
    key = name or engine.name
    if not key:
        raise ModelError("an evaluation engine needs a non-empty name")
    if key in _REGISTRY and not replace:
        raise ModelError(
            f"engine {key!r} is already registered; pass replace=True to "
            "override"
        )
    _REGISTRY[key] = engine
    return engine


def get_engine(engine: Union[str, EvaluationEngine, None]) -> EvaluationEngine:
    """Resolve an ``engine=`` argument to an :class:`EvaluationEngine`.

    Accepts an engine instance (returned as-is), a registered name, or
    ``None`` (the default engine).  Unknown names raise
    :class:`~repro.errors.RegistryError` listing what is available.
    """
    if engine is None:
        engine = DEFAULT_ENGINE
    if isinstance(engine, EvaluationEngine):
        return engine
    resolved = _REGISTRY.get(engine)
    if resolved is None:
        raise RegistryError.unknown(
            "engine", engine, _REGISTRY,
            hint="or an EvaluationEngine instance",
        )
    return resolved


_MISSING = object()


def _unwrap_engine(engine):
    """Pull the ``engine`` field out of a config-like object.

    Strings, ``None`` and engine instances pass through unchanged; any
    other object carrying an ``engine`` attribute (a
    :class:`repro.api.RunConfig`, or anything structurally like one)
    contributes that attribute instead.  Centralizing the unwrap here
    means every ``engine=`` parameter in the library accepts a run
    config directly.
    """
    if engine is None or isinstance(engine, (str, EvaluationEngine)):
        return engine
    inner = getattr(engine, "engine", _MISSING)
    if inner is not _MISSING:
        return inner
    return engine


def resolve_engine(
    engine: Union[str, EvaluationEngine, None, object],
) -> EvaluationEngine:
    """The single place ``engine=`` defaulting happens.

    Accepts everything :func:`get_engine` does **plus** a config
    object exposing an ``engine`` attribute
    (:class:`repro.api.RunConfig`); ``None`` — directly or inside the
    config — resolves to :data:`DEFAULT_ENGINE`.  Every ``engine=``
    call site in the library routes through here, so the None → default
    rule lives in exactly one function.
    """
    return get_engine(_unwrap_engine(engine))


def available_engines() -> tuple[str, ...]:
    """Registered engine names, sorted (CLI choices come from here)."""
    return tuple(sorted(_REGISTRY))


register_engine(ScalarEngine())
register_engine(BatchEngine())
register_engine(ChunkedBatchEngine())
