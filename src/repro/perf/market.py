"""Vectorized multi-replication agent-market engine (``"agent-batch"``).

Replication studies — the Fig. 3/4/5(a)(b) harnesses, CI estimation,
and every engine-agreement check of the paper's modelling assumption —
run the same :class:`~repro.market.simulator.AgentSimulator` job R
times with independent seeds.  The scalar engine replays its
per-event Python loop once per replication; this module advances all R
replications **in lock-step** instead:

* every replication owns its seeded generator (default ``PCG64``
  streams via :func:`repro.stats.rng.spawn`; counter-based ``Philox``
  generators can be passed explicitly as seeds), and each round the
  engine draws exactly the values the scalar loop would draw, in the
  same per-stream order — trajectories are bit-identical by
  construction;
* open-task state lives in ``(R × S)`` structure-of-arrays — one
  weight (or utility) row per replication over the job's publish
  slots, tombstoned on acceptance exactly like the scalar Fenwick
  index — so the per-arrival task choice is one masked
  ``cumsum``/``argmax`` over all choosing replications at once;
* completion bookkeeping (``next_rep``, ``answers``, ``total_paid``,
  ``per_atomic``) is kept in column arrays/lists and materialized into
  ordinary :class:`~repro.market.simulator.JobResult` objects at the
  end; with a :class:`~repro.market.trace.NullTraceRecorder` the
  event/record materialization is skipped entirely.

The engine covers the three built-in choice models
(price-proportional, softmax, greedy) on a plain
:class:`~repro.market.worker.WorkerPool`; custom choice models,
subclassed pools (e.g. nonstationary arrivals), and duplicate atomic
ids fall back to the sequential reference fan-out — same results,
reference speed.  The seed scalar loop is preserved verbatim as
:func:`repro.perf.reference.reference_agent_run_job` and the
equivalence is certified in ``tests/perf/test_market_replications.py``.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush

import numpy as np

from ..errors import SimulationError
from ..market.events import Event, EventKind
from ..market.simulator import AgentSimulator, JobResult
from ..market.task import PublishedTask, _task_uid
from ..market.trace import TaskRecord, TraceRecorder
from ..market.worker import (
    GreedyPriceChoice,
    PriceProportionalChoice,
    SoftmaxChoice,
    WorkerPool,
)
from ..resilience.faults import active_fault_state, site_check
from ..stats.rng import ensure_rng
from .engine import ScalarEngine, register_engine

__all__ = ["AgentBatchEngine", "batch_agent_run_replications"]

_WEIGHTED, _SOFTMAX, _GREEDY = 0, 1, 2


def _builtin_kind(model):
    """Lock-step driver for *model*, or ``None`` for custom models.

    Exact-type checks on purpose: a subclass may override ``choose``
    or ``make_index`` with arbitrary RNG consumption, which only the
    sequential fallback can reproduce.
    """
    if type(model) is PriceProportionalChoice:
        return _WEIGHTED
    if type(model) is SoftmaxChoice:
        return _SOFTMAX
    if type(model) is GreedyPriceChoice:
        return _GREEDY
    return None


def _pool_is_lockstep_safe(pool) -> bool:
    """True when the pool's RNG-consuming hooks are the base-class ones.

    ``next_arrival_delay`` and ``worker_accuracy`` are the two pool
    methods the scalar loop hands the replication's generator; the
    lock-step engine inlines their base implementations, so an
    override (e.g. :class:`~repro.market.dynamics.NonstationaryWorkerPool`
    thinning) must route through the sequential fallback instead.
    """
    cls = type(pool)
    return (
        cls.next_arrival_delay is WorkerPool.next_arrival_delay
        and cls.worker_accuracy is WorkerPool.worker_accuracy
    )


# Per-replication trace modes.
_TRACE_NULL, _TRACE_PLAIN, _TRACE_FULL = 0, 1, 2


def _trace_mode(recorder) -> int:
    if getattr(recorder, "is_null", False):
        return _TRACE_NULL
    if recorder is None or (
        type(recorder) is TraceRecorder and not recorder.keep_events
    ):
        return _TRACE_PLAIN
    return _TRACE_FULL


def batch_agent_run_replications(
    simulator: AgentSimulator,
    orders,
    seeds,
    recorders=None,
    start_time: float = 0.0,
    replication_offset: int = 0,
) -> list[JobResult]:
    """Advance R seeded :class:`AgentSimulator` replications in lock-step.

    Produces exactly what R sequential ``simulator.run_job``-with-seed
    runs would produce — same event order, chosen tasks, answers,
    makespan, and trace content per replication (task ``uid`` /
    ``worker_id`` values come from the same global counters, assigned
    in replication order).  Callers normally reach this through
    ``run_replications(engine="agent-batch")``.

    ``replication_offset`` is the global index of ``seeds[0]`` when the
    seeds are a shard of a larger ensemble — fault-site coordinates and
    error labels use the global index, matching the base engine.
    """
    orders = list(orders)
    if not orders:
        raise SimulationError("job must contain at least one atomic task")
    offset = int(replication_offset)
    pool = simulator.pool
    model = pool.choice_model
    kind = _builtin_kind(model)
    ids = [o.atomic_task_id for o in orders]
    if (
        kind is None
        or not _pool_is_lockstep_safe(pool)
        or len(set(ids)) != len(ids)
    ):
        # Sequential reference fan-out (bit-identical by definition).
        return ScalarEngine.run_replications(
            ScalarEngine(), simulator, orders, seeds, recorders, start_time,
            replication_offset=offset,
        )

    R = len(seeds)
    if recorders is None:
        recorders = [None] * R
    t0 = float(start_time)
    max_sim_time = simulator.max_sim_time

    # Per-replication fault checks fire up front (the lock-step engine
    # interleaves replications, but a replication-k fault aborts the
    # whole fan-out either way — same error as the sequential path);
    # injected worker abandonment shares the sequential path's
    # per-replication counters, so trajectories stay engine-identical.
    for k in range(R):
        site_check("market.replication", replication=offset + k)
    fault_state = active_fault_state()
    abandon_state = (
        fault_state
        if fault_state is not None and fault_state.has_abandon
        else None
    )

    # -- per-order constants (mirror the scalar loop's expressions) --
    n = len(orders)
    reps_j = [o.repetitions for o in orders]
    prices_j = [o.prices for o in orders]
    attract_j = [o.task_type.attractiveness for o in orders]
    inv_proc_j = [1.0 / o.task_type.processing_rate for o in orders]
    base_acc_j = [o.task_type.accuracy for o in orders]
    answer_j = [
        o if (o.payload is not None and hasattr(o.payload, "sample_answer"))
        else None
        for o in orders
    ]
    any_answers = any(a is not None for a in answer_j)
    T = sum(reps_j)
    # Every repetition completes exactly once, so each replication's
    # total_paid is the job's full cost — no per-completion summing.
    job_cost = sum(sum(p) for p in prices_j)

    if kind == _SOFTMAX:
        beta = model.beta
        leave_utility = model.leave_utility
        # β·log(price·attractiveness) — the scalar index's _utility().
        val_jr = [
            [beta * math.log(p * attract_j[j]) for p in prices_j[j]]
            for j in range(n)
        ]
    elif kind == _WEIGHTED:
        leave_weight = model.leave_weight
        val_jr = [
            [p * attract_j[j] for p in prices_j[j]] for j in range(n)
        ]
    else:  # greedy: slot value = price (argmax ties to first slot = lowest uid)
        val_jr = [[float(p) for p in prices_j[j]] for j in range(n)]

    jitter = pool.accuracy_jitter
    draws_on_completion = jitter != 0.0 or any_answers
    inv_lambda = 1.0 / pool.arrival_rate

    # -- per-replication state ----------------------------------------
    gens = [ensure_rng(seed) for seed in seeds]
    std_exp = [g.standard_exponential for g in gens]
    draw_d = [g.random for g in gens]

    modes = [_trace_mode(rec) for rec in recorders]
    plain_traces = [
        (rec if rec is not None else TraceRecorder())
        if modes[r] == _TRACE_PLAIN
        else None
        for r, rec in enumerate(recorders)
    ]

    dead_val = -math.inf if kind == _SOFTMAX else 0.0
    slot_val = np.full((R, T), dead_val)
    slot_val[:, :n] = np.array([val_jr[j][0] for j in range(n)])

    softmax = kind == _SOFTMAX
    greedy = kind == _GREEDY

    # Event-ordering state: each replication has exactly one pending
    # arrival (time + push seq) and a heap of in-flight completions
    # ``(time, seq, slot)`` — together exactly the scalar EventQueue's
    # contents, with the same (time, push-seq) order.
    next_arr = [0.0] * R
    arr_seq = [0] * R
    seq_ctr = [1] * R  # seq 0 is the initial arrival push

    # Open-pool and job bookkeeping (per-replication scalar state).
    open_cnt = [n] * R
    slot_cnt = [n] * R
    slot_j = [list(range(n)) for _ in range(R)]
    wctr = [0] * R
    comp_heap: list[list] = [[] for _ in range(R)]
    next_rep = [[1] * n for _ in range(R)]
    remaining = [T] * R
    per_atomic = [[0.0] * n for _ in range(R)]
    answers = [
        [[] for _ in range(n)] if any_answers else None for _ in range(R)
    ]
    done = [False] * R
    failed: dict[int, bool] = {}

    # Trace columns, kept only as the replication's recorder needs:
    # null recorders skip everything; plain recorders stream arrival
    # times straight into the recorder and keep per-slot columns for
    # the finalize pass; keep-events / custom recorders additionally
    # log every event for a full replay.
    arrivals = [
        plain_traces[r].worker_arrival_times
        if plain_traces[r] is not None
        else None
        for r in range(R)
    ]
    keep_cols = [modes[r] != _TRACE_NULL for r in range(R)]
    slot_rep = [[0] * n if keep_cols[r] else None for r in range(R)]
    slot_price = [
        [p[0] for p in prices_j] if keep_cols[r] else None for r in range(R)
    ]
    pub_t = [[t0] * n if keep_cols[r] else None for r in range(R)]
    acc_t = [[0.0] * n if keep_cols[r] else None for r in range(R)]
    com_t = [[0.0] * n if keep_cols[r] else None for r in range(R)]
    wkr_of = [[-1] * n if keep_cols[r] else None for r in range(R)]
    comp_order = [
        [] if modes[r] == _TRACE_PLAIN else None for r in range(R)
    ]
    logs = [
        [(0, t0, s) for s in range(n)] if modes[r] == _TRACE_FULL else None
        for r in range(R)
    ]
    ans_of = [
        [None] * n if modes[r] == _TRACE_FULL else None for r in range(R)
    ]

    for r in range(R):
        # First arrival: pool.next_arrival_delay == Exp(Λ) drawn from
        # the replication's own stream (scale applied by
        # multiplication, exactly as Generator.exponential does).
        next_arr[r] = t0 + std_exp[r]() * inv_lambda

    # -- lock-step arrival rounds -------------------------------------
    # One round advances every live replication up to (and through) its
    # next worker arrival: in-flight completions earlier than the
    # pending arrival are drained first, in (time, push-seq) order —
    # exactly the scalar EventQueue's pop order — then the arrival is
    # processed.  Completions and publishes are pure per-replication
    # bookkeeping; the *task choice* for every arrival that found an
    # open pool is resolved afterwards in one batched cumsum/argmax
    # over the ``(|E| × S)`` structure-of-arrays weight rows, and the
    # acceptances (one processing draw each) close the round.
    act_list = list(range(R))
    # All-null fan-outs (the latency/answer replication-study shape)
    # skip every per-event trace branch behind one local bool.
    trace_any = any(m != _TRACE_NULL for m in modes)
    E_list: list[int] = []
    tE_list: list[float] = []
    while act_list:
        E_list.clear()
        tE_list.clear()
        dropped = False
        for r in act_list:
            ta = next_arr[r]
            sa = arr_seq[r]
            heap = comp_heap[r]
            # -- drain completions before the pending arrival --------
            while heap:
                head = heap[0]
                t = head[0]
                if ta < t or (ta == t and sa < head[1]):
                    break
                if t > max_sim_time:
                    failed[r] = True
                    done[r] = True
                    dropped = True
                    break
                s = head[2]
                heappop(heap)
                j = slot_j[r][s]
                if draws_on_completion:
                    accuracy = (
                        pool.worker_accuracy(base_acc_j[j], gens[r])
                        if jitter != 0.0
                        else base_acc_j[j]
                    )
                    order = answer_j[j]
                    answer = (
                        order.payload.sample_answer(gens[r], accuracy)
                        if order is not None
                        else None
                    )
                    if any_answers:
                        answers[r][j].append(answer)
                    aof = ans_of[r]
                    if aof is not None:
                        aof[s] = answer
                ct = com_t[r] if trace_any else None
                if ct is not None:
                    ct[s] = t
                    co = comp_order[r]
                    if co is not None:
                        co.append(s)
                    else:
                        logs[r].append((2, t, s))
                nr = next_rep[r][j]
                if nr < reps_j[j]:
                    # Publish the next repetition at the completion time.
                    next_rep[r][j] = nr + 1
                    s2 = slot_cnt[r]
                    slot_cnt[r] = s2 + 1
                    slot_j[r].append(j)
                    slot_val[r, s2] = val_jr[j][nr]
                    open_cnt[r] += 1
                    if ct is not None:
                        slot_rep[r].append(nr)
                        slot_price[r].append(prices_j[j][nr])
                        pub_t[r].append(t)
                        acc_t[r].append(0.0)
                        ct.append(0.0)
                        wkr_of[r].append(-1)
                        log = logs[r]
                        if log is not None:
                            log.append((0, t, s2))
                            ans_of[r].append(None)
                else:
                    per_atomic[r][j] = t
                remaining[r] -= 1
                if remaining[r] == 0:
                    done[r] = True
                    dropped = True
                    break
            if done[r]:
                continue
            # -- worker arrival --------------------------------------
            if ta > max_sim_time:
                failed[r] = True
                done[r] = True
                dropped = True
                continue
            if trace_any:
                arrs = arrivals[r]
                if arrs is not None:
                    arrs.append(ta)
                else:
                    log = logs[r]
                    if log is not None:
                        log.append((1, ta, -1))
            arr_seq[r] = seq_ctr[r]
            seq_ctr[r] += 1
            next_arr[r] = ta + std_exp[r]() * inv_lambda
            if open_cnt[r]:
                E_list.append(r)
                tE_list.append(ta)

        # -- batched task choice over the open-pool weight rows ------
        if E_list:
            E = np.array(E_list, dtype=np.intp)
            vals = slot_val[E]
            if softmax:
                # Max-shifted logit weights over live slots; dead
                # slots are -inf utilities → weight exactly 0.
                ref = np.maximum(vals.max(axis=1), leave_utility)
                cs = np.cumsum(np.exp(vals - ref[:, None]), axis=1)
                task_tot = cs[:, -1]
                tot_list = (
                    task_tot
                    + np.exp(np.minimum(leave_utility - ref, 700.0))
                ).tolist()
            elif not greedy:
                cs = np.cumsum(vals, axis=1)
                task_tot = cs[:, -1]
                tot_list = (task_tot + leave_weight).tolist()
            if greedy:  # deterministic, consumes no RNG
                t_rs = E_list
                t_ss = np.argmax(vals, axis=1).tolist()
                t_ts = tE_list
            else:
                us = [
                    # One raw double per choose, scaled by the pool
                    # total: ``random() * total`` is bitwise
                    # ``uniform(0.0, total)`` (loc 0, scale total), the
                    # scalar paths' exact stream consumption.
                    draw_d[r]() * tot
                    for r, tot in zip(E_list, tot_list)
                ]
                # Leave iff u >= task total; a taker's u sits below the
                # last prefix sum by construction, so argmax always
                # lands on a live slot (first prefix > u — the Fenwick
                # descent's selection rule).
                pick = np.argmax(
                    cs > np.array(us)[:, None], axis=1
                ).tolist()
                tt_list = task_tot.tolist()
                t_rs = []
                t_ss = []
                t_ts = []
                for i, r in enumerate(E_list):
                    if us[i] < tt_list[i]:
                        t_rs.append(r)
                        t_ss.append(pick[i])
                        t_ts.append(tE_list[i])
            for r, s, t in zip(t_rs, t_ss, t_ts):
                # -- acceptance --------------------------------------
                if abandon_state is not None and abandon_state.abandon_fires(
                    offset + r
                ):
                    # Injected abandonment: the slot stays live (no
                    # tombstone), no worker id, no processing draw —
                    # exactly the scalar loop's skip.
                    continue
                slot_val[r, s] = dead_val
                open_cnt[r] -= 1
                at = acc_t[r] if trace_any else None
                if at is not None:
                    at[s] = t
                    wkr_of[r][s] = wctr[r]
                wctr[r] += 1
                q = seq_ctr[r]
                seq_ctr[r] = q + 1
                heappush(
                    comp_heap[r],
                    (t + std_exp[r]() * inv_proc_j[slot_j[r][s]], q, s),
                )

        if dropped:
            act_list = [r for r in act_list if not done[r]]

    if failed:
        k = offset + min(failed)
        raise SimulationError(
            f"replication {k}: simulation exceeded "
            f"max_sim_time={max_sim_time}; the market is too slow for "
            "this job (rates too small?)"
        )

    return _finalize(
        simulator, orders, recorders, modes, plain_traces, t0,
        ids, reps_j, job_cost, per_atomic, answers, wctr, slot_cnt,
        logs, slot_j, slot_rep, slot_price, pub_t, acc_t, com_t,
        wkr_of, ans_of, comp_order,
    )


def _finalize(
    simulator, orders, recorders, modes, plain_traces, t0,
    ids, reps_j, job_cost, per_atomic, answers, wctr, slot_cnt,
    logs, slot_j, slot_rep, slot_price, pub_t, acc_t, com_t,
    wkr_of, ans_of, comp_order,
):
    """Materialize per-replication :class:`JobResult`s and traces.

    Worker ids and task uids are assigned from the same global
    counters the scalar loop uses, in replication order, so sequential
    runs against the same pool line up exactly.
    """
    pool = simulator.pool
    R = len(recorders)
    n = len(orders)
    type_name_j = [o.task_type.name for o in orders]

    # Worker-id assignment: replication r's workers follow r-1's,
    # exactly as sequential run_job calls against one pool would
    # number them.  The base pool hands out consecutive ids, so an
    # offset per replication suffices; an overridden new_worker_id is
    # consulted once per acceptance, in the same global order.
    worker_ids: list = [None] * R
    if type(pool).new_worker_id is WorkerPool.new_worker_id:
        base = pool._next_worker_id
        offsets = []
        for r in range(R):
            offsets.append(base)
            base += wctr[r]
        pool._next_worker_id = base
    else:
        offsets = [0] * R
        for r in range(R):
            worker_ids[r] = [pool.new_worker_id() for _ in range(wctr[r])]

    results = []
    for r in range(R):
        rec = recorders[r]
        mode = modes[r]
        if mode == _TRACE_PLAIN:
            # Stream the columns straight into the recorder: uids in
            # publish order (= slot order) from the shared counter,
            # TaskRecord rows in completion order — value-identical to
            # the scalar loop's trace without PublishedTask/Event
            # intermediaries.  (worker_arrival_times was filled during
            # the run.)
            trace = plain_traces[r]
            uids = [next(_task_uid) for _ in range(slot_cnt[r])]
            records = trace.records
            sj, sr, sp = slot_j[r], slot_rep[r], slot_price[r]
            pt, at, ct = pub_t[r], acc_t[r], com_t[r]
            tid = ids
            new_record = TaskRecord.__new__
            append = records.append
            for s in comp_order[r]:
                j = sj[s]
                # Bypass the frozen-dataclass __init__ (one
                # object.__setattr__ per field): filling the instance
                # dict directly yields field-identical, ==/hash-equal
                # records at ~1/3 the cost.
                record = new_record(TaskRecord)
                record.__dict__.update(
                    uid=uids[s],
                    atomic_task_id=tid[j],
                    repetition_index=sr[s],
                    type_name=type_name_j[j],
                    price=sp[s],
                    published_at=pt[s],
                    accepted_at=at[s],
                    completed_at=ct[s],
                )
                append(record)
        elif mode == _TRACE_FULL:
            trace = rec
            tasks: dict[int, PublishedTask] = {}
            offset = offsets[r]
            wids = worker_ids[r]
            for kind_code, t, s in logs[r]:
                if kind_code == 0:
                    j = slot_j[r][s]
                    task = PublishedTask(
                        task_type=orders[j].task_type,
                        price=slot_price[r][s],
                        atomic_task_id=ids[j],
                        repetition_index=slot_rep[r][s],
                        payload=orders[j].payload,
                    )
                    task.mark_published(t)
                    tasks[s] = task
                    trace.on_event(
                        Event(t, EventKind.TASK_PUBLISHED, payload=task)
                    )
                elif kind_code == 1:
                    trace.on_event(Event(t, EventKind.WORKER_ARRIVED))
                else:
                    task = tasks[s]
                    local = wkr_of[r][s]
                    task.mark_accepted(
                        acc_t[r][s],
                        worker_id=(
                            offset + local if wids is None else wids[local]
                        ),
                    )
                    task.mark_completed(t, answer=ans_of[r][s])
                    trace.on_event(
                        Event(t, EventKind.TASK_COMPLETED, payload=task)
                    )
                    trace.on_task_done(task)
        else:
            # Null recorder: no trace to build, but the sequential
            # engine's PublishedTask construction consumes one global
            # uid per publish even then — burn the same count so later
            # replications' (and runs') uids line up engine-for-engine.
            trace = rec
            for _ in range(slot_cnt[r]):
                next(_task_uid)

        pa = dict(zip(ids, per_atomic[r]))
        ans = answers[r]
        results.append(
            JobResult(
                trace=trace,
                makespan=max(pa.values()) - t0,
                per_atomic_completion=pa,
                answers=dict(
                    zip(
                        ids,
                        ans
                        if ans is not None
                        else ([None] * k for k in reps_j),
                    )
                ),
                total_paid=job_cost,
            )
        )
    return results


class AgentBatchEngine(ScalarEngine):
    """``"agent-batch"``: lock-step SoA replication fan-out.

    Monte-Carlo allocation sampling (:meth:`sample`) is inherited from
    the scalar engine — all registered engines are stream-compatible
    there — while :meth:`run_replications` advances agent-market
    replications in lock-step.  Workloads the lock-step kernel cannot
    drive (custom choice models, overridden pools, aggregate
    simulators, duplicate atomic ids) transparently fall back to the
    sequential reference fan-out.
    """

    name = "agent-batch"

    def run_replications(
        self,
        simulator,
        orders,
        seeds,
        recorders=None,
        start_time: float = 0.0,
        replication_offset: int = 0,
        **run_kwargs,
    ) -> list:
        if run_kwargs or not isinstance(simulator, AgentSimulator):
            return super().run_replications(
                simulator, orders, seeds, recorders, start_time,
                replication_offset=replication_offset,
                **run_kwargs,
            )
        return batch_agent_run_replications(
            simulator, orders, seeds, recorders, start_time,
            replication_offset=replication_offset,
        )


register_engine(AgentBatchEngine())
