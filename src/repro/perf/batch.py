"""Batched Monte-Carlo and numeric evaluation of job latencies.

Three entry points, all array-shaped where the scalar engines are
loop-shaped:

* :func:`sample_job_latencies_batch` — the drop-in batch counterpart of
  :func:`repro.core.latency.sample_job_latencies`.  All phases of all
  tasks are drawn as one ``(n_phases, n_samples)`` standard-exponential
  matrix (a single RNG call), scaled per phase and reduced per task.
  The matrix rows are laid out in exactly the order the scalar sampler
  consumes the stream, so results are **bit-identical seed-for-seed**.
* :class:`BatchAggregateSimulator` — batch counterpart of
  :class:`repro.market.simulator.AggregateSimulator` for latency
  studies: one ``(n_samples, n_phases)`` matrix replaces ``n_samples``
  event-by-event ``run_job`` calls (again stream-compatible, so sample
  ``j`` equals the ``j``-th scalar ``run_job`` makespan bit-for-bit).
* :func:`evaluate_allocations` — score many candidate allocations of
  one problem in a single call; the numeric backend shares one
  evaluation grid across all candidates so the process-level kernel
  cache (:mod:`repro.perf.cache`) collapses repeated rate profiles.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from ..core.problem import Allocation, HTuningProblem
from ..errors import ModelError, SimulationError
from ..stats.rng import RandomState, ensure_rng

__all__ = [
    "sample_job_latencies_batch",
    "BatchAggregateSimulator",
    "evaluate_allocations",
]


def _segment_sum_sequential(
    matrix: np.ndarray, starts: np.ndarray, axis: int
) -> np.ndarray:
    """Per-segment sums accumulated strictly left-to-right.

    ``np.add.reduceat`` reassociates (pairwise/SIMD) and so drifts from
    the scalar engines' ``total += phase`` accumulation in the last
    ulp; summing one phase row at a time keeps the batch results
    bit-identical while staying vectorized across samples.
    """
    matrix = np.moveaxis(matrix, axis, 0)
    n_phases = matrix.shape[0]
    bounds = list(starts) + [n_phases]
    out = np.empty((len(starts),) + matrix.shape[1:])
    for k in range(len(starts)):
        acc = matrix[bounds[k]].copy()
        for r in range(bounds[k] + 1, bounds[k + 1]):
            acc += matrix[r]
        out[k] = acc
    return np.moveaxis(out, 0, axis)


def _allocation_phase_layout(
    problem: HTuningProblem,
    allocation: Allocation,
    include_processing: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-phase scales (1/rate) in scalar draw order + task row starts."""
    scales: list[float] = []
    starts: list[int] = []
    for task in problem.tasks:
        starts.append(len(scales))
        for price in allocation[task.task_id]:
            scales.append(1.0 / task.onhold_rate(price))
            if include_processing:
                scales.append(1.0 / task.processing_rate)
    return np.asarray(scales), np.asarray(starts)


def sample_job_latencies_batch(
    problem: HTuningProblem,
    allocation: Allocation,
    n_samples: int,
    rng: RandomState = None,
    include_processing: bool = True,
    chunk_rows: Optional[int] = None,
) -> np.ndarray:
    """Draw *n_samples* iid job-latency realizations in one RNG call.

    Equivalent to :func:`repro.core.latency.sample_job_latencies` —
    bit-identical given the same seed — but the per-task python loop is
    replaced by one ``(n_phases, n_samples)`` matrix draw, a per-row
    scale, a sequential left-to-right segment sum (NOT ``reduceat``,
    which reassociates and would break bit-identity) and a max.
    Memory is ``O(n_phases · n_samples)`` (the scalar path streams
    task by task).

    ``chunk_rows`` streams the matrix in blocks of at most that many
    phase rows, capping peak memory at ``chunk_rows × n_samples``
    doubles.  The full matrix is filled row-major by the generator, so
    drawing row blocks in order consumes the stream identically —
    results are **bit-identical to the unchunked draw for every chunk
    size** (each task's phases still accumulate strictly left to
    right, even across block boundaries).
    """
    if n_samples < 1:
        raise ModelError(f"n_samples must be >= 1, got {n_samples}")
    if chunk_rows is not None and chunk_rows < 1:
        raise ModelError(f"chunk_rows must be >= 1, got {chunk_rows}")
    problem.validate_allocation(allocation)
    gen = ensure_rng(rng)
    scales, starts = _allocation_phase_layout(
        problem, allocation, include_processing
    )
    n_rows = len(scales)
    if chunk_rows is None or chunk_rows >= n_rows:
        draws = gen.standard_exponential((n_rows, n_samples))
        draws *= scales[:, None]
        totals = _segment_sum_sequential(draws, starts, axis=0)
        return totals.max(axis=0)

    # Chunked path: stream row blocks, keeping one accumulator for the
    # task currently being summed (tasks may straddle block edges) and
    # folding finished tasks into the running job max.
    is_start = np.zeros(n_rows, dtype=bool)
    is_start[starts] = True
    job = np.full(n_samples, -np.inf)
    acc: Optional[np.ndarray] = None
    for r0 in range(0, n_rows, chunk_rows):
        r1 = min(r0 + chunk_rows, n_rows)
        block = gen.standard_exponential((r1 - r0, n_samples))
        block *= scales[r0:r1, None]
        for r in range(r0, r1):
            row = block[r - r0]
            if is_start[r]:
                if acc is not None:
                    np.maximum(job, acc, out=job)
                acc = row.copy()
            else:
                acc += row
    np.maximum(job, acc, out=job)
    return job


class BatchAggregateSimulator:
    """Vectorized replication engine for the aggregate (HPU) model.

    Samples whole replication batches of a job at once: the phase
    matrix has one row per simulated job and one column per
    (repetition × phase), so ``n_samples`` makespans cost one
    ``standard_exponential`` call instead of ``n_samples`` event-loop
    runs.  The column layout mirrors the order in which
    :class:`~repro.market.simulator.AggregateSimulator` consumes its
    RNG stream, so with equal seeds sample ``j`` is bit-identical to
    the ``j``-th scalar ``run_job`` makespan.

    The replication sampler (:meth:`sample_makespans`) is a *latency*
    engine: per-repetition answer sampling (payloads exposing
    ``sample_answer``) would interleave with the phase draws in the
    scalar stream and is rejected there.  :meth:`run_job` is the
    answer-capable single-realization entry point: it draws every
    phase of the job as one vector, then samples answers in task
    order, so crowd-DB queries and quality-aware payloads can leave
    the scalar event loop (its RNG stream layout is its own — it is
    deterministic seed-for-seed but not stream-compatible with
    :class:`~repro.market.simulator.AggregateSimulator`).
    """

    def __init__(self, market, seed: RandomState = None) -> None:
        self.market = market
        self._rng = ensure_rng(seed)

    def _order_layout(
        self, orders, allow_payloads: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        scales: list[float] = []
        starts: list[int] = []
        for order in orders:
            payload = order.payload
            if (
                not allow_payloads
                and payload is not None
                and hasattr(payload, "sample_answer")
            ):
                raise SimulationError(
                    "sample_makespans is latency-only; payloads with "
                    "sample_answer need AggregateSimulator or "
                    "BatchAggregateSimulator.run_job"
                )
            starts.append(len(scales))
            rate_p = order.task_type.processing_rate
            for price in order.prices:
                rate_o = self.market.onhold_rate(order.task_type, price)
                scales.append(1.0 / rate_o)
                scales.append(1.0 / rate_p)
        return np.asarray(scales), np.asarray(starts)

    def sample_makespans(
        self,
        orders: Sequence,
        n_samples: int,
        repetition_mode: str = "sequential",
        chunk_samples: Optional[int] = None,
    ) -> np.ndarray:
        """*n_samples* iid job makespans for *orders* (one matrix draw).

        ``chunk_samples`` streams the replication matrix in blocks of
        at most that many samples (rows), capping memory at
        ``chunk_samples × n_phases`` doubles.  Rows are filled in
        sample-major order, so chunking consumes the RNG stream
        identically — makespans are bit-identical to the unchunked
        draw for every chunk size.
        """
        if repetition_mode not in ("sequential", "parallel"):
            raise SimulationError(
                f"repetition_mode must be 'sequential' or 'parallel', got "
                f"{repetition_mode!r}"
            )
        orders = list(orders)
        if not orders:
            raise SimulationError("job must contain at least one atomic task")
        if n_samples < 1:
            raise SimulationError(f"n_samples must be >= 1, got {n_samples}")
        if chunk_samples is not None and chunk_samples < 1:
            raise SimulationError(
                f"chunk_samples must be >= 1, got {chunk_samples}"
            )
        scales, starts = self._order_layout(orders)
        if chunk_samples is None or chunk_samples >= n_samples:
            return self._makespan_block(
                scales, starts, n_samples, repetition_mode
            )
        out = np.empty(n_samples)
        for s0 in range(0, n_samples, chunk_samples):
            s1 = min(s0 + chunk_samples, n_samples)
            out[s0:s1] = self._makespan_block(
                scales, starts, s1 - s0, repetition_mode
            )
        return out

    def _makespan_block(
        self,
        scales: np.ndarray,
        starts: np.ndarray,
        n_samples: int,
        repetition_mode: str,
    ) -> np.ndarray:
        draws = self._rng.standard_exponential((n_samples, len(scales)))
        draws *= scales[None, :]
        if repetition_mode == "sequential":
            # A repetition publishes when the previous one finishes, so
            # the task completes at the sum of its phase draws.
            totals = _segment_sum_sequential(draws, starts, axis=1)
        else:
            # All repetitions run at once; each chain is onhold +
            # processing and the task completes at the max chain.
            chains = draws[:, 0::2] + draws[:, 1::2]
            totals = np.maximum.reduceat(chains, starts // 2, axis=1)
        return totals.max(axis=1)

    def run_job(
        self,
        orders: Sequence,
        recorder=None,
        start_time: float = 0.0,
        repetition_mode: str = "sequential",
    ):
        """Run one realization of a job, answers included.

        Drop-in counterpart of
        :meth:`repro.market.simulator.AggregateSimulator.run_job`: all
        phase latencies are drawn as one vector, then answers are
        sampled per repetition in task order (through each payload's
        ``sample_answer`` at the task type's accuracy).  Deterministic
        given the simulator seed, but the stream layout differs from
        the scalar simulator's per-repetition interleaving, so the two
        engines' realizations are *statistically* (not bitwise)
        equivalent.
        """
        return self._run_job_with_rng(
            orders, self._rng, recorder, start_time, repetition_mode
        )

    def run_replications(
        self,
        orders: Sequence,
        n_replications=None,
        *,
        seeds=None,
        recorders=None,
        start_time: float = 0.0,
        repetition_mode: str = "sequential",
        engine=None,
    ) -> list:
        """Run *orders* as R independent seeded replications.

        Same protocol as
        :meth:`repro.market.simulator.AgentSimulator.run_replications`;
        each replication draws its phase vector from its own stream
        (this engine's own layout — deterministic per seed).
        """
        from ..market.simulator import (
            _resolve_replication_recorders,
            _resolve_replication_seeds,
        )
        from .engine import resolve_engine

        seeds = _resolve_replication_seeds(self._rng, n_replications, seeds)
        recorders = _resolve_replication_recorders(recorders, len(seeds))
        return resolve_engine(engine).run_replications(
            self, orders, seeds, recorders, start_time,
            repetition_mode=repetition_mode,
        )

    def _run_job_with_rng(
        self,
        orders: Sequence,
        rng,
        recorder=None,
        start_time: float = 0.0,
        repetition_mode: str = "sequential",
    ):
        """The :meth:`run_job` body against an explicit generator."""
        from ..market.simulator import JobResult, _draw_answer
        from ..market.task import PublishedTask
        from ..market.trace import TraceRecorder

        if repetition_mode not in ("sequential", "parallel"):
            raise SimulationError(
                f"repetition_mode must be 'sequential' or 'parallel', got "
                f"{repetition_mode!r}"
            )
        orders = list(orders)
        if not orders:
            raise SimulationError("job must contain at least one atomic task")
        scales, starts = self._order_layout(orders, allow_payloads=True)
        draws = rng.standard_exponential(len(scales))
        draws *= scales

        trace = recorder if recorder is not None else TraceRecorder()
        record = not getattr(trace, "is_null", False)
        per_atomic: dict[int, float] = {}
        answers: dict[int, list[Any]] = {}
        total_paid = 0
        for i, order in enumerate(orders):
            row = int(starts[i])
            collected: list[Any] = []
            clock = float(start_time)
            finish = float(start_time)
            for rep_index, price in enumerate(order.prices):
                onhold = float(draws[row])
                processing = float(draws[row + 1])
                row += 2
                publish_at = (
                    clock if repetition_mode == "sequential" else float(start_time)
                )
                answer = _draw_answer(order, rng, order.task_type.accuracy)
                done = publish_at + onhold + processing
                if record:
                    task = PublishedTask(
                        task_type=order.task_type,
                        price=price,
                        atomic_task_id=order.atomic_task_id,
                        repetition_index=rep_index,
                        payload=order.payload,
                    )
                    task.mark_published(publish_at)
                    task.mark_accepted(publish_at + onhold)
                    task.mark_completed(done, answer=answer)
                    trace.on_task_done(task)
                collected.append(answer)
                total_paid += price
                clock = done
                finish = max(finish, done)
            per_atomic[order.atomic_task_id] = (
                clock if repetition_mode == "sequential" else finish
            )
            answers[order.atomic_task_id] = collected
        makespan = max(per_atomic.values()) - float(start_time)
        return JobResult(
            trace=trace,
            makespan=makespan,
            per_atomic_completion=per_atomic,
            answers=answers,
            total_paid=total_paid,
        )

    def mean_latency(
        self,
        orders: Sequence,
        n_samples: int,
        repetition_mode: str = "sequential",
    ) -> float:
        """Monte-Carlo mean job latency over *n_samples* replications."""
        return float(
            self.sample_makespans(orders, n_samples, repetition_mode).mean()
        )


def evaluate_allocations(
    problem: HTuningProblem,
    allocations: Sequence[Allocation],
    scoring: str = "mc",
    n_samples: int = 2000,
    rng: RandomState = None,
    include_processing: bool = True,
    grid_points: int = 2048,
    repetition_mode: str = "sequential",
) -> np.ndarray:
    """Score many candidate *allocations* of one problem at once.

    ``scoring="mc"`` draws each allocation's batch from one generator
    (deterministic given a seed).  ``scoring="numeric"`` integrates the
    exact survival function of every allocation **on one shared grid**
    wide enough for the slowest candidate, which lets the process-level
    cdf cache collapse every repeated (rates, grid) profile across the
    whole candidate set — the shape of an exhaustive/Pareto sweep.

    Returns an array of expected job latencies, one per allocation.
    Note the shared grid means numeric scores can differ from
    per-allocation :func:`~repro.core.latency.expected_job_latency`
    calls (which size their grid per allocation) by the integration
    error, not by model semantics.
    """
    from ..core.latency import (
        _expected_max_on_grid,
        _grid_upper,
        _rate_profiles,
    )

    allocations = list(allocations)
    if not allocations:
        raise ModelError("need at least one allocation to evaluate")
    if scoring not in ("mc", "numeric"):
        raise ModelError(
            f"unknown scoring {scoring!r}; expected 'mc' or 'numeric'"
        )
    if repetition_mode not in ("sequential", "parallel"):
        raise ModelError(
            f"repetition_mode must be 'sequential' or 'parallel', got "
            f"{repetition_mode!r}"
        )
    if scoring == "mc":
        if repetition_mode != "sequential":
            raise ModelError(
                "mc scoring models sequential repetitions only; use "
                "BatchAggregateSimulator.sample_makespans for parallel "
                "repetition batches"
            )
        gen = ensure_rng(rng)
        return np.array(
            [
                sample_job_latencies_batch(
                    problem, alloc, n_samples, gen, include_processing
                ).mean()
                for alloc in allocations
            ]
        )

    per_alloc_profiles = []
    upper = 0.0
    for alloc in allocations:
        problem.validate_allocation(alloc)
        profiles = _rate_profiles(problem, alloc)
        per_alloc_profiles.append(profiles)
        upper = max(
            upper,
            _grid_upper(profiles, problem.num_tasks, include_processing),
        )
    grid = np.linspace(0.0, upper, grid_points)

    return np.array(
        [
            _expected_max_on_grid(
                profiles, grid, include_processing, repetition_mode
            )
            for profiles in per_alloc_profiles
        ]
    )
