"""Array-backed budget-indexed dynamic programs (Algorithms 2 & 3).

The seed implementations of :func:`repro.core.repetition.budget_indexed_dp`
and the Algorithm-3 loop re-evaluated their group objective through a
lazily grown per-group ladder — two python function calls per
(budget level × group) state.  Here the whole cost surface is
precomputed up front as dense per-group tables ``E_i(p)`` (numpy
arrays over every reachable price), the marginal-gain columns
``E_i(p) − E_i(p+1)`` are materialized once, and the budget sweep reads
plain table entries.  The scan itself keeps the seed's exact candidate
order and ``1e-15`` tie-breaking, so **price vectors are bit-identical**
to the reference implementation for any cost function.

:func:`budget_indexed_dp_sweep` adds the sweep-level win: the DP state
at budget level ``x`` never depends on the terminal budget, so one pass
to the largest requested budget serves every smaller budget for free —
a budget sweep over one fixed task set costs one DP instead of one per
budget level.  (The Fig. 2 harness rebuilds its problem per budget
through a workload factory, so it does not route through the sweep
yet; see the ROADMAP open item.)
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from ..errors import InfeasibleAllocationError, ModelError

__all__ = [
    "group_cost_table",
    "budget_indexed_dp_fast",
    "budget_indexed_dp_sweep",
    "heterogeneous_price_scan",
    "heterogeneous_closeness_sweep",
]

#: Strict-improvement margin of the seed DP scans (kept verbatim).
_TIE_EPS = 1e-15


def group_cost_table(
    group,
    max_price: int,
    group_cost_fn: Callable,
) -> np.ndarray:
    """Dense ladder ``[E(1), …, E(max_price)]`` for one group."""
    if max_price < 1:
        raise ModelError(f"max_price must be >= 1, got {max_price}")
    return np.array(
        [group_cost_fn(group, p) for p in range(1, max_price + 1)], dtype=float
    )


def _prepare(groups, budget: int):
    if not groups:
        raise ModelError("need at least one group")
    unit_costs = tuple(g.unit_cost for g in groups)
    start_cost = sum(unit_costs)
    if budget < start_cost:
        raise InfeasibleAllocationError(budget, start_cost)
    return unit_costs, start_cost, budget - start_cost


def _run_dp(groups, residual: int, unit_costs, group_cost_fn):
    """Shared DP core: returns ``prices_at`` for every level 0..residual.

    ``prices_at[x]`` is the price tuple of the best state after
    spending ``x`` units beyond the all-ones base — identical, level by
    level, to the seed implementation's states.
    """
    n = len(groups)
    # Dense cost tables over every price reachable within `residual`
    # (one extra entry so the marginal of the top price is defined).
    tables = [
        group_cost_table(g, 2 + residual // u, group_cost_fn)
        for g, u in zip(groups, unit_costs)
    ]
    # gain[i][p-1] = E_i(p) − E_i(p+1): the marginal of buying group i
    # one increment from price p.  Python lists: the scan below reads
    # single entries, where list indexing beats 0-d numpy access.
    gains = [(t[:-1] - t[1:]).tolist() for t in tables]
    base_value = sum(float(t[0]) for t in tables)

    base_prices = tuple([1] * n)
    values: list[float] = [base_value]
    prices_at: list[tuple[int, ...]] = [base_prices]
    scan = tuple(zip(range(n), unit_costs, gains))

    for x in range(1, residual + 1):
        best_value = values[x - 1]
        best_i = -1
        best_prev: tuple[int, ...] = prices_at[x - 1]
        for i, u, gain in scan:
            if u > x:
                continue
            j = x - u
            prev_prices = prices_at[j]
            candidate = values[j] - gain[prev_prices[i] - 1]
            if candidate < best_value - _TIE_EPS:
                best_value = candidate
                best_i = i
                best_prev = prev_prices
        if best_i >= 0:
            lst = list(best_prev)
            lst[best_i] += 1
            prices_at.append(tuple(lst))
        else:
            prices_at.append(best_prev)
        values.append(best_value)
    return prices_at


def budget_indexed_dp_fast(
    groups,
    budget: int,
    group_cost_fn: Callable,
) -> dict[tuple, int]:
    """Algorithm 2's DP with precomputed cost tables.

    Same contract and bit-identical output as the seed
    ``budget_indexed_dp``; ``group_cost_fn(group, price)`` must be
    evaluable for every price up to ``1 + ⌊(B − Σu_i)/u_i⌋ + 1`` (the
    tables are built eagerly).
    """
    unit_costs, _start, residual = _prepare(groups, budget)
    final = _run_dp(groups, residual, unit_costs, group_cost_fn)[residual]
    return {g.key: final[i] for i, g in enumerate(groups)}


def budget_indexed_dp_sweep(
    groups,
    budgets: Iterable[int],
    group_cost_fn: Callable,
) -> dict[int, dict[tuple, int]]:
    """Run Algorithm 2's DP for many budgets in one pass.

    The DP state at level ``x`` is the same whatever the terminal
    budget, so a single run to ``max(budgets)`` yields every requested
    budget's price vector by reading the matching level — each entry is
    bit-identical to an individual ``budget_indexed_dp`` call.
    """
    budgets = [int(b) for b in budgets]
    if not budgets:
        raise ModelError("budget sweep needs at least one budget")
    unit_costs, start_cost, _ = _prepare(groups, max(budgets))
    for b in budgets:
        if b < start_cost:
            raise InfeasibleAllocationError(b, start_cost)
    prices_at = _run_dp(
        groups, max(budgets) - start_cost, unit_costs, group_cost_fn
    )
    out: dict[int, dict[tuple, int]] = {}
    for b in budgets:
        final = prices_at[b - start_cost]
        out[b] = {g.key: final[i] for i, g in enumerate(groups)}
    return out


def heterogeneous_price_scan(
    groups,
    residual: int,
    unit_costs: Sequence[int],
    group_cost_fn: Callable,
    phase2: Sequence[float],
    utopia_o1: float,
    utopia_o2: float,
    phase1_tables: Sequence[np.ndarray] | None = None,
) -> tuple[tuple[int, ...], list[np.ndarray]]:
    """Algorithm 3's budget scan over precomputed latency tables.

    Builds its own dense phase-1 tables from *group_cost_fn* (same
    reachable-price sizing as :func:`budget_indexed_dp_fast`, so the
    invariant lives in one place) and returns ``(prices, tables)`` —
    the tables let the caller read achieved objective values without
    re-evaluating the cost function.  The candidate order and tie
    margin replicate the seed loop in
    :mod:`repro.core.heterogeneous`, so the returned price vector is
    bit-identical; the closeness of each candidate is evaluated from
    table entries in one fused pass instead of rebuilding per-group
    latency lists through ladder calls.

    ``phase1_tables`` may be passed in by multi-budget callers; each
    table must cover at least ``2 + residual // unit_cost`` prices.
    Larger tables read the same entries, so sharing keeps results
    bit-identical.  The scan itself is the single-budget slice of
    :func:`heterogeneous_closeness_sweep`.
    """
    phase1_tables = _check_phase1_tables(
        groups, residual, unit_costs, group_cost_fn, phase1_tables
    )
    finals = heterogeneous_closeness_sweep(
        groups,
        [residual],
        unit_costs,
        group_cost_fn,
        phase2,
        [(utopia_o1, utopia_o2)],
        phase1_tables=phase1_tables,
    )
    return finals[0], phase1_tables


def _check_phase1_tables(
    groups, residual, unit_costs, group_cost_fn, phase1_tables
):
    """Build dense phase-1 tables, or validate caller-shared ones."""
    if phase1_tables is None:
        return [
            group_cost_table(g, 2 + residual // u, group_cost_fn)
            for g, u in zip(groups, unit_costs)
        ]
    phase1_tables = list(phase1_tables)
    for t, u in zip(phase1_tables, unit_costs):
        if len(t) < 2 + residual // u:
            raise ModelError(
                "shared phase-1 table too short for this residual; "
                f"need {2 + residual // u} entries, got {len(t)}"
            )
    return phase1_tables


def heterogeneous_closeness_sweep(
    groups,
    residuals: Sequence[int],
    unit_costs: Sequence[int],
    group_cost_fn: Callable,
    phase2: Sequence[float],
    utopias: Sequence[tuple[float, float]],
    phase1_tables: Sequence[np.ndarray] | None = None,
) -> list[tuple[int, ...]]:
    """One-pass Algorithm-3 closeness scan for many budgets at once.

    ``residuals[k]`` and ``utopias[k] = (o1*, o2*)`` describe budget
    ``k``; the return value is the final price tuple per budget, each
    **bit-identical** to an individual :func:`heterogeneous_price_scan`
    with that budget's utopia point.

    Why this is subtle: the DP *state* (the candidate price vectors and
    their raw objective coordinates ``(O1, O2)``) does not depend on
    the terminal budget, but the *decision* at each level compares
    closeness values ``|O1 − O1*| + |O2 − O2*|`` against
    budget-specific utopia coordinates with a ``1e-15`` strict-
    improvement margin — so a last-ulp tie can break differently for
    different budgets.  The sweep therefore walks one shared
    trajectory, evaluating each candidate's ``(O1, O2)`` **once** per
    level (the expensive fused table pass) and replaying only the
    cheap per-budget closeness comparison — in the seed's exact
    accumulation order, so every float matches.  On the rare level
    where two live budgets disagree about the winning candidate, the
    shared walk stops being valid for them and each disagreeing budget
    forks into a private continuation of the seed loop from the shared
    prefix.  Agreement is the overwhelmingly common case (in exact
    arithmetic the argmin is utopia-independent), so the sweep is one
    pass in practice while staying bit-exact even on adversarial ties.
    """
    if len(residuals) != len(utopias):
        raise ModelError(
            f"residuals/utopias length mismatch: "
            f"{len(residuals)} vs {len(utopias)}"
        )
    if not residuals:
        return []
    n = len(groups)
    residuals = [int(r) for r in residuals]
    for r in residuals:
        if r < 0:
            raise ModelError(f"residual must be >= 0, got {r}")
    max_residual = max(residuals)
    phase1_tables = _check_phase1_tables(
        groups, max_residual, unit_costs, group_cost_fn, phase1_tables
    )
    p1 = [t.tolist() for t in phase1_tables]
    ph2 = [float(v) for v in phase2]
    indices = range(n)
    scan = tuple(zip(range(n), unit_costs))

    def objective(prev: tuple[int, ...], bump: int) -> tuple[float, float]:
        # Raw (O1, O2) of `prev` with group `bump` raised one price
        # step (bump < 0 evaluates `prev` itself).  Accumulation order
        # matches the seed's sum()/max() so downstream closeness
        # values — and therefore tie decisions — are bit-identical.
        o1 = 0.0
        o2 = -np.inf
        for j in indices:
            p = prev[j] + 1 if j == bump else prev[j]
            v = p1[j][p - 1]
            o1 += v
            t = v + ph2[j]
            if t > o2:
                o2 = t
        return o1, o2

    def closeness(o1: float, o2: float, k: int) -> float:
        u1, u2 = utopias[k]
        return abs(o1 - u1) + abs(o2 - u2)

    def finish(
        prefix: list[tuple[int, ...]], start_x: int, k: int, value: float
    ):
        # Private continuation of the seed loop for budget `k` after a
        # tie disagreement: identical semantics to running the whole
        # scan alone, because the shared prefix was decision-identical
        # and `value` is the incumbent closeness carried from it.
        prices_at = list(prefix)
        for x in range(start_x, residuals[k] + 1):
            best_value = value
            best_i = -1
            best_prev = prices_at[x - 1]
            for i, u in scan:
                if u > x:
                    continue
                prev = prices_at[x - u]
                o1, o2 = objective(prev, i)
                candidate = closeness(o1, o2, k)
                if candidate < best_value - _TIE_EPS:
                    best_value = candidate
                    best_i = i
                    best_prev = prev
            if best_i >= 0:
                lst = list(best_prev)
                lst[best_i] += 1
                prices_at.append(tuple(lst))
            else:
                prices_at.append(best_prev)
            value = best_value
        return prices_at[residuals[k]]

    base_prices = tuple([1] * n)
    prices_at: list[tuple[int, ...]] = [base_prices]
    objs: list[tuple[float, float]] = [objective(base_prices, -1)]
    live = list(range(len(residuals)))
    cur_val = {k: closeness(*objs[0], k) for k in live}
    finals: dict[int, tuple[int, ...]] = {}

    for x in range(1, max_residual + 1):
        live = [k for k in live if residuals[k] >= x]
        if not live:
            break
        # Evaluate each candidate's raw objective once for all budgets.
        candidates = []
        for i, u in scan:
            if u > x:
                continue
            prev = prices_at[x - u]
            o1, o2 = objective(prev, i)
            candidates.append((i, prev, o1, o2))
        chosen: dict[int, int] = {}
        chosen_val: dict[int, float] = {}
        for k in live:
            best_value = cur_val[k]
            best_i = -1
            for i, _prev, o1, o2 in candidates:
                candidate = closeness(o1, o2, k)
                if candidate < best_value - _TIE_EPS:
                    best_value = candidate
                    best_i = i
            chosen[k] = best_i
            chosen_val[k] = best_value
        agreed = set(chosen.values())
        if len(agreed) > 1:
            # Last-ulp tie broke differently across budgets: the
            # shared trajectory can no longer serve all of them.  Every
            # still-live budget forks into its own seed-exact
            # continuation from the (decision-identical) prefix.
            for k in live:
                finals[k] = finish(prices_at, x, k, cur_val[k])
            live = []
            break
        best_i = agreed.pop()
        if best_i >= 0:
            entry = next(c for c in candidates if c[0] == best_i)
            lst = list(entry[1])
            lst[best_i] += 1
            prices_at.append(tuple(lst))
            objs.append((entry[2], entry[3]))
        else:
            prices_at.append(prices_at[x - 1])
            objs.append(objs[x - 1])
        for k in live:
            cur_val[k] = chosen_val[k]

    for k in range(len(residuals)):
        if k not in finals:
            finals[k] = prices_at[residuals[k]]
    return [finals[k] for k in range(len(residuals))]
