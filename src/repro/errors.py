"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch every library failure with a single ``except`` clause while
still being able to distinguish the common failure categories.

Every class carries a stable string :attr:`~ReproError.code` — the
machine-readable failure category the resilience layer files error
documents under (see :mod:`repro.resilience.document` and the error
code table in ``docs/robustness.md``).  Codes are part of the public
contract: they never change once shipped, so stored error documents
stay classifiable across versions.
"""

from __future__ import annotations

import difflib
from typing import ClassVar, Iterable

__all__ = [
    "ReproError",
    "BudgetError",
    "InfeasibleAllocationError",
    "ModelError",
    "InferenceError",
    "SimulationError",
    "PlanError",
    "RegistryError",
    "FaultInjectedError",
    "RunTimeoutError",
    "CheckpointError",
    "WorkerCrashError",
    "RemoteTaskError",
    "StoreError",
    "StoreCorruptError",
    "StoreStaleError",
    "StoreWriteError",
    "RunNotFoundError",
    "error_code",
]


class ReproError(Exception):
    """Base class for all exceptions raised by the ``repro`` library."""

    #: Stable machine-readable failure category (see module docstring).
    code: ClassVar[str] = "error"


class BudgetError(ReproError, ValueError):
    """Raised when a budget is malformed (non-integral, negative, ...)."""

    code = "budget-invalid"


class InfeasibleAllocationError(BudgetError):
    """Raised when the budget cannot cover the minimum feasible allocation.

    The paper's algorithms require every repetition of every task to
    receive at least one payment unit; a budget smaller than the total
    number of repetitions is infeasible (Algorithm 1, line 2).
    """

    code = "budget-infeasible"

    def __init__(self, budget: int, minimum_required: int) -> None:
        self.budget = int(budget)
        self.minimum_required = int(minimum_required)
        super().__init__(
            f"budget {self.budget} cannot cover the minimum of one unit per "
            f"repetition (need at least {self.minimum_required})"
        )


class ModelError(ReproError, ValueError):
    """Raised for invalid stochastic-model parameters (e.g. rate <= 0)."""

    code = "model-invalid"


class RegistryError(ModelError, LookupError):
    """Raised when a name does not resolve in one of the registries.

    Engines, comparators, experiments, workload families, fault plans,
    and executors all resolve strings through name registries; a miss
    raises this (still a :class:`ModelError`, so existing handlers keep
    working) with a message naming the available entries and — when the
    miss looks like a typo — the closest registered name.
    """

    code = "registry-lookup"

    @classmethod
    def unknown(
        cls,
        kind: str,
        name: object,
        available: Iterable[str],
        hint: str = "",
    ) -> "RegistryError":
        """The canonical registry-miss error for *kind*.

        Builds the shared message shape every registry uses —
        ``unknown <kind> <name!r>; expected one of [...]`` — appending
        a difflib-based *did you mean* suggestion when *name* is close
        to a registered entry, and *hint* (e.g. "or an
        EvaluationEngine instance") when given.
        """
        entries = sorted(str(entry) for entry in available)
        message = f"unknown {kind} {name!r}; expected one of {entries}"
        if hint:
            message += f" {hint}"
        close = difflib.get_close_matches(str(name), entries, n=1, cutoff=0.6)
        if close:
            message += f" — did you mean {close[0]!r}?"
        return cls(message)


class InferenceError(ReproError, RuntimeError):
    """Raised when parameter inference cannot produce an estimate."""

    code = "inference-failed"


class SimulationError(ReproError, RuntimeError):
    """Raised for inconsistent simulator state or invalid event usage."""

    code = "simulation-failed"


class FaultInjectedError(SimulationError):
    """Raised when an active :class:`repro.resilience.FaultPlan` fires.

    Carries the fault coordinates (``site``, ``replication``,
    ``occurrence``) so error documents can replay the exact failure.
    """

    code = "fault-injected"

    def __init__(
        self,
        site: str,
        replication=None,
        occurrence: int = 0,
        detail: str = "",
    ) -> None:
        self.site = site
        self.replication = replication
        self.occurrence = int(occurrence)
        where = f"injected fault at site {site!r} (occurrence {occurrence}"
        if replication is not None:
            where += f", replication {replication}"
        where += ")"
        if detail:
            where += f": {detail}"
        super().__init__(where)


class RunTimeoutError(ReproError, RuntimeError):
    """Raised when a run exceeds its :class:`TimeoutPolicy` budget.

    Timeouts are cooperative: the deadline is checked at the same
    named sites faults inject at, so a run is only interrupted at a
    point where its partial state can be discarded cleanly.
    """

    code = "timeout"

    def __init__(self, seconds: float, site: str = "") -> None:
        self.seconds = float(seconds)
        self.site = site or None
        at = f" at site {site!r}" if site else ""
        super().__init__(
            f"run exceeded its timeout budget of {seconds:g}s{at}"
        )


class WorkerCrashError(ReproError, RuntimeError):
    """Raised when a pool worker process dies under a task.

    The supervisor in :class:`repro.exec.ProcessExecutor` detects the
    death (nonzero exit code, lost pipe, stalled heartbeat), requeues
    the task up to ``RetryPolicy.attempts`` times, and raises/records
    this only once the retry budget is exhausted.  ``site`` mirrors the
    fault-site vocabulary (``worker.task`` / ``worker.spawn``).
    """

    code = "worker-crashed"

    def __init__(
        self,
        message: str,
        worker: int | None = None,
        exit_code: int | None = None,
        site: str = "worker.task",
    ) -> None:
        self.worker = worker
        self.exit_code = exit_code
        self.site = site
        super().__init__(message)


class RemoteTaskError(ReproError, RuntimeError):
    """A task shipped to a worker failed remotely.

    Raised in the parent for ``fail_fast`` batches and sharded
    replication runs when the remote failure class cannot be rebuilt
    locally; the worker's structured account is attached as
    ``error_document``.
    """

    code = "remote-task-failed"


class PlanError(ReproError, ValueError):
    """Raised when a crowd-DB query plan is malformed or unexecutable."""

    code = "plan-invalid"


class CheckpointError(ReproError, RuntimeError):
    """Raised for unreadable or inconsistent checkpoint journals."""

    code = "checkpoint-invalid"


class StoreError(ReproError, RuntimeError):
    """Base class for persistent result-store failures.

    The store's contract is that *no* failure below it ever produces a
    wrong answer: a raised ``StoreError`` means "this entry cannot be
    served" and the caller falls through to recompute.  Subclasses
    carry the stable quarantine codes recorded in reason documents.
    """

    code = "store-error"


class StoreCorruptError(StoreError):
    """A stored entry failed integrity verification.

    Raised for unreadable files, unparseable JSON, documents missing
    required keys, checksum mismatches, and fingerprint-field
    mismatches.  The offending bytes are quarantined verbatim so the
    corruption stays inspectable.
    """

    code = "store-corrupt"


class StoreStaleError(StoreError):
    """A stored entry's validity envelope no longer matches this process.

    The entry itself is intact, but it was written under a different
    package version, schema version, or engine/comparator registry
    contents — serving it could silently mix incompatible semantics,
    so it is quarantined and recomputed instead.
    """

    code = "store-stale"


class StoreWriteError(StoreError):
    """A store write could not be completed atomically.

    Writes are best-effort from the run's point of view: the computed
    result is still returned, only the memoization is lost.  Sessions
    catch this, count it, and carry on.
    """

    code = "store-write-failed"


class RunNotFoundError(ReproError, LookupError):
    """A run id addressed through the service layer is unknown.

    Run ids are content-addressed fingerprints, so an unknown id means
    the ``(spec, config)`` pair was never submitted to this service
    (or the service restarted without a persistent store backing it).
    """

    code = "run-not-found"

    def __init__(self, run_id: str) -> None:
        self.run_id = str(run_id)
        super().__init__(
            f"unknown run id {self.run_id!r}; submit the spec via "
            "POST /runs first"
        )


def error_code(exc: BaseException) -> str:
    """The stable code of *exc* (``"error"`` for non-library failures)."""
    return getattr(type(exc), "code", None) or "error"
