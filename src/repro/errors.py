"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch every library failure with a single ``except`` clause while
still being able to distinguish the common failure categories.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "BudgetError",
    "InfeasibleAllocationError",
    "ModelError",
    "InferenceError",
    "SimulationError",
    "PlanError",
]


class ReproError(Exception):
    """Base class for all exceptions raised by the ``repro`` library."""


class BudgetError(ReproError, ValueError):
    """Raised when a budget is malformed (non-integral, negative, ...)."""


class InfeasibleAllocationError(BudgetError):
    """Raised when the budget cannot cover the minimum feasible allocation.

    The paper's algorithms require every repetition of every task to
    receive at least one payment unit; a budget smaller than the total
    number of repetitions is infeasible (Algorithm 1, line 2).
    """

    def __init__(self, budget: int, minimum_required: int) -> None:
        self.budget = int(budget)
        self.minimum_required = int(minimum_required)
        super().__init__(
            f"budget {self.budget} cannot cover the minimum of one unit per "
            f"repetition (need at least {self.minimum_required})"
        )


class ModelError(ReproError, ValueError):
    """Raised for invalid stochastic-model parameters (e.g. rate <= 0)."""


class InferenceError(ReproError, RuntimeError):
    """Raised when parameter inference cannot produce an estimate."""


class SimulationError(ReproError, RuntimeError):
    """Raised for inconsistent simulator state or invalid event usage."""


class PlanError(ReproError, ValueError):
    """Raised when a crowd-DB query plan is malformed or unexecutable."""
