"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch every library failure with a single ``except`` clause while
still being able to distinguish the common failure categories.

Every class carries a stable string :attr:`~ReproError.code` — the
machine-readable failure category the resilience layer files error
documents under (see :mod:`repro.resilience.document` and the error
code table in ``docs/robustness.md``).  Codes are part of the public
contract: they never change once shipped, so stored error documents
stay classifiable across versions.
"""

from __future__ import annotations

from typing import ClassVar

__all__ = [
    "ReproError",
    "BudgetError",
    "InfeasibleAllocationError",
    "ModelError",
    "InferenceError",
    "SimulationError",
    "PlanError",
    "RegistryError",
    "FaultInjectedError",
    "RunTimeoutError",
    "CheckpointError",
    "error_code",
]


class ReproError(Exception):
    """Base class for all exceptions raised by the ``repro`` library."""

    #: Stable machine-readable failure category (see module docstring).
    code: ClassVar[str] = "error"


class BudgetError(ReproError, ValueError):
    """Raised when a budget is malformed (non-integral, negative, ...)."""

    code = "budget-invalid"


class InfeasibleAllocationError(BudgetError):
    """Raised when the budget cannot cover the minimum feasible allocation.

    The paper's algorithms require every repetition of every task to
    receive at least one payment unit; a budget smaller than the total
    number of repetitions is infeasible (Algorithm 1, line 2).
    """

    code = "budget-infeasible"

    def __init__(self, budget: int, minimum_required: int) -> None:
        self.budget = int(budget)
        self.minimum_required = int(minimum_required)
        super().__init__(
            f"budget {self.budget} cannot cover the minimum of one unit per "
            f"repetition (need at least {self.minimum_required})"
        )


class ModelError(ReproError, ValueError):
    """Raised for invalid stochastic-model parameters (e.g. rate <= 0)."""

    code = "model-invalid"


class RegistryError(ModelError, LookupError):
    """Raised when a name does not resolve in one of the registries.

    Engines, comparators, experiments, workload families, and fault
    plans all resolve strings through name registries; a miss raises
    this (still a :class:`ModelError`, so existing handlers keep
    working) with a message naming the available entries.
    """

    code = "registry-lookup"


class InferenceError(ReproError, RuntimeError):
    """Raised when parameter inference cannot produce an estimate."""

    code = "inference-failed"


class SimulationError(ReproError, RuntimeError):
    """Raised for inconsistent simulator state or invalid event usage."""

    code = "simulation-failed"


class FaultInjectedError(SimulationError):
    """Raised when an active :class:`repro.resilience.FaultPlan` fires.

    Carries the fault coordinates (``site``, ``replication``,
    ``occurrence``) so error documents can replay the exact failure.
    """

    code = "fault-injected"

    def __init__(
        self,
        site: str,
        replication=None,
        occurrence: int = 0,
        detail: str = "",
    ) -> None:
        self.site = site
        self.replication = replication
        self.occurrence = int(occurrence)
        where = f"injected fault at site {site!r} (occurrence {occurrence}"
        if replication is not None:
            where += f", replication {replication}"
        where += ")"
        if detail:
            where += f": {detail}"
        super().__init__(where)


class RunTimeoutError(ReproError, RuntimeError):
    """Raised when a run exceeds its :class:`TimeoutPolicy` budget.

    Timeouts are cooperative: the deadline is checked at the same
    named sites faults inject at, so a run is only interrupted at a
    point where its partial state can be discarded cleanly.
    """

    code = "timeout"

    def __init__(self, seconds: float, site: str = "") -> None:
        self.seconds = float(seconds)
        self.site = site or None
        at = f" at site {site!r}" if site else ""
        super().__init__(
            f"run exceeded its timeout budget of {seconds:g}s{at}"
        )


class PlanError(ReproError, ValueError):
    """Raised when a crowd-DB query plan is malformed or unexecutable."""

    code = "plan-invalid"


class CheckpointError(ReproError, RuntimeError):
    """Raised for unreadable or inconsistent checkpoint journals."""

    code = "checkpoint-invalid"


def error_code(exc: BaseException) -> str:
    """The stable code of *exc* (``"error"`` for non-library failures)."""
    return getattr(type(exc), "code", None) or "error"
