"""Fault-grid tests for the ``store.*`` injection sites.

The invariant every cell certifies: **an injected store failure never
propagates into a result**.  Whatever fires — unreadable entries,
failed writes, at-rest corruption — the run recomputes and returns a
payload identical to the fault-free run's.

A fault plan is part of the config, so it changes the fingerprint:
comparisons against a fault-free run go through
``to_dict()["payload"]``, never the whole document.
"""

from __future__ import annotations

import pytest

from repro.api import RunConfig, Session
from repro.errors import StoreWriteError, error_code
from repro.resilience import FaultPlan, FaultRule

from store_tiny import tiny_specs


def plan(site, at=(0,)):
    return FaultPlan(rules=(FaultRule(site=site, at=tuple(at)),))


def payload(result):
    return result.to_dict()["payload"]


@pytest.fixture
def clean_payload(fig3_spec):
    return payload(Session(RunConfig()).run(fig3_spec))


class TestStoreWriteFault:
    def test_write_failure_loses_memoization_not_the_run(
        self, store, fig3_spec, clean_payload
    ):
        session = Session(RunConfig(faults=plan("store.write")))
        result = session.run(fig3_spec, store=store)
        assert payload(result) == clean_payload
        # The entry was never written: every run under this plan
        # recomputes (fresh fault state per run, so at=[0] always fires).
        assert len(store) == 0
        again = session.run(fig3_spec, store=store)
        assert payload(again) == clean_payload
        assert session.runs_completed == 2
        assert store.stats()["write_failures"] == 2

    def test_put_raises_typed_error(self, store):
        state = plan("store.write").activate()
        with pytest.raises(StoreWriteError) as excinfo:
            store.put("ab" * 8, {"x": 1}, fault_state=state)
        assert error_code(excinfo.value) == "store-write-failed"
        assert "store.write" in str(excinfo.value)

    def test_batch_counts_write_failures(self, store, clean_payload):
        config = RunConfig(faults=plan("store.write", at=[0, 1, 2]))
        report = Session(config).run_many(tiny_specs(), store=store)
        assert report.ok
        assert report.store["write_failures"] == 3
        assert len(store) == 0
        assert payload(report.outcomes[1].result) == clean_payload


class TestStoreCorruptFault:
    def test_corruption_is_caught_on_the_next_read(
        self, store, fig3_spec, clean_payload
    ):
        session = Session(RunConfig(faults=plan("store.corrupt")))
        first = session.run(fig3_spec, store=store)
        assert payload(first) == clean_payload
        assert len(store) == 1  # the corrupt write "succeeded"
        # The next run's verify-before-serve catches the flip,
        # quarantines, and recomputes — the caller never sees bad data.
        second = session.run(fig3_spec, store=store)
        assert payload(second) == clean_payload
        assert session.runs_completed == 2
        assert store.stats()["quarantined"] == 1
        reasons = store.quarantined()
        assert reasons and reasons[0]["code"] == "store-corrupt"

    def test_verify_reports_injected_corruption(self, store, fig3_spec):
        session = Session(RunConfig(faults=plan("store.corrupt")))
        session.run(fig3_spec, store=store)
        report = store.verify()
        assert not report.ok
        assert report.quarantined[0][1] == "store-corrupt"


class TestStoreReadFault:
    def test_read_failure_quarantines_good_entry_and_recomputes(
        self, store, fig3_spec, clean_payload
    ):
        session = Session(RunConfig(faults=plan("store.read")))
        first = session.run(fig3_spec, store=store)  # miss: entry absent
        assert session.runs_completed == 1
        # The entry now exists, so the next lookup consults the fault:
        # the (perfectly good) entry is treated as unreadable.
        second = session.run(fig3_spec, store=store)
        assert session.runs_completed == 2
        assert payload(second) == payload(first) == clean_payload
        assert store.stats()["quarantined"] == 1
        # The recompute wrote the entry back.
        assert len(store) == 1

    def test_occurrences_only_advance_on_existing_entries(self, store):
        # at=[1] over a warm three-entry batch: the *second lookup that
        # finds a file* fires, whichever spec that is.  The cold batch
        # never consults the site (absent entries miss before the fault
        # check), so its occurrence counter stays at zero.
        config = RunConfig(faults=plan("store.read", at=[1]))
        session = Session(config)
        cold = session.run_many(tiny_specs(), store=store)
        assert cold.store == {
            "hits": 0, "misses": 3, "quarantined": 0, "write_failures": 0,
        }
        warm = session.run_many(tiny_specs(), store=store)
        assert warm.store == {
            "hits": 2, "misses": 1, "quarantined": 1, "write_failures": 0,
        }
        assert [o.served for o in warm.outcomes] == [True, False, True]
        # The recompute healed the store (the miss was rewritten), so
        # the next batch repeats the same pattern: every entry exists,
        # occurrence 1 fires again, and everything else is served.
        again = session.run_many(tiny_specs(), store=store)
        assert again.store["hits"] == 2
        assert again.store["quarantined"] == 1

    def test_unreached_occurrence_never_fires(self, store, fig3_spec):
        config = RunConfig(
            faults=FaultPlan(rules=(FaultRule(site="store.read", at=(5,)),))
        )
        session = Session(config)
        session.run(fig3_spec, store=store)
        served = session.run(fig3_spec, store=store)
        assert session.runs_completed == 1
        assert served is not None
        assert store.stats()["quarantined"] == 0


class TestFaultPlanIdentity:
    def test_fault_plan_changes_the_fingerprint(self, store, fig3_spec):
        plain = Session(RunConfig()).run(fig3_spec, store=store)
        faulted = Session(RunConfig(faults=plan("store.write"))).run(
            fig3_spec
        )
        # The plan is identity: a faulted config can never be served a
        # fault-free config's entry (or vice versa).
        assert plain.fingerprint != faulted.fingerprint
        assert payload(plain) == payload(faulted)
