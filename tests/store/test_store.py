"""Unit tests for :class:`repro.store.ResultStore`.

Everything here drives the store directly with plain JSON documents —
the integrity machinery (atomic writes, checksum + envelope
verification, quarantine) does not care what a result document
contains, only that it round-trips canonically.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import (
    ModelError,
    StoreCorruptError,
    StoreError,
    StoreStaleError,
    error_code,
)
from repro.store import (
    ResultStore,
    current_envelope,
    registry_contents_hash,
    resolve_store,
)

DOC = {"experiment": "fig3", "payload": {"answer": 42.0}}
TOKEN = "ab" * 8
OTHER = "cd" * 8


def put_one(store, token=TOKEN, doc=DOC, **kwargs):
    store.put(token, doc, **kwargs)
    return store.path_for(token)


class TestRoundTrip:
    def test_put_then_lookup_hits(self, store):
        put_one(store)
        lookup = store.lookup(TOKEN)
        assert lookup.hit
        assert lookup.status == "succeeded"
        assert lookup.result == DOC
        assert not lookup.quarantined and lookup.code is None

    def test_get_returns_document(self, store):
        put_one(store)
        assert store.get(TOKEN) == DOC
        assert store.get(OTHER) is None

    def test_degraded_status_round_trips(self, store):
        put_one(store, status="degraded")
        assert store.lookup(TOKEN).status == "degraded"

    def test_entry_file_is_canonical_json(self, store):
        path = put_one(store)
        blob = path.read_bytes()
        entry = json.loads(blob)
        recanonical = json.dumps(
            entry, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        assert blob == recanonical
        assert set(entry) == {
            "fingerprint", "status", "result", "checksum", "envelope",
        }
        assert entry["envelope"] == current_envelope()

    def test_no_stray_temp_files_after_put(self, store):
        path = put_one(store)
        stray = [p for p in path.parent.iterdir() if p.name.startswith(".")]
        assert stray == []

    def test_overwrite_is_idempotent(self, store):
        put_one(store)
        put_one(store)
        assert len(store) == 1
        assert store.lookup(TOKEN).hit

    def test_counters(self, store):
        put_one(store)
        store.lookup(TOKEN)
        store.lookup(OTHER)
        assert store.stats() == {
            "hits": 1,
            "misses": 1,
            "quarantined": 0,
            "writes": 1,
            "write_failures": 0,
        }

    def test_contains_and_enumeration(self, store):
        assert TOKEN not in store
        assert store.fingerprints() == []
        put_one(store)
        put_one(store, token=OTHER)
        assert TOKEN in store and OTHER in store
        assert store.fingerprints() == sorted([TOKEN, OTHER])
        assert len(store) == 2
        summaries = list(store.entries())
        assert [e["fingerprint"] for e in summaries] == sorted([TOKEN, OTHER])
        assert all(e["intact"] and e["experiment"] == "fig3" for e in summaries)


class TestValidation:
    def test_rejects_unservable_status(self, store):
        with pytest.raises(ModelError):
            store.put(TOKEN, DOC, status="failed")

    @pytest.mark.parametrize(
        "token", ["", "a/b", "a.json", "../escape", 42, None]
    )
    def test_rejects_malformed_tokens(self, store, token):
        with pytest.raises(ModelError):
            store.path_for(token)

    def test_resolve_store(self, store, tmp_path):
        assert resolve_store(None) is None
        assert resolve_store(store) is store
        opened = resolve_store(tmp_path / "other")
        assert isinstance(opened, ResultStore)
        assert opened.root == tmp_path / "other"
        with pytest.raises(ModelError):
            resolve_store(42)


class TestCorruptionQuarantine:
    def flip_byte(self, path):
        # Flip a letter inside the result document (not the envelope or
        # checksum fields), so the checksum verification is what trips.
        blob = bytearray(path.read_bytes())
        blob[blob.index(b'"result":') + 11] ^= 0x01
        path.write_bytes(bytes(blob))

    def test_bit_flip_quarantines_and_misses(self, store):
        path = put_one(store)
        self.flip_byte(path)
        lookup = store.lookup(TOKEN)
        assert not lookup.hit
        assert lookup.quarantined
        assert lookup.code == StoreCorruptError.code
        # The entry moved aside verbatim with a typed reason next to it.
        assert not path.exists()
        reasons = store.quarantined()
        assert len(reasons) == 1
        assert reasons[0]["code"] == "store-corrupt"
        assert reasons[0]["fingerprint"] == TOKEN
        assert "checksum mismatch" in reasons[0]["message"]
        quarantined_file = store.quarantine_dir / reasons[0]["quarantined_file"]
        assert quarantined_file.exists()

    def test_truncation_quarantines(self, store):
        path = put_one(store)
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        lookup = store.lookup(TOKEN)
        assert lookup.quarantined and lookup.code == StoreCorruptError.code
        assert "not valid JSON" in store.quarantined()[0]["message"]

    def test_missing_keys_quarantine(self, store):
        path = put_one(store)
        path.write_text(json.dumps({"fingerprint": TOKEN}))
        assert store.lookup(TOKEN).code == StoreCorruptError.code

    def test_misfiled_entry_quarantines(self, store):
        path = put_one(store)
        misfiled = store.path_for(OTHER)
        misfiled.parent.mkdir(parents=True, exist_ok=True)
        misfiled.write_bytes(path.read_bytes())
        lookup = store.lookup(OTHER)
        assert lookup.code == StoreCorruptError.code
        assert "filed under" in store.quarantined()[0]["message"]

    def test_stale_envelope_quarantines_as_stale(self, store, tmp_path):
        old = ResultStore(
            tmp_path / "store",
            envelope={
                "schema": 1,
                "package": "0.0.0-ancient",
                "registries": registry_contents_hash(),
            },
        )
        put_one(old)
        lookup = store.lookup(TOKEN)
        assert not lookup.hit
        assert lookup.code == StoreStaleError.code
        reason = store.quarantined()[0]
        assert reason["code"] == "store-stale"
        assert "package" in reason["message"]

    def test_quarantine_slots_never_collide(self, store):
        for _ in range(3):
            path = put_one(store)
            self.flip_byte(path)
            store.lookup(TOKEN)
        names = sorted(p.name for p in store.quarantine_dir.iterdir())
        assert names == [
            f"{TOKEN}-0.json",
            f"{TOKEN}-0.reason.json",
            f"{TOKEN}-1.json",
            f"{TOKEN}-1.reason.json",
            f"{TOKEN}-2.json",
            f"{TOKEN}-2.reason.json",
        ]

    def test_recompute_after_quarantine_serves_again(self, store):
        path = put_one(store)
        self.flip_byte(path)
        assert not store.lookup(TOKEN).hit
        put_one(store)  # the recompute writes the entry back
        assert store.lookup(TOKEN).hit
        assert store.stats()["quarantined"] == 1


class TestVerifyAndInspect:
    def test_verify_clean_store(self, store):
        put_one(store)
        put_one(store, token=OTHER)
        report = store.verify()
        assert report.ok
        assert (report.checked, report.intact) == (2, 2)
        assert report.previously_quarantined == 0
        assert report.to_dict()["quarantined"] == []

    def test_verify_quarantines_damage(self, store):
        put_one(store)
        path = put_one(store, token=OTHER)
        TestCorruptionQuarantine().flip_byte(path)
        report = store.verify()
        assert not report.ok
        assert (report.checked, report.intact) == (2, 1)
        assert [t for t, _, _ in report.quarantined] == [OTHER]
        assert OTHER not in store
        # A second walk finds the store clean and remembers the damage.
        again = store.verify()
        assert again.ok
        assert (again.checked, again.intact) == (1, 1)
        assert again.previously_quarantined == 1

    def test_inspect_is_non_destructive(self, store):
        path = put_one(store)
        TestCorruptionQuarantine().flip_byte(path)
        before = store.stats()
        code, message, entry = store.inspect(TOKEN)
        assert code == StoreCorruptError.code and entry is None
        assert "checksum mismatch" in message
        assert path.exists()  # nothing moved
        assert store.stats() == before  # nothing counted

    def test_inspect_intact_entry(self, store):
        put_one(store)
        code, message, entry = store.inspect(TOKEN)
        assert code is None and message is None
        assert entry["result"] == DOC

    def test_inspect_absent_raises_typed_error(self, store):
        with pytest.raises(StoreError) as excinfo:
            store.inspect(TOKEN)
        assert error_code(excinfo.value) == "store-error"
