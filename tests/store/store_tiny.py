"""Tiny batch specs + gating for the result-store suite.

The store tests reuse the resilience suite's tiny parameter sets so a
three-spec batch stays tier-1 cheap.  The concurrency test spawns real
subprocesses and is gated behind ``REPRO_EXEC_TESTS=1`` — tier-1 stays
in-process; the ``result-store`` CI job flips the gate.
"""

from __future__ import annotations

import os

import pytest

from repro.api import make_spec

#: experiment name -> smallest sensible parameter overrides (the
#: resilience suite's tiny entries for the three cheapest run paths).
TINY_PARAMS = {
    "fig2": {"n_tasks": 4, "n_samples": 20, "budgets": [800]},
    "fig3": {"n_arrivals": 3},
    "fig4": {"prices": [5, 8], "repetitions": 2},
}

#: Marker gating tests that spawn real subprocesses.
requires_subprocesses = pytest.mark.skipif(
    os.environ.get("REPRO_EXEC_TESTS") != "1",
    reason="subprocess tests run in the result-store CI job "
    "(set REPRO_EXEC_TESTS=1 to enable)",
)


def tiny_spec(name):
    return make_spec(name, **TINY_PARAMS[name])


def tiny_specs():
    """A fresh three-spec batch (fig2 / fig3 / fig4, tiny params)."""
    return [tiny_spec(name) for name in TINY_PARAMS]
