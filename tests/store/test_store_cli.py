"""CLI tests for ``--store`` on run / run-many and ``repro results``.

Exit contract: 0 success, 2 user error (unknown fingerprint), 3
execution failure (corrupt entry on ``--show``/``--replay``, replay
divergence).  ``results --verify`` always exits 0 — finding damage is
the command working.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main

RUN = ["run", "fig3", "--param", "n_arrivals=3"]


def run_stored(tmp_path, capsys):
    """One stored tiny run; returns (store_root, result document)."""
    root = tmp_path / "rs"
    assert main([*RUN, "--store", str(root), "--json"]) == 0
    return root, json.loads(capsys.readouterr().out)


def flip_byte(path):
    blob = bytearray(path.read_bytes())
    blob[len(blob) // 2] ^= 0x01
    path.write_bytes(bytes(blob))


def entry_path(root, token):
    return root / "objects" / token[:2] / f"{token}.json"


class TestRunStore:
    def test_second_run_serves_identical_document(self, tmp_path, capsys):
        root, computed = run_stored(tmp_path, capsys)
        assert main([*RUN, "--store", str(root), "--json"]) == 0
        served = json.loads(capsys.readouterr().out)
        # The computed run carries its wall-clock execution record;
        # the served document is the stored (timing-free) one.
        computed.pop("execution", None)
        served.pop("execution", None)
        assert served == computed

    def test_run_many_store_tally(self, tmp_path, capsys):
        root = tmp_path / "rs"
        batch = [
            "run-many",
            json.dumps({"experiment": "fig3", "params": {"n_arrivals": 3}}),
            json.dumps({"experiment": "fig3", "params": {"n_arrivals": 4}}),
            "--store",
            str(root),
        ]
        assert main(batch) == 0
        out = capsys.readouterr().out
        assert "store: hits 0  misses 2" in out
        assert main([*batch, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["store"] == {
            "hits": 2, "misses": 0, "quarantined": 0, "write_failures": 0,
        }


class TestResults:
    def test_list_shows_the_entry(self, tmp_path, capsys):
        root, doc = run_stored(tmp_path, capsys)
        assert main(["results", str(root)]) == 0
        out = capsys.readouterr().out
        assert doc["fingerprint"] in out
        assert "total 1" in out and "quarantined 0" in out

    def test_list_json(self, tmp_path, capsys):
        root, doc = run_stored(tmp_path, capsys)
        assert main(["results", str(root), "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert listing["entries"] == [
            {
                "fingerprint": doc["fingerprint"],
                "experiment": "fig3",
                "status": "succeeded",
                "intact": True,
            }
        ]

    def test_show_prints_the_entry_document(self, tmp_path, capsys):
        root, doc = run_stored(tmp_path, capsys)
        assert main(["results", str(root), "--show", doc["fingerprint"]]) == 0
        entry = json.loads(capsys.readouterr().out)
        assert entry["fingerprint"] == doc["fingerprint"]
        stored = dict(doc)
        stored.pop("execution", None)
        assert entry["result"] == stored

    def test_show_unknown_fingerprint_is_a_user_error(self, tmp_path, capsys):
        root, _ = run_stored(tmp_path, capsys)
        with pytest.raises(SystemExit) as excinfo:
            main(["results", str(root), "--show", "deadbeefdeadbeef"])
        assert excinfo.value.code == 2

    def test_show_corrupt_entry_exits_3(self, tmp_path, capsys):
        root, doc = run_stored(tmp_path, capsys)
        flip_byte(entry_path(root, doc["fingerprint"]))
        with pytest.raises(SystemExit) as excinfo:
            main(["results", str(root), "--show", doc["fingerprint"]])
        assert excinfo.value.code == 3

    def test_replay_matches(self, tmp_path, capsys):
        root, doc = run_stored(tmp_path, capsys)
        assert (
            main(["results", str(root), "--replay", doc["fingerprint"]]) == 0
        )
        assert "matches the stored document" in capsys.readouterr().out

    def test_replay_divergence_exits_3(self, tmp_path, capsys):
        root, doc = run_stored(tmp_path, capsys)
        # Rewrite the entry with a doctored payload *and* a matching
        # checksum, so only the replay comparison can catch it.
        from repro.store import ResultStore

        tampered = dict(doc)
        tampered.pop("execution", None)
        tampered["payload"] = {"forged": True}
        ResultStore(root).put(doc["fingerprint"], tampered)
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["results", str(root), "--replay", doc["fingerprint"], "--json"]
            )
        assert excinfo.value.code == 3
        assert json.loads(capsys.readouterr().out)["match"] is False


class TestVerify:
    def test_verify_clean_store(self, tmp_path, capsys):
        root, _ = run_stored(tmp_path, capsys)
        assert main(["results", str(root), "--verify"]) == 0
        assert "checked 1  intact 1  quarantined 0" in capsys.readouterr().out

    def test_corruption_recovery_cycle(self, tmp_path, capsys):
        """The CI smoke in miniature: damage -> verify -> recompute."""
        root, doc = run_stored(tmp_path, capsys)
        path = entry_path(root, doc["fingerprint"])
        flip_byte(path)
        # Finding damage is the command working: exit 0, damage listed.
        assert main(["results", str(root), "--verify", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["intact"] == 0
        assert report["quarantined"][0]["code"] == "store-corrupt"
        # Rerun recomputes and heals the store.
        assert main([*RUN, "--store", str(root), "--json"]) == 0
        recomputed = json.loads(capsys.readouterr().out)
        assert recomputed["payload"] == doc["payload"]
        assert main(["results", str(root), "--verify", "--json"]) == 0
        healed = json.loads(capsys.readouterr().out)
        assert healed["intact"] == 1
        assert healed["previously_quarantined"] == 1
