"""Session/store integration: memoized serving and journal interplay.

The headline contract is **byte-identity**: a result served from the
store must serialize exactly like the one that was computed, and a
batch report mixing served / restored / computed outcomes must
serialize exactly like an uninterrupted run's.
"""

from __future__ import annotations

import json

from repro.api import RunConfig, Session

from store_tiny import tiny_spec, tiny_specs


class TestRunMemoized:
    def test_second_run_is_served_byte_identically(self, store, fig3_spec):
        session = Session(RunConfig())
        computed = session.run(fig3_spec, store=store)
        assert session.runs_completed == 1
        served = session.run(fig3_spec, store=store)
        # Nothing executed: the engine never ran for the second call.
        assert session.runs_completed == 1
        assert served.to_dict() == computed.to_dict()
        assert served.to_json() == computed.to_json()
        assert served.fingerprint == computed.fingerprint
        assert store.stats()["hits"] == 1
        assert store.stats()["misses"] == 1
        assert store.stats()["writes"] == 1

    def test_store_accepts_a_path(self, tmp_path, fig3_spec):
        session = Session(RunConfig())
        first = session.run(fig3_spec, store=tmp_path / "rs")
        second = session.run(fig3_spec, store=tmp_path / "rs")
        assert session.runs_completed == 1
        assert second.to_dict() == first.to_dict()

    def test_store_never_enters_the_fingerprint(self, store, fig3_spec):
        session = Session(RunConfig())
        with_store = session.run(fig3_spec, store=store)
        without = Session(RunConfig()).run(fig3_spec)
        assert with_store.fingerprint == without.fingerprint
        assert with_store.to_dict() == without.to_dict()

    def test_different_configs_use_different_entries(self, store, fig3_spec):
        Session(RunConfig(seed=0)).run(fig3_spec, store=store)
        Session(RunConfig(seed=1)).run(fig3_spec, store=store)
        assert len(store) == 2

    def test_corrupt_entry_recomputes_correctly(self, store, fig3_spec):
        session = Session(RunConfig())
        computed = session.run(fig3_spec, store=store)
        path = store.path_for(computed.fingerprint)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        path.write_bytes(bytes(blob))
        recomputed = session.run(fig3_spec, store=store)
        assert session.runs_completed == 2
        assert recomputed.to_dict() == computed.to_dict()
        assert store.stats()["quarantined"] == 1
        # The recompute healed the store: the next run serves again.
        assert session.run(fig3_spec, store=store).to_dict() == computed.to_dict()
        assert session.runs_completed == 2


class TestRunManyMemoized:
    def test_hit_miss_tally_and_served_flags(self, store):
        session = Session(RunConfig())
        cold = session.run_many(tiny_specs(), store=store)
        assert cold.ok
        assert cold.store == {
            "hits": 0, "misses": 3, "quarantined": 0, "write_failures": 0,
        }
        assert cold.served == ()
        warm = session.run_many(tiny_specs(), store=store)
        assert warm.store == {
            "hits": 3, "misses": 0, "quarantined": 0, "write_failures": 0,
        }
        assert len(warm.served) == 3
        assert all(o.served for o in warm.outcomes)
        assert session.runs_completed == 3  # cold batch only

    def test_reports_serialize_identically(self, store):
        cold = Session(RunConfig()).run_many(tiny_specs(), store=store)
        warm = Session(RunConfig()).run_many(tiny_specs(), store=store)
        plain = Session(RunConfig()).run_many(tiny_specs())
        # served/store are bookkeeping, not identity: default documents
        # are byte-identical across computed / served / storeless runs.
        assert json.dumps(warm.to_dict(), sort_keys=True) == json.dumps(
            cold.to_dict(), sort_keys=True
        )
        assert warm.to_dict() == plain.to_dict()
        # The tally is opt-in.
        assert "store" not in warm.to_dict()
        assert warm.to_dict(include_store=True)["store"]["hits"] == 3

    def test_partial_overlap_mixes_hits_and_misses(self, store):
        session = Session(RunConfig())
        session.run_many([tiny_spec("fig3")], store=store)
        report = session.run_many(tiny_specs(), store=store)
        assert report.store["hits"] == 1
        assert report.store["misses"] == 2
        assert [o.served for o in report.outcomes] == [False, True, False]


class TestJournalStoreInterplay:
    """Satellite: the checkpoint journal and the store must agree."""

    def test_journal_line_wins_and_backfills_evicted_store(
        self, store, tmp_path
    ):
        journal = tmp_path / "batch.jsonl"
        session = Session(RunConfig())
        first = session.run_many(
            tiny_specs(), checkpoint=journal, store=store
        )
        assert session.runs_completed == 3
        # Evict one entry from the store; the journal still has it.
        evicted = first.outcomes[1].result.fingerprint
        store.path_for(evicted).unlink()
        assert evicted not in store
        resumed = Session(RunConfig()).run_many(
            tiny_specs(), checkpoint=journal, store=store
        )
        # Restored from the journal, never re-executed, and the store
        # was backfilled so future batches hit without the journal.
        assert all(o.restored for o in resumed.outcomes)
        assert evicted in store
        assert store.lookup(evicted).hit
        assert resumed.to_dict() == first.to_dict()

    def test_store_hit_is_journaled_for_later_resume(self, store, tmp_path):
        journal = tmp_path / "batch.jsonl"
        specs = [tiny_spec("fig3")]
        Session(RunConfig()).run_many(specs, store=store)  # no journal yet
        served = Session(RunConfig()).run_many(
            specs, checkpoint=journal, store=store
        )
        assert served.outcomes[0].served
        # The serve was appended to the journal: a later resume with no
        # store at all restores the same document.
        restored = Session(RunConfig()).run_many(specs, checkpoint=journal)
        assert restored.outcomes[0].restored
        assert restored.to_dict() == served.to_dict()

    def test_corrupt_store_with_journal_never_reexecutes(
        self, store, tmp_path
    ):
        journal = tmp_path / "batch.jsonl"
        session = Session(RunConfig())
        first = session.run_many(
            tiny_specs(), checkpoint=journal, store=store
        )
        # Corrupt every store entry; the journal line must win before
        # the store is even consulted.
        for token in store.fingerprints():
            path = store.path_for(token)
            path.write_bytes(b"{torn")
        resumed = session.run_many(
            tiny_specs(), checkpoint=journal, store=store
        )
        assert session.runs_completed == 3  # nothing re-executed
        assert all(o.restored for o in resumed.outcomes)
        assert resumed.to_dict() == first.to_dict()


class TestSerialExecutorStore:
    """The executor fan-out path consults the store in the parent."""

    def test_serial_executor_serves_and_writes(self, store):
        config = RunConfig(executor="serial")
        session = Session(config)
        cold = session.run_many(tiny_specs(), store=store)
        assert cold.ok
        assert cold.store["misses"] == 3
        assert len(store) == 3
        warm = session.run_many(tiny_specs(), store=store)
        assert warm.store == {
            "hits": 3, "misses": 0, "quarantined": 0, "write_failures": 0,
        }
        assert all(o.served for o in warm.outcomes)
        # Documents are executor- and store-invariant.
        inline = Session(RunConfig()).run_many(tiny_specs())
        assert warm.to_dict() == inline.to_dict()
