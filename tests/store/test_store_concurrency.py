"""Concurrent store access: racing batches must never tear an entry.

Two real processes run overlapping ``run-many`` batches against the
same store root.  Results are deterministic, so racing writers of the
same key carry identical bytes and ``os.replace`` last-writer-wins
atomicity guarantees the invariant: **exactly one valid,
checksum-passing entry per key**, no torn files, no stray temps.

Gated behind ``REPRO_EXEC_TESTS=1`` (the ``result-store`` CI job) like
the process-pool suite — tier-1 stays in-process.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

from repro.store import ResultStore

from store_tiny import TINY_PARAMS, requires_subprocesses


def batch_command(root, names):
    specs = [
        json.dumps({"experiment": name, "params": TINY_PARAMS[name]})
        for name in names
    ]
    return [
        sys.executable,
        "-m",
        "repro",
        "run-many",
        *specs,
        "--store",
        str(root),
        "--json",
    ]


@requires_subprocesses
class TestConcurrentBatches:
    def test_racing_batches_leave_one_valid_entry_per_key(self, tmp_path):
        root = tmp_path / "rs"
        names = list(TINY_PARAMS)  # fig2 / fig3 / fig4
        env = {**os.environ, "PYTHONPATH": "src"}
        # Overlapping batches, launched together: both race to write
        # fig3/fig4; each also owns one exclusive spec.
        procs = [
            subprocess.Popen(
                batch_command(root, group),
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                env=env,
                cwd="/root/repo",
                text=True,
            )
            for group in (names, names[::-1])
        ]
        reports = []
        for proc in procs:
            out, err = proc.communicate(timeout=300)
            assert proc.returncode == 0, err
            reports.append(json.loads(out))

        store = ResultStore(root)
        # Exactly one entry per unique (spec, config) key...
        assert len(store) == len(names)
        # ...every one checksum-valid and envelope-current...
        verify = store.verify()
        assert verify.ok
        assert verify.checked == verify.intact == len(names)
        assert store.quarantined() == []
        # ...and no torn or temporary files anywhere in the tree.
        stray = [
            path
            for path in root.rglob(".*")
            if path.is_file()
        ]
        assert stray == []
        # Both reports completed every spec; outcome documents agree
        # on the shared keys regardless of who computed and who served.
        for report in reports:
            assert len(report["outcomes"]) == len(names)
            assert all(
                o["status"] in ("succeeded", "degraded")
                for o in report["outcomes"]
            )
        first = {
            o["result"]["fingerprint"]: o["result"]
            for o in reports[0]["outcomes"]
        }
        second = {
            o["result"]["fingerprint"]: o["result"]
            for o in reports[1]["outcomes"]
        }
        assert first == second
