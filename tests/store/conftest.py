"""Shared fixtures for the result-store suite (tiny specs live in
``store_tiny.py``).

The store itself lives in a per-test tmp directory so nothing leaks
between tests (a :class:`~repro.store.ResultStore` has no global
state).
"""

from __future__ import annotations

import pytest

from repro.api import RunConfig, Session
from repro.store import ResultStore

from store_tiny import tiny_spec


@pytest.fixture
def fig3_spec():
    return tiny_spec("fig3")


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


@pytest.fixture
def session():
    return Session(RunConfig())
