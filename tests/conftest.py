"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import HTuningProblem, TaskSpec
from repro.market import LinearPricing, MarketModel, TaskType, WorkerPool


@pytest.fixture
def rng():
    """A fixed-seed generator; per-test determinism."""
    return np.random.default_rng(12345)


@pytest.fixture
def linear_pricing():
    """The paper's Fig. 2 case (a): λ_o = 1 + p."""
    return LinearPricing(slope=1.0, intercept=1.0)


@pytest.fixture
def steep_pricing():
    """Fig. 2 case (b): λ_o = 10p + 1 (price-sensitive market)."""
    return LinearPricing(slope=10.0, intercept=1.0)


@pytest.fixture
def flat_pricing():
    """Fig. 2 case (c): λ_o = 0.1p + 10 (price-insensitive market)."""
    return LinearPricing(slope=0.1, intercept=10.0)


@pytest.fixture
def easy_type():
    return TaskType(name="easy", processing_rate=2.0, accuracy=0.9)


@pytest.fixture
def hard_type():
    return TaskType(
        name="hard", processing_rate=0.5, accuracy=0.8, attractiveness=0.6
    )


@pytest.fixture
def market(linear_pricing):
    return MarketModel(linear_pricing)


@pytest.fixture
def pool():
    return WorkerPool(arrival_rate=5.0)


@pytest.fixture
def homo_problem(linear_pricing):
    """Small Scenario I instance: 4 tasks × 3 reps, budget 60."""
    tasks = [
        TaskSpec(i, repetitions=3, pricing=linear_pricing, processing_rate=2.0)
        for i in range(4)
    ]
    return HTuningProblem(tasks, budget=60)


@pytest.fixture
def repe_problem(linear_pricing):
    """Small Scenario II instance: 2 reps groups {2, 4}, budget 60."""
    tasks = [
        TaskSpec(i, repetitions=2 if i < 3 else 4, pricing=linear_pricing,
                 processing_rate=2.0)
        for i in range(6)
    ]
    return HTuningProblem(tasks, budget=60)


@pytest.fixture
def heter_problem(linear_pricing, steep_pricing):
    """Small Scenario III instance: two types, two reps profiles."""
    tasks = []
    for i in range(3):
        tasks.append(
            TaskSpec(i, repetitions=2, pricing=linear_pricing,
                     processing_rate=2.0, type_name="sort")
        )
    for i in range(3, 6):
        tasks.append(
            TaskSpec(i, repetitions=3, pricing=steep_pricing,
                     processing_rate=0.8, type_name="filter")
        )
    return HTuningProblem(tasks, budget=80)
