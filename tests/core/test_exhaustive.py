"""Unit tests for repro.core.exhaustive (reference optimizers)."""

from __future__ import annotations

import pytest

from repro import HTuningProblem, InfeasibleAllocationError, TaskSpec
from repro.core import (
    exact_group_dp,
    exhaustive_group_search,
    group_onhold_latency,
    surrogate_onhold_objective,
)
from repro.errors import ModelError
from repro.market import LinearPricing


@pytest.fixture
def pricing():
    return LinearPricing(1.0, 1.0)


def small_problem(budget, pricing):
    tasks = [
        TaskSpec(0, 2, pricing, 2.0),
        TaskSpec(1, 2, pricing, 2.0),
        TaskSpec(2, 3, pricing, 2.0),
    ]
    return HTuningProblem(tasks, budget)


class TestExactGroupDP:
    def test_respects_budget(self, pricing):
        problem = small_problem(30, pricing)
        prices = exact_group_dp(problem, group_onhold_latency)
        spend = sum(prices[g.key] * g.unit_cost for g in problem.groups())
        assert spend <= 30

    def test_matches_exhaustive(self, pricing):
        for budget in (7, 10, 15, 22, 30):
            problem = small_problem(budget, pricing)
            dp = exact_group_dp(problem, group_onhold_latency)
            brute, brute_val = exhaustive_group_search(
                problem,
                lambda p, gp: surrogate_onhold_objective(p, gp),
            )
            assert surrogate_onhold_objective(problem, dp) == pytest.approx(
                brute_val, rel=1e-9
            )

    def test_infeasible(self, pricing):
        problem = small_problem(7, pricing)
        # budget attribute of a feasible problem but DP asked for less
        with pytest.raises(InfeasibleAllocationError):
            from repro.core.exhaustive import exact_group_dp as dp

            tasks = [TaskSpec(0, 10, pricing, 2.0)]
            dp(HTuningProblem(tasks, 10), group_onhold_latency)
            # budget 10 is exactly feasible; now make a too-small one
            HTuningProblem(tasks, 9)


class TestExhaustiveGroupSearch:
    def test_returns_best_value(self, pricing):
        problem = small_problem(12, pricing)
        prices, value = exhaustive_group_search(
            problem, lambda p, gp: surrogate_onhold_objective(p, gp)
        )
        assert value == pytest.approx(
            surrogate_onhold_objective(problem, prices)
        )

    def test_guards_state_blowup(self, pricing):
        tasks = [TaskSpec(i, 1, pricing, 2.0) for i in range(2)]
        problem = HTuningProblem(tasks, budget=10_000)
        with pytest.raises(ModelError):
            exhaustive_group_search(
                problem,
                lambda p, gp: 0.0,
                max_states=10,
            )

    def test_arbitrary_objective(self, pricing):
        # Works with a non-separable objective (here: max).
        problem = small_problem(30, pricing)
        prices, value = exhaustive_group_search(
            problem,
            lambda p, gp: max(
                group_onhold_latency(g, gp[g.key]) for g in p.groups()
            ),
        )
        assert value > 0
