"""Unit tests for repro.core.heterogeneous (Algorithm 3, HA)."""

from __future__ import annotations

import pytest

from repro import HTuningProblem, InfeasibleAllocationError, TaskSpec
from repro.core import (
    closeness,
    exhaustive_group_search,
    heterogeneous_algorithm,
    objective_o1,
    objective_o2,
    utopia_point,
)
from repro.core.heterogeneous import HAResult
from repro.market import LinearPricing


@pytest.fixture
def pricing():
    return LinearPricing(1.0, 1.0)


def heter(budget, spec):
    """spec: ((reps, count, proc_rate, slope, intercept), ...)."""
    tasks = []
    tid = 0
    for gi, (reps, count, proc, slope, intercept) in enumerate(spec):
        model = LinearPricing(slope, intercept)
        for _ in range(count):
            tasks.append(
                TaskSpec(tid, reps, model, proc, type_name=f"g{gi}")
            )
            tid += 1
    return HTuningProblem(tasks, budget)


class TestHeterogeneousAlgorithm:
    def test_valid_allocation(self, heter_problem):
        alloc = heterogeneous_algorithm(heter_problem)
        heter_problem.validate_allocation(alloc)

    def test_uniform_group_prices(self, heter_problem):
        alloc = heterogeneous_algorithm(heter_problem)
        for group in heter_problem.groups():
            assert alloc.uniform_group_price(group) is not None

    def test_details_object(self, heter_problem):
        result = heterogeneous_algorithm(heter_problem, return_details=True)
        assert isinstance(result, HAResult)
        assert result.closeness >= 0.0
        assert result.achieved.o1 >= result.utopia.o1 - 1e-9
        assert result.achieved.o2 >= result.utopia.o2 - 1e-9
        assert "closeness" in repr(result)

    def test_infeasible_budget(self, pricing):
        with pytest.raises(InfeasibleAllocationError):
            heter(1, (((2, 1, 2.0, 1.0, 1.0)),))

    def test_works_on_homogeneous_instance(self, homo_problem):
        # HA degrades gracefully on Scenario I instances.
        alloc = heterogeneous_algorithm(homo_problem)
        homo_problem.validate_allocation(alloc)

    @pytest.mark.parametrize("budget", [12, 20, 31, 45, 60])
    def test_near_exhaustive_closeness(self, budget):
        """HA's compromise must match the exhaustive minimizer of CL
        on small instances (the DP explores increments of +1 only, so
        exact equality is expected under convex group latencies)."""
        problem = heter(
            budget,
            (
                (2, 2, 2.0, 1.0, 1.0),
                (3, 1, 0.5, 2.0, 1.0),
            ),
        )
        utopia = utopia_point(problem)
        result = heterogeneous_algorithm(problem, return_details=True)
        best_prices, best_cl = exhaustive_group_search(
            problem, lambda p, gp: closeness(p, gp, utopia)
        )
        assert result.closeness == pytest.approx(best_cl, rel=1e-6, abs=1e-9)

    def test_penalizes_most_difficult_group(self):
        """The O2 term must steer budget toward the slow-processing
        group relative to a pure O1 optimization."""
        problem = heter(
            200,
            (
                (2, 4, 10.0, 1.0, 1.0),   # fast processing
                (2, 4, 0.05, 1.0, 1.0),   # very slow processing (difficult)
            ),
        )
        result = heterogeneous_algorithm(problem, return_details=True)
        groups = problem.groups()
        slow = next(g for g in groups if g.processing_rate == 0.05)
        fast = next(g for g in groups if g.processing_rate == 10.0)
        # The difficult group's price must be at least the fast group's.
        assert result.group_prices[slow.key] >= result.group_prices[fast.key]

    def test_spends_budget_when_useful(self, heter_problem):
        result = heterogeneous_algorithm(heter_problem, return_details=True)
        spend = sum(
            result.group_prices[g.key] * g.unit_cost
            for g in heter_problem.groups()
        )
        # With strictly decreasing group latencies the DP should leave
        # less than one cheapest increment unspent.
        min_unit = min(g.unit_cost for g in heter_problem.groups())
        assert heter_problem.budget - spend < min_unit

    def test_more_budget_never_hurts_closeness_objectives(self):
        o1s, o2s = [], []
        for budget in (30, 50, 80, 120):
            problem = heter(
                budget,
                ((2, 2, 2.0, 1.0, 1.0), (3, 2, 1.0, 1.0, 1.0)),
            )
            result = heterogeneous_algorithm(problem, return_details=True)
            o1s.append(result.achieved.o1)
            o2s.append(result.achieved.o2)
        assert all(a >= b - 1e-9 for a, b in zip(o1s, o1s[1:]))
        assert all(a >= b - 1e-9 for a, b in zip(o2s, o2s[1:]))
