"""Unit tests for repro.core.baselines."""

from __future__ import annotations

import pytest

from repro import HTuningProblem, TaskSpec
from repro.core import (
    biased_allocation,
    rep_even_allocation,
    task_even_allocation,
    uniform_price_heuristic,
)
from repro.errors import ModelError
from repro.market import LinearPricing


@pytest.fixture
def pricing():
    return LinearPricing(1.0, 1.0)


class TestBiasedAllocation:
    def test_valid_and_within_budget(self, homo_problem):
        alloc = biased_allocation(homo_problem, alpha=0.67, rng=0)
        homo_problem.validate_allocation(alloc)

    def test_alpha_half_close_to_even(self, homo_problem):
        alloc = biased_allocation(homo_problem, alpha=0.5, rng=0)
        costs = [alloc.task_cost(t.task_id) for t in homo_problem.tasks]
        assert max(costs) - min(costs) <= 3

    def test_prior_group_gets_more(self, pricing):
        tasks = [TaskSpec(i, 2, pricing, 2.0) for i in range(10)]
        problem = HTuningProblem(tasks, budget=200)
        alloc = biased_allocation(problem, alpha=0.75, rng=0)
        costs = sorted(alloc.task_cost(i) for i in range(10))
        rich_half = sum(costs[5:])
        poor_half = sum(costs[:5])
        assert rich_half == pytest.approx(0.75 * 200, abs=6)
        assert poor_half == pytest.approx(0.25 * 200, abs=6)

    def test_alpha_validation(self, homo_problem):
        with pytest.raises(ModelError):
            biased_allocation(homo_problem, alpha=0.4)
        with pytest.raises(ModelError):
            biased_allocation(homo_problem, alpha=1.0)

    def test_seeded_reproducibility(self, homo_problem):
        a = biased_allocation(homo_problem, alpha=0.67, rng=3)
        b = biased_allocation(homo_problem, alpha=0.67, rng=3)
        assert a == b

    def test_tight_budget_rebalanced(self, pricing):
        # Budget barely above minimum: the disfavored half cannot
        # afford its share under α=0.9; claw-back must keep feasibility.
        tasks = [TaskSpec(i, 2, pricing, 2.0) for i in range(6)]
        problem = HTuningProblem(tasks, budget=13)
        alloc = biased_allocation(problem, alpha=0.9, rng=0)
        problem.validate_allocation(alloc)

    def test_single_task(self, pricing):
        problem = HTuningProblem([TaskSpec(0, 2, pricing, 2.0)], budget=10)
        alloc = biased_allocation(problem, alpha=0.67, rng=0)
        problem.validate_allocation(alloc)


class TestTaskEvenAllocation:
    def test_equal_total_per_task(self, repe_problem):
        alloc = task_even_allocation(repe_problem)
        costs = [alloc.task_cost(t.task_id) for t in repe_problem.tasks]
        assert max(costs) - min(costs) <= 1

    def test_within_task_even_split(self, repe_problem):
        alloc = task_even_allocation(repe_problem)
        for task in repe_problem.tasks:
            prices = alloc[task.task_id]
            assert max(prices) - min(prices) <= 1

    def test_validates(self, repe_problem):
        repe_problem.validate_allocation(task_even_allocation(repe_problem))

    def test_rebalances_infeasible_shares(self, pricing):
        # One task with many repetitions, tight budget: its equal share
        # cannot cover one unit per repetition.
        tasks = [TaskSpec(0, 20, pricing, 2.0)] + [
            TaskSpec(i, 1, pricing, 2.0) for i in range(1, 5)
        ]
        problem = HTuningProblem(tasks, budget=28)
        alloc = task_even_allocation(problem)
        problem.validate_allocation(alloc)
        assert alloc.task_cost(0) >= 20


class TestRepEvenAllocation:
    def test_equal_price_per_repetition(self, repe_problem):
        alloc = rep_even_allocation(repe_problem)
        prices = {
            p for t in repe_problem.tasks for p in alloc[t.task_id]
        }
        assert len(prices) <= 2  # base and base+1 (remainder)

    def test_total_close_to_budget(self, repe_problem):
        alloc = rep_even_allocation(repe_problem)
        assert alloc.total_cost == repe_problem.budget

    def test_high_rep_tasks_get_more_total(self, repe_problem):
        alloc = rep_even_allocation(repe_problem)
        two_rep = next(t for t in repe_problem.tasks if t.repetitions == 2)
        four_rep = next(t for t in repe_problem.tasks if t.repetitions == 4)
        assert alloc.task_cost(four_rep.task_id) > alloc.task_cost(
            two_rep.task_id
        )


class TestUniformPriceHeuristic:
    def test_single_price_everywhere(self, heter_problem):
        alloc = uniform_price_heuristic(heter_problem)
        prices = {
            p for t in heter_problem.tasks for p in alloc[t.task_id]
        }
        assert len(prices) == 1

    def test_largest_affordable_price(self, heter_problem):
        alloc = uniform_price_heuristic(heter_problem)
        (price,) = {
            p for t in heter_problem.tasks for p in alloc[t.task_id]
        }
        total_reps = heter_problem.total_repetitions
        assert price == heter_problem.budget // total_reps

    def test_validates(self, heter_problem):
        heter_problem.validate_allocation(uniform_price_heuristic(heter_problem))
