"""Unit tests for repro.core.latency."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Allocation, HTuningProblem, TaskSpec
from repro.core import (
    erlang_max_constant,
    expected_job_latency,
    group_onhold_latency,
    group_processing_latency,
    sample_job_latencies,
    simulate_job_latency,
    surrogate_onhold_objective,
)
from repro.errors import ModelError
from repro.market import LinearPricing
from repro.stats import expected_max_erlang_iid


@pytest.fixture
def pricing():
    return LinearPricing(1.0, 1.0)


class TestErlangMaxConstant:
    def test_matches_direct_computation(self):
        assert erlang_max_constant(10, 3) == pytest.approx(
            expected_max_erlang_iid(10, 3, 1.0)
        )

    def test_k1_is_harmonic(self):
        from repro.stats import harmonic_number

        assert erlang_max_constant(7, 1) == pytest.approx(harmonic_number(7))


class TestGroupLatencies:
    def test_onhold_scaling(self, pricing):
        tasks = [TaskSpec(i, 3, pricing, 2.0) for i in range(5)]
        problem = HTuningProblem(tasks, budget=100)
        (group,) = problem.groups()
        # E[L1] = M(5,3)/λ(p); λ(4) = 5
        assert group_onhold_latency(group, 4) == pytest.approx(
            erlang_max_constant(5, 3) / 5.0
        )

    def test_onhold_decreasing_in_price(self, pricing):
        tasks = [TaskSpec(i, 2, pricing, 2.0) for i in range(5)]
        (group,) = HTuningProblem(tasks, budget=100).groups()
        values = [group_onhold_latency(group, p) for p in (1, 2, 5, 10)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_onhold_rejects_bad_price(self, pricing):
        tasks = [TaskSpec(0, 2, pricing, 2.0)]
        (group,) = HTuningProblem(tasks, budget=100).groups()
        with pytest.raises(ModelError):
            group_onhold_latency(group, 0)
        with pytest.raises(ModelError):
            group_onhold_latency(group, 1.5)

    def test_processing_independent_of_price(self, pricing):
        tasks = [TaskSpec(i, 2, pricing, 4.0) for i in range(3)]
        (group,) = HTuningProblem(tasks, budget=100).groups()
        assert group_processing_latency(group) == pytest.approx(
            erlang_max_constant(3, 2) / 4.0
        )


class TestSurrogateObjective:
    def test_sums_over_groups(self, repe_problem):
        groups = repe_problem.groups()
        prices = {g.key: 2 for g in groups}
        expected = sum(group_onhold_latency(g, 2) for g in groups)
        assert surrogate_onhold_objective(repe_problem, prices) == pytest.approx(
            expected
        )

    def test_upper_bounds_true_phase1_latency(self, repe_problem):
        # sum of group maxima >= E[max over all]; verified via MC.
        groups = repe_problem.groups()
        prices = {g.key: 3 for g in groups}
        alloc = Allocation.from_group_prices(repe_problem, prices)
        surrogate = surrogate_onhold_objective(repe_problem, prices)
        true_value = simulate_job_latency(
            repe_problem, alloc, n_samples=20000, rng=0, include_processing=False
        )
        assert surrogate >= true_value * 0.99


class TestExpectedJobLatency:
    def test_single_task_is_phase_sum(self, pricing):
        problem = HTuningProblem([TaskSpec(0, 1, pricing, 2.0)], budget=10)
        alloc = Allocation({0: [4]})
        # E = 1/λ_o(4) + 1/λ_p = 1/5 + 1/2
        assert expected_job_latency(problem, alloc) == pytest.approx(0.7, rel=1e-3)

    def test_onhold_only(self, pricing):
        problem = HTuningProblem([TaskSpec(0, 1, pricing, 2.0)], budget=10)
        alloc = Allocation({0: [4]})
        value = expected_job_latency(problem, alloc, include_processing=False)
        assert value == pytest.approx(0.2, rel=1e-3)

    def test_matches_erlang_max_for_uniform_group(self, pricing):
        n, k, price = 20, 3, 4
        tasks = [TaskSpec(i, k, pricing, 2.0) for i in range(n)]
        problem = HTuningProblem(tasks, budget=n * k * price)
        alloc = Allocation.uniform(problem, price)
        value = expected_job_latency(problem, alloc, include_processing=False)
        assert value == pytest.approx(
            expected_max_erlang_iid(n, k, pricing(price)), rel=1e-3
        )

    def test_matches_monte_carlo_two_phase(self, pricing):
        tasks = [TaskSpec(i, 2, pricing, 1.5) for i in range(10)]
        problem = HTuningProblem(tasks, budget=200)
        alloc = Allocation.uniform(problem, 5)
        numeric = expected_job_latency(problem, alloc)
        mc = simulate_job_latency(problem, alloc, n_samples=60000, rng=1)
        assert numeric == pytest.approx(mc, rel=0.02)

    def test_handles_non_uniform_allocations(self, pricing):
        tasks = [TaskSpec(i, 2, pricing, 2.0) for i in range(3)]
        problem = HTuningProblem(tasks, budget=100)
        alloc = Allocation({0: [1, 9], 1: [5, 5], 2: [2, 2]})
        value = expected_job_latency(problem, alloc)
        mc = simulate_job_latency(problem, alloc, n_samples=60000, rng=2)
        assert value == pytest.approx(mc, rel=0.02)

    def test_validates_allocation(self, pricing):
        problem = HTuningProblem([TaskSpec(0, 1, pricing, 1.0)], budget=10)
        with pytest.raises(ModelError):
            expected_job_latency(problem, Allocation({7: [1]}))


class TestMonteCarlo:
    def test_sample_shape(self, homo_problem):
        alloc = Allocation.uniform(homo_problem, 5)
        draws = sample_job_latencies(homo_problem, alloc, 100, rng=0)
        assert draws.shape == (100,)
        assert np.all(draws > 0)

    def test_deterministic_given_seed(self, homo_problem):
        alloc = Allocation.uniform(homo_problem, 5)
        a = sample_job_latencies(homo_problem, alloc, 50, rng=9)
        b = sample_job_latencies(homo_problem, alloc, 50, rng=9)
        np.testing.assert_array_equal(a, b)

    def test_rejects_zero_samples(self, homo_problem):
        alloc = Allocation.uniform(homo_problem, 5)
        with pytest.raises(ModelError):
            sample_job_latencies(homo_problem, alloc, 0, rng=0)

    def test_more_budget_lowers_latency(self, pricing):
        tasks = [TaskSpec(i, 2, pricing, 2.0) for i in range(10)]
        low = HTuningProblem(tasks, budget=40)
        high = HTuningProblem(tasks, budget=400)
        low_lat = simulate_job_latency(
            low, Allocation.uniform(low, 2), n_samples=20000, rng=0
        )
        high_lat = simulate_job_latency(
            high, Allocation.uniform(high, 20), n_samples=20000, rng=0
        )
        assert high_lat < low_lat
