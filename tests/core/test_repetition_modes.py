"""Tests for sequential vs parallel repetition semantics (§2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Allocation, HTuningProblem, TaskSpec
from repro.core import expected_job_latency
from repro.errors import ModelError, SimulationError
from repro.market import (
    AggregateSimulator,
    AtomicTaskOrder,
    LinearPricing,
    MarketModel,
    TaskType,
    TraceRecorder,
)


@pytest.fixture
def pricing():
    return LinearPricing(1.0, 1.0)


@pytest.fixture
def vote_type():
    return TaskType("vote", processing_rate=2.0)


class TestSimulatorParallelMode:
    def test_parallel_repetitions_published_together(self, vote_type):
        sim = AggregateSimulator(MarketModel(LinearPricing(1.0, 1.0)), seed=0)
        recorder = TraceRecorder()
        order = AtomicTaskOrder(
            task_type=vote_type, prices=(2,) * 5, atomic_task_id=0
        )
        sim.run_job([order], recorder=recorder, repetition_mode="parallel")
        assert all(r.published_at == 0.0 for r in recorder.records)

    def test_parallel_faster_than_sequential_in_mean(self, vote_type):
        market = MarketModel(LinearPricing(1.0, 1.0))
        order = AtomicTaskOrder(
            task_type=vote_type, prices=(2,) * 6, atomic_task_id=0
        )
        seq = np.mean(
            [
                AggregateSimulator(market, seed=s).run_job([order]).makespan
                for s in range(200)
            ]
        )
        par = np.mean(
            [
                AggregateSimulator(market, seed=s)
                .run_job([order], repetition_mode="parallel")
                .makespan
                for s in range(200)
            ]
        )
        assert par < seq / 2

    def test_same_cost_either_mode(self, vote_type):
        market = MarketModel(LinearPricing(1.0, 1.0))
        order = AtomicTaskOrder(
            task_type=vote_type, prices=(2, 3, 4), atomic_task_id=0
        )
        a = AggregateSimulator(market, seed=0).run_job([order])
        b = AggregateSimulator(market, seed=0).run_job(
            [order], repetition_mode="parallel"
        )
        assert a.total_paid == b.total_paid == 9

    def test_unknown_mode_rejected(self, vote_type):
        sim = AggregateSimulator(MarketModel(LinearPricing(1.0, 1.0)), seed=0)
        order = AtomicTaskOrder(
            task_type=vote_type, prices=(2,), atomic_task_id=0
        )
        with pytest.raises(SimulationError):
            sim.run_job([order], repetition_mode="simultaneous")


class TestAnalyticParallelMode:
    def test_single_repetition_modes_agree(self, pricing):
        problem = HTuningProblem([TaskSpec(0, 1, pricing, 2.0)], budget=10)
        alloc = Allocation({0: [4]})
        seq = expected_job_latency(problem, alloc)
        par = expected_job_latency(problem, alloc, repetition_mode="parallel")
        assert seq == pytest.approx(par, rel=1e-9)

    def test_parallel_is_faster(self, pricing):
        tasks = [TaskSpec(i, 4, pricing, 2.0) for i in range(5)]
        problem = HTuningProblem(tasks, budget=200)
        alloc = Allocation.uniform(problem, 5)
        seq = expected_job_latency(problem, alloc)
        par = expected_job_latency(problem, alloc, repetition_mode="parallel")
        assert par < seq

    def test_matches_monte_carlo(self, pricing, vote_type):
        tasks = [TaskSpec(i, 3, pricing, 2.0) for i in range(4)]
        problem = HTuningProblem(tasks, budget=100)
        alloc = Allocation.uniform(problem, 5)
        analytic = expected_job_latency(
            problem, alloc, repetition_mode="parallel"
        )
        market = MarketModel(pricing)
        orders = [
            AtomicTaskOrder(
                task_type=vote_type,
                prices=tuple(alloc[t.task_id]),
                atomic_task_id=t.task_id,
            )
            for t in problem.tasks
        ]
        draws = [
            AggregateSimulator(market, seed=s)
            .run_job(orders, repetition_mode="parallel")
            .makespan
            for s in range(3000)
        ]
        assert float(np.mean(draws)) == pytest.approx(analytic, rel=0.03)

    def test_unknown_mode_rejected(self, pricing):
        problem = HTuningProblem([TaskSpec(0, 1, pricing, 2.0)], budget=10)
        alloc = Allocation({0: [4]})
        with pytest.raises(ModelError):
            expected_job_latency(problem, alloc, repetition_mode="warp")
