"""Unit tests for repro.core.adaptive (online re-tuning)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AdaptiveTuner, MarketBelief
from repro.errors import ModelError
from repro.market import (
    AggregateSimulator,
    LinearPricing,
    MarketModel,
    TaskType,
)


@pytest.fixture
def vote_type():
    return TaskType("vote", processing_rate=2.0)


@pytest.fixture
def prior():
    return LinearPricing(1.0, 1.0)


class TestMarketBelief:
    def test_prior_until_observations(self, prior):
        belief = MarketBelief(prior)
        assert belief.current_model() is prior

    def test_single_price_rescales_prior(self, prior):
        belief = MarketBelief(prior, decay=1.0)
        # Prior says rate 4 at price 3; observed mean duration 0.125
        # implies rate 8 — the scaled model doubles the prior everywhere.
        belief.observe(3, [0.125] * 100)
        model = belief.current_model()
        assert model(3) == pytest.approx(8.0)
        assert model(7) == pytest.approx(2 * prior(7))

    def test_rate_estimate_is_inverse_mean(self, prior):
        belief = MarketBelief(prior, decay=1.0)
        belief.observe(4, [0.5, 0.5, 0.5])
        assert belief.rate_at(4) == pytest.approx(2.0)

    def test_unobserved_price_is_none(self, prior):
        belief = MarketBelief(prior)
        assert belief.rate_at(9) is None

    def test_fit_after_two_prices(self, prior, rng):
        belief = MarketBelief(prior, decay=1.0)
        # True curve 2c + 0: mean latency 1/(2c)
        for price in (2, 5):
            samples = rng.exponential(1.0 / (2 * price), size=3000)
            belief.observe(price, samples)
        model = belief.current_model()
        assert model(4) == pytest.approx(8.0, rel=0.1)

    def test_decay_forgets_old_regime(self, prior):
        belief = MarketBelief(prior, decay=0.3)
        # Old regime: slow (rate 1 at price 4 → duration 1.0)
        for _ in range(10):
            belief.decay_all()
            belief.observe(4, [1.0] * 10)
        # New regime: fast (rate 10 → duration 0.1)
        for _ in range(10):
            belief.decay_all()
            belief.observe(4, [0.1] * 10)
        assert belief.rate_at(4) == pytest.approx(10.0, rel=0.1)

    def test_decay_all_ages_every_bucket(self, prior):
        belief = MarketBelief(prior, decay=0.5)
        belief.observe(3, [1.0, 1.0])
        belief.observe(7, [0.5])
        belief.decay_all()
        # Weights halved everywhere, estimates unchanged.
        assert belief._weights[3] == pytest.approx(1.0)
        assert belief._weights[7] == pytest.approx(0.5)
        assert belief.rate_at(3) == pytest.approx(1.0)

    def test_validation(self, prior):
        with pytest.raises(ModelError):
            MarketBelief(prior, decay=0.0)
        belief = MarketBelief(prior)
        with pytest.raises(ModelError):
            belief.observe(3, [-1.0])

    def test_empty_observation_noop(self, prior):
        belief = MarketBelief(prior)
        belief.observe(3, [])
        assert belief.rate_at(3) is None


class TestAdaptiveTuner:
    def test_rounds_update_belief_and_budget(self, vote_type, prior):
        market = MarketModel(LinearPricing(3.0, 1.0))  # true curve != prior
        sim = AggregateSimulator(market, seed=0)
        tuner = AdaptiveTuner(vote_type, prior, total_budget=600, seed=0)
        for round_index in range(3):
            outcome = tuner.run_round(
                sim, n_tasks=10, repetitions=2, rounds_left=3 - round_index
            )
            assert outcome.latency > 0
        assert len(tuner.history) == 3
        assert tuner.total_spent <= 600
        assert tuner.remaining_budget == 600 - tuner.total_spent
        # Belief has left the prior behind.
        assert tuner.belief.current_model() is not prior

    def test_belief_converges_to_truth(self, vote_type, prior):
        true_curve = LinearPricing(3.0, 1.0)
        sim = AggregateSimulator(MarketModel(true_curve), seed=1)
        tuner = AdaptiveTuner(
            vote_type, prior, total_budget=4000, decay=1.0, seed=1
        )
        for round_index in range(8):
            tuner.run_round(
                sim, n_tasks=25, repetitions=2, rounds_left=8 - round_index
            )
        learned = tuner.belief.current_model()
        # Compare learned and true rates at a mid price.
        assert learned(5) == pytest.approx(true_curve(5), rel=0.3)

    def test_plan_round_respects_floor(self, vote_type, prior):
        tuner = AdaptiveTuner(vote_type, prior, total_budget=100, seed=0)
        problem, allocation = tuner.plan_round(
            n_tasks=5, repetitions=2, rounds_left=4
        )
        assert allocation.total_cost >= 10  # one unit per repetition
        assert allocation.total_cost <= 100

    def test_overcommitted_round_rejected(self, vote_type, prior):
        tuner = AdaptiveTuner(vote_type, prior, total_budget=10, seed=0)
        with pytest.raises(ModelError):
            tuner.plan_round(n_tasks=20, repetitions=2, rounds_left=1)

    def test_validation(self, vote_type, prior):
        with pytest.raises(ModelError):
            AdaptiveTuner(vote_type, prior, total_budget=0)
        tuner = AdaptiveTuner(vote_type, prior, total_budget=100)
        with pytest.raises(ModelError):
            tuner.plan_round(n_tasks=0, repetitions=1, rounds_left=1)
