"""Unit tests for repro.core.repetition (Algorithm 2, RA)."""

from __future__ import annotations

import pytest

from repro import HTuningProblem, InfeasibleAllocationError, TaskSpec
from repro.core import (
    budget_indexed_dp,
    exact_group_dp,
    greedy_marginal_allocation,
    group_onhold_latency,
    repetition_algorithm,
    surrogate_onhold_objective,
)
from repro.errors import ModelError
from repro.market import LinearPricing


@pytest.fixture
def pricing():
    return LinearPricing(1.0, 1.0)


def repe(budget, pricing, spec=((2, 3), (4, 3))):
    """spec: ((reps, count), ...) all same type."""
    tasks = []
    tid = 0
    for reps, count in spec:
        for _ in range(count):
            tasks.append(TaskSpec(tid, reps, pricing, 2.0))
            tid += 1
    return HTuningProblem(tasks, budget)


class TestBudgetIndexedDP:
    def test_spends_within_budget(self, pricing):
        problem = repe(100, pricing)
        prices = budget_indexed_dp(
            problem.groups(), problem.budget, group_onhold_latency
        )
        spend = sum(
            prices[g.key] * g.unit_cost for g in problem.groups()
        )
        assert spend <= problem.budget

    def test_minimum_prices_at_minimum_budget(self, pricing):
        problem = repe(18, pricing)  # exactly one unit per repetition
        prices = budget_indexed_dp(
            problem.groups(), problem.budget, group_onhold_latency
        )
        assert all(p == 1 for p in prices.values())

    def test_infeasible_budget_raises(self, pricing):
        problem = repe(18, pricing)
        with pytest.raises(InfeasibleAllocationError):
            budget_indexed_dp(problem.groups(), 17, group_onhold_latency)

    def test_empty_groups_rejected(self):
        with pytest.raises(ModelError):
            budget_indexed_dp((), 10, lambda g, p: 0.0)

    @pytest.mark.parametrize("budget", [19, 25, 37, 48, 60, 83, 100, 139])
    def test_matches_exact_dp(self, pricing, budget):
        """The paper's DP attains the separable optimum under convex
        group costs — certified against the knapsack reference."""
        problem = repe(budget, pricing, spec=((2, 3), (3, 2), (5, 1)))
        dp_prices = budget_indexed_dp(
            problem.groups(), problem.budget, group_onhold_latency
        )
        exact_prices = exact_group_dp(problem, group_onhold_latency)
        dp_obj = surrogate_onhold_objective(problem, dp_prices)
        exact_obj = surrogate_onhold_objective(problem, exact_prices)
        assert dp_obj == pytest.approx(exact_obj, abs=1e-12)

    def test_steeper_pricing_changes_allocation(self):
        # With λ = 10p + 1 the marginal gain saturates quickly.
        steep = LinearPricing(10.0, 1.0)
        problem = repe(60, steep)
        prices = budget_indexed_dp(
            problem.groups(), problem.budget, group_onhold_latency
        )
        assert all(p >= 1 for p in prices.values())


class TestGreedyMarginal:
    def test_agrees_with_dp_for_equal_unit_costs(self, pricing):
        # Equal unit costs → greedy optimal.
        problem = repe(90, pricing, spec=((3, 2), (2, 3)))
        # groups: 2 tasks×3 reps (u=6) and 3 tasks×2 reps (u=6)
        greedy = greedy_marginal_allocation(
            problem.groups(), problem.budget, group_onhold_latency
        )
        dp = budget_indexed_dp(
            problem.groups(), problem.budget, group_onhold_latency
        )
        assert surrogate_onhold_objective(problem, greedy) == pytest.approx(
            surrogate_onhold_objective(problem, dp), rel=1e-9
        )

    def test_never_better_than_dp(self, pricing):
        for budget in (40, 55, 73, 100):
            problem = repe(budget, pricing, spec=((3, 4), (5, 3), (2, 5)))
            greedy = greedy_marginal_allocation(
                problem.groups(), problem.budget, group_onhold_latency
            )
            dp = budget_indexed_dp(
                problem.groups(), problem.budget, group_onhold_latency
            )
            assert surrogate_onhold_objective(
                problem, dp
            ) <= surrogate_onhold_objective(problem, greedy) + 1e-12


class TestRepetitionAlgorithm:
    def test_returns_valid_allocation(self, repe_problem):
        alloc = repetition_algorithm(repe_problem)
        repe_problem.validate_allocation(alloc)

    def test_uniform_within_groups(self, repe_problem):
        alloc = repetition_algorithm(repe_problem)
        for group in repe_problem.groups():
            assert alloc.uniform_group_price(group) is not None

    def test_strict_scenario_guard(self, heter_problem):
        with pytest.raises(ModelError):
            repetition_algorithm(heter_problem)

    def test_relaxed_scenario(self, heter_problem):
        alloc = repetition_algorithm(heter_problem, strict_scenario=False)
        heter_problem.validate_allocation(alloc)

    def test_works_on_scenario_one(self, homo_problem):
        # Scenario I is a special case of II; RA should reproduce EA's
        # uniform prices when the division is exact.
        alloc = repetition_algorithm(homo_problem)
        (group,) = homo_problem.groups()
        assert alloc.uniform_group_price(group) == 5

    def test_beats_baselines_on_surrogate(self, pricing):
        from repro.core import rep_even_allocation, task_even_allocation

        problem = repe(120, pricing, spec=((3, 5), (5, 5)))
        ra = repetition_algorithm(problem)
        ra_prices = {
            g.key: ra.uniform_group_price(g) for g in problem.groups()
        }
        ra_obj = surrogate_onhold_objective(problem, ra_prices)
        for baseline in (rep_even_allocation, task_even_allocation):
            alloc = baseline(problem)
            prices = {
                g.key: alloc.uniform_group_price(g) for g in problem.groups()
            }
            if any(p is None for p in prices.values()):
                continue  # baseline not group-uniform; surrogate undefined
            assert ra_obj <= surrogate_onhold_objective(problem, prices) + 1e-9

    def test_more_budget_never_hurts(self, pricing):
        objectives = []
        for budget in (40, 60, 90, 140, 200):
            problem = repe(budget, pricing)
            alloc = repetition_algorithm(problem)
            prices = {
                g.key: alloc.uniform_group_price(g) for g in problem.groups()
            }
            objectives.append(surrogate_onhold_objective(problem, prices))
        assert all(a >= b - 1e-12 for a, b in zip(objectives, objectives[1:]))
