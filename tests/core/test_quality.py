"""Unit tests for repro.core.quality (quality-aware repetition planning)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    majority_correct_probability,
    plan_repetitions,
    repetitions_for_quality,
)
from repro.core.quality import QualityPlan
from repro.errors import ModelError, PlanError
from repro.market import TaskType


class TestMajorityCorrectProbability:
    def test_single_vote(self):
        assert majority_correct_probability(1, 0.8) == pytest.approx(0.8)

    def test_three_votes_closed_form(self):
        # P = a³ + 3a²(1−a)
        a = 0.8
        expected = a**3 + 3 * a**2 * (1 - a)
        assert majority_correct_probability(3, a) == pytest.approx(expected)

    def test_perfect_workers(self):
        assert majority_correct_probability(5, 1.0) == 1.0

    def test_increasing_in_odd_repetitions(self):
        values = [majority_correct_probability(r, 0.75) for r in (1, 3, 5, 7, 9)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_increasing_in_accuracy(self):
        values = [
            majority_correct_probability(5, a) for a in (0.6, 0.7, 0.8, 0.9)
        ]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_even_counts_ties_as_failure(self):
        # With r=2, success needs both right: a².
        assert majority_correct_probability(2, 0.8) == pytest.approx(0.64)

    def test_monte_carlo_agreement(self, rng):
        r, a = 7, 0.7
        trials = 50_000
        votes = rng.random((trials, r)) < a
        correct = votes.sum(axis=1) > r // 2
        assert correct.mean() == pytest.approx(
            majority_correct_probability(r, a), abs=0.01
        )

    def test_validation(self):
        with pytest.raises(ModelError):
            majority_correct_probability(0, 0.8)
        with pytest.raises(ModelError):
            majority_correct_probability(3, 0.0)
        with pytest.raises(ModelError):
            majority_correct_probability(3, 1.5)


class TestRepetitionsForQuality:
    def test_already_good_enough(self):
        assert repetitions_for_quality(0.95, 0.9) == 1

    def test_needs_more_votes(self):
        r = repetitions_for_quality(0.7, 0.95)
        assert r > 1
        assert r % 2 == 1
        assert majority_correct_probability(r, 0.7) >= 0.95
        # Minimality: two fewer votes must miss the target.
        if r > 1:
            assert majority_correct_probability(r - 2, 0.7) < 0.95

    def test_uninformative_crowd_rejected(self):
        with pytest.raises(PlanError):
            repetitions_for_quality(0.5, 0.9)

    def test_cap_enforced(self):
        with pytest.raises(PlanError):
            repetitions_for_quality(0.51, 0.999999, max_repetitions=5)

    def test_validation(self):
        with pytest.raises(ModelError):
            repetitions_for_quality(0.8, 0.0)
        with pytest.raises(ModelError):
            repetitions_for_quality(0.8, 1.0)


class TestPlanRepetitions:
    def test_harder_types_get_more_votes(self):
        easy = TaskType("easy", processing_rate=1.0, accuracy=0.95)
        hard = TaskType("hard", processing_rate=1.0, accuracy=0.7)
        plan = plan_repetitions([easy, hard], target=0.95)
        assert plan.for_type("hard") > plan.for_type("easy")

    def test_plan_meets_target_for_every_type(self):
        types = [
            TaskType(f"t{i}", processing_rate=1.0, accuracy=a)
            for i, a in enumerate((0.65, 0.8, 0.99))
        ]
        plan = plan_repetitions(types, target=0.9)
        for t in types:
            r = plan.for_type(t.name)
            assert majority_correct_probability(r, t.accuracy) >= 0.9

    def test_unknown_type_rejected(self):
        plan = QualityPlan(target=0.9, repetitions={"a": 3})
        with pytest.raises(PlanError):
            plan.for_type("b")

    def test_duplicate_names_rejected(self):
        t = TaskType("x", processing_rate=1.0, accuracy=0.9)
        with pytest.raises(ModelError):
            plan_repetitions([t, t], target=0.9)

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            plan_repetitions([], target=0.9)

    def test_feeds_h_tuning(self):
        """The derived plan creates exactly the repetition heterogeneity
        Scenario II/III tunes."""
        from repro import HTuningProblem, Scenario, TaskSpec
        from repro.market import LinearPricing

        easy = TaskType("easy", processing_rate=2.0, accuracy=0.95)
        hard = TaskType("hard", processing_rate=2.0, accuracy=0.7)
        plan = plan_repetitions([easy, hard], target=0.95)
        pricing = LinearPricing(1.0, 1.0)
        tasks = [
            TaskSpec(0, plan.for_type("easy"), pricing, 2.0, type_name="x"),
            TaskSpec(1, plan.for_type("hard"), pricing, 2.0, type_name="x"),
        ]
        problem = HTuningProblem(tasks, budget=200)
        assert problem.scenario() is Scenario.REPETITION
