"""Unit tests for repro.core.objectives (O1/O2, utopia, closeness)."""

from __future__ import annotations

import pytest

from repro.core import (
    ObjectivePoint,
    closeness,
    group_onhold_latency,
    group_processing_latency,
    objective_o1,
    objective_o2,
    utopia_point,
)


class TestObjectives:
    def test_o1_is_group_sum(self, heter_problem):
        groups = heter_problem.groups()
        prices = {g.key: 2 for g in groups}
        expected = sum(group_onhold_latency(g, 2) for g in groups)
        assert objective_o1(heter_problem, prices) == pytest.approx(expected)

    def test_o2_is_max_total(self, heter_problem):
        groups = heter_problem.groups()
        prices = {g.key: 2 for g in groups}
        expected = max(
            group_onhold_latency(g, 2) + group_processing_latency(g)
            for g in groups
        )
        assert objective_o2(heter_problem, prices) == pytest.approx(expected)

    def test_o1_decreasing_in_price(self, heter_problem):
        groups = heter_problem.groups()
        low = objective_o1(heter_problem, {g.key: 1 for g in groups})
        high = objective_o1(heter_problem, {g.key: 4 for g in groups})
        assert high < low

    def test_o2_nonincreasing_in_price(self, heter_problem):
        groups = heter_problem.groups()
        low = objective_o2(heter_problem, {g.key: 1 for g in groups})
        high = objective_o2(heter_problem, {g.key: 4 for g in groups})
        assert high <= low


class TestObjectivePoint:
    def test_l1_distance(self):
        a = ObjectivePoint(1.0, 2.0)
        b = ObjectivePoint(3.0, 1.0)
        assert a.l1_distance(b) == pytest.approx(3.0)

    def test_distance_symmetric(self):
        a = ObjectivePoint(1.0, 2.0)
        b = ObjectivePoint(0.5, 5.0)
        assert a.l1_distance(b) == b.l1_distance(a)


class TestUtopiaPoint:
    def test_utopia_dominates_feasible_points(self, heter_problem):
        utopia = utopia_point(heter_problem)
        groups = heter_problem.groups()
        # Enumerate a few feasible uniform price vectors.
        for p0 in (1, 2, 3):
            for p1 in (1, 2, 3):
                prices = {groups[0].key: p0, groups[1].key: p1}
                spend = sum(
                    prices[g.key] * g.unit_cost for g in groups
                )
                if spend > heter_problem.budget:
                    continue
                assert objective_o1(heter_problem, prices) >= utopia.o1 - 1e-9
                assert objective_o2(heter_problem, prices) >= utopia.o2 - 1e-9

    def test_utopia_usually_infeasible_jointly(self, heter_problem):
        # The utopia point optimizes each objective separately; a
        # single allocation rarely attains both. We only check the
        # coordinates are finite and positive.
        utopia = utopia_point(heter_problem)
        assert utopia.o1 > 0
        assert utopia.o2 > 0


class TestCloseness:
    def test_zero_iff_at_utopia(self, heter_problem):
        utopia = utopia_point(heter_problem)
        synthetic = ObjectivePoint(utopia.o1, utopia.o2)
        assert synthetic.l1_distance(utopia) == 0.0

    def test_closeness_nonnegative(self, heter_problem):
        utopia = utopia_point(heter_problem)
        groups = heter_problem.groups()
        prices = {g.key: 1 for g in groups}
        assert closeness(heter_problem, prices, utopia) >= 0.0

    def test_closeness_equals_sum_gap(self, heter_problem):
        # For feasible points, CL = (O1−O1*) + (O2−O2*).
        utopia = utopia_point(heter_problem)
        groups = heter_problem.groups()
        prices = {g.key: 2 for g in groups}
        cl = closeness(heter_problem, prices, utopia)
        gap = (
            objective_o1(heter_problem, prices)
            - utopia.o1
            + objective_o2(heter_problem, prices)
            - utopia.o2
        )
        assert cl == pytest.approx(gap)
