"""Unit tests for repro.core.tuner."""

from __future__ import annotations

import pytest

from repro import Tuner
from repro.core import STRATEGIES
from repro.errors import ModelError


class TestTunerResolution:
    def test_auto_homogeneity_uses_ea(self, homo_problem):
        assert Tuner().resolve_strategy(homo_problem) == "ea"

    def test_auto_repetition_uses_ra(self, repe_problem):
        assert Tuner().resolve_strategy(repe_problem) == "ra"

    def test_auto_heterogeneous_uses_ha(self, heter_problem):
        assert Tuner().resolve_strategy(heter_problem) == "ha"

    def test_explicit_strategy(self, homo_problem):
        assert Tuner(strategy="re").resolve_strategy(homo_problem) == "re"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ModelError):
            Tuner(strategy="magic")


class TestTunerExecution:
    @pytest.mark.parametrize("fixture", ["homo_problem", "repe_problem", "heter_problem"])
    def test_auto_produces_valid_allocation(self, fixture, request):
        problem = request.getfixturevalue(fixture)
        allocation = Tuner(seed=0).tune(problem)
        problem.validate_allocation(allocation)

    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_every_registered_strategy_runs(self, name, repe_problem):
        allocation = Tuner(strategy=name, seed=0).tune(repe_problem)
        repe_problem.validate_allocation(allocation)

    def test_seeded_determinism(self, homo_problem):
        a = Tuner(seed=5).tune(homo_problem)
        b = Tuner(seed=5).tune(homo_problem)
        assert a == b

    def test_registry_is_complete(self):
        assert {"ea", "ra", "ha", "te", "re", "uniform", "bias_1", "bias_2"} <= set(
            STRATEGIES
        )
