"""Unit tests for repro.core.problem."""

from __future__ import annotations

import pytest

from repro import (
    Allocation,
    HTuningProblem,
    InfeasibleAllocationError,
    Scenario,
    TaskSpec,
)
from repro.errors import BudgetError, ModelError
from repro.market import LinearPricing


@pytest.fixture
def pricing():
    return LinearPricing(1.0, 1.0)


class TestTaskSpec:
    def test_valid(self, pricing):
        t = TaskSpec(0, repetitions=3, pricing=pricing, processing_rate=2.0)
        assert t.onhold_rate(4) == pytest.approx(5.0)

    def test_rejects_bad_repetitions(self, pricing):
        with pytest.raises(ModelError):
            TaskSpec(0, repetitions=0, pricing=pricing, processing_rate=1.0)
        with pytest.raises(ModelError):
            TaskSpec(0, repetitions=1.5, pricing=pricing, processing_rate=1.0)

    def test_rejects_bad_processing_rate(self, pricing):
        with pytest.raises(ModelError):
            TaskSpec(0, repetitions=1, pricing=pricing, processing_rate=0.0)

    def test_rejects_non_pricing(self):
        with pytest.raises(ModelError):
            TaskSpec(0, repetitions=1, pricing="cheap", processing_rate=1.0)

    def test_group_key_contains_identity(self, pricing):
        a = TaskSpec(0, repetitions=2, pricing=pricing, processing_rate=1.0,
                     type_name="x")
        b = TaskSpec(1, repetitions=2, pricing=pricing, processing_rate=1.0,
                     type_name="x")
        assert a.group_key == b.group_key


class TestGrouping:
    def test_groups_by_type_and_repetitions(self, pricing):
        tasks = [
            TaskSpec(0, 2, pricing, 1.0, type_name="a"),
            TaskSpec(1, 2, pricing, 1.0, type_name="a"),
            TaskSpec(2, 3, pricing, 1.0, type_name="a"),
            TaskSpec(3, 2, pricing, 2.0, type_name="b"),
        ]
        problem = HTuningProblem(tasks, budget=100)
        groups = problem.groups()
        assert len(groups) == 3
        sizes = sorted(g.size for g in groups)
        assert sizes == [1, 1, 2]

    def test_group_order_deterministic(self, pricing):
        tasks = [
            TaskSpec(0, 3, pricing, 1.0),
            TaskSpec(1, 2, pricing, 1.0),
        ]
        problem = HTuningProblem(tasks, budget=100)
        assert problem.groups()[0].repetitions == 3

    def test_unit_cost(self, pricing):
        tasks = [TaskSpec(i, 4, pricing, 1.0) for i in range(3)]
        problem = HTuningProblem(tasks, budget=100)
        (group,) = problem.groups()
        assert group.unit_cost == 12

    def test_groups_cached(self, pricing):
        problem = HTuningProblem([TaskSpec(0, 1, pricing, 1.0)], budget=10)
        assert problem.groups() is problem.groups()


class TestScenarioDetection:
    def test_homogeneity(self, homo_problem):
        assert homo_problem.scenario() is Scenario.HOMOGENEITY

    def test_repetition(self, repe_problem):
        assert repe_problem.scenario() is Scenario.REPETITION

    def test_heterogeneous(self, heter_problem):
        assert heter_problem.scenario() is Scenario.HETEROGENEOUS

    def test_same_reps_different_types_is_heterogeneous(self, pricing):
        tasks = [
            TaskSpec(0, 2, pricing, 1.0, type_name="a"),
            TaskSpec(1, 2, pricing, 2.0, type_name="b"),
        ]
        assert HTuningProblem(tasks, 40).scenario() is Scenario.HETEROGENEOUS


class TestProblemValidation:
    def test_needs_tasks(self):
        with pytest.raises(ModelError):
            HTuningProblem([], budget=10)

    def test_unique_ids(self, pricing):
        tasks = [
            TaskSpec(0, 1, pricing, 1.0),
            TaskSpec(0, 1, pricing, 1.0),
        ]
        with pytest.raises(ModelError):
            HTuningProblem(tasks, budget=10)

    def test_integer_budget(self, pricing):
        with pytest.raises(BudgetError):
            HTuningProblem([TaskSpec(0, 1, pricing, 1.0)], budget=10.5)

    def test_infeasible_budget(self, pricing):
        tasks = [TaskSpec(i, 5, pricing, 1.0) for i in range(4)]
        with pytest.raises(InfeasibleAllocationError):
            HTuningProblem(tasks, budget=19)

    def test_exactly_feasible_budget(self, pricing):
        tasks = [TaskSpec(i, 5, pricing, 1.0) for i in range(4)]
        problem = HTuningProblem(tasks, budget=20)
        assert problem.min_feasible_budget == 20

    def test_totals(self, repe_problem):
        assert repe_problem.num_tasks == 6
        assert repe_problem.total_repetitions == 3 * 2 + 3 * 4


class TestAllocation:
    def test_construction(self):
        alloc = Allocation({0: [2, 3], 1: [1]})
        assert alloc[0] == (2, 3)
        assert alloc.total_cost == 6
        assert alloc.task_cost(0) == 5
        assert 0 in alloc
        assert len(alloc) == 2

    def test_rejects_empty(self):
        with pytest.raises(ModelError):
            Allocation({})

    def test_rejects_below_minimum_price(self):
        with pytest.raises(ModelError):
            Allocation({0: [1, 0]})

    def test_rejects_taskless_entry(self):
        with pytest.raises(ModelError):
            Allocation({0: []})

    def test_equality(self):
        assert Allocation({0: [1, 2]}) == Allocation({0: [1, 2]})
        assert Allocation({0: [1, 2]}) != Allocation({0: [2, 1]})

    def test_uniform_constructor(self, homo_problem):
        alloc = Allocation.uniform(homo_problem, 5)
        assert all(p == 5 for prices in alloc._prices.values() for p in prices)

    def test_from_group_prices(self, repe_problem):
        groups = repe_problem.groups()
        alloc = Allocation.from_group_prices(
            repe_problem, {g.key: 2 for g in groups}
        )
        for g in groups:
            assert alloc.uniform_group_price(g) == 2

    def test_uniform_group_price_none_when_mixed(self, homo_problem):
        prices = {t.task_id: [1] * t.repetitions for t in homo_problem.tasks}
        prices[0] = [1, 2, 1]
        alloc = Allocation(prices)
        (group,) = homo_problem.groups()
        assert alloc.uniform_group_price(group) is None


class TestValidateAllocation:
    def test_valid(self, homo_problem):
        alloc = Allocation.uniform(homo_problem, 5)
        homo_problem.validate_allocation(alloc)

    def test_id_mismatch(self, homo_problem):
        alloc = Allocation({99: [1]})
        with pytest.raises(ModelError):
            homo_problem.validate_allocation(alloc)

    def test_repetition_count_mismatch(self, homo_problem):
        prices = {t.task_id: [1] * t.repetitions for t in homo_problem.tasks}
        prices[0] = [1]  # should be 3 repetitions
        with pytest.raises(ModelError):
            homo_problem.validate_allocation(Allocation(prices))

    def test_over_budget(self, homo_problem):
        alloc = Allocation.uniform(homo_problem, 100)
        with pytest.raises(BudgetError):
            homo_problem.validate_allocation(alloc)
