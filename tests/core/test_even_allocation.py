"""Unit tests for repro.core.even_allocation (Algorithm 1, EA)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import HTuningProblem, InfeasibleAllocationError, TaskSpec
from repro.core import even_allocation, expected_job_latency
from repro.errors import ModelError
from repro.market import LinearPricing


@pytest.fixture
def pricing():
    return LinearPricing(1.0, 1.0)


def homo(n, reps, budget, pricing):
    tasks = [TaskSpec(i, reps, pricing, 2.0) for i in range(n)]
    return HTuningProblem(tasks, budget)


class TestEvenAllocation:
    def test_exact_division(self, pricing):
        problem = homo(4, 3, 60, pricing)
        alloc = even_allocation(problem, rng=0)
        assert alloc.total_cost == 60
        assert all(p == 5 for prices in (alloc[i] for i in range(4)) for p in prices)

    def test_infeasible_raises(self, pricing):
        problem = homo(4, 3, 12, pricing)  # minimum is 12: feasible
        even_allocation(problem, rng=0)
        with pytest.raises(InfeasibleAllocationError):
            HTuningProblem([TaskSpec(0, 3, pricing, 2.0)], budget=2)

    def test_gamma_remainder_spread_per_task(self, pricing):
        # B=4*3*5 + 8 → δ=5, remainder 8, γ=2 per task, σ=0
        problem = homo(4, 3, 68, pricing)
        alloc = even_allocation(problem, rng=0)
        assert alloc.total_cost == 68
        for i in range(4):
            prices = sorted(alloc[i])
            assert prices == [5, 6, 6]

    def test_sigma_remainder_hits_distinct_tasks(self, pricing):
        # B=60+3 → δ=5, γ=0, σ=3: three tasks get one +1 repetition
        problem = homo(4, 3, 63, pricing)
        alloc = even_allocation(problem, rng=0)
        assert alloc.total_cost == 63
        bumped = [i for i in range(4) if sum(alloc[i]) == 16]
        assert len(bumped) == 3

    def test_gamma_and_sigma_together(self, pricing):
        # B = 60 + 4*2 + 3 = 71 → γ=2, σ=3
        problem = homo(4, 3, 71, pricing)
        alloc = even_allocation(problem, rng=0)
        assert alloc.total_cost == 71
        per_task = sorted(alloc.task_cost(i) for i in range(4))
        assert per_task == [17, 18, 18, 18]

    def test_remainder_placement_randomized_but_seeded(self, pricing):
        problem = homo(4, 3, 63, pricing)
        a = even_allocation(problem, rng=0)
        b = even_allocation(problem, rng=0)
        assert a == b

    def test_strict_scenario_guard(self, repe_problem):
        with pytest.raises(ModelError):
            even_allocation(repe_problem, rng=0)

    def test_relaxed_scenario_for_baseline_use(self, repe_problem):
        alloc = even_allocation(repe_problem, rng=0, strict_scenario=False)
        repe_problem.validate_allocation(alloc)
        assert alloc.total_cost == repe_problem.budget


class TestEAOptimality:
    """Theorem 1: EA is optimal for Scenario I (verified numerically)."""

    def test_beats_biased_allocations(self, pricing):
        problem = homo(6, 2, 120, pricing)
        ea = even_allocation(problem, rng=0)
        ea_latency = expected_job_latency(problem, ea, include_processing=False)
        from repro.core import biased_allocation

        for alpha in (0.6, 0.75, 0.9):
            biased = biased_allocation(problem, alpha=alpha, rng=0)
            biased_latency = expected_job_latency(
                problem, biased, include_processing=False
            )
            assert ea_latency <= biased_latency + 1e-9

    def test_beats_every_two_task_split(self, pricing):
        # Lemma 1 exhaustively: two 1-rep tasks, budget B; the even
        # split must minimize E[max].
        from repro import Allocation

        tasks = [TaskSpec(i, 1, pricing, 2.0) for i in range(2)]
        budget = 10
        problem = HTuningProblem(tasks, budget)
        latencies = {}
        for x in range(1, budget):
            alloc = Allocation({0: [x], 1: [budget - x]})
            latencies[x] = expected_job_latency(
                problem, alloc, include_processing=False
            )
        best_split = min(latencies, key=latencies.get)
        assert best_split == 5

    def test_even_beats_uneven_repetitions(self, pricing):
        # Lemma 2: within one task, even per-repetition split is best.
        from repro import Allocation

        task = [TaskSpec(0, 2, pricing, 2.0)]
        budget = 8
        problem = HTuningProblem(task, budget)
        even = expected_job_latency(
            problem, Allocation({0: [4, 4]}), include_processing=False
        )
        for split in ([1, 7], [2, 6], [3, 5]):
            uneven = expected_job_latency(
                problem, Allocation({0: split}), include_processing=False
            )
            assert even <= uneven + 1e-9
