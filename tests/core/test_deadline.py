"""Unit tests for repro.core.deadline (the [29]-style dual problem)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro import HTuningProblem, TaskSpec
from repro.core import (
    completion_probability,
    latency_quantile,
    latency_quantile_batch,
    min_cost_for_deadline,
    min_cost_for_deadline_sweep,
)
from repro.core.latency import sample_job_latencies
from repro.core.problem import Allocation
from repro.errors import ModelError
from repro.market import LinearPricing


@pytest.fixture
def pricing():
    return LinearPricing(1.0, 1.0)


def make_tasks(pricing, spec=((2, 2, 5.0), (3, 1, 3.0))):
    """spec: ((reps, count, proc_rate), ...)."""
    tasks = []
    tid = 0
    for gi, (reps, count, proc) in enumerate(spec):
        for _ in range(count):
            tasks.append(
                TaskSpec(tid, reps, pricing, proc, type_name=f"g{gi}")
            )
            tid += 1
    return tasks


class TestCompletionProbability:
    def test_matches_monte_carlo(self, pricing):
        tasks = make_tasks(pricing)
        problem = HTuningProblem(tasks, budget=1000)
        prices = {g.key: 3 for g in problem.groups()}
        deadline = 3.0
        analytic = completion_probability(problem, prices, deadline)
        alloc = Allocation.from_group_prices(problem, prices)
        draws = sample_job_latencies(problem, alloc, 60_000, rng=0)
        empirical = float(np.mean(draws <= deadline))
        assert analytic == pytest.approx(empirical, abs=0.01)

    def test_monotone_in_deadline(self, pricing):
        tasks = make_tasks(pricing)
        problem = HTuningProblem(tasks, budget=1000)
        prices = {g.key: 2 for g in problem.groups()}
        probs = [
            completion_probability(problem, prices, d)
            for d in (0.5, 1.0, 2.0, 5.0, 20.0)
        ]
        assert all(a <= b + 1e-12 for a, b in zip(probs, probs[1:]))
        assert probs[-1] > 0.95

    def test_monotone_in_price(self, pricing):
        tasks = make_tasks(pricing)
        problem = HTuningProblem(tasks, budget=1000)
        deadline = 2.0
        values = []
        for p in (1, 3, 6, 10):
            prices = {g.key: p for g in problem.groups()}
            values.append(completion_probability(problem, prices, deadline))
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_zero_deadline(self, pricing):
        tasks = make_tasks(pricing)
        problem = HTuningProblem(tasks, budget=1000)
        prices = {g.key: 2 for g in problem.groups()}
        assert completion_probability(problem, prices, 0.0) == 0.0

    def test_rejects_negative_deadline(self, pricing):
        tasks = make_tasks(pricing)
        problem = HTuningProblem(tasks, budget=1000)
        prices = {g.key: 2 for g in problem.groups()}
        with pytest.raises(ModelError):
            completion_probability(problem, prices, -1.0)


class TestLatencyQuantile:
    def test_roundtrip_with_completion_probability(self, pricing):
        tasks = make_tasks(pricing)
        problem = HTuningProblem(tasks, budget=1000)
        prices = {g.key: 3 for g in problem.groups()}
        q90 = latency_quantile(problem, prices, 0.9)
        assert completion_probability(problem, prices, q90) == pytest.approx(
            0.9, abs=1e-3
        )

    def test_higher_confidence_larger_quantile(self, pricing):
        tasks = make_tasks(pricing)
        problem = HTuningProblem(tasks, budget=1000)
        prices = {g.key: 3 for g in problem.groups()}
        assert latency_quantile(problem, prices, 0.95) > latency_quantile(
            problem, prices, 0.5
        )

    def test_validation(self, pricing):
        tasks = make_tasks(pricing)
        problem = HTuningProblem(tasks, budget=1000)
        prices = {g.key: 3 for g in problem.groups()}
        with pytest.raises(ModelError):
            latency_quantile(problem, prices, 1.0)


class TestMinCostForDeadline:
    def test_meets_target(self, pricing):
        tasks = make_tasks(pricing)
        result = min_cost_for_deadline(tasks, deadline=3.0, confidence=0.8)
        assert result.feasible
        assert result.achieved_probability >= 0.8

    def test_minimality_no_single_decrement_feasible(self, pricing):
        tasks = make_tasks(pricing)
        result = min_cost_for_deadline(tasks, deadline=3.0, confidence=0.8)
        problem = HTuningProblem(
            tasks, budget=sum(t.repetitions for t in tasks) * 10_000
        )
        for g in problem.groups():
            p = result.group_prices[g.key]
            if p <= 1:
                continue
            trial = dict(result.group_prices)
            trial[g.key] = p - 1
            assert (
                completion_probability(problem, trial, 3.0) < 0.8
            ), "a cheaper feasible decrement exists — not minimal"

    def test_matches_exhaustive_on_small_instance(self, pricing):
        tasks = make_tasks(pricing, spec=((1, 1, 2.0), (2, 1, 1.0)))
        deadline, confidence = 4.0, 0.7
        result = min_cost_for_deadline(
            tasks, deadline=deadline, confidence=confidence, max_price=15
        )
        # Exhaustive search over the group-uniform lattice.
        problem = HTuningProblem(tasks, budget=10_000)
        groups = problem.groups()
        best_cost = None
        for combo in itertools.product(range(1, 16), repeat=len(groups)):
            prices = {g.key: p for g, p in zip(groups, combo)}
            if completion_probability(problem, prices, deadline) >= confidence:
                cost = sum(p * g.unit_cost for g, p in zip(groups, combo))
                best_cost = cost if best_cost is None else min(best_cost, cost)
        assert best_cost is not None
        assert result.cost == best_cost

    def test_tighter_deadline_costs_more(self, pricing):
        tasks = make_tasks(pricing)
        loose = min_cost_for_deadline(tasks, deadline=8.0, confidence=0.8)
        tight = min_cost_for_deadline(tasks, deadline=2.5, confidence=0.8)
        assert tight.cost >= loose.cost

    def test_unreachable_deadline_reported_infeasible(self, pricing):
        # Processing alone (price-independent) exceeds the deadline.
        tasks = make_tasks(pricing, spec=((3, 2, 0.01),))
        result = min_cost_for_deadline(
            tasks, deadline=0.5, confidence=0.9, max_price=50
        )
        assert not result.feasible

    def test_validation(self, pricing):
        with pytest.raises(ModelError):
            min_cost_for_deadline([], deadline=1.0)
        tasks = make_tasks(pricing)
        with pytest.raises(ModelError):
            min_cost_for_deadline(tasks, deadline=0.0)
        with pytest.raises(ModelError):
            min_cost_for_deadline(tasks, deadline=1.0, confidence=1.5)

    def test_matches_exhaustive_without_processing(self, pricing):
        """Exhaustive cross-check with the processing phases excluded —
        the pure acceptance-side dual of [29]."""
        tasks = make_tasks(pricing, spec=((2, 1, 2.0), (1, 2, 1.0)))
        deadline, confidence = 2.5, 0.75
        result = min_cost_for_deadline(
            tasks,
            deadline=deadline,
            confidence=confidence,
            max_price=12,
            include_processing=False,
        )
        assert result.feasible
        problem = HTuningProblem(tasks, budget=10_000)
        groups = problem.groups()
        best_cost = None
        for combo in itertools.product(range(1, 13), repeat=len(groups)):
            prices = {g.key: p for g, p in zip(groups, combo)}
            if (
                completion_probability(
                    problem, prices, deadline, include_processing=False
                )
                >= confidence
            ):
                cost = sum(p * g.unit_cost for g, p in zip(groups, combo))
                best_cost = cost if best_cost is None else min(best_cost, cost)
        assert best_cost is not None
        assert result.cost == best_cost

    def test_infeasible_ceiling_returns_floor_immediately(self, pricing):
        """When processing alone busts the deadline, the early return
        reports the one-unit floor allocation without climbing."""
        tasks = make_tasks(pricing, spec=((3, 2, 0.01),))
        result = min_cost_for_deadline(
            tasks, deadline=0.5, confidence=0.9, max_price=50
        )
        assert not result.feasible
        assert all(p == 1 for p in result.group_prices.values())
        assert result.cost == sum(t.repetitions for t in tasks)
        # Without the price-independent processing phases the same
        # instance is purchasable: the ceiling no longer applies.
        no_proc = min_cost_for_deadline(
            tasks,
            deadline=0.5,
            confidence=0.9,
            max_price=200,
            include_processing=False,
        )
        assert no_proc.feasible

    def test_max_price_saturation(self, pricing):
        """An unmeetable target under a low cap saturates every group
        at max_price and honestly reports infeasibility."""
        tasks = make_tasks(pricing, spec=((2, 2, 5.0),))
        result = min_cost_for_deadline(
            tasks,
            deadline=0.4,
            confidence=0.99,
            max_price=3,
            include_processing=False,
        )
        assert not result.feasible
        assert all(p == 3 for p in result.group_prices.values())
        # Lifting the cap makes the same target affordable.
        lifted = min_cost_for_deadline(
            tasks,
            deadline=0.4,
            confidence=0.99,
            max_price=400,
            include_processing=False,
        )
        assert lifted.feasible
        assert lifted.cost > result.cost


class TestDeadlineSweep:
    def test_sweep_matches_single_calls(self, pricing):
        tasks = make_tasks(pricing)
        deadlines = [2.0, 3.5, 5.0, 8.0]
        swept = min_cost_for_deadline_sweep(
            tasks, deadlines, confidence=0.8, max_price=20
        )
        assert list(swept) == deadlines
        for deadline in deadlines:
            single = min_cost_for_deadline(
                tasks, deadline, confidence=0.8, max_price=20
            )
            assert swept[deadline].group_prices == single.group_prices
            assert swept[deadline].cost == single.cost
            assert (
                swept[deadline].achieved_probability
                == single.achieved_probability
            )

    def test_sweep_preserves_requested_order(self, pricing):
        tasks = make_tasks(pricing)
        deadlines = [5.0, 2.0, 8.0]
        swept = min_cost_for_deadline_sweep(
            tasks, deadlines, confidence=0.8, max_price=20
        )
        assert list(swept) == deadlines

    def test_sweep_validation(self, pricing):
        tasks = make_tasks(pricing)
        with pytest.raises(ModelError):
            min_cost_for_deadline_sweep(tasks, [])
        with pytest.raises(ModelError):
            min_cost_for_deadline_sweep(tasks, [1.0, -2.0])


class TestLatencyQuantileBatch:
    def test_single_confidence_matches_scalar(self, pricing):
        tasks = make_tasks(pricing)
        problem = HTuningProblem(tasks, budget=1000)
        prices = {g.key: 3 for g in problem.groups()}
        batch = latency_quantile_batch(problem, prices, [0.9])
        assert float(batch[0]) == latency_quantile(problem, prices, 0.9)

    def test_vector_confidences_are_monotone_and_consistent(self, pricing):
        tasks = make_tasks(pricing)
        problem = HTuningProblem(tasks, budget=1000)
        prices = {g.key: 3 for g in problem.groups()}
        confs = [0.25, 0.5, 0.9, 0.99]
        batch = latency_quantile_batch(problem, prices, confs)
        assert all(a < b for a, b in zip(batch, batch[1:]))
        for conf, quantile in zip(confs, batch):
            assert completion_probability(
                problem, prices, float(quantile)
            ) == pytest.approx(conf, abs=1e-3)

    def test_validation(self, pricing):
        tasks = make_tasks(pricing)
        problem = HTuningProblem(tasks, budget=1000)
        prices = {g.key: 3 for g in problem.groups()}
        with pytest.raises(ModelError):
            latency_quantile_batch(problem, prices, [])
        with pytest.raises(ModelError):
            latency_quantile_batch(problem, prices, [0.5, 1.0])
