"""Tiny specs + in-process helpers for the serve suite.

The serve tests exercise the service two ways: **in-process** (call
``ReproService.handle`` directly inside one event loop — fast, no
sockets, used for endpoint contracts) and **over the wire**
(``start_in_thread`` + ``http_request`` — the real asyncio-streams
path, used for the load-generator and process-executor tests).
Process-spawning variants share the executor suite's
``REPRO_EXEC_TESTS=1`` gate.
"""

from __future__ import annotations

import asyncio
import json
import os

import pytest

#: One tier-1-cheap submission (also first in the loadgen spec pool,
#: so schedules and endpoint tests hit the same content address).
TINY_SPEC = {
    "experiment": "budget-sweep",
    "params": {
        "family": "repe",
        "case": "a",
        "n_tasks": 4,
        "budgets": [600, 900],
        "strategies": ["ra"],
        "scoring": "numeric",
    },
}

#: Marker gating tests that spawn a real worker pool (same gate as
#: tests/exec — the parallel-executor CI job flips it).
requires_process_pool = pytest.mark.skipif(
    os.environ.get("REPRO_EXEC_TESTS") != "1",
    reason="process-pool tests run in the parallel-executor / "
    "service-layer CI jobs (set REPRO_EXEC_TESTS=1 to enable)",
)


async def call(service, method: str, path: str, doc=None):
    """One in-process request; mirrors the wire's (status, body) shape."""
    body = b"" if doc is None else json.dumps(doc).encode("utf-8")
    return await service.handle(method, path, body)


async def submit_and_wait(service, spec, config=None, timeout: float = 60.0):
    """POST /runs then poll until the run settles; returns (run_id, doc)."""
    payload = {"spec": spec}
    if config is not None:
        payload["config"] = config
    status, doc = await call(service, "POST", "/runs", payload)
    assert status in (200, 202), doc
    run_id = doc["run_id"]
    deadline = asyncio.get_running_loop().time() + timeout
    while doc["status"] in ("queued", "running"):
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError(f"run {run_id} never settled: {doc}")
        await asyncio.sleep(0.01)
        _, doc = await call(service, "GET", f"/runs/{run_id}")
    return run_id, doc
