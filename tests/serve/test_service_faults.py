"""Deterministic failure injection for the service layer.

The two serve fault sites follow the explicit-``FaultState`` pattern
(``worker.*`` / ``store.*``): occurrences are indexed per site, rules
fire at exact indices, and the same plan replays the same failure.

* ``serve.request`` — the request at that arrival index dies with a
  500 :class:`~repro.resilience.document.ErrorDocument` before
  routing; the loop and every other request stay healthy.
* ``serve.backend`` — the dispatch at that index is killed before it
  reaches the executor; the run settles ``failed`` with a replayable
  fault document, and resubmitting the same spec recovers (the failed
  record is replaced and re-dispatched).
"""

from __future__ import annotations

import asyncio

import pytest
from serve_tiny import TINY_SPEC, call, submit_and_wait

from repro.serve import ReproService


def run(coro):
    return asyncio.run(coro)


def plan(site: str, *at: int) -> dict:
    return {"rules": [{"site": site, "at": list(at)}]}


class TestRequestFaults:
    def test_exact_request_dies_others_survive(self):
        svc = ReproService(faults=plan("serve.request", 1))

        async def check():
            status, _ = await call(svc, "GET", "/health")
            assert status == 200  # occurrence 0: clean
            status, doc = await call(svc, "GET", "/health")
            assert status == 500  # occurrence 1: injected
            assert doc["code"] == "fault-injected"
            assert doc["site"] == "serve.request"
            assert doc["occurrence"] == 1
            status, _ = await call(svc, "GET", "/health")
            assert status == 200  # occurrence 2: clean again
            assert svc.tally["injected_request_faults"] == 1

        try:
            run(check())
        finally:
            svc.close()

    def test_same_plan_replays_the_same_failure(self):
        def trajectory():
            svc = ReproService(faults=plan("serve.request", 0, 2))

            async def drive():
                statuses = []
                for _ in range(4):
                    status, _ = await call(svc, "GET", "/health")
                    statuses.append(status)
                return statuses

            try:
                return run(drive())
            finally:
                svc.close()

        assert trajectory() == trajectory() == [500, 200, 500, 200]


class TestBackendFaults:
    def test_killed_dispatch_fails_run_then_resubmission_recovers(self):
        svc = ReproService(faults=plan("serve.backend", 0))

        async def check():
            run_id, doc = await submit_and_wait(svc, TINY_SPEC)
            assert doc["status"] == "failed"
            assert doc["error"]["code"] == "fault-injected"
            assert doc["error"]["site"] == "serve.backend"
            assert svc.tally["failed_runs"] == 1

            status, body = await call(svc, "GET", f"/runs/{run_id}/result")
            assert status == 500
            assert body["code"] == "fault-injected"

            # The crash-mid-run recovery story: same submission, the
            # failed record is replaced and dispatch occurrence 1 is
            # clean.
            retry_id, doc = await submit_and_wait(svc, TINY_SPEC)
            assert retry_id == run_id  # same content address
            assert doc["status"] == "succeeded"
            status, body = await call(svc, "GET", f"/runs/{run_id}/result")
            assert status == 200
            assert body["fingerprint"] == run_id

        try:
            run(check())
        finally:
            svc.close()

    def test_backend_kill_leaves_market_and_loop_healthy(self):
        svc = ReproService(
            faults=plan("serve.backend", 0), market_budget=2_000
        )

        async def check():
            _, doc = await submit_and_wait(svc, TINY_SPEC)
            assert doc["status"] == "failed"
            status, doc = await call(
                svc, "POST", "/market/allocate",
                {"scenario": "homo", "n_tasks": 4, "budget": 300},
            )
            assert status == 200  # the ledger never noticed
            status, doc = await call(svc, "GET", "/health")
            assert status == 200 and doc["status"] == "ok"

        try:
            run(check())
        finally:
            svc.close()

    def test_store_never_records_the_faulted_run(self, tmp_path):
        store_dir = tmp_path / "results"
        svc = ReproService(store=store_dir, faults=plan("serve.backend", 0))

        async def check():
            run_id, doc = await submit_and_wait(svc, TINY_SPEC)
            assert doc["status"] == "failed"
            return run_id

        try:
            run_id = run(check())
        finally:
            svc.close()

        # A fresh service on the same store must MISS (failed runs are
        # never persisted) and compute cleanly.
        svc2 = ReproService(store=store_dir)

        async def recover():
            _, doc = await submit_and_wait(svc2, TINY_SPEC)
            assert doc["status"] == "succeeded"
            assert svc2.tally["store_hits"] == 0
            assert svc2.tally["computed"] == 1

        try:
            run(recover())
        finally:
            svc2.close()
