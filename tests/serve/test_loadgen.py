"""The seeded load generator: schedules, replay, and determinism.

The contract under test is the hard line drawn in
:mod:`repro.serve.loadgen`: the schedule is a pure function of its
seed, and replaying a schedule in order (``concurrency=1``) drives the
market ledger through a trajectory that is *also* a pure function of
the seed — asserted via the state document's ``trajectory_digest``
across two fresh service instances.
"""

from __future__ import annotations

import asyncio

import pytest
from serve_tiny import TINY_SPEC, requires_process_pool

from repro.errors import ModelError
from repro.serve import (
    DEFAULT_MIX,
    ReproService,
    build_schedule,
    run_load,
    start_in_thread,
)


class TestSchedule:
    def test_same_seed_same_schedule(self):
        a = build_schedule(seed=42, n_requests=50)
        b = build_schedule(seed=42, n_requests=50)
        assert a == b

    def test_different_seed_different_schedule(self):
        a = build_schedule(seed=42, n_requests=50)
        b = build_schedule(seed=43, n_requests=50)
        assert a != b

    def test_offsets_increase_and_kinds_are_known(self):
        schedule = build_schedule(seed=7, n_requests=40)
        offsets = [r.offset for r in schedule]
        assert offsets == sorted(offsets)
        assert all(r.offset > 0 for r in schedule)
        kinds = {r.kind for r in schedule}
        assert kinds <= set(DEFAULT_MIX)

    def test_reads_are_promoted_until_first_submit(self):
        # A read-only mix still produces valid traffic: the first
        # poll/result draw becomes a submit so targets exist.
        schedule = build_schedule(
            seed=0, n_requests=10, mix={"poll": 1.0}
        )
        assert schedule[0].kind == "submit"
        for request in schedule[1:]:
            assert request.kind == "poll"
            assert request.target_submit == 0

    def test_validation(self):
        with pytest.raises(ModelError):
            build_schedule(seed=0, n_requests=0)
        with pytest.raises(ModelError):
            build_schedule(seed=0, n_requests=5, mix={"submit": -1.0})
        with pytest.raises(ModelError):
            build_schedule(seed=0, n_requests=5, mix={"submit": 0.0})


def _replay(schedule, *, market_budget=4_000, concurrency=1):
    """One fresh service + one replay; returns the LoadReport."""
    service = ReproService(market_budget=market_budget)
    with start_in_thread(service) as handle:
        report = asyncio.run(
            run_load(
                handle.host,
                handle.port,
                schedule,
                concurrency=concurrency,
                poll_until_done=True,
            )
        )
    return report


class TestReplayDeterminism:
    def test_ledger_trajectory_is_a_function_of_the_seed(self):
        schedule = build_schedule(seed=42, n_requests=30)
        first = _replay(schedule)
        second = _replay(schedule)
        assert first.ok, first.failures
        assert second.ok, second.failures
        assert first.market_state == second.market_state
        assert (
            first.market_state["trajectory_digest"]
            == second.market_state["trajectory_digest"]
        )

    def test_different_seed_diverges(self):
        a = _replay(build_schedule(seed=42, n_requests=30))
        b = _replay(build_schedule(seed=43, n_requests=30))
        assert (
            a.market_state["trajectory_digest"]
            != b.market_state["trajectory_digest"]
        )

    def test_report_accounts_for_every_request(self):
        schedule = build_schedule(seed=11, n_requests=25)
        report = _replay(schedule, concurrency=4)
        assert report.requests == len(schedule)
        assert sum(report.counts.values()) == len(schedule)
        assert sum(report.status_counts.values()) == len(schedule)
        assert report.requests_per_sec > 0
        pcts = report.percentiles()
        assert 0 < pcts["p50_ms"] <= pcts["p95_ms"] <= pcts["p99_ms"]
        doc = report.to_dict()
        assert doc["requests"] == len(schedule)
        assert doc["health"]["status"] == "ok"

    def test_validation(self):
        with pytest.raises(ModelError):
            asyncio.run(
                run_load("127.0.0.1", 1, build_schedule(0, 2), concurrency=0)
            )


class TestProcessBackend:
    @requires_process_pool
    def test_load_against_process_executor_service(self):
        import json

        service = ReproService(executor="process", workers=2)
        with start_in_thread(service) as handle:
            async def check():
                from repro.serve import http_request

                status, doc = await http_request(
                    handle.host, handle.port, "POST", "/runs",
                    {"spec": TINY_SPEC},
                )
                assert status in (200, 202)
                run_id = doc["run_id"]
                while doc["status"] in ("queued", "running"):
                    await asyncio.sleep(0.02)
                    _, doc = await http_request(
                        handle.host, handle.port, "GET", f"/runs/{run_id}"
                    )
                assert doc["status"] == "succeeded"
                _, result = await http_request(
                    handle.host, handle.port, "GET", f"/runs/{run_id}/result"
                )
                return result

            process_doc = asyncio.run(check())

        serial = ReproService()
        with start_in_thread(serial) as handle:
            async def check_serial():
                from repro.serve import http_request

                _, doc = await http_request(
                    handle.host, handle.port, "POST", "/runs",
                    {"spec": TINY_SPEC},
                )
                run_id = doc["run_id"]
                while doc["status"] in ("queued", "running"):
                    await asyncio.sleep(0.02)
                    _, doc = await http_request(
                        handle.host, handle.port, "GET", f"/runs/{run_id}"
                    )
                _, result = await http_request(
                    handle.host, handle.port, "GET", f"/runs/{run_id}/result"
                )
                return result

            serial_doc = asyncio.run(check_serial())

        # Same content address, byte-identical document: the executor
        # is orchestration, not identity.
        assert json.dumps(process_doc, sort_keys=True) == json.dumps(
            serial_doc, sort_keys=True
        )
