"""Endpoint contracts for the live service (``repro.serve``).

Every assertion here runs in-process against ``ReproService.handle``
(one event loop per test, no sockets) except the wire test at the
bottom, which drives the same service over real asyncio streams.
"""

from __future__ import annotations

import asyncio
import json

import pytest
from serve_tiny import TINY_SPEC, call, submit_and_wait

from repro.api import ExperimentSpec, RunConfig, Session
from repro.api.config import fingerprint
from repro.serve import ReproService, http_request, start_in_thread


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def service():
    svc = ReproService()
    yield svc
    svc.close()


class TestHealthAndDiscovery:
    def test_health_reports_tally(self, service):
        async def check():
            status, doc = await call(service, "GET", "/health")
            assert status == 200
            assert doc["status"] == "ok"
            assert doc["store"] is False
            assert doc["tally"]["requests"] == 1

        run(check())

    def test_experiments_lists_registry_and_families(self, service):
        async def check():
            status, doc = await call(service, "GET", "/experiments")
            assert status == 200
            assert "budget-sweep" in doc["experiments"]
            assert "fig2" in doc["experiments"]
            assert set(doc["families"]) >= {"homo", "repe", "heter"}

        run(check())

    def test_unknown_route_is_404_run_not_found(self, service):
        async def check():
            status, doc = await call(service, "GET", "/nope")
            assert status == 404
            assert doc["code"] == "run-not-found"

        run(check())


class TestSubmission:
    def test_bad_json_body_is_400_error_document(self, service):
        async def check():
            status, doc = await service.handle("POST", "/runs", b"{nope")
            assert status == 400
            assert doc["code"] == "model-invalid"
            assert "error" in doc and "message" in doc

        run(check())

    def test_missing_spec_is_400(self, service):
        async def check():
            status, doc = await call(service, "POST", "/runs", {"config": {}})
            assert status == 400
            assert doc["code"] == "model-invalid"

        run(check())

    def test_unknown_experiment_is_400_registry_lookup(self, service):
        async def check():
            status, doc = await call(
                service, "POST", "/runs",
                {"spec": {"experiment": "fig99", "params": {}}},
            )
            assert status == 400
            assert doc["code"] == "registry-lookup"
            assert "fig99" in doc["message"]

        run(check())

    def test_run_id_is_the_fingerprint(self, service):
        spec = ExperimentSpec.from_dict(TINY_SPEC)
        expected = fingerprint(
            {"spec": spec.to_dict(), "config": RunConfig().to_dict()}
        )

        async def check():
            run_id, doc = await submit_and_wait(service, TINY_SPEC)
            assert run_id == expected
            assert doc["status"] == "succeeded"

        run(check())

    def test_result_byte_identical_to_direct_session_run(self, service):
        direct = Session(RunConfig()).run(
            ExperimentSpec.from_dict(TINY_SPEC)
        ).to_dict()

        async def check():
            run_id, _ = await submit_and_wait(service, TINY_SPEC)
            status, served = await call(
                service, "GET", f"/runs/{run_id}/result"
            )
            assert status == 200
            assert json.dumps(served, sort_keys=True) == json.dumps(
                direct, sort_keys=True
            )

        run(check())

    def test_resubmission_is_idempotent_no_recompute(self, service):
        async def check():
            run_id, _ = await submit_and_wait(service, TINY_SPEC)
            assert service.tally["computed"] == 1
            status, doc = await call(
                service, "POST", "/runs", {"spec": TINY_SPEC}
            )
            assert status == 200
            assert doc["run_id"] == run_id
            assert doc["status"] == "succeeded"
            assert service.tally["computed"] == 1  # nothing re-ran

        run(check())

    def test_unknown_run_id_is_404(self, service):
        async def check():
            for path in ("/runs/deadbeef00000000",
                         "/runs/deadbeef00000000/result"):
                status, doc = await call(service, "GET", path)
                assert status == 404
                assert doc["code"] == "run-not-found"

        run(check())

    def test_pending_result_is_202_status_document(self, service):
        async def check():
            status, doc = await call(
                service, "POST", "/runs", {"spec": TINY_SPEC}
            )
            assert status == 202
            run_id = doc["run_id"]
            status, doc = await call(
                service, "GET", f"/runs/{run_id}/result"
            )
            # Still queued/running: the result endpoint answers 202
            # with the status document, or 200 if it already settled.
            assert status in (200, 202)
            # Let the in-flight task settle before the loop closes.
            await submit_and_wait(service, TINY_SPEC)

        run(check())


class TestStoreIntegration:
    def test_store_hit_vs_compute_across_restart(self, tmp_path):
        store_dir = tmp_path / "results"

        async def first():
            svc = ReproService(store=store_dir)
            try:
                run_id, _ = await submit_and_wait(svc, TINY_SPEC)
                assert svc.tally["computed"] == 1
                assert svc.tally["store_misses"] == 1
                _, doc = await call(svc, "GET", f"/runs/{run_id}/result")
                return run_id, doc
            finally:
                svc.close()

        run_id, first_doc = run(first())

        async def second():
            svc = ReproService(store=store_dir)  # fresh process, warm disk
            try:
                status, doc = await call(
                    svc, "POST", "/runs", {"spec": TINY_SPEC}
                )
                assert status == 200
                assert doc["served"] is True
                assert svc.tally["store_hits"] == 1
                assert svc.tally["computed"] == 0  # no recompute
                status, served = await call(
                    svc, "GET", f"/runs/{run_id}/result"
                )
                assert status == 200
                return served
            finally:
                svc.close()

        second_doc = run(second())
        assert json.dumps(first_doc, sort_keys=True) == json.dumps(
            second_doc, sort_keys=True
        )

    def test_result_readable_from_store_without_submission(self, tmp_path):
        store_dir = tmp_path / "results"

        async def seed():
            svc = ReproService(store=store_dir)
            try:
                run_id, _ = await submit_and_wait(svc, TINY_SPEC)
                return run_id
            finally:
                svc.close()

        run_id = run(seed())

        async def read_cold():
            svc = ReproService(store=store_dir)
            try:
                # No POST first: the result endpoint falls back to the
                # store for a restarted service.
                status, doc = await call(svc, "GET", f"/runs/{run_id}/result")
                assert status == 200
                assert doc["fingerprint"] == run_id
            finally:
                svc.close()

        run(read_cold())


class TestMarket:
    def test_allocate_budget_mode_charges_ledger(self):
        svc = ReproService(market_budget=2_000)

        async def check():
            status, doc = await call(
                svc, "POST", "/market/allocate",
                {"scenario": "repe", "n_tasks": 4, "budget": 600},
            )
            assert status == 200
            assert doc["mode"] == "budget"
            assert doc["allocation_id"] == "a000000"
            assert doc["cost"] > 0
            assert doc["remaining_budget"] == 2_000 - doc["cost"]
            assert doc["group_prices"]

        try:
            run(check())
        finally:
            svc.close()

    def test_allocate_deadline_mode(self):
        svc = ReproService()

        async def check():
            status, doc = await call(
                svc, "POST", "/market/allocate",
                {"scenario": "homo", "n_tasks": 4, "deadline": 2.0},
            )
            assert status == 200
            assert doc["mode"] == "deadline"
            assert 0 <= doc["achieved_probability"] <= 1
            assert doc["cost"] >= 0

        try:
            run(check())
        finally:
            svc.close()

    def test_exhaustion_is_409_and_ledger_untouched(self):
        svc = ReproService(market_budget=700)

        async def check():
            status, first = await call(
                svc, "POST", "/market/allocate",
                {"scenario": "repe", "n_tasks": 4, "budget": 600},
            )
            assert status == 200
            status, doc = await call(
                svc, "POST", "/market/allocate",
                {"scenario": "repe", "n_tasks": 4, "budget": 600},
            )
            assert status == 409
            assert doc["code"] == "budget-infeasible"
            _, state = await call(svc, "GET", "/market/state")
            ledger = state["ledger"]
            assert ledger["spent"] == first["cost"] == 600  # rejection free
            assert ledger["accepted"] == 1
            assert ledger["rejected"] == 1

        try:
            run(check())
        finally:
            svc.close()

    def test_malformed_allocate_is_400_no_charge(self, service):
        async def check():
            cases = [
                {},  # no scenario
                {"scenario": "repe"},  # neither budget nor deadline
                {"scenario": "repe", "budget": 600, "deadline": 2.0},  # both
                {"scenario": "repe", "budget": 600, "strategy": "nope"},
            ]
            for body in cases:
                status, doc = await call(
                    svc := service, "POST", "/market/allocate", body
                )
                assert status == 400, body
                assert doc["code"] == "model-invalid"
            _, state = await call(svc, "GET", "/market/state")
            assert state["ledger"]["spent"] == 0
            assert state["ledger"]["rejected"] == 0

        run(check())

    def test_state_document_shape(self, service):
        async def check():
            status, doc = await call(service, "GET", "/market/state")
            assert status == 200
            assert set(doc["ledger"]) == {
                "budget", "spent", "remaining", "accepted", "rejected"
            }
            assert len(doc["trajectory_digest"]) == 16
            assert doc["open_tasks"]["count"] == 0

        run(check())


class TestWire:
    """The same contracts over real asyncio streams."""

    def test_http_round_trip(self):
        service = ReproService(market_budget=2_000)
        with start_in_thread(service) as handle:
            async def check():
                status, doc = await http_request(
                    handle.host, handle.port, "GET", "/health"
                )
                assert status == 200 and doc["status"] == "ok"
                status, doc = await http_request(
                    handle.host, handle.port, "POST", "/runs",
                    {"spec": TINY_SPEC},
                )
                assert status in (200, 202)
                run_id = doc["run_id"]
                while doc["status"] in ("queued", "running"):
                    await asyncio.sleep(0.01)
                    status, doc = await http_request(
                        handle.host, handle.port, "GET", f"/runs/{run_id}"
                    )
                assert doc["status"] == "succeeded"
                status, result = await http_request(
                    handle.host, handle.port, "GET", f"/runs/{run_id}/result"
                )
                assert status == 200
                assert result["fingerprint"] == run_id
                status, doc = await http_request(
                    handle.host, handle.port, "POST", "/market/allocate",
                    {"scenario": "homo", "n_tasks": 4, "budget": 300},
                )
                assert status == 200

            asyncio.run(check())

    def test_stop_is_idempotent(self):
        service = ReproService()
        handle = start_in_thread(service)
        handle.stop()
        handle.stop()  # second stop is a no-op
