"""Unit tests for repro.stats.order_statistics."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ModelError
from repro.stats import (
    Erlang,
    Exponential,
    expected_max_erlang_iid,
    expected_max_exponential,
    expected_max_exponential_iid,
    expected_maximum_generic,
    expected_min_exponential,
    harmonic_number,
)


class TestHarmonicNumber:
    def test_base_cases(self):
        assert harmonic_number(0) == 0.0
        assert harmonic_number(1) == 1.0
        assert harmonic_number(2) == pytest.approx(1.5)
        assert harmonic_number(4) == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)

    def test_monotone(self):
        values = [harmonic_number(n) for n in range(1, 200)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_asymptotic_branch_continuity(self):
        # Asymptotic formula at the switch point must agree with the sum.
        exact = float(np.sum(1.0 / np.arange(1, 1_000_002)))
        gamma = 0.5772156649015328606
        approx = math.log(1_000_001) + gamma + 1 / (2 * 1_000_001)
        assert exact == pytest.approx(approx, rel=1e-9)

    def test_rejects_negative(self):
        with pytest.raises(ModelError):
            harmonic_number(-1)


class TestExpectedMaxExponentialIID:
    def test_single_variable(self):
        assert expected_max_exponential_iid(1, 2.0) == pytest.approx(0.5)

    def test_harmonic_identity(self):
        # E[max of n] = H_n / λ
        assert expected_max_exponential_iid(3, 1.0) == pytest.approx(1 + 0.5 + 1 / 3)

    def test_scaling_in_rate(self):
        assert expected_max_exponential_iid(10, 2.0) == pytest.approx(
            expected_max_exponential_iid(10, 1.0) / 2.0
        )

    def test_monte_carlo_agreement(self, rng):
        n, lam = 7, 1.3
        draws = rng.exponential(1 / lam, size=(200_000, n)).max(axis=1)
        assert draws.mean() == pytest.approx(
            expected_max_exponential_iid(n, lam), rel=0.02
        )

    def test_input_validation(self):
        with pytest.raises(ModelError):
            expected_max_exponential_iid(0, 1.0)
        with pytest.raises(ModelError):
            expected_max_exponential_iid(3, 0.0)


class TestExpectedMaxExponentialHeterogeneous:
    def test_two_rates_closed_form(self):
        # Lemma 1: E[max] = 1/a + 1/b − 1/(a+b)
        a, b = 2.0, 5.0
        assert expected_max_exponential([a, b]) == pytest.approx(
            1 / a + 1 / b - 1 / (a + b)
        )

    def test_iid_matches_harmonic(self):
        assert expected_max_exponential([1.0] * 5) == pytest.approx(
            expected_max_exponential_iid(5, 1.0)
        )

    def test_three_rates_vs_monte_carlo(self, rng):
        rates = [1.0, 2.0, 0.5]
        draws = np.stack(
            [rng.exponential(1 / r, size=300_000) for r in rates]
        ).max(axis=0)
        assert draws.mean() == pytest.approx(
            expected_max_exponential(rates), rel=0.02
        )

    def test_rejects_too_many_rates(self):
        with pytest.raises(ModelError):
            expected_max_exponential([1.0] * 23)

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ModelError):
            expected_max_exponential([])
        with pytest.raises(ModelError):
            expected_max_exponential([1.0, 0.0])


class TestExpectedMinExponential:
    def test_closed_form(self):
        assert expected_min_exponential([2.0, 3.0]) == pytest.approx(1 / 5.0)

    def test_max_min_sum_identity_two_vars(self):
        # max + min = X + Y  ⇒  E[max] + E[min] = 1/a + 1/b
        a, b = 1.5, 4.0
        total = expected_max_exponential([a, b]) + expected_min_exponential([a, b])
        assert total == pytest.approx(1 / a + 1 / b)


class TestExpectedMaxErlangIID:
    def test_shape_one_fast_path(self):
        assert expected_max_erlang_iid(10, 1, 2.0) == pytest.approx(
            expected_max_exponential_iid(10, 2.0)
        )

    def test_single_task_is_erlang_mean(self):
        assert expected_max_erlang_iid(1, 5, 2.0) == pytest.approx(2.5, rel=1e-6)

    def test_rate_scaling(self):
        # Erl(k, λ) = Erl(k, 1)/λ ⇒ E[max] scales as 1/λ
        base = expected_max_erlang_iid(20, 3, 1.0)
        assert expected_max_erlang_iid(20, 3, 4.0) == pytest.approx(
            base / 4.0, rel=1e-6
        )

    def test_monotone_in_n(self):
        values = [expected_max_erlang_iid(n, 4, 1.0) for n in (1, 2, 5, 20, 100)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_monotone_in_shape(self):
        values = [expected_max_erlang_iid(10, k, 1.0) for k in (1, 2, 3, 5, 8)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_monte_carlo_agreement(self, rng):
        n, k, lam = 15, 4, 2.0
        draws = rng.gamma(k, 1 / lam, size=(100_000, n)).max(axis=1)
        assert draws.mean() == pytest.approx(
            expected_max_erlang_iid(n, k, lam), rel=0.02
        )

    def test_large_group(self):
        # Should not blow up or lose the tail for n = 1000.
        value = expected_max_erlang_iid(1000, 5, 2.0)
        mean_single = 2.5
        assert value > mean_single
        assert value < 20 * mean_single

    def test_input_validation(self):
        with pytest.raises(ModelError):
            expected_max_erlang_iid(0, 2, 1.0)
        with pytest.raises(ModelError):
            expected_max_erlang_iid(3, 0, 1.0)
        with pytest.raises(ModelError):
            expected_max_erlang_iid(3, 2, -1.0)


class TestExpectedMaximumGeneric:
    def test_matches_exponential_special_case(self):
        comps = [Exponential(1.0), Exponential(2.0)]
        assert expected_maximum_generic(comps) == pytest.approx(
            expected_max_exponential([1.0, 2.0]), rel=1e-5
        )

    def test_matches_erlang_special_case(self):
        comps = [Erlang(3, 2.0)] * 8
        assert expected_maximum_generic(comps) == pytest.approx(
            expected_max_erlang_iid(8, 3, 2.0), rel=1e-4
        )

    def test_mixed_components_vs_monte_carlo(self, rng):
        comps = [Exponential(1.0), Erlang(2, 2.0), Erlang(4, 3.0)]
        draws = np.stack(
            [np.asarray(c.sample(rng, size=200_000)) for c in comps]
        ).max(axis=0)
        assert draws.mean() == pytest.approx(
            expected_maximum_generic(comps), rel=0.02
        )

    def test_rejects_empty(self):
        with pytest.raises(ModelError):
            expected_maximum_generic([])
